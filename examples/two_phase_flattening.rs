//! The two-phase flattening on display: write a nested-parallel program **as
//! text** in the embedded language (the role Emma plays in the paper), watch
//! the parsing phase insert the nesting primitives (Listing 1 -> Listing 2),
//! then lower and execute it — and see the DIQL-like dialect reject the loop
//! the full system handles (Sec. 9.1's capability gap).
//!
//! Run with: `cargo run --release --example two_phase_flattening`

use std::collections::HashMap;

use matryoshka::core::MatryoshkaConfig;
use matryoshka::engine::Engine;
use matryoshka::ir::pretty::pretty;
use matryoshka::ir::{parse_program, parsing_phase, Dialect, Lowering, RtVal, Value};

fn main() {
    // The paper's Listing 1, as text: per-day bounce rate with nested
    // parallel operations inside the map UDF.
    let bounce_rate_src = r#"
        map(groupByKey(source(visits)), g =>
          let group = g.1 in
          let counts = reduceByKey(map(group, ip => (ip, 1)), (a, b) => a + b) in
          let bounces = count(filter(counts, kv => kv.1 == 1)) in
          let total = count(distinct(group)) in
          (g.0, toDouble(bounces) / toDouble(total)))
    "#;
    let listing1 = parse_program(bounce_rate_src).expect("program parses");

    println!("--- Listing 1: the nested-parallel program ---\n{}\n", pretty(&listing1));

    println!("--- phase 1: the parsing phase (compile time) ---");
    let listing2 = parsing_phase(&listing1, &["visits"], Dialect::Matryoshka).expect("flattens");
    println!("{}\n", pretty(&listing2));
    println!("(groupByKey became GroupByKeyIntoNestedBag; the map became a\n mapWithLiftedUDF that runs its UDF exactly once, lifted.)\n");

    println!("--- phase 2: the lowering phase (runtime) ---");
    let engine = Engine::local();
    let visits = engine.parallelize(
        vec![
            Value::tuple(vec![Value::Long(1), Value::Long(10)]),
            Value::tuple(vec![Value::Long(1), Value::Long(10)]),
            Value::tuple(vec![Value::Long(1), Value::Long(11)]),
            Value::tuple(vec![Value::Long(2), Value::Long(12)]),
        ],
        2,
    );
    let lowering = Lowering::new(engine.clone(), MatryoshkaConfig::optimized());
    let out = lowering
        .run(&listing2, &HashMap::from([("visits".to_string(), visits)]))
        .expect("lowering");
    let mut rows = match out {
        RtVal::Bag(b) => b.collect().expect("collect"),
        other => panic!("expected a bag, got {other:?}"),
    };
    rows.sort();
    println!("per-day bounce rates:");
    for r in &rows {
        println!("  {r}");
    }

    // A per-group loop, which the DIQL-like dialect cannot flatten.
    let loop_src = r#"
        map(groupByKey(source(xs)), g =>
          loop (n = count(g.1), steps = 0)
          while n > 0
          do (n - 1, steps + 1)
          yield (g.0, steps))
    "#;
    let loop_prog = parse_program(loop_src).expect("loop program parses");
    println!("\n--- control flow at an inner nesting level ---\n{}\n", pretty(&loop_prog));
    match parsing_phase(&loop_prog, &["xs"], Dialect::DiqlLike) {
        Err(e) => println!("DIQL-like dialect: {e}"),
        Ok(_) => println!("DIQL-like dialect unexpectedly accepted the loop"),
    }
    let flattened =
        parsing_phase(&loop_prog, &["xs"], Dialect::Matryoshka).expect("Matryoshka flattens it");

    let e2 = Engine::local();
    let mut rows = Vec::new();
    for k in 1..=4i64 {
        for _ in 0..k {
            rows.push(Value::tuple(vec![Value::Long(k), Value::Long(0)]));
        }
    }
    let xs = e2.parallelize(rows, 4);
    let out = Lowering::new(e2.clone(), MatryoshkaConfig::optimized())
        .run(&flattened, &HashMap::from([("xs".to_string(), xs)]))
        .expect("lifted loop runs");
    let mut results = match out {
        RtVal::Bag(b) => b.collect().expect("collect"),
        other => panic!("expected a bag, got {other:?}"),
    };
    results.sort();
    println!("Matryoshka runs it — per-group loop steps (group k of size k => k steps):");
    for v in &results {
        println!("  {v}");
    }
    println!(
        "\n{} simulated, {} jobs — one exit check per lifted iteration, not per group ✓",
        e2.sim_time(),
        e2.stats().jobs
    );
}
