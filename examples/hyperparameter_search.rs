//! Hyperparameter optimization (paper Sec. 2.3): K-means from many initial
//! centroid configurations over one shared point set.
//!
//! The configurations are the outer parallel level; each Lloyd's iteration
//! is the inner level; the shared points are a *closure* of the lifted UDF,
//! reached through the half-lifted `mapWithClosure` cross product whose
//! broadcast side the runtime optimizer picks (Sec. 8.3). The lifted loop
//! retires configurations as they converge (Sec. 6.2).
//!
//! Run with: `cargo run --release --example hyperparameter_search`

use matryoshka::core::MatryoshkaConfig;
use matryoshka::datagen::{initial_centroid_configs, point_cloud, KmeansSpec};
use matryoshka::engine::{ClusterConfig, Engine, GB};
use matryoshka::tasks::kmeans;
use matryoshka::tasks::seq::KmeansParams;

fn main() {
    let spec = KmeansSpec { points: 20_000, dim: 4, true_clusters: 6, k: 6, spread: 0.03, seed: 5 };
    let points = point_cloud(&spec);
    let configs = initial_centroid_configs(&spec, 32);
    let params = KmeansParams { epsilon: 1e-3, max_iterations: 15 };

    let engine = Engine::new(ClusterConfig::paper_small_cluster());
    let point_bytes = (4 * GB) as f64 / spec.points as f64;
    let point_bag = engine.parallelize_with_bytes(points.clone(), 1200, point_bytes);
    let config_bag = engine.parallelize(configs.clone(), 1);

    let results = kmeans::matryoshka(
        &engine,
        &config_bag,
        &point_bag,
        &params,
        MatryoshkaConfig::optimized(),
    )
    .expect("lifted K-means");

    // Pick the configuration with the lowest clustering cost — the point of
    // hyperparameter search.
    let (best_id, (best_centroids, best_cost)) = results
        .iter()
        .min_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
        .expect("at least one configuration")
        .clone();
    let worst_cost = results.iter().map(|(_, (_, c))| *c).fold(f64::MIN, f64::max);

    println!("tried {} configurations in parallel on the simulated cluster", results.len());
    println!(
        "best:  config {best_id} with cost {best_cost:.4} ({} centroids)",
        best_centroids.len()
    );
    println!("worst: cost {worst_cost:.4} ({:.1}x the best)", worst_cost / best_cost);
    println!(
        "\n{} simulated, {} jobs, {:.2} MB broadcast",
        engine.sim_time(),
        engine.stats().jobs,
        engine.stats().broadcast_bytes as f64 / 1e6
    );
    println!(
        "note: the job count tracks loop iterations, not configurations — \
         the inner-parallel workaround would have launched ~{} jobs instead",
        results.len() * params.max_iterations
    );

    // Verify against the sequential oracle.
    let oracle = kmeans::reference(&configs, &points, &params);
    for ((i1, (_, c1)), (i2, (_, c2))) in results.iter().zip(&oracle) {
        assert_eq!(i1, i2);
        assert!((c1 - c2).abs() / c1.max(1e-9) < 1e-6, "config {i1}: {c1} vs {c2}");
    }
    println!("results verified against the sequential oracle ✓");
}
