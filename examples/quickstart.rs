//! Quickstart: the paper's running example (Listing 1) end to end.
//!
//! Computes the per-day bounce rate of a website visit log with nested
//! parallel operations, flattened by Matryoshka onto the simulated cluster,
//! and compares against the two workarounds the paper measures.
//!
//! Run with: `cargo run --release --example quickstart`

use matryoshka::core::{group_by_key_into_nested_bag, MatryoshkaConfig};
use matryoshka::datagen::{visit_log, KeyDist, VisitSpec};
use matryoshka::engine::{ClusterConfig, Engine, GB};
use matryoshka::tasks::bounce_rate;

fn main() {
    // A visit log: (day, visitor) records, modeled as a 24 GB input on the
    // paper's 25-machine cluster.
    let spec = VisitSpec {
        visits: 100_000,
        groups: 32,
        visitors_per_group: 1_000,
        bounce_fraction: 0.3,
        key_dist: KeyDist::Uniform,
        seed: 1,
    };
    let log = visit_log(&spec);
    let record_bytes = (24 * GB) as f64 / spec.visits as f64;

    // --- Matryoshka: the nested-parallel program of Listing 1, flattened.
    let engine = Engine::new(ClusterConfig::paper_small_cluster());
    let visits = engine.parallelize_with_bytes(log.clone(), 1200, record_bytes);
    let per_day = group_by_key_into_nested_bag(&engine, &visits, MatryoshkaConfig::optimized())
        .expect("grouping");
    let rates = per_day.map_with_lifted_udf(|_day, group| {
        // Everything in here is a *lifted* operation: it processes all 32
        // days' groups simultaneously, in a constant number of flat jobs.
        let counts_per_ip = group.map(|ip| (*ip, 1u64)).reduce_by_key(|a, b| a + b);
        let num_bounces = counts_per_ip.filter(|(_, c)| *c == 1).count();
        let num_visitors = group.distinct().count();
        num_bounces.zip_with(&num_visitors, |b, v| *b as f64 / *v as f64)
    });
    let mut out = rates.collect().expect("execution");
    out.sort_by_key(|(d, _)| *d);

    println!("per-day bounce rates (first 5 of {}):", out.len());
    for (day, rate) in out.iter().take(5) {
        println!("  day {day:>3}: {rate:.3}");
    }
    let m_time = engine.sim_time();
    let m_stats = engine.stats();
    println!(
        "\nMatryoshka: {m_time} simulated, {} jobs, {:.2} GB shuffled",
        m_stats.jobs,
        m_stats.shuffle_bytes as f64 / 1e9
    );

    // --- The two workarounds (Sec. 1) on fresh clusters, for comparison.
    let inner_engine = Engine::new(ClusterConfig::paper_small_cluster());
    let groups = bounce_rate::split_by_group(&log);
    bounce_rate::inner_parallel(&inner_engine, &groups, record_bytes).expect("inner-parallel");
    println!(
        "inner-parallel: {} simulated, {} jobs (one pair of jobs per day!)",
        inner_engine.sim_time(),
        inner_engine.stats().jobs
    );

    let outer_engine = Engine::new(ClusterConfig::paper_small_cluster());
    let visits2 = outer_engine.parallelize_with_bytes(log.clone(), 1200, record_bytes);
    match bounce_rate::outer_parallel(&outer_engine, &visits2) {
        Ok(_) => println!("outer-parallel: {} simulated", outer_engine.sim_time()),
        Err(e) => println!("outer-parallel: failed as the paper observes — {e}"),
    }

    // Sanity: the distributed result matches the sequential oracle.
    let oracle = bounce_rate::reference(&log);
    assert_eq!(out.len(), oracle.len());
    for ((d1, r1), (d2, r2)) in out.iter().zip(&oracle) {
        assert_eq!(d1, d2);
        assert!((r1 - r2).abs() < 1e-12);
    }
    println!("\nresults verified against the sequential oracle ✓");

    println!("\nexecution trace of the flattened program (first 10 operators):");
    for line in engine.trace_report().lines().take(10) {
        println!("  {line}");
    }
}
