//! Graph analytics with nested parallelism: per-group PageRank (two levels
//! plus a lifted loop, paper Sec. 9.1) and Average Distances over connected
//! components (THREE levels of parallelism with composite lifting tags,
//! Sec. 2.2) — the composability story: `connectedComps(g).map(avgDistances)`.
//!
//! Run with: `cargo run --release --example graph_analytics`

use matryoshka::core::MatryoshkaConfig;
use matryoshka::datagen::{
    component_graph, grouped_edges, ComponentGraphSpec, GroupedGraphSpec, KeyDist,
};
use matryoshka::engine::{ClusterConfig, Engine, GB};
use matryoshka::tasks::seq::PageRankParams;
use matryoshka::tasks::{avg_distances, pagerank};

fn main() {
    // ---- Per-group PageRank (Topic-Sensitive PageRank shape) ------------
    let spec = GroupedGraphSpec {
        total_edges: 40_000,
        groups: 16,
        vertices_per_group: 250,
        key_dist: KeyDist::Uniform,
        seed: 3,
    };
    let edges = grouped_edges(&spec);
    let params = PageRankParams { damping: 0.85, epsilon: 1e-3, max_iterations: 20 };

    let engine = Engine::new(ClusterConfig::paper_small_cluster());
    let bytes = (8 * GB) as f64 / edges.len() as f64;
    let bag = engine.parallelize_with_bytes(edges.clone(), 1200, bytes);
    let ranks = pagerank::matryoshka(&engine, &bag, &params, MatryoshkaConfig::optimized(), 0.0)
        .expect("lifted PageRank");

    println!("per-group PageRank over {} groups ({} edges total):", spec.groups, edges.len());
    for (g, mass) in pagerank::rank_mass_per_group(&ranks).iter().take(4) {
        println!("  group {g}: rank mass {mass:.6} (must be ~1)");
    }
    println!(
        "  {} simulated, {} jobs — the lifted loop converges each group independently\n",
        engine.sim_time(),
        engine.stats().jobs
    );

    // ---- Average Distances: three levels of parallelism -----------------
    // Level 1: components. Level 2: BFS sources within a component
    // ((component, source) composite tags). Level 3: the BFS itself.
    let gspec = ComponentGraphSpec {
        components: 12,
        vertices_per_component: 40,
        extra_edges_per_component: 30,
        seed: 9,
    };
    let graph = component_graph(&gspec);
    let engine2 = Engine::new(ClusterConfig::paper_small_cluster());
    let gbytes = (2 * GB) as f64 / graph.len() as f64;
    let gbag = engine2.parallelize_with_bytes(graph.clone(), 1200, gbytes);

    let avgs = avg_distances::matryoshka(&engine2, &gbag, MatryoshkaConfig::optimized(), 64)
        .expect("lifted average distances");
    println!("average pairwise distance per component ({} components):", avgs.len());
    for (comp, avg) in avgs.iter().take(4) {
        println!("  component {comp:>12}: {avg:.3}");
    }
    println!("  {} simulated, {} jobs", engine2.sim_time(), engine2.stats().jobs);

    // Verify both against their sequential oracles.
    let pr_oracle = pagerank::reference(&edges, &params);
    assert_eq!(ranks.len(), pr_oracle.len());
    for ((g1, (v1, r1)), (g2, (v2, r2))) in ranks.iter().zip(&pr_oracle) {
        assert_eq!((g1, v1), (g2, v2));
        assert!((r1 - r2).abs() < 1e-4);
    }
    let ad_oracle = avg_distances::reference(&graph);
    assert_eq!(avgs.len(), ad_oracle.len());
    for ((c1, d1), (c2, d2)) in avgs.iter().zip(&ad_oracle) {
        assert_eq!(c1, c2);
        assert!((d1 - d2).abs() < 1e-9);
    }
    println!("\nboth results verified against sequential oracles ✓");
}
