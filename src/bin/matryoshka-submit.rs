//! `matryoshka-submit`: submit `.mat` programs to a running
//! `matryoshka-serve` and wait for their outcomes.
//!
//! Each file becomes one job (named after its file stem). The client
//! submits everything first, then waits for each job and prints a line per
//! outcome, so concurrent jobs actually overlap on the service.
//!
//! ```text
//! matryoshka-submit --addr HOST:PORT [OPTIONS] FILE...
//!
//!   --addr HOST:PORT     server address (required)
//!   --pool NAME          target pool (default `default`)
//!   --slots N            simulated core slots per job (0 = server default)
//!   --deadline-ms N      per-job virtual deadline in milliseconds
//!   --no-wait            submit only; don't wait for outcomes
//!   --expect-reject      invert: exit 0 only if every submission is
//!                        rejected at admission (for CI negative tests)
//!   -h, --help           print usage
//! ```
//!
//! Exit status: 0 if every job completed (or, with `--expect-reject`,
//! every submission was rejected), 1 if any job failed, was cancelled, or
//! was unexpectedly (not) rejected, 2 on usage, I/O, or protocol errors.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::ExitCode;

struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    fn open(addr: &str) -> Result<Connection, String> {
        let writer = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let reader =
            BufReader::new(writer.try_clone().map_err(|e| format!("connect {addr}: {e}"))?);
        Ok(Connection { reader, writer })
    }

    fn recv(&mut self) -> Result<String, String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".to_string());
        }
        Ok(line.trim_end().to_string())
    }

    /// Read `DIAG` continuations (printing them) until the final reply.
    fn recv_final(&mut self) -> Result<String, String> {
        loop {
            let line = self.recv()?;
            if let Some(diag) = line.strip_prefix("DIAG ") {
                eprintln!("  {diag}");
            } else {
                return Ok(line);
            }
        }
    }

    fn send(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("write: {e}"))
    }
}

struct Options {
    addr: String,
    pool: String,
    slots: usize,
    deadline_ms: Option<u64>,
    wait: bool,
    expect_reject: bool,
    files: Vec<String>,
}

const USAGE: &str = "usage: matryoshka-submit --addr HOST:PORT [--pool NAME] [--slots N] \
[--deadline-ms N] [--no-wait] [--expect-reject] FILE...";

fn parse_args() -> Result<Option<Options>, String> {
    let mut opts = Options {
        addr: String::new(),
        pool: "default".to_string(),
        slots: 0,
        deadline_ms: None,
        wait: true,
        expect_reject: false,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => opts.addr = next(&mut args, "--addr")?,
            "--pool" => opts.pool = next(&mut args, "--pool")?,
            "--slots" => {
                opts.slots = next(&mut args, "--slots")?
                    .parse()
                    .map_err(|_| "--slots must be an integer".to_string())?;
            }
            "--deadline-ms" => {
                opts.deadline_ms = Some(
                    next(&mut args, "--deadline-ms")?
                        .parse()
                        .map_err(|_| "--deadline-ms must be an integer".to_string())?,
                );
            }
            "--no-wait" => opts.wait = false,
            "--expect-reject" => opts.expect_reject = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            other => opts.files.push(other.to_string()),
        }
    }
    if opts.addr.is_empty() {
        return Err("--addr is required".to_string());
    }
    if opts.files.is_empty() {
        return Err("no program files given".to_string());
    }
    Ok(Some(opts))
}

fn job_name(file: &str) -> String {
    Path::new(file)
        .file_stem()
        .map(|s| s.to_string_lossy().replace(char::is_whitespace, "_"))
        .unwrap_or_else(|| "job".to_string())
}

fn run(opts: &Options) -> Result<bool, String> {
    let mut conn = Connection::open(&opts.addr)?;
    let mut submitted: Vec<(String, u64)> = Vec::new();
    let mut all_ok = true;
    for file in &opts.files {
        let program = std::fs::read_to_string(file).map_err(|e| format!("read {file}: {e}"))?;
        let name = job_name(file);
        let mut header = format!("SUBMIT {name} {} {}", opts.pool, program.len());
        if opts.slots != 0 {
            header.push_str(&format!(" slots={}", opts.slots));
        }
        if let Some(d) = opts.deadline_ms {
            header.push_str(&format!(" deadline_ms={d}"));
        }
        conn.send(&header)?;
        write!(conn.writer, "{program}").map_err(|e| format!("write: {e}"))?;
        conn.writer.flush().map_err(|e| format!("write: {e}"))?;
        let reply = conn.recv_final()?;
        if let Some(rest) = reply.strip_prefix("OK ") {
            let id: u64 = rest
                .split_whitespace()
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| format!("malformed reply `{reply}`"))?;
            println!("{name}: submitted as job {id}");
            if opts.expect_reject {
                eprintln!("{name}: expected rejection but was admitted");
                all_ok = false;
            }
            submitted.push((name, id));
        } else {
            println!("{name}: {reply}");
            if !opts.expect_reject {
                all_ok = false;
            }
        }
    }
    if opts.wait {
        for (name, id) in &submitted {
            conn.send(&format!("WAIT {id}"))?;
            let reply = conn.recv_final()?;
            println!("{name}: {reply}");
            let completed = reply
                .strip_prefix(&format!("OK {id} "))
                .is_some_and(|r| r.starts_with("completed"));
            if !completed {
                all_ok = false;
            }
        }
    }
    Ok(all_ok)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("matryoshka-submit: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("matryoshka-submit: {e}");
            ExitCode::from(2)
        }
    }
}
