//! `matryoshka-serve`: the std-only multi-tenant job server.
//!
//! Binds a TCP listener, prints `LISTENING <addr>` on stdout (so scripts
//! can discover an ephemeral port), and serves the wire protocol of
//! `docs/SERVICE.md` until a client sends `SHUTDOWN`.
//!
//! ```text
//! matryoshka-serve [OPTIONS]
//!
//!   --addr HOST:PORT       bind address (default 127.0.0.1:0 = ephemeral)
//!   --policy fifo|fair     scheduling policy (default fifo)
//!   --pools SPEC           comma-separated name:weight[:max_concurrent]
//!                          (default: the single pool `default:1`)
//!   --queue-capacity N     admission queue bound (default 64)
//!   --slots N              total simulated core slots (default 8)
//!   --default-slots N      slots per job when the client asks for 0
//!   --seed N               dataset seed (default 42)
//!   -h, --help             print usage
//! ```
//!
//! Exit status: 0 on graceful shutdown, 2 on usage or bind errors.

use std::process::ExitCode;

use matryoshka::core::{MatryoshkaConfig, PoolConfig, SchedulerConfig, SchedulingPolicy};
use matryoshka::engine::ClusterConfig;
use matryoshka::service::{JobService, Server};

const USAGE: &str = "usage: matryoshka-serve [--addr HOST:PORT] [--policy fifo|fair] \
[--pools name:weight[:cap],...] [--queue-capacity N] [--slots N] [--default-slots N] [--seed N]";

/// Parse a `name:weight[:max_concurrent]` pool spec.
fn parse_pool(spec: &str) -> Result<PoolConfig, String> {
    let mut parts = spec.split(':');
    let name = parts.next().filter(|s| !s.is_empty()).ok_or("pool spec needs a name")?;
    let weight: u64 = parts
        .next()
        .ok_or_else(|| format!("pool `{name}`: missing weight"))?
        .parse()
        .map_err(|_| format!("pool `{name}`: weight must be an integer"))?;
    let mut pool = PoolConfig::new(name, weight);
    if let Some(cap) = parts.next() {
        let cap: usize =
            cap.parse().map_err(|_| format!("pool `{name}`: cap must be an integer"))?;
        pool = pool.with_max_concurrent(cap);
    }
    if parts.next().is_some() {
        return Err(format!("pool spec `{spec}` has too many fields"));
    }
    Ok(pool)
}

fn run() -> Result<(), String> {
    let mut addr = "127.0.0.1:0".to_string();
    let mut scheduler = SchedulerConfig::default();
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = next(&mut args, "--addr")?,
            "--policy" => {
                scheduler.policy = match next(&mut args, "--policy")?.as_str() {
                    "fifo" => SchedulingPolicy::Fifo,
                    "fair" => SchedulingPolicy::FairShare,
                    other => return Err(format!("unknown policy `{other}`")),
                };
            }
            "--pools" => {
                scheduler.pools = next(&mut args, "--pools")?
                    .split(',')
                    .map(parse_pool)
                    .collect::<Result<_, _>>()?;
            }
            "--queue-capacity" => {
                scheduler.queue_capacity = next(&mut args, "--queue-capacity")?
                    .parse()
                    .map_err(|_| "--queue-capacity must be an integer".to_string())?;
            }
            "--slots" => {
                scheduler.total_slots = next(&mut args, "--slots")?
                    .parse()
                    .map_err(|_| "--slots must be an integer".to_string())?;
            }
            "--default-slots" => {
                scheduler.default_slots = next(&mut args, "--default-slots")?
                    .parse()
                    .map_err(|_| "--default-slots must be an integer".to_string())?;
            }
            "--seed" => {
                seed = next(&mut args, "--seed")?
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_string())?;
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let config = MatryoshkaConfig { scheduler, ..MatryoshkaConfig::optimized() };
    let service = JobService::new(ClusterConfig::local_test(), config, seed)?;
    let server = Server::bind(service, &addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    println!("LISTENING {bound}");
    server.run().map_err(|e| format!("serve: {e}"))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("matryoshka-serve: {e}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
