//! `matryoshka-check`: validate nested-parallel IR programs without
//! executing them.
//!
//! Runs the parsing front-end and the static analyzer
//! (`matryoshka_ir::analyze`) over program files and renders any `MAT0xx`
//! diagnostics caret-style. No engine job is launched.
//!
//! ```text
//! matryoshka-check [OPTIONS] [FILE...]
//!
//!   --builtin            also check the tasks crate's built-in IR workloads
//!   --sources a,b,c      input bag names (default: derived from source(..) uses)
//!   --dialect NAME       matryoshka (default) | diql
//!   -h, --help           print usage
//! ```
//!
//! Exit status: 0 if every program is clean (warnings allowed), 1 if any
//! program has an error-severity diagnostic or fails to parse, 2 on usage
//! or I/O errors.

use std::process::ExitCode;

use matryoshka::ir::pretty::render_diagnostics;
use matryoshka::ir::{analyze, parse_program, Dialect};
use matryoshka::tasks::ir_programs;

const USAGE: &str =
    "usage: matryoshka-check [--builtin] [--sources a,b,c] [--dialect matryoshka|diql] [FILE...]";

struct Options {
    files: Vec<String>,
    builtin: bool,
    sources: Option<Vec<String>>,
    dialect: Dialect,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts =
        Options { files: Vec::new(), builtin: false, sources: None, dialect: Dialect::Matryoshka };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--builtin" => opts.builtin = true,
            "--sources" => {
                let v = it.next().ok_or("--sources needs a comma-separated list")?;
                opts.sources = Some(v.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--dialect" => {
                opts.dialect = match it.next().map(String::as_str) {
                    Some("matryoshka") => Dialect::Matryoshka,
                    Some("diql") => Dialect::DiqlLike,
                    other => return Err(format!("unknown dialect {other:?}")),
                };
            }
            "-h" | "--help" => return Err(String::new()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            file => opts.files.push(file.to_string()),
        }
    }
    if opts.files.is_empty() && !opts.builtin {
        return Err("no input files (pass FILEs and/or --builtin)".into());
    }
    Ok(opts)
}

/// Check one program text; prints per-program outcome and returns whether
/// it is free of error-severity diagnostics.
fn check_program(label: &str, src: &str, sources: &[String], dialect: Dialect) -> bool {
    let ast = match parse_program(src) {
        Ok(ast) => ast,
        Err(e) => {
            eprintln!("{label}: parse error: {e}");
            return false;
        }
    };
    let derived;
    let source_refs: Vec<&str> = if sources.is_empty() {
        derived = analyze::source_names(&ast);
        derived.iter().map(String::as_str).collect()
    } else {
        sources.iter().map(String::as_str).collect()
    };
    let analysis = matryoshka::ir::analyze(&ast, &source_refs, dialect);
    if !analysis.diagnostics.is_empty() {
        eprint!("{label}:\n{}", render_diagnostics(src, &analysis.diagnostics));
    }
    if analysis.is_ok() {
        println!(
            "ok: {label} ({}, inputs: {})",
            analysis.program_ty,
            if source_refs.is_empty() { "none".to_string() } else { source_refs.join(", ") }
        );
        true
    } else {
        false
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("{msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut all_ok = true;
    for file in &opts.files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{file}: {e}");
                return ExitCode::from(2);
            }
        };
        let explicit = opts.sources.clone().unwrap_or_default();
        all_ok &= check_program(file, &src, &explicit, opts.dialect);
    }
    if opts.builtin {
        for p in ir_programs::ALL {
            let sources: Vec<String> = p.inputs.iter().map(|s| s.to_string()).collect();
            all_ok &= check_program(p.name, p.source, &sources, opts.dialect);
        }
    }
    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
