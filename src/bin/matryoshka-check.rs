//! `matryoshka-check`: validate nested-parallel IR programs without
//! executing them.
//!
//! Runs the parsing front-end and the static analyzer
//! (`matryoshka_ir::analyze`) over program files and renders any `MAT0xx`
//! diagnostics caret-style. No engine job is launched.
//!
//! ```text
//! matryoshka-check [OPTIONS] [FILE...]
//!
//!   --builtin            also check the tasks crate's built-in IR workloads
//!   --sources a,b,c      input bag names (default: derived from source(..) uses)
//!   --dialect NAME       matryoshka (default) | diql
//!   --explain            run the plan-rewrite pass (hoist/CSE/DCE, all on)
//!                        and print the before/after plan trees plus one
//!                        line per applied rewrite with its safety
//!                        justification; no engine job is launched
//!   --adaptive-config S  validate an adaptive-execution config: S is
//!                        `default` or comma-separated key=value overrides
//!                        (salt_factor=8, skew_threshold_milli=4000, ...);
//!                        nonsensical settings print MAT092 warnings
//!   -h, --help           print usage
//! ```
//!
//! Exit status: 0 if every program is clean (warnings allowed), 1 if any
//! program has an error-severity diagnostic or fails to parse, 2 on usage
//! or I/O errors.

use std::process::ExitCode;

use matryoshka::core::{AdaptiveConfig, PlanRewriteConfig};
use matryoshka::ir::analyze::codes;
use matryoshka::ir::analyze::plan::rewrite_plan;
use matryoshka::ir::pretty::{plan_tree, render_diagnostics};
use matryoshka::ir::{analyze, parse_program, parsing_phase, Diagnostic, Dialect};
use matryoshka::tasks::ir_programs;

const USAGE: &str = "usage: matryoshka-check [--builtin] [--sources a,b,c] \
[--dialect matryoshka|diql] [--explain] [--adaptive-config SPEC] [FILE...]";

struct Options {
    files: Vec<String>,
    builtin: bool,
    sources: Option<Vec<String>>,
    dialect: Dialect,
    explain: bool,
    adaptive: Option<AdaptiveConfig>,
}

/// Parse an `--adaptive-config` spec: `default` (the enabled defaults) or a
/// comma-separated list of `key[=value]` overrides applied on top of them.
/// A bare boolean key means `true`.
fn parse_adaptive_spec(spec: &str) -> Result<AdaptiveConfig, String> {
    let mut cfg = AdaptiveConfig::enabled();
    if spec.trim() == "default" {
        return Ok(cfg);
    }
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (key, value) = match part.split_once('=') {
            Some((k, v)) => (k.trim(), Some(v.trim())),
            None => (part, None),
        };
        let bool_of = |v: Option<&str>| match v {
            None | Some("true") => Ok(true),
            Some("false") => Ok(false),
            Some(other) => Err(format!("{key}: expected true/false, got {other:?}")),
        };
        let int_of = |v: Option<&str>| {
            v.ok_or_else(|| format!("{key} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{key}: {e}"))
        };
        match key {
            "enabled" => cfg.enabled = bool_of(value)?,
            "coalesce" => cfg.coalesce = bool_of(value)?,
            "switch_joins" => cfg.switch_joins = bool_of(value)?,
            "salt_skew" => cfg.salt_skew = bool_of(value)?,
            "target_partition_bytes" => cfg.target_partition_bytes = int_of(value)?,
            "skew_threshold_milli" => cfg.skew_threshold_milli = int_of(value)?,
            "salt_factor" => cfg.salt_factor = int_of(value)? as u32,
            "min_partitions" => cfg.min_partitions = int_of(value)? as usize,
            other => return Err(format!("unknown adaptive-config key {other:?}")),
        }
    }
    Ok(cfg)
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        files: Vec::new(),
        builtin: false,
        sources: None,
        dialect: Dialect::Matryoshka,
        explain: false,
        adaptive: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--builtin" => opts.builtin = true,
            "--explain" => opts.explain = true,
            "--sources" => {
                let v = it.next().ok_or("--sources needs a comma-separated list")?;
                opts.sources = Some(v.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--adaptive-config" => {
                let v = it.next().ok_or("--adaptive-config needs a spec (try `default`)")?;
                opts.adaptive = Some(parse_adaptive_spec(v)?);
            }
            "--dialect" => {
                opts.dialect = match it.next().map(String::as_str) {
                    Some("matryoshka") => Dialect::Matryoshka,
                    Some("diql") => Dialect::DiqlLike,
                    other => return Err(format!("unknown dialect {other:?}")),
                };
            }
            "-h" | "--help" => return Err(String::new()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            file => opts.files.push(file.to_string()),
        }
    }
    if opts.files.is_empty() && !opts.builtin && opts.adaptive.is_none() {
        return Err("no input files (pass FILEs, --builtin, and/or --adaptive-config)".into());
    }
    Ok(opts)
}

/// Validate an adaptive-execution config, rendering each complaint from
/// [`AdaptiveConfig::validate`] as a `MAT092` warning. Warnings do not fail
/// the run (exit status stays 0), matching the analyzer's warning semantics.
fn check_adaptive_config(cfg: &AdaptiveConfig) {
    let warnings = cfg.validate();
    for w in &warnings {
        eprintln!("{}", Diagnostic::warning(codes::ADAPTIVE_CONFIG, None, w.clone()));
    }
    if warnings.is_empty() {
        println!("ok: adaptive-config ({cfg:?})");
    } else {
        println!("ok: adaptive-config with {} warning(s)", warnings.len());
    }
}

/// Render a plan tree indented under a heading.
fn print_tree(heading: &str, tree: &str) {
    println!("  {heading}:");
    for line in tree.lines() {
        println!("    {line}");
    }
}

/// `--explain`: run the parsing phase and the plan-rewrite pass (all
/// rewrites on) and report the before/after plan with one line per applied
/// rewrite, including the safety justification the pass proved.
fn explain_program(
    label: &str,
    ast: &matryoshka::ir::ast::Expr,
    sources: &[&str],
    dialect: Dialect,
) {
    let lowered = match parsing_phase(ast, sources, dialect) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("{label}: parsing phase failed: {e}");
            return;
        }
    };
    let rewrite = rewrite_plan(&lowered, &PlanRewriteConfig::enabled());
    println!("plan: {label}");
    print_tree("before", &plan_tree(&lowered));
    if rewrite.rewrites.is_empty() {
        println!("  rewrites: none apply");
        return;
    }
    println!("  rewrites:");
    for r in &rewrite.rewrites {
        println!("    {r}");
    }
    print_tree("after", &plan_tree(&rewrite.expr));
}

/// Check one program text; prints per-program outcome and returns whether
/// it is free of error-severity diagnostics. With `explain`, clean programs
/// also get a plan-rewrite report.
fn check_program(
    label: &str,
    src: &str,
    sources: &[String],
    dialect: Dialect,
    explain: bool,
) -> bool {
    let ast = match parse_program(src) {
        Ok(ast) => ast,
        Err(e) => {
            eprintln!("{label}: parse error: {e}");
            return false;
        }
    };
    let derived;
    let source_refs: Vec<&str> = if sources.is_empty() {
        derived = analyze::source_names(&ast);
        derived.iter().map(String::as_str).collect()
    } else {
        sources.iter().map(String::as_str).collect()
    };
    let analysis = matryoshka::ir::analyze(&ast, &source_refs, dialect);
    if !analysis.diagnostics.is_empty() {
        eprint!("{label}:\n{}", render_diagnostics(src, &analysis.diagnostics));
    }
    if analysis.is_ok() {
        println!(
            "ok: {label} ({}, inputs: {})",
            analysis.program_ty,
            if source_refs.is_empty() { "none".to_string() } else { source_refs.join(", ") }
        );
        if explain {
            explain_program(label, &ast, &source_refs, dialect);
        }
        true
    } else {
        false
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("{msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut all_ok = true;
    if let Some(cfg) = &opts.adaptive {
        check_adaptive_config(cfg);
    }
    for file in &opts.files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{file}: {e}");
                return ExitCode::from(2);
            }
        };
        let explicit = opts.sources.clone().unwrap_or_default();
        all_ok &= check_program(file, &src, &explicit, opts.dialect, opts.explain);
    }
    if opts.builtin {
        for p in ir_programs::ALL {
            let sources: Vec<String> = p.inputs.iter().map(|s| s.to_string()).collect();
            all_ok &= check_program(p.name, p.source, &sources, opts.dialect, opts.explain);
        }
    }
    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
