//! # matryoshka
//!
//! Umbrella crate for the Matryoshka reproduction — *"The Power of Nested
//! Parallelism in Big Data Processing — Hitting Three Flies with One Slap"*
//! (SIGMOD 2021) — re-exporting the workspace members:
//!
//! - [`engine`]: the flat-parallel dataflow engine with a simulated-cluster
//!   cost model (the Spark stand-in).
//! - [`core`]: the nesting primitives, lifted operations, lifted control
//!   flow and runtime optimizer (the lowering phase).
//! - [`ir`]: the nested-parallel language and the parsing phase.
//! - [`tasks`]: the paper's evaluation workloads in every strategy.
//! - [`datagen`]: deterministic dataset generators.
//! - [`service`]: the multi-tenant job service — fair-share scheduler,
//!   admission control, and the std-only TCP submission server.
//!
//! See the repository README for a tour and `examples/` for runnable
//! programs.

pub use matryoshka_core as core;
pub use matryoshka_datagen as datagen;
pub use matryoshka_engine as engine;
pub use matryoshka_ir as ir;
pub use matryoshka_service as service;
pub use matryoshka_tasks as tasks;
