//! Dynamically typed data values for the nested-parallel language.
//!
//! The parsing phase manipulates *code as data* (paper Sec. 4.1.1); the
//! lowering interpreter then needs a runtime datum that can flow through
//! engine bags and be used as grouping keys and lifting tags — hence a
//! dynamically typed `Value` with total equality and hashing (doubles
//! compare by bit pattern).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{IrError, IrResult};

/// A datum of the embedded language: scalars and tuples. Bags are *not*
/// values (they are collections of values), mirroring the paper's assumption
/// that bags do not nest inside other data structures (Sec. 7).
#[derive(Debug, Clone)]
pub enum Value {
    /// The unit value.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Long(i64),
    /// A 64-bit float (equality and hashing by bit pattern).
    Double(f64),
    /// An immutable string.
    Str(Arc<str>),
    /// A tuple of values.
    Tuple(Arc<Vec<Value>>),
}

impl Value {
    /// Convenience string constructor.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// Convenience tuple constructor.
    pub fn tuple(items: Vec<Value>) -> Value {
        Value::Tuple(Arc::new(items))
    }

    /// Project a tuple component.
    pub fn proj(&self, i: usize) -> IrResult<Value> {
        self.proj_ref(i).cloned()
    }

    /// Borrowing projection: the component by reference, with the same
    /// errors as [`Value::proj`]. Lets chained projections (`v.0.1`) walk to
    /// the final component and clone only once — the compiled-UDF
    /// evaluator's projection-path fast path ([`crate::compile`]).
    pub fn proj_ref(&self, i: usize) -> IrResult<&Value> {
        match self {
            Value::Tuple(items) => items.get(i).ok_or_else(|| {
                IrError::Type(format!("tuple index {i} out of bounds (len {})", items.len()))
            }),
            other => Err(IrError::Type(format!("projection .{i} on non-tuple {other}"))),
        }
    }

    /// Flatten for `flatMap`: a tuple's components individually, any other
    /// value as a singleton (the `FlatMapTuple` emission rule, shared by the
    /// interpreted and compiled UDF paths in [`crate::Lowering`]).
    pub fn splat_tuple(self) -> Vec<Value> {
        match self {
            Value::Tuple(items) => items.as_ref().clone(),
            other => vec![other],
        }
    }

    /// As a boolean, or a type error.
    pub fn as_bool(&self) -> IrResult<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(IrError::Type(format!("expected Bool, got {other}"))),
        }
    }

    /// As a long, or a type error.
    pub fn as_long(&self) -> IrResult<i64> {
        match self {
            Value::Long(x) => Ok(*x),
            other => Err(IrError::Type(format!("expected Long, got {other}"))),
        }
    }

    /// Numeric view (longs widen to doubles).
    pub fn as_f64(&self) -> IrResult<f64> {
        match self {
            Value::Long(x) => Ok(*x as f64),
            Value::Double(x) => Ok(*x),
            other => Err(IrError::Type(format!("expected number, got {other}"))),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Unit, Value::Unit) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Long(a), Value::Long(b)) => a == b,
            (Value::Double(a), Value::Double(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Tuple(a), Value::Tuple(b)) => a == b,
            _ => false,
        }
    }
}
impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            Value::Unit => {}
            Value::Bool(b) => b.hash(state),
            Value::Long(x) => x.hash(state),
            Value::Double(x) => x.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Tuple(items) => items.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Unit => 0,
                Value::Bool(_) => 1,
                Value::Long(_) => 2,
                Value::Double(_) => 3,
                Value::Str(_) => 4,
                Value::Tuple(_) => 5,
            }
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Long(a), Value::Long(b)) => a.cmp(b),
            (Value::Double(a), Value::Double(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Tuple(a), Value::Tuple(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)).then(Ordering::Equal),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Long(x) => write!(f, "{x}"),
            Value::Double(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Tuple(items) => {
                write!(f, "(")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_covers_doubles_by_bits() {
        assert_eq!(Value::Double(1.5), Value::Double(1.5));
        assert_ne!(Value::Double(0.0), Value::Double(-0.0));
        assert_eq!(Value::Double(f64::NAN), Value::Double(f64::NAN));
    }

    #[test]
    fn hashing_is_consistent_with_equality() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::tuple(vec![Value::Long(1), Value::str("a")]));
        assert!(set.contains(&Value::tuple(vec![Value::Long(1), Value::str("a")])));
        assert!(!set.contains(&Value::tuple(vec![Value::Long(2), Value::str("a")])));
    }

    #[test]
    fn projection_and_accessors() {
        let t = Value::tuple(vec![Value::Long(7), Value::Bool(true)]);
        assert_eq!(t.proj(0).unwrap(), Value::Long(7));
        assert!(t.proj(5).is_err());
        assert!(Value::Long(1).proj(0).is_err());
        assert!(Value::Bool(true).as_bool().unwrap());
        assert_eq!(Value::Long(3).as_f64().unwrap(), 3.0);
        assert!(Value::str("x").as_long().is_err());
    }

    #[test]
    fn ordering_is_total() {
        let mut vs =
            [Value::str("b"), Value::Long(2), Value::Unit, Value::Double(1.0), Value::Long(1)];
        vs.sort();
        assert_eq!(vs[0], Value::Unit);
        assert_eq!(vs[1], Value::Long(1));
    }

    #[test]
    fn proj_ref_matches_proj() {
        let t = Value::tuple(vec![Value::Long(7), Value::str("a")]);
        assert_eq!(t.proj_ref(1).unwrap(), &Value::str("a"));
        assert_eq!(t.proj_ref(9).unwrap_err().to_string(), t.proj(9).unwrap_err().to_string());
        assert_eq!(
            Value::Long(1).proj_ref(0).unwrap_err().to_string(),
            Value::Long(1).proj(0).unwrap_err().to_string()
        );
    }

    #[test]
    fn splat_tuple_flattens_only_tuples() {
        let t = Value::tuple(vec![Value::Long(1), Value::Long(2)]);
        assert_eq!(t.splat_tuple(), vec![Value::Long(1), Value::Long(2)]);
        assert_eq!(Value::Long(3).splat_tuple(), vec![Value::Long(3)]);
    }

    #[test]
    fn display_is_readable() {
        let t = Value::tuple(vec![Value::Long(1), Value::str("x")]);
        assert_eq!(t.to_string(), "(1, \"x\")");
    }
}
