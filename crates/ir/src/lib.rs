//! # matryoshka-ir
//!
//! The **parsing phase** of Matryoshka's two-phase flattening (SIGMOD 2021,
//! Sec. 4.1), as an explicit program transformation: an embedded
//! nested-parallel language (the role Emma plays in the paper), a rewriter
//! that makes nesting explicit by inserting the `GroupByKeyIntoNestedBag`
//! and `MapWithLiftedUdf` primitives and extracting closures, and a lowering
//! interpreter that executes the rewritten program on the flat engine
//! through `matryoshka-core`'s lifted operations.
//!
//! ```
//! use matryoshka_ir::ast::{Expr, Lambda};
//! use matryoshka_ir::{parsing_phase, Dialect, Lowering, RtVal, Value};
//! use matryoshka_core::MatryoshkaConfig;
//! use matryoshka_engine::Engine;
//! use std::collections::HashMap;
//!
//! // visitsPerDay.map { g => (g.key, count(g.inner)) } -- nested-parallel.
//! let program = Expr::Map(
//!     Box::new(Expr::GroupByKey(Box::new(Expr::Source("visits".into())))),
//!     Lambda::new("g", Expr::Tuple(vec![
//!         Expr::proj(Expr::var("g"), 0),
//!         Expr::Count(Box::new(Expr::proj(Expr::var("g"), 1))),
//!     ])),
//! );
//!
//! // Phase 1 (compile time): insert the nesting primitives.
//! let parsed = parsing_phase(&program, &["visits"], Dialect::Matryoshka).unwrap();
//! assert!(matches!(parsed, Expr::MapWithLiftedUdf { .. }));
//!
//! // Phase 2 (runtime): lower onto the engine.
//! let engine = Engine::local();
//! let visits = engine.parallelize(
//!     vec![
//!         Value::tuple(vec![Value::Long(1), Value::Long(10)]),
//!         Value::tuple(vec![Value::Long(1), Value::Long(11)]),
//!         Value::tuple(vec![Value::Long(2), Value::Long(12)]),
//!     ],
//!     2,
//! );
//! let lowering = Lowering::new(engine, MatryoshkaConfig::optimized());
//! let out = lowering.run(&parsed, &HashMap::from([("visits".to_string(), visits)])).unwrap();
//! let mut rows = match out { RtVal::Bag(b) => b.collect().unwrap(), _ => panic!() };
//! rows.sort();
//! assert_eq!(rows, vec![
//!     Value::tuple(vec![Value::Long(1), Value::Long(2)]),
//!     Value::tuple(vec![Value::Long(2), Value::Long(1)]),
//! ]);
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod ast;
pub mod compile;
mod error;
mod lower;
mod parse;
mod prepare;
pub mod pretty;
pub mod syntax;
mod value;

pub use analyze::{
    analyze, check, Analysis, Diagnostic, Diagnostics, ScalarKind, Severity, Ty, UdfSummary,
};
pub use compile::CompiledUdf;
pub use error::{IrError, IrResult};
pub use lower::{apply_bin, apply_un, eval_pure, Lowering, RtVal};
pub use parse::{parsing_phase, shape_of, Dialect, Shape};
pub use prepare::{prepare_program, PrepareError, PreparedProgram};
pub use syntax::{parse_program, ParseError};
pub use value::Value;
