//! The **parsing phase** (paper Sec. 4.1.1): compile-time rewriting of a
//! nested-parallel program into one whose nesting is explicit.
//!
//! Operating on the program as data (the paper uses Scala macros; here the
//! AST is explicit), this phase:
//!
//! 1. runs a *shape analysis* distinguishing scalar-, bag- and nested-bag-
//!    typed expressions;
//! 2. rewrites `GroupByKey` into the `GroupByKeyIntoNestedBag` primitive
//!    (the only flat-to-nested producer, Sec. 7 case 2);
//! 3. rewrites every `Map` whose UDF contains bag operations — and every
//!    `Map` over a nested bag — into `MapWithLiftedUdf` (Sec. 7 cases 1+3);
//! 4. makes closures explicit: the free variables a lifted UDF captures are
//!    recorded on the primitive (Sec. 5);
//! 5. validates the completeness preconditions of Theorem 1 (no bags inside
//!    tuples, no bag operations inside aggregation UDFs) and the dialect's
//!    restrictions (a DIQL-like dialect rejects control flow inside lifted
//!    UDFs, reproducing the limitation the paper evaluates in Sec. 9.4).
//!
//! Control flow needs no syntactic change here because the AST's `Loop` is
//! already the higher-order functional form of Sec. 6.1; the lowering phase
//! gives it lifted semantics inside lifted UDFs.

use std::collections::HashMap;

use crate::ast::{Expr, Lambda};
use crate::error::{IrError, IrResult};

/// Which flattening system's capabilities to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dialect {
    /// Full Matryoshka: lifts control flow at inner nesting levels.
    Matryoshka,
    /// DIQL/MRQL-like: flattening, but no control flow inside lifted UDFs
    /// (Sec. 9.1: "DIQL does not support control flow statements in the
    /// inner levels").
    DiqlLike,
}

/// Shapes assigned by the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// A scalar (non-bag) value, including tuples of scalars.
    Scalar,
    /// A flat bag.
    Bag,
    /// A nested bag (`Bag[(K, Bag[V])]`, conceptually).
    Nested,
}

/// Infer the shape of `e` under `env` (variable shapes).
pub fn shape_of(e: &Expr, env: &HashMap<String, Shape>) -> IrResult<Shape> {
    Ok(match e {
        Expr::Spanned(_, inner) => shape_of(inner, env)?,
        Expr::Const(_) | Expr::Bin(..) | Expr::Un(..) | Expr::Count(_) | Expr::Fold(..) => {
            Shape::Scalar
        }
        Expr::Proj(inner, _) => {
            // Projections apply to scalar tuples only.
            match shape_of(inner, env)? {
                Shape::Scalar => Shape::Scalar,
                other => {
                    return Err(IrError::Type(format!(
                        "projection on a {other:?}-shaped expression"
                    )))
                }
            }
        }
        Expr::Var(n) => *env.get(n).ok_or_else(|| IrError::Unbound(n.clone()))?,
        Expr::Tuple(items) => {
            for it in items {
                if shape_of(it, env)? != Shape::Scalar {
                    // Theorem 1 precondition: bags do not appear inside
                    // other data structures.
                    return Err(IrError::Unsupported(
                        "bags may not appear inside tuples (Sec. 7 precondition)".into(),
                    ));
                }
            }
            Shape::Scalar
        }
        Expr::Let(n, v, b) => {
            let sv = shape_of(v, env)?;
            let mut env2 = env.clone();
            env2.insert(n.clone(), sv);
            shape_of(b, &env2)?
        }
        Expr::If(_, t, e2) => {
            let st = shape_of(t, env)?;
            let se = shape_of(e2, env)?;
            if st != se {
                return Err(IrError::Type(format!(
                    "if branches have different shapes: {st:?} vs {se:?}"
                )));
            }
            st
        }
        Expr::Loop { init, cond: _, step: _, result } => {
            let mut env2 = env.clone();
            for (n, x) in init {
                let s = shape_of(x, &env2)?;
                env2.insert(n.clone(), s);
            }
            shape_of(result, &env2)?
        }
        Expr::Cache(x) => shape_of(x, env)?,
        Expr::Source(_)
        | Expr::Map(..)
        | Expr::Filter(..)
        | Expr::FlatMapTuple(..)
        | Expr::ReduceByKey(..)
        | Expr::Join(..)
        | Expr::Distinct(..)
        | Expr::Union(..)
        | Expr::MapWithLiftedUdf { .. } => Shape::Bag,
        Expr::GroupByKey(_) | Expr::GroupByKeyIntoNestedBag(_) => Shape::Nested,
    })
}

/// Run the parsing phase: rewrite `program` into its explicitly-nested form.
///
/// `sources` names the input bags (everything else referenced free is an
/// error). The result uses only constructs the lowering phase executes
/// directly.
///
/// The static analyzer ([`crate::analyze::check`]) gates the rewrite:
/// ill-typed programs are rejected here, with `MAT0xx` diagnostics, before
/// any engine job can launch.
pub fn parsing_phase(program: &Expr, sources: &[&str], dialect: Dialect) -> IrResult<Expr> {
    crate::analyze::check(program, sources, dialect)?;
    let mut env: HashMap<String, Shape> = HashMap::new();
    for s in sources {
        env.insert(s.to_string(), Shape::Bag);
    }
    let rewritten = rewrite(program, &env, dialect, false)?;
    // Final validation sweep.
    validate(&rewritten, dialect)?;
    Ok(rewritten)
}

fn rewrite(
    e: &Expr,
    env: &HashMap<String, Shape>,
    dialect: Dialect,
    inside_lifted: bool,
) -> IrResult<Expr> {
    Ok(match e {
        Expr::Spanned(sp, inner) => {
            Expr::Spanned(*sp, Box::new(rewrite(inner, env, dialect, inside_lifted)?))
        }
        Expr::Const(_) | Expr::Var(_) | Expr::Source(_) => e.clone(),
        Expr::Tuple(items) => Expr::Tuple(
            items
                .iter()
                .map(|x| rewrite(x, env, dialect, inside_lifted))
                .collect::<IrResult<_>>()?,
        ),
        Expr::Proj(x, i) => Expr::Proj(Box::new(rewrite(x, env, dialect, inside_lifted)?), *i),
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(rewrite(a, env, dialect, inside_lifted)?),
            Box::new(rewrite(b, env, dialect, inside_lifted)?),
        ),
        Expr::Un(op, a) => Expr::Un(*op, Box::new(rewrite(a, env, dialect, inside_lifted)?)),
        Expr::Let(n, v, b) => {
            let rv = rewrite(v, env, dialect, inside_lifted)?;
            let sv = shape_of(&rv, env)?;
            let mut env2 = env.clone();
            env2.insert(n.clone(), sv);
            Expr::Let(n.clone(), Box::new(rv), Box::new(rewrite(b, &env2, dialect, inside_lifted)?))
        }
        Expr::If(c, t, el) => Expr::If(
            Box::new(rewrite(c, env, dialect, inside_lifted)?),
            Box::new(rewrite(t, env, dialect, inside_lifted)?),
            Box::new(rewrite(el, env, dialect, inside_lifted)?),
        ),
        Expr::Loop { init, cond, step, result } => {
            if inside_lifted && dialect == Dialect::DiqlLike {
                return Err(IrError::Unsupported(
                    "DIQL-like flattening does not support control flow at inner nesting levels"
                        .into(),
                ));
            }
            let mut env2 = env.clone();
            let mut new_init = Vec::with_capacity(init.len());
            for (n, x) in init {
                let rx = rewrite(x, &env2, dialect, inside_lifted)?;
                let s = shape_of(&rx, &env2)?;
                env2.insert(n.clone(), s);
                new_init.push((n.clone(), rx));
            }
            Expr::Loop {
                init: new_init,
                cond: Box::new(rewrite(cond, &env2, dialect, inside_lifted)?),
                step: step
                    .iter()
                    .map(|x| rewrite(x, &env2, dialect, inside_lifted))
                    .collect::<IrResult<_>>()?,
                result: Box::new(rewrite(result, &env2, dialect, inside_lifted)?),
            }
        }
        // The nested-bag producer becomes the nesting primitive (Sec. 4.5).
        Expr::GroupByKey(x) => {
            Expr::GroupByKeyIntoNestedBag(Box::new(rewrite(x, env, dialect, inside_lifted)?))
        }
        Expr::GroupByKeyIntoNestedBag(x) => {
            Expr::GroupByKeyIntoNestedBag(Box::new(rewrite(x, env, dialect, inside_lifted)?))
        }
        Expr::Map(input, udf) => {
            let rin = rewrite(input, env, dialect, inside_lifted)?;
            let in_shape = shape_of(&rin, env)?;
            let needs_lift = udf.body.contains_bag_ops() || in_shape == Shape::Nested;
            if needs_lift && !inside_lifted {
                // Lift: rewrite the UDF body in lifted context, record the
                // closures (free variables of the UDF, Sec. 5).
                let mut env2 = env.clone();
                env2.insert(udf.param.clone(), Shape::Scalar);
                let body = rewrite(&udf.body, &env2, dialect, true)?;
                let closures = crate::analyze::captures::capture_names(&body, &[&udf.param]);
                Expr::MapWithLiftedUdf {
                    input: Box::new(rin),
                    udf: Lambda { param: udf.param.clone(), body: body.into() },
                    closures,
                }
            } else if needs_lift && inside_lifted {
                return Err(IrError::Unsupported(
                    "more than two levels of parallel operations in the IR dialect \
                     (the typed API in matryoshka-core supports deeper nesting)"
                        .into(),
                ));
            } else {
                let mut env2 = env.clone();
                env2.insert(udf.param.clone(), Shape::Scalar);
                let body = rewrite(&udf.body, &env2, dialect, inside_lifted)?;
                Expr::Map(Box::new(rin), Lambda { param: udf.param.clone(), body: body.into() })
            }
        }
        Expr::Filter(input, udf) => {
            check_scalar_udf("filter", udf)?;
            Expr::Filter(Box::new(rewrite(input, env, dialect, inside_lifted)?), udf.clone())
        }
        Expr::FlatMapTuple(input, udf) => {
            check_scalar_udf("flatMap", udf)?;
            Expr::FlatMapTuple(Box::new(rewrite(input, env, dialect, inside_lifted)?), udf.clone())
        }
        Expr::ReduceByKey(input, l2) => {
            if l2.body.contains_bag_ops() {
                return Err(IrError::Unsupported(
                    "bag operations inside aggregation UDFs (Sec. 7 precondition)".into(),
                ));
            }
            Expr::ReduceByKey(Box::new(rewrite(input, env, dialect, inside_lifted)?), l2.clone())
        }
        Expr::Fold(input, zero, l2) => {
            if l2.body.contains_bag_ops() || zero.contains_bag_ops() {
                return Err(IrError::Unsupported(
                    "bag operations inside aggregation UDFs (Sec. 7 precondition)".into(),
                ));
            }
            Expr::Fold(
                Box::new(rewrite(input, env, dialect, inside_lifted)?),
                zero.clone(),
                l2.clone(),
            )
        }
        Expr::Join(a, b) => Expr::Join(
            Box::new(rewrite(a, env, dialect, inside_lifted)?),
            Box::new(rewrite(b, env, dialect, inside_lifted)?),
        ),
        Expr::Union(a, b) => Expr::Union(
            Box::new(rewrite(a, env, dialect, inside_lifted)?),
            Box::new(rewrite(b, env, dialect, inside_lifted)?),
        ),
        Expr::Distinct(x) => Expr::Distinct(Box::new(rewrite(x, env, dialect, inside_lifted)?)),
        Expr::Count(x) => Expr::Count(Box::new(rewrite(x, env, dialect, inside_lifted)?)),
        Expr::Cache(x) => Expr::Cache(Box::new(rewrite(x, env, dialect, inside_lifted)?)),
        Expr::MapWithLiftedUdf { input, udf, closures } => Expr::MapWithLiftedUdf {
            input: Box::new(rewrite(input, env, dialect, inside_lifted)?),
            udf: udf.clone(),
            closures: closures.clone(),
        },
    })
}

fn check_scalar_udf(op: &str, udf: &Lambda) -> IrResult<()> {
    if udf.body.contains_bag_ops() {
        return Err(IrError::Unsupported(format!(
            "bag operations inside a {op} UDF are eliminated by splitting in the paper \
             (Sec. 4.6); this IR requires them to be expressed as a map"
        )));
    }
    Ok(())
}

fn validate(e: &Expr, dialect: Dialect) -> IrResult<()> {
    let mut err: Option<IrError> = None;
    e.visit(&mut |node| {
        if err.is_some() {
            return;
        }
        if let Expr::MapWithLiftedUdf { udf, .. } = node {
            if dialect == Dialect::DiqlLike {
                let mut has_loop = false;
                udf.body.visit(&mut |n| {
                    if matches!(n, Expr::Loop { .. }) {
                        has_loop = true;
                    }
                });
                if has_loop {
                    err = Some(IrError::Unsupported(
                        "DIQL-like flattening does not support control flow at inner nesting levels"
                            .into(),
                    ));
                }
            }
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinOp;

    /// The bounce-rate program of the paper's Listing 1 (per-day groups,
    /// nested UDF with bag operations).
    pub fn bounce_rate_program() -> Expr {
        // visits: Bag[(day, ip)]
        let group = Expr::proj(Expr::var("g"), 1); // inner bag
        let counts = Expr::ReduceByKey(
            Box::new(Expr::Map(
                Box::new(group.clone()),
                Lambda::new("ip", Expr::Tuple(vec![Expr::var("ip"), Expr::long(1)])),
            )),
            crate::ast::Lambda2::new(
                "a",
                "b",
                Expr::bin(BinOp::Add, Expr::var("a"), Expr::var("b")),
            ),
        );
        let bounces = Expr::Count(Box::new(Expr::Filter(
            Box::new(counts),
            Lambda::new("kv", Expr::bin(BinOp::Eq, Expr::proj(Expr::var("kv"), 1), Expr::long(1))),
        )));
        let total = Expr::Count(Box::new(Expr::Distinct(Box::new(group))));
        let rate = Expr::bin(
            BinOp::Div,
            Expr::Un(crate::ast::UnOp::ToDouble, Box::new(bounces)),
            Expr::Un(crate::ast::UnOp::ToDouble, Box::new(total)),
        );
        Expr::Map(
            Box::new(Expr::GroupByKey(Box::new(Expr::Source("visits".into())))),
            Lambda::new("g", Expr::Tuple(vec![Expr::proj(Expr::var("g"), 0), rate])),
        )
    }

    #[test]
    fn group_by_becomes_nested_bag_primitive_and_map_is_lifted() {
        let parsed =
            parsing_phase(&bounce_rate_program(), &["visits"], Dialect::Matryoshka).unwrap();
        match &parsed {
            Expr::MapWithLiftedUdf { input, closures, .. } => {
                assert!(matches!(**input, Expr::GroupByKeyIntoNestedBag(_)));
                assert!(closures.is_empty(), "bounce rate has no closures");
            }
            other => panic!("expected MapWithLiftedUdf at top level, got {other:?}"),
        }
    }

    #[test]
    fn closures_are_made_explicit() {
        // let w = 2 in groupByKey(visits).map(g => w * count(g.1))
        let prog = Expr::let_(
            "w",
            Expr::long(2),
            Expr::Map(
                Box::new(Expr::GroupByKey(Box::new(Expr::Source("visits".into())))),
                Lambda::new(
                    "g",
                    Expr::bin(
                        BinOp::Mul,
                        Expr::var("w"),
                        Expr::Count(Box::new(Expr::proj(Expr::var("g"), 1))),
                    ),
                ),
            ),
        );
        let parsed = parsing_phase(&prog, &["visits"], Dialect::Matryoshka).unwrap();
        let mut found = false;
        parsed.visit(&mut |n| {
            if let Expr::MapWithLiftedUdf { closures, .. } = n {
                assert_eq!(closures, &vec!["w".to_string()]);
                found = true;
            }
        });
        assert!(found);
    }

    #[test]
    fn diql_dialect_rejects_loops_inside_lifted_udfs() {
        // groupByKey(xs).map(g => loop over count(g.1))
        let prog = Expr::Map(
            Box::new(Expr::GroupByKey(Box::new(Expr::Source("xs".into())))),
            Lambda::new(
                "g",
                Expr::Loop {
                    init: vec![("i".into(), Expr::Count(Box::new(Expr::proj(Expr::var("g"), 1))))],
                    cond: Box::new(Expr::bin(BinOp::Gt, Expr::var("i"), Expr::long(0))),
                    step: vec![Expr::bin(BinOp::Sub, Expr::var("i"), Expr::long(1))],
                    result: Box::new(Expr::var("i")),
                },
            ),
        );
        assert!(parsing_phase(&prog, &["xs"], Dialect::Matryoshka).is_ok());
        // The analyzer rejects it before the rewriter runs (MAT009).
        let err = parsing_phase(&prog, &["xs"], Dialect::DiqlLike).unwrap_err();
        assert!(matches!(err, IrError::Analysis(_)), "{err:?}");
        assert!(err.to_string().contains("control flow at inner nesting levels"), "{err}");
    }

    #[test]
    fn aggregation_udfs_with_bag_ops_are_rejected() {
        let prog = Expr::ReduceByKey(
            Box::new(Expr::Source("xs".into())),
            crate::ast::Lambda2::new("a", "b", Expr::Count(Box::new(Expr::Source("ys".into())))),
        );
        // Statically rejected (MAT006) before any engine job launches.
        let err = parsing_phase(&prog, &["xs", "ys"], Dialect::Matryoshka).unwrap_err();
        assert!(matches!(err, IrError::Analysis(_)), "{err:?}");
        assert!(err.to_string().contains("aggregation UDFs"), "{err}");
    }

    #[test]
    fn tuples_of_bags_are_rejected() {
        let prog = Expr::Tuple(vec![Expr::long(1), Expr::Source("xs".into())]);
        // Shape analysis rejects on demand.
        let mut env = HashMap::new();
        env.insert("xs".to_string(), Shape::Bag);
        assert!(matches!(shape_of(&prog, &env), Err(IrError::Unsupported(_))));
    }

    #[test]
    fn plain_maps_stay_unlifted() {
        let prog = Expr::Map(
            Box::new(Expr::Source("xs".into())),
            Lambda::new("x", Expr::bin(BinOp::Add, Expr::var("x"), Expr::long(1))),
        );
        let parsed = parsing_phase(&prog, &["xs"], Dialect::Matryoshka).unwrap();
        assert!(matches!(parsed, Expr::Map(..)));
    }

    #[test]
    fn three_level_nesting_in_ir_is_rejected_with_pointer_to_typed_api() {
        // groupByKey(xs).map(g => groupByKey(g.1).map(h => count(h.1)) ...)
        let inner_map = Expr::Map(
            Box::new(Expr::GroupByKey(Box::new(Expr::proj(Expr::var("g"), 1)))),
            Lambda::new("h", Expr::Count(Box::new(Expr::proj(Expr::var("h"), 1)))),
        );
        let prog = Expr::Map(
            Box::new(Expr::GroupByKey(Box::new(Expr::Source("xs".into())))),
            Lambda::new("g", Expr::Count(Box::new(inner_map))),
        );
        let err = parsing_phase(&prog, &["xs"], Dialect::Matryoshka).unwrap_err();
        assert!(err.to_string().contains("typed API"));
    }
}
