//! Errors of the parsing phase and the lowering interpreter.

use std::fmt;

/// Errors raised while flattening or executing a nested-parallel program.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// The program is ill-typed (e.g. a projection on a scalar).
    Type(String),
    /// An unbound variable or input name.
    Unbound(String),
    /// The program violates a precondition of the flattening procedure
    /// (Theorem 1's assumptions: no bags inside other data structures, no
    /// bag operations inside aggregation UDFs) or uses a feature the chosen
    /// dialect rejects (DIQL-like dialects reject inner control flow).
    Unsupported(String),
    /// The underlying engine failed (simulated OOM, etc.).
    Engine(matryoshka_engine::EngineError),
    /// The static analyzer ([`crate::analyze()`]) rejected the program before
    /// lowering: one or more error-severity `MAT0xx` diagnostics.
    Analysis(crate::analyze::Diagnostics),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Type(m) => write!(f, "type error: {m}"),
            IrError::Unbound(n) => write!(f, "unbound name: {n}"),
            IrError::Unsupported(m) => write!(f, "unsupported program: {m}"),
            IrError::Engine(e) => write!(f, "engine error: {e}"),
            IrError::Analysis(d) => write!(f, "analysis rejected the program: {d}"),
        }
    }
}

impl std::error::Error for IrError {}

impl From<matryoshka_engine::EngineError> for IrError {
    fn from(e: matryoshka_engine::EngineError) -> Self {
        IrError::Engine(e)
    }
}

/// Convenience alias.
pub type IrResult<T> = Result<T, IrError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_converts() {
        let e: IrError = matryoshka_engine::EngineError::Unsupported("x".into()).into();
        assert!(e.to_string().contains("engine error"));
        assert!(IrError::Unbound("v".into()).to_string().contains('v'));
    }
}
