//! The **lowering phase** (paper Sec. 4.1.2): executing the explicitly
//! nested program produced by the parsing phase, resolving the nesting
//! primitives to flat operations of the engine via `matryoshka-core` — with
//! the runtime optimizer's physical choices (Sec. 8) applied by that crate.
//!
//! The interpreter runs in two modes. *Driver mode* evaluates ordinary
//! expressions over engine bags. When it reaches a `MapWithLiftedUdf`, it
//! evaluates the UDF body **once** in *lifted mode*, where every value is an
//! `InnerScalar`/`InnerBag` and every operation is the lifted operation:
//! scalars become tag-joined bags (Sec. 4.3), bags become tagged flat bags
//! (Sec. 4.4), loops become the lifted do-while (Sec. 6.2), closures become
//! tag joins or half-lifted cross products (Sec. 5, 8.3).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use matryoshka_core::{
    group_by_key_into_nested_bag, lifted_while, InnerBag, InnerScalar, LiftedData, LiftingContext,
    MatryoshkaConfig, NestedBag,
};
use matryoshka_engine::{Bag, Engine, EngineError};

use crate::ast::{BinOp, Expr, Lambda, Lambda2, UnOp};
use crate::compile::CompiledUdf;
use crate::error::{IrError, IrResult};
use crate::value::Value;

/// A runtime value in driver mode.
#[derive(Clone)]
pub enum RtVal {
    /// A driver-side scalar.
    Scalar(Value),
    /// A flat distributed bag.
    Bag(Bag<Value>),
    /// A flattened nested bag.
    Nested(NestedBag<Value, Value, Value>),
}

impl std::fmt::Debug for RtVal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtVal::Scalar(v) => write!(f, "Scalar({v})"),
            RtVal::Bag(_) => write!(f, "Bag(..)"),
            RtVal::Nested(_) => write!(f, "Nested(..)"),
        }
    }
}

/// A runtime value in lifted mode.
#[derive(Clone)]
enum LVal {
    Scalar(InnerScalar<Value, Value>),
    Bag(InnerBag<Value, Value>),
    /// The `(outer, inner)` parameter of a lifted UDF over a NestedBag.
    Pair(Box<LVal>, Box<LVal>),
    /// A closure from the driver environment, not yet lifted.
    Driver(RtVal),
}

/// Executes parsed programs on an engine.
pub struct Lowering {
    engine: Engine,
    config: MatryoshkaConfig,
    /// Per-body closure-capture memo (see [`Lowering::memo_capture_names`]).
    captures_memo: Mutex<HashMap<usize, CachedCaptures>>,
}

/// One memoized capture set, keyed by the body's `Arc` pointer.
struct CachedCaptures {
    /// Pins the body alive so the pointer key can never be reused by a
    /// different (dropped-and-reallocated) expression.
    _body: Arc<Expr>,
    /// The skip list the set was computed under (re-verified on each hit).
    skip: Vec<String>,
    names: Arc<Vec<String>>,
}

type Env = HashMap<String, RtVal>;
type LEnv = HashMap<String, LVal>;
type PureEnv = HashMap<String, Value>;

/// Evaluate a scalar-only expression over plain values (used inside engine
/// UDF closures, where the parsing phase guarantees no bag operations
/// remain). Loops and conditionals over scalars are allowed.
///
/// This is the *reference* interpreter: per-record UDF hot paths run
/// slot-compiled programs instead ([`crate::compile::CompiledUdf`]), with
/// this function kept as the differential-testing oracle and as the
/// `MatryoshkaConfig::interpret_udfs` ablation path.
pub fn eval_pure(e: &Expr, env: &PureEnv) -> IrResult<Value> {
    let mut scratch = env.clone();
    eval_pure_mut(e, &mut scratch)
}

/// [`eval_pure`] over a mutable environment: each binder inserts in place
/// and restores the shadowed value on scope exit, instead of cloning the
/// whole map per binding (which made deep `let`-chains quadratic).
pub(crate) fn eval_pure_mut(e: &Expr, env: &mut PureEnv) -> IrResult<Value> {
    Ok(match e {
        Expr::Spanned(_, inner) => eval_pure_mut(inner, env)?,
        Expr::Const(v) => v.clone(),
        Expr::Var(n) => env.get(n).cloned().ok_or_else(|| IrError::Unbound(n.clone()))?,
        Expr::Tuple(items) => {
            Value::tuple(items.iter().map(|x| eval_pure_mut(x, env)).collect::<IrResult<_>>()?)
        }
        Expr::Proj(x, i) => eval_pure_mut(x, env)?.proj(*i)?,
        Expr::Bin(op, a, b) => {
            let av = eval_pure_mut(a, env)?;
            let bv = eval_pure_mut(b, env)?;
            apply_bin(*op, &av, &bv)?
        }
        Expr::Un(op, a) => apply_un(*op, &eval_pure_mut(a, env)?)?,
        Expr::Let(n, v, b) => {
            let bound = eval_pure_mut(v, env)?;
            let saved = env.insert(n.clone(), bound);
            let r = eval_pure_mut(b, env);
            restore(env, n, saved);
            r?
        }
        Expr::If(c, t, el) => {
            if eval_pure_mut(c, env)?.as_bool()? {
                eval_pure_mut(t, env)?
            } else {
                eval_pure_mut(el, env)?
            }
        }
        Expr::Loop { init, cond, step, result } => {
            let mut saved = Vec::with_capacity(init.len());
            let r = eval_pure_loop(init, cond, step, result, env, &mut saved);
            // Unwind in reverse so duplicated loop-variable names restore
            // to the outermost shadowed value, even when `r` is an error.
            for (n, old) in saved.into_iter().rev() {
                restore(env, n, old);
            }
            r?
        }
        // A materialization hint on a scalar is the identity (nothing to
        // cache: scalar evaluation is already by-value).
        Expr::Cache(x) => eval_pure_mut(x, env)?,
        other => {
            return Err(IrError::Unsupported(format!(
                "bag operation in a scalar-only context: {other:?}"
            )))
        }
    })
}

/// Undo one scoped binding: put back the shadowed value, or remove.
fn restore(env: &mut PureEnv, name: &str, saved: Option<Value>) {
    match saved {
        Some(old) => {
            env.insert(name.to_string(), old);
        }
        None => {
            env.remove(name);
        }
    }
}

/// The body of a scalar loop; every binding it performs is recorded in
/// `saved` so the caller can unwind the scope on success *and* on error.
fn eval_pure_loop<'a>(
    init: &'a [(String, Expr)],
    cond: &Expr,
    step: &[Expr],
    result: &Expr,
    env: &mut PureEnv,
    saved: &mut Vec<(&'a str, Option<Value>)>,
) -> IrResult<Value> {
    for (n, x) in init {
        let v = eval_pure_mut(x, env)?;
        saved.push((n, env.insert(n.clone(), v)));
    }
    while eval_pure_mut(cond, env)?.as_bool()? {
        let next: Vec<Value> =
            step.iter().map(|x| eval_pure_mut(x, env)).collect::<IrResult<_>>()?;
        for ((n, _), v) in init.iter().zip(next) {
            env.insert(n.clone(), v);
        }
    }
    eval_pure_mut(result, env)
}

/// Apply a binary scalar operator.
pub fn apply_bin(op: BinOp, a: &Value, b: &Value) -> IrResult<Value> {
    Ok(match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul => match (a, b) {
            (Value::Long(x), Value::Long(y)) => Value::Long(match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                _ => x * y,
            }),
            _ => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                Value::Double(match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    _ => x * y,
                })
            }
        },
        BinOp::Div => Value::Double(a.as_f64()? / b.as_f64()?),
        BinOp::Eq => Value::Bool(a == b),
        BinOp::Lt => Value::Bool(a.as_f64()? < b.as_f64()?),
        BinOp::Gt => Value::Bool(a.as_f64()? > b.as_f64()?),
        BinOp::And => Value::Bool(a.as_bool()? && b.as_bool()?),
        BinOp::Or => Value::Bool(a.as_bool()? || b.as_bool()?),
    })
}

/// Apply a unary scalar operator.
pub fn apply_un(op: UnOp, a: &Value) -> IrResult<Value> {
    Ok(match op {
        UnOp::Not => Value::Bool(!a.as_bool()?),
        UnOp::Neg => match a {
            Value::Long(x) => Value::Long(-x),
            _ => Value::Double(-a.as_f64()?),
        },
        UnOp::ToDouble => Value::Double(a.as_f64()?),
    })
}

/// Split a bag of 2-tuples into engine `(key, value)` pairs.
fn pairize(bag: &Bag<Value>) -> Bag<(Value, Value)> {
    bag.map(|v| {
        let k = v.proj(0).expect("pair-shaped record expected (parsing phase admits (k, v) bags)");
        let w = v.proj(1).expect("pair-shaped record");
        (k, w)
    })
}

fn unpairize(bag: &Bag<(Value, Value)>) -> Bag<Value> {
    bag.map(|(k, v)| Value::tuple(vec![k.clone(), v.clone()]))
}

/// Resolve capture names against the lifted environment: every name must be
/// a plain scalar (goes into the pure env) or a lifted scalar (returned
/// separately for the tag join).
fn resolve_lifted_captures(
    names: &[String],
    lenv: &LEnv,
) -> IrResult<(PureEnv, Vec<(String, InnerScalar<Value, Value>)>)> {
    let mut pure = PureEnv::new();
    let mut lifted = Vec::new();
    for name in names {
        match lenv.get(name) {
            Some(LVal::Scalar(s)) => lifted.push((name.clone(), s.clone())),
            Some(LVal::Driver(RtVal::Scalar(v))) => {
                pure.insert(name.clone(), v.clone());
            }
            Some(other) => {
                let kind = match other {
                    LVal::Bag(_) => "an inner bag",
                    LVal::Pair(..) => "a nested value",
                    LVal::Driver(_) => "a driver bag",
                    LVal::Scalar(_) => unreachable!(),
                };
                return Err(IrError::Unsupported(format!(
                    "UDF captures {kind} ({name}); only scalars can be captured by leaf UDFs"
                )));
            }
            None => return Err(IrError::Unbound(name.clone())),
        }
    }
    Ok((pure, lifted))
}

/// Resolve capture names against the driver environment: every name must be
/// a scalar.
fn resolve_driver_captures(names: &[String], env: &Env) -> IrResult<PureEnv> {
    let mut pure = PureEnv::new();
    for name in names {
        match env.get(name) {
            Some(RtVal::Scalar(v)) => {
                pure.insert(name.clone(), v.clone());
            }
            Some(_) => {
                return Err(IrError::Unsupported(format!(
                    "UDF captures the bag {name}; nested bag use requires lifting \
                     (run the parsing phase)"
                )))
            }
            None => return Err(IrError::Unbound(name.clone())),
        }
    }
    Ok(pure)
}

/// Zip several lifted scalars into one whose values are tuples (so a single
/// tag join delivers all closure values, like the paper's single
/// `mapWithClosure` argument).
fn combine_scalars(scalars: &[(String, InnerScalar<Value, Value>)]) -> InnerScalar<Value, Value> {
    let mut iter = scalars.iter();
    let (_, first) = iter.next().expect("at least one lifted closure");
    let mut combined = first.map(|v| Value::tuple(vec![v.clone()]));
    for (_, s) in iter {
        combined = combined.zip_with(s, |t, v| {
            let mut items = match t {
                Value::Tuple(xs) => xs.as_ref().clone(),
                _ => unreachable!("combined closure is a tuple"),
            };
            items.push(v.clone());
            Value::tuple(items)
        });
    }
    combined
}

fn to_engine_err(e: IrError) -> EngineError {
    match e {
        IrError::Engine(e) => e,
        other => EngineError::InvalidPlan(other.to_string()),
    }
}

/// Loop state for lifted `Loop`s: a vector of lifted values.
#[derive(Clone)]
struct LState(Vec<LStateItem>);

#[derive(Clone)]
enum LStateItem {
    S(InnerScalar<Value, Value>),
    B(InnerBag<Value, Value>),
}

impl LiftedData<Value> for LState {
    fn ctx(&self) -> &LiftingContext<Value> {
        match self.0.first().expect("loop has at least one variable") {
            LStateItem::S(s) => s.ctx(),
            LStateItem::B(b) => b.ctx(),
        }
    }
    fn filter_by_cond(
        &self,
        cond: &InnerScalar<Value, bool>,
        keep: bool,
        new_ctx: &LiftingContext<Value>,
    ) -> Self {
        LState(
            self.0
                .iter()
                .map(|it| match it {
                    LStateItem::S(s) => LStateItem::S(s.filter_by_cond(cond, keep, new_ctx)),
                    LStateItem::B(b) => LStateItem::B(b.filter_by_cond(cond, keep, new_ctx)),
                })
                .collect(),
        )
    }
    fn union_with(&self, other: &Self) -> Self {
        LState(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| match (a, b) {
                    (LStateItem::S(x), LStateItem::S(y)) => LStateItem::S(x.union_with(y)),
                    (LStateItem::B(x), LStateItem::B(y)) => LStateItem::B(x.union_with(y)),
                    _ => unreachable!("loop variable shapes are stable"),
                })
                .collect(),
        )
    }
    fn with_ctx(&self, ctx: &LiftingContext<Value>) -> Self {
        LState(
            self.0
                .iter()
                .map(|it| match it {
                    LStateItem::S(s) => LStateItem::S(LiftedData::with_ctx(s, ctx)),
                    LStateItem::B(b) => LStateItem::B(LiftedData::with_ctx(b, ctx)),
                })
                .collect(),
        )
    }
    fn checkpoint(&self) -> Self {
        LState(
            self.0
                .iter()
                .map(|it| match it {
                    LStateItem::S(s) => LStateItem::S(LiftedData::checkpoint(s)),
                    LStateItem::B(b) => LStateItem::B(LiftedData::checkpoint(b)),
                })
                .collect(),
        )
    }
}

impl Lowering {
    /// Create a lowering over `engine` with the given optimizer config.
    pub fn new(engine: Engine, config: MatryoshkaConfig) -> Lowering {
        Lowering { engine, config, captures_memo: Mutex::new(HashMap::new()) }
    }

    /// Closure capture names for a UDF body, memoized per `Arc`'d body node:
    /// lifted loops re-lower the same bodies every iteration, and every
    /// operator consults its UDF's capture set — so the free-variable walk
    /// runs once per distinct body and is reused. The cached entry pins the
    /// `Arc` so a pointer key can never be reused by a different expression,
    /// and records the skip list it was computed under.
    fn memo_capture_names(&self, body: &Arc<Expr>, skip: &[&str]) -> Arc<Vec<String>> {
        let key = Arc::as_ptr(body) as usize;
        let mut memo = self.captures_memo.lock().expect("captures memo poisoned");
        if let Some(c) = memo.get(&key) {
            if c.skip.iter().map(String::as_str).eq(skip.iter().copied()) {
                return Arc::clone(&c.names);
            }
        }
        let names = Arc::new(crate::analyze::captures::capture_names(body, skip));
        memo.insert(
            key,
            CachedCaptures {
                _body: Arc::clone(body),
                skip: skip.iter().map(|s| s.to_string()).collect(),
                names: Arc::clone(&names),
            },
        );
        names
    }

    /// Memoized capture split for lifted-mode UDFs.
    fn split_captures(
        &self,
        body: &Arc<Expr>,
        skip: &[&str],
        lenv: &LEnv,
    ) -> IrResult<(PureEnv, Vec<(String, InnerScalar<Value, Value>)>)> {
        resolve_lifted_captures(&self.memo_capture_names(body, skip), lenv)
    }

    /// Memoized capture resolution for driver-mode UDFs (scalars only).
    fn driver_captures(&self, body: &Arc<Expr>, skip: &[&str], env: &Env) -> IrResult<PureEnv> {
        resolve_driver_captures(&self.memo_capture_names(body, skip), env)
    }

    /// Compile a UDF body once per lowering site for per-record evaluation;
    /// `MatryoshkaConfig::interpret_udfs` forces the interpreted path (the
    /// `udf_eval` ablation arm).
    fn compile_udf(
        &self,
        body: &Arc<Expr>,
        params: &[&str],
        captures: PureEnv,
    ) -> Arc<CompiledUdf> {
        Arc::new(CompiledUdf::new(body, params, captures, self.config.interpret_udfs))
    }

    /// Compile a two-parameter combiner (reduceByKey/fold; captures are
    /// empty — aggregation UDFs close over nothing, validated at parse).
    fn compile_udf2(&self, l2: &Lambda2) -> Arc<CompiledUdf> {
        self.compile_udf(&l2.body, &[&l2.a, &l2.b], PureEnv::new())
    }

    /// Compile a lifted-closure UDF: parameter 0 is the lambda's own
    /// parameter, parameters 1.. are the lifted capture names, delivered per
    /// record as one combined tuple ([`CompiledUdf::eval_with_combined`]).
    fn compile_combined(
        &self,
        udf: &Lambda,
        lifted: &[(String, InnerScalar<Value, Value>)],
        pure: PureEnv,
    ) -> Arc<CompiledUdf> {
        let mut params: Vec<&str> = Vec::with_capacity(1 + lifted.len());
        params.push(&udf.param);
        params.extend(lifted.iter().map(|(n, _)| n.as_str()));
        self.compile_udf(&udf.body, &params, pure)
    }

    /// Execute a parsed program. `inputs` binds the program's `Source`
    /// names to engine bags.
    ///
    /// When plan rewrites are enabled in the config (they are off by
    /// default), the program first runs through
    /// [`crate::analyze::plan::rewrite_plan`] and each applied rewrite is
    /// recorded in the engine's decision log under the `plan_rewrite` site.
    pub fn run(&self, program: &Expr, inputs: &HashMap<String, Bag<Value>>) -> IrResult<RtVal> {
        if self.config.plan.enabled {
            let rewritten = crate::analyze::plan::rewrite_plan(program, &self.config.plan);
            for r in &rewritten.rewrites {
                self.engine.record_decision("plan_rewrite", r.code, 0, 0, r.to_string());
            }
            return self.eval(&rewritten.expr, &Env::new(), inputs);
        }
        self.eval(program, &Env::new(), inputs)
    }

    fn eval(&self, e: &Expr, env: &Env, inputs: &HashMap<String, Bag<Value>>) -> IrResult<RtVal> {
        Ok(match e {
            Expr::Spanned(_, inner) => self.eval(inner, env, inputs)?,
            Expr::Const(v) => RtVal::Scalar(v.clone()),
            Expr::Var(n) => env.get(n).cloned().ok_or_else(|| IrError::Unbound(n.clone()))?,
            Expr::Source(n) => RtVal::Bag(
                inputs.get(n).cloned().ok_or_else(|| IrError::Unbound(format!("source {n}")))?,
            ),
            Expr::Tuple(items) => {
                let vals: Vec<Value> = items
                    .iter()
                    .map(|x| match self.eval(x, env, inputs)? {
                        RtVal::Scalar(v) => Ok(v),
                        _ => Err(IrError::Unsupported("bag inside tuple".into())),
                    })
                    .collect::<IrResult<_>>()?;
                RtVal::Scalar(Value::tuple(vals))
            }
            Expr::Proj(x, i) => match self.eval(x, env, inputs)? {
                RtVal::Scalar(v) => RtVal::Scalar(v.proj(*i)?),
                _ => return Err(IrError::Type("projection on a bag".into())),
            },
            Expr::Bin(op, a, b) => {
                let (a, b) = (self.scalar(a, env, inputs)?, self.scalar(b, env, inputs)?);
                RtVal::Scalar(apply_bin(*op, &a, &b)?)
            }
            Expr::Un(op, a) => RtVal::Scalar(apply_un(*op, &self.scalar(a, env, inputs)?)?),
            Expr::Let(n, v, b) => {
                let rv = self.eval(v, env, inputs)?;
                let mut env2 = env.clone();
                env2.insert(n.clone(), rv);
                self.eval(b, &env2, inputs)?
            }
            Expr::If(c, t, el) => {
                if self.scalar(c, env, inputs)?.as_bool()? {
                    self.eval(t, env, inputs)?
                } else {
                    self.eval(el, env, inputs)?
                }
            }
            Expr::Loop { init, cond, step, result } => {
                let mut env2 = env.clone();
                let names: Vec<&String> = init.iter().map(|(n, _)| n).collect();
                for (n, x) in init {
                    let v = self.eval(x, &env2, inputs)?;
                    env2.insert(n.clone(), v);
                }
                while self.scalar(cond, &env2, inputs)?.as_bool()? {
                    let next: Vec<RtVal> = step
                        .iter()
                        .map(|x| self.eval(x, &env2, inputs))
                        .collect::<IrResult<_>>()?;
                    for (n, v) in names.iter().zip(next) {
                        env2.insert((*n).clone(), v);
                    }
                }
                self.eval(result, &env2, inputs)?
            }
            Expr::Map(input, udf) => {
                let bag = self.bag(input, env, inputs)?;
                let pure = self.driver_captures(&udf.body, &[&udf.param], env)?;
                let f = self.compile_udf(&udf.body, &[&udf.param], pure);
                RtVal::Bag(
                    bag.map(move |v| {
                        f.eval1(v).expect("scalar UDF evaluation (validated at parse)")
                    }),
                )
            }
            Expr::Filter(input, udf) => {
                let bag = self.bag(input, env, inputs)?;
                let pure = self.driver_captures(&udf.body, &[&udf.param], env)?;
                let f = self.compile_udf(&udf.body, &[&udf.param], pure);
                RtVal::Bag(bag.filter(move |v| {
                    f.eval1(v)
                        .and_then(|v| v.as_bool())
                        .expect("boolean filter UDF (validated at parse)")
                }))
            }
            Expr::FlatMapTuple(input, udf) => {
                let bag = self.bag(input, env, inputs)?;
                let pure = self.driver_captures(&udf.body, &[&udf.param], env)?;
                let f = self.compile_udf(&udf.body, &[&udf.param], pure);
                RtVal::Bag(bag.flat_map(move |v| f.eval1(v).expect("scalar UDF").splat_tuple()))
            }
            Expr::GroupByKey(_) => {
                return Err(IrError::Unsupported(
                    "raw groupByKey cannot execute; run the parsing phase first \
                     (it becomes groupByKeyIntoNestedBag)"
                        .into(),
                ))
            }
            Expr::GroupByKeyIntoNestedBag(x) => {
                let bag = self.bag(x, env, inputs)?;
                RtVal::Nested(group_by_key_into_nested_bag(
                    &self.engine,
                    &pairize(&bag),
                    self.config.clone(),
                )?)
            }
            Expr::ReduceByKey(x, l2) => {
                let bag = self.bag(x, env, inputs)?;
                let f = self.compile_udf2(l2);
                RtVal::Bag(unpairize(&pairize(&bag).reduce_by_key(move |a, b| {
                    f.eval2(a, b).expect("scalar aggregation UDF (validated at parse)")
                })))
            }
            Expr::Join(a, b) => {
                let (a, b) = (self.bag(a, env, inputs)?, self.bag(b, env, inputs)?);
                RtVal::Bag(pairize(&a).join(&pairize(&b)).map(|(k, (v, w))| {
                    Value::tuple(vec![k.clone(), Value::tuple(vec![v.clone(), w.clone()])])
                }))
            }
            Expr::Union(a, b) => {
                RtVal::Bag(self.bag(a, env, inputs)?.union(&self.bag(b, env, inputs)?))
            }
            Expr::Distinct(x) => RtVal::Bag(self.bag(x, env, inputs)?.distinct()),
            Expr::Count(x) => match self.eval(x, env, inputs)? {
                RtVal::Bag(b) => RtVal::Scalar(Value::Long(b.count()? as i64)),
                RtVal::Nested(nb) => RtVal::Scalar(Value::Long(nb.ctx().size() as i64)),
                RtVal::Scalar(_) => return Err(IrError::Type("count of a scalar".into())),
            },
            Expr::Fold(x, zero, l2) => {
                let bag = self.bag(x, env, inputs)?;
                let z = self.scalar(zero, env, inputs)?;
                let f = self.compile_udf2(l2);
                RtVal::Scalar(bag.fold(z, move |acc, v| {
                    f.eval2(&acc, v).expect("scalar aggregation UDF (validated at parse)")
                })?)
            }
            Expr::MapWithLiftedUdf { input, udf, closures } => {
                self.eval_map_with_lifted_udf(input, udf, closures, env, inputs)?
            }
            // Explicit materialization hint (inserted by the plan-rewrite
            // pass or written as `cache(e)`): a dedicated engine node whose
            // memoized partitions every consumer shares, and a fusion
            // barrier so narrow chains cannot recompute the parent.
            Expr::Cache(x) => match self.eval(x, env, inputs)? {
                RtVal::Bag(b) => RtVal::Bag(b.cache()),
                other => other,
            },
        })
    }

    fn scalar(&self, e: &Expr, env: &Env, inputs: &HashMap<String, Bag<Value>>) -> IrResult<Value> {
        match self.eval(e, env, inputs)? {
            RtVal::Scalar(v) => Ok(v),
            _ => Err(IrError::Type("expected a scalar".into())),
        }
    }

    fn bag(
        &self,
        e: &Expr,
        env: &Env,
        inputs: &HashMap<String, Bag<Value>>,
    ) -> IrResult<Bag<Value>> {
        match self.eval(e, env, inputs)? {
            RtVal::Bag(b) => Ok(b),
            _ => Err(IrError::Type("expected a flat bag".into())),
        }
    }

    /// `mapWithLiftedUDF`: invoke the UDF once, in lifted mode (Sec. 4.2).
    fn eval_map_with_lifted_udf(
        &self,
        input: &Expr,
        udf: &Lambda,
        closures: &[String],
        env: &Env,
        inputs: &HashMap<String, Bag<Value>>,
    ) -> IrResult<RtVal> {
        let (ctx, param_val) = match self.eval(input, env, inputs)? {
            RtVal::Nested(nb) => {
                let ctx = nb.ctx().clone();
                let pv = LVal::Pair(
                    Box::new(LVal::Scalar(nb.outer().clone())),
                    Box::new(LVal::Bag(nb.inner().clone())),
                );
                (ctx, pv)
            }
            RtVal::Bag(b) => {
                // Non-nested input: tags via zipWithUniqueId (Sec. 4.3).
                let tagged =
                    b.zip_with_unique_id().map(|(v, id)| (Value::Long(*id as i64), v.clone()));
                let tags = tagged.map(|(t, _)| t.clone());
                let ctx = LiftingContext::counted(self.engine.clone(), tags, self.config.clone())?;
                (ctx.clone(), LVal::Scalar(InnerScalar::from_repr(tagged, ctx)))
            }
            RtVal::Scalar(_) => return Err(IrError::Type("mapWithLiftedUDF over a scalar".into())),
        };
        let mut lenv = LEnv::new();
        lenv.insert(udf.param.clone(), param_val);
        for name in closures {
            let v = env.get(name).cloned().ok_or_else(|| IrError::Unbound(name.clone()))?;
            lenv.insert(name.clone(), LVal::Driver(v));
        }
        match self.eval_lifted(&udf.body, &lenv, &ctx, inputs)? {
            // A scalar-valued UDF: the map's result is the bag of per-tag
            // results.
            LVal::Scalar(s) => Ok(RtVal::Bag(s.repr().map(|(_, v)| v.clone()))),
            LVal::Pair(a, b) => {
                let s = self.pair_to_scalar(LVal::Pair(a, b), &ctx)?;
                Ok(RtVal::Bag(s.repr().map(|(_, v)| v.clone())))
            }
            // A bag-valued UDF: the result is nested again.
            LVal::Bag(b) => Ok(RtVal::Nested(NestedBag::from_parts(ctx.tags_scalar(), b))),
            LVal::Driver(_) => Err(IrError::Type("lifted UDF returned a driver value".into())),
        }
    }

    fn pair_to_scalar(
        &self,
        v: LVal,
        ctx: &LiftingContext<Value>,
    ) -> IrResult<InnerScalar<Value, Value>> {
        match v {
            LVal::Scalar(s) => Ok(s),
            LVal::Driver(RtVal::Scalar(x)) => Ok(ctx.constant(x)),
            LVal::Pair(a, b) => {
                let a = self.pair_to_scalar(*a, ctx)?;
                let b = self.pair_to_scalar(*b, ctx)?;
                Ok(a.zip_with(&b, |x, y| Value::tuple(vec![x.clone(), y.clone()])))
            }
            LVal::Bag(_) => Err(IrError::Type("an inner bag where a scalar is needed".into())),
            LVal::Driver(_) => Err(IrError::Type("a driver bag where a scalar is needed".into())),
        }
    }

    fn eval_lifted(
        &self,
        e: &Expr,
        lenv: &LEnv,
        ctx: &LiftingContext<Value>,
        inputs: &HashMap<String, Bag<Value>>,
    ) -> IrResult<LVal> {
        Ok(match e {
            Expr::Spanned(_, inner) => self.eval_lifted(inner, lenv, ctx, inputs)?,
            // A literal inside a lifted UDF is the lifted-UDF closure case
            // of Sec. 5.2: replicate per tag.
            Expr::Const(v) => LVal::Scalar(ctx.constant(v.clone())),
            Expr::Var(n) => {
                let v = lenv.get(n).cloned().ok_or_else(|| IrError::Unbound(n.clone()))?;
                match v {
                    LVal::Driver(RtVal::Scalar(x)) => LVal::Scalar(ctx.constant(x)),
                    other => other,
                }
            }
            // A source read inside a lifted UDF is a driver-side bag
            // closure (the hyperparameter-optimization shape of Sec. 2.3):
            // consumed via half-lifted operations.
            Expr::Source(n) => LVal::Driver(RtVal::Bag(
                inputs.get(n).cloned().ok_or_else(|| IrError::Unbound(format!("source {n}")))?,
            )),
            Expr::Tuple(items) => {
                let parts: Vec<InnerScalar<Value, Value>> = items
                    .iter()
                    .map(|x| {
                        let v = self.eval_lifted(x, lenv, ctx, inputs)?;
                        self.pair_to_scalar(v, ctx)
                    })
                    .collect::<IrResult<_>>()?;
                let mut iter = parts.into_iter();
                let first = iter
                    .next()
                    .ok_or_else(|| IrError::Type("empty tuple".into()))?
                    .map(|v| Value::tuple(vec![v.clone()]));
                let combined = iter.fold(first, |acc, s| {
                    acc.zip_with(&s, |t, v| {
                        let mut items = match t {
                            Value::Tuple(xs) => xs.as_ref().clone(),
                            _ => unreachable!(),
                        };
                        items.push(v.clone());
                        Value::tuple(items)
                    })
                });
                LVal::Scalar(combined)
            }
            Expr::Proj(x, i) => match self.eval_lifted(x, lenv, ctx, inputs)? {
                LVal::Pair(a, b) => match i {
                    0 => *a,
                    1 => *b,
                    _ => return Err(IrError::Type("nested pair has two components".into())),
                },
                LVal::Scalar(s) => {
                    let i = *i;
                    LVal::Scalar(s.map(move |v| v.proj(i).expect("lifted projection")))
                }
                _ => return Err(IrError::Type("projection on an inner bag".into())),
            },
            Expr::Bin(op, a, b) => {
                // binaryScalarOp (Sec. 4.3): a tag join.
                let a = self.lifted_scalar(a, lenv, ctx, inputs)?;
                let b = self.lifted_scalar(b, lenv, ctx, inputs)?;
                let op = *op;
                LVal::Scalar(
                    a.zip_with(&b, move |x, y| apply_bin(op, x, y).expect("lifted scalar op")),
                )
            }
            Expr::Un(op, a) => {
                // unaryScalarOp (Sec. 4.3): a tagged map.
                let a = self.lifted_scalar(a, lenv, ctx, inputs)?;
                let op = *op;
                LVal::Scalar(a.map(move |x| apply_un(op, x).expect("lifted scalar op")))
            }
            Expr::Let(n, v, b) => {
                let rv = self.eval_lifted(v, lenv, ctx, inputs)?;
                let mut lenv2 = lenv.clone();
                lenv2.insert(n.clone(), rv);
                self.eval_lifted(b, &lenv2, ctx, inputs)?
            }
            Expr::If(c, t, el) => {
                // Lifted if over pure expressions: evaluate both branches
                // for all tags and select per tag (Sec. 6.2; selection is
                // equivalent to the join+filter routing because the language
                // is side-effect free).
                let c = self.lifted_scalar(c, lenv, ctx, inputs)?;
                let t = self.lifted_scalar(t, lenv, ctx, inputs)?;
                let el = self.lifted_scalar(el, lenv, ctx, inputs)?;
                let picked = c
                    .zip_with(&t, |c, t| Value::tuple(vec![c.clone(), t.clone()]))
                    .zip_with(&el, |ct, e| {
                        let c = ct.proj(0).expect("cond");
                        if c.as_bool().expect("boolean condition") {
                            ct.proj(1).expect("then")
                        } else {
                            e.clone()
                        }
                    });
                LVal::Scalar(picked)
            }
            Expr::Loop { init, cond, step, result } => {
                self.eval_lifted_loop(init, cond, step, result, lenv, ctx, inputs)?
            }
            Expr::Map(input, udf) => {
                let inp = self.eval_lifted(input, lenv, ctx, inputs)?;
                let (pure, lifted) = self.split_captures(&udf.body, &[&udf.param], lenv)?;
                match inp {
                    LVal::Bag(b) if lifted.is_empty() => {
                        let f = self.compile_udf(&udf.body, &[&udf.param], pure);
                        LVal::Bag(b.map(move |v| f.eval1(v).expect("lifted map UDF")))
                    }
                    // mapWithClosure (Sec. 5.1): the UDF reads lifted
                    // scalars -> tag join. The compiled UDF binds the joined
                    // closure tuple's components as parameters 1.. .
                    LVal::Bag(b) => {
                        let combined = combine_scalars(&lifted);
                        let f = self.compile_combined(udf, &lifted, pure);
                        LVal::Bag(b.map_with_scalar(&combined, move |v, c| {
                            f.eval_with_combined(v, c).expect("mapWithClosure UDF")
                        }))
                    }
                    // Half-lifted mapWithClosure (Sec. 5.2/8.3): mapping a
                    // *driver* bag with lifted closures is a cross product.
                    LVal::Driver(RtVal::Bag(db)) if !lifted.is_empty() => {
                        let combined = combine_scalars(&lifted);
                        let f = self.compile_combined(udf, &lifted, pure);
                        LVal::Bag(combined.cross_with_bag(&db, move |_t, c, p| {
                            Some(f.eval_with_combined(p, c).expect("half-lifted UDF"))
                        })?)
                    }
                    LVal::Driver(RtVal::Bag(db)) => {
                        // No lifted state involved: stays a driver map.
                        let f = self.compile_udf(&udf.body, &[&udf.param], pure);
                        LVal::Driver(RtVal::Bag(
                            db.map(move |v| f.eval1(v).expect("driver map UDF")),
                        ))
                    }
                    _ => return Err(IrError::Type("map over a non-bag".into())),
                }
            }
            Expr::Filter(input, udf) => {
                let b = self.lifted_bag(input, lenv, ctx, inputs)?;
                let (pure, lifted) = self.split_captures(&udf.body, &[&udf.param], lenv)?;
                if lifted.is_empty() {
                    let f = self.compile_udf(&udf.body, &[&udf.param], pure);
                    LVal::Bag(
                        b.filter(move |v| {
                            f.eval1(v).and_then(|v| v.as_bool()).expect("filter UDF")
                        }),
                    )
                } else {
                    let combined = combine_scalars(&lifted);
                    let f = self.compile_combined(udf, &lifted, pure);
                    LVal::Bag(b.filter_with_scalar(&combined, move |v, c| {
                        f.eval_with_combined(v, c).and_then(|v| v.as_bool()).expect("filter UDF")
                    }))
                }
            }
            Expr::FlatMapTuple(input, udf) => {
                let b = self.lifted_bag(input, lenv, ctx, inputs)?;
                let (pure, lifted) = self.split_captures(&udf.body, &[&udf.param], lenv)?;
                if !lifted.is_empty() {
                    return Err(IrError::Unsupported(
                        "flatMap with lifted closures is not supported in the IR dialect".into(),
                    ));
                }
                let f = self.compile_udf(&udf.body, &[&udf.param], pure);
                LVal::Bag(b.flat_map(move |v| f.eval1(v).expect("flatMap UDF").splat_tuple()))
            }
            Expr::ReduceByKey(input, l2) => {
                // Lifted reduceByKey: composite (tag, key) re-keying
                // (Sec. 4.4) via the typed layer.
                let b = self.lifted_bag(input, lenv, ctx, inputs)?;
                let f = self.compile_udf2(l2);
                let pairs =
                    b.map(|v| (v.proj(0).expect("(k,v) record"), v.proj(1).expect("(k,v) record")));
                let reduced = pairs.reduce_by_key(move |a, b| {
                    f.eval2(a, b).expect("scalar aggregation UDF (validated at parse)")
                });
                LVal::Bag(reduced.map(|(k, v)| Value::tuple(vec![k.clone(), v.clone()])))
            }
            Expr::Join(a, b) => {
                let left = self.eval_lifted(a, lenv, ctx, inputs)?;
                let right = self.eval_lifted(b, lenv, ctx, inputs)?;
                match (left, right) {
                    (LVal::Bag(l), LVal::Bag(r)) => {
                        let lp = l.map(|v| (v.proj(0).expect("pair"), v.proj(1).expect("pair")));
                        let rp = r.map(|v| (v.proj(0).expect("pair"), v.proj(1).expect("pair")));
                        LVal::Bag(lp.join(&rp).map(|(k, (v, w))| {
                            Value::tuple(vec![k.clone(), Value::tuple(vec![v.clone(), w.clone()])])
                        }))
                    }
                    // Half-lifted join (Sec. 5.2): InnerBag x driver bag.
                    (LVal::Bag(l), LVal::Driver(RtVal::Bag(r))) => {
                        let lp = l.map(|v| (v.proj(0).expect("pair"), v.proj(1).expect("pair")));
                        LVal::Bag(lp.half_lifted_join(&pairize(&r)).map(|(k, (v, w))| {
                            Value::tuple(vec![k.clone(), Value::tuple(vec![v.clone(), w.clone()])])
                        }))
                    }
                    _ => return Err(IrError::Unsupported(
                        "lifted join requires inner bags (left) and inner or driver bags (right)"
                            .into(),
                    )),
                }
            }
            Expr::Union(a, b) => {
                let a = self.lifted_bag(a, lenv, ctx, inputs)?;
                let b = self.lifted_bag(b, lenv, ctx, inputs)?;
                LVal::Bag(a.union(&b))
            }
            Expr::Distinct(x) => LVal::Bag(self.lifted_bag(x, lenv, ctx, inputs)?.distinct()),
            Expr::Count(x) => match self.eval_lifted(x, lenv, ctx, inputs)? {
                LVal::Bag(b) => LVal::Scalar(InnerScalar::from_repr(
                    b.count().repr().map(|(t, n)| (t.clone(), Value::Long(*n as i64))),
                    b.ctx().clone(),
                )),
                LVal::Driver(RtVal::Bag(db)) => {
                    LVal::Scalar(ctx.constant(Value::Long(db.count()? as i64)))
                }
                _ => return Err(IrError::Type("count of a non-bag".into())),
            },
            Expr::Fold(x, zero, l2) => {
                let b = self.lifted_bag(x, lenv, ctx, inputs)?;
                // The zero is evaluated once (not per record): the plain
                // capture walk + interpreter is the right tool here.
                let zero_names = crate::analyze::captures::capture_names(zero, &[]);
                let (pure, lifted) = resolve_lifted_captures(&zero_names, lenv)?;
                if !lifted.is_empty() {
                    return Err(IrError::Unsupported("fold zero must not be lifted".into()));
                }
                let z = eval_pure(zero, &pure)?;
                let f = self.compile_udf2(l2);
                let g = Arc::clone(&f);
                let folded = b.fold(
                    z,
                    move |a, v| f.eval2(a, v).expect("scalar aggregation UDF (validated at parse)"),
                    move |a, b| g.eval2(a, b).expect("scalar aggregation UDF (validated at parse)"),
                );
                LVal::Scalar(folded)
            }
            // Lifted materialization hint: cache the tagged representation
            // bag, so every consumer (and every loop iteration whose
            // environment carries this value) shares one evaluation.
            Expr::Cache(x) => match self.eval_lifted(x, lenv, ctx, inputs)? {
                LVal::Scalar(s) => {
                    LVal::Scalar(InnerScalar::from_repr(s.repr().cache(), s.ctx().clone()))
                }
                LVal::Bag(b) => LVal::Bag(InnerBag::from_repr(b.repr().cache(), b.ctx().clone())),
                LVal::Driver(RtVal::Bag(db)) => LVal::Driver(RtVal::Bag(db.cache())),
                other => other,
            },
            Expr::GroupByKey(_)
            | Expr::GroupByKeyIntoNestedBag(_)
            | Expr::MapWithLiftedUdf { .. } => {
                return Err(IrError::Unsupported(
                    "more than two levels of parallel operations in the IR dialect \
                     (the typed API in matryoshka-core supports deeper nesting)"
                        .into(),
                ))
            }
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_lifted_loop(
        &self,
        init: &[(String, Expr)],
        cond: &Expr,
        step: &[Expr],
        result: &Expr,
        lenv: &LEnv,
        ctx: &LiftingContext<Value>,
        inputs: &HashMap<String, Bag<Value>>,
    ) -> IrResult<LVal> {
        // Evaluate initializers and gather the loop state (Sec. 6.2: loop
        // variables become InnerScalars/InnerBags).
        let mut lenv2 = lenv.clone();
        let mut items = Vec::with_capacity(init.len());
        for (n, x) in init {
            let v = self.eval_lifted(x, &lenv2, ctx, inputs)?;
            let item = match v {
                LVal::Scalar(s) => LStateItem::S(s),
                LVal::Bag(b) => LStateItem::B(b),
                LVal::Driver(RtVal::Scalar(x)) => LStateItem::S(ctx.constant(x)),
                _ => {
                    return Err(IrError::Unsupported(
                        "lifted loop variables must be scalars or inner bags".into(),
                    ))
                }
            };
            lenv2.insert(
                n.clone(),
                match &item {
                    LStateItem::S(s) => LVal::Scalar(s.clone()),
                    LStateItem::B(b) => LVal::Bag(b.clone()),
                },
            );
            items.push(item);
        }
        let names: Vec<String> = init.iter().map(|(n, _)| n.clone()).collect();
        let state0 = LState(items);
        let this = self;
        let final_state = lifted_while(
            &state0,
            |state: &LState| {
                let mut env = lenv.clone();
                for (n, item) in names.iter().zip(&state.0) {
                    env.insert(
                        n.clone(),
                        match item {
                            LStateItem::S(s) => LVal::Scalar(s.clone()),
                            LStateItem::B(b) => LVal::Bag(b.clone()),
                        },
                    );
                }
                let mut next = Vec::with_capacity(step.len());
                for x in step {
                    let v = this.eval_lifted(x, &env, ctx, inputs).map_err(to_engine_err)?;
                    next.push(match v {
                        LVal::Scalar(s) => LStateItem::S(s),
                        LVal::Bag(b) => LStateItem::B(b),
                        _ => {
                            return Err(to_engine_err(IrError::Unsupported(
                                "lifted loop step must produce scalars or inner bags".into(),
                            )))
                        }
                    });
                }
                // The condition is evaluated on the *new* variable values
                // (do-while semantics, Listing 4).
                let mut env2 = lenv.clone();
                for (n, item) in names.iter().zip(&next) {
                    env2.insert(
                        n.clone(),
                        match item {
                            LStateItem::S(s) => LVal::Scalar(s.clone()),
                            LStateItem::B(b) => LVal::Bag(b.clone()),
                        },
                    );
                }
                let c = this.lifted_scalar(cond, &env2, ctx, inputs).map_err(to_engine_err)?;
                let cond_bool = InnerScalar::from_repr(
                    c.repr().map(|(t, v)| (t.clone(), v.as_bool().expect("loop condition"))),
                    c.ctx().clone(),
                );
                Ok((LState(next), cond_bool))
            },
            Some(10_000),
        )?;
        let mut env = lenv.clone();
        for (n, item) in names.iter().zip(&final_state.0) {
            env.insert(
                n.clone(),
                match item {
                    LStateItem::S(s) => LVal::Scalar(s.clone()),
                    LStateItem::B(b) => LVal::Bag(b.clone()),
                },
            );
        }
        self.eval_lifted(result, &env, ctx, inputs)
    }

    fn lifted_scalar(
        &self,
        e: &Expr,
        lenv: &LEnv,
        ctx: &LiftingContext<Value>,
        inputs: &HashMap<String, Bag<Value>>,
    ) -> IrResult<InnerScalar<Value, Value>> {
        let v = self.eval_lifted(e, lenv, ctx, inputs)?;
        self.pair_to_scalar(v, ctx)
    }

    fn lifted_bag(
        &self,
        e: &Expr,
        lenv: &LEnv,
        ctx: &LiftingContext<Value>,
        inputs: &HashMap<String, Bag<Value>>,
    ) -> IrResult<InnerBag<Value, Value>> {
        match self.eval_lifted(e, lenv, ctx, inputs)? {
            LVal::Bag(b) => Ok(b),
            _ => Err(IrError::Type("expected an inner bag".into())),
        }
    }
}
