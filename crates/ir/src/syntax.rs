//! A concrete text syntax for the nested-parallel language: tokenizer and
//! recursive-descent parser producing [`crate::ast::Expr`].
//!
//! The paper embeds its language (Emma) in Scala; this front-end gives the
//! Rust reproduction an equivalent surface so programs can be written as
//! text, run through the parsing phase, and lowered — see the
//! `two_phase_flattening` example. Grammar (expression-oriented):
//!
//! ```text
//! expr    := "let" ident "=" expr "in" expr
//!          | "if" expr "then" expr "else" expr
//!          | "loop" "(" ident "=" expr {"," ident "=" expr} ")"
//!            "while" expr "do" "(" expr {"," expr} ")" "yield" expr
//!          | or
//! or      := and { "||" and }
//! and     := cmp { "&&" cmp }
//! cmp     := add [ ("==" | "<" | ">") add ]
//! add     := mul { ("+" | "-") mul }
//! mul     := unary { ("*" | "/") unary }
//! unary   := "-" unary | "!" unary | postfix
//! postfix := primary { "." nat }                  -- tuple projection
//! primary := nat | float | "true" | "false" | ident
//!          | "(" expr { "," expr } ")"            -- parens / tuples
//!          | builtin "(" args ")"
//! builtin := source | map | filter | flatMap | groupByKey | reduceByKey
//!          | join | distinct | union | count | fold | toDouble | cache
//! lambda  := ident "=>" expr
//! lambda2 := "(" ident "," ident ")" "=>" expr
//! ```
//!
//! `map(b, x => e)`, `filter(b, x => e)`, `flatMap(b, x => e)`,
//! `reduceByKey(b, (a, c) => e)`, `fold(b, zero, (a, c) => e)`,
//! `join(a, b)`, `union(a, b)`, `groupByKey(b)`, `distinct(b)`,
//! `count(b)`, `source(name)`, `toDouble(e)`, `cache(b)` (explicit
//! materialization hint; normally inserted by the plan-rewrite pass).

use std::fmt;

use crate::ast::{BinOp, Expr, Lambda, Lambda2, Span, UnOp};
use crate::value::Value;

/// A parse error with a byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the error was detected.
    pub at: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Sym(&'static str),
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            // Line comments: `//` to end of line.
            if self.pos + 1 < self.src.len() && &self.src[self.pos..self.pos + 2] == b"//" {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            break;
        }
    }

    fn tokens(mut self) -> Result<Vec<(usize, usize, Tok)>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if self.pos >= self.src.len() {
                break;
            }
            let start = self.pos;
            let c = self.src[self.pos];
            let tok = if c.is_ascii_alphabetic() || c == b'_' {
                while self.pos < self.src.len()
                    && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                Tok::Ident(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
            } else if c.is_ascii_digit() {
                while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
                if self.pos < self.src.len()
                    && self.src[self.pos] == b'.'
                    && self.pos + 1 < self.src.len()
                    && self.src[self.pos + 1].is_ascii_digit()
                {
                    self.pos += 1;
                    while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                        self.pos += 1;
                    }
                    let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                    Tok::Float(text.parse().map_err(|_| ParseError {
                        at: start,
                        message: format!("bad float literal {text}"),
                    })?)
                } else {
                    let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                    Tok::Int(text.parse().map_err(|_| ParseError {
                        at: start,
                        message: format!("bad integer literal {text}"),
                    })?)
                }
            } else if c == b'"' {
                self.pos += 1;
                let s0 = self.pos;
                while self.pos < self.src.len() && self.src[self.pos] != b'"' {
                    self.pos += 1;
                }
                if self.pos >= self.src.len() {
                    return Err(ParseError { at: start, message: "unterminated string".into() });
                }
                let s = String::from_utf8_lossy(&self.src[s0..self.pos]).into_owned();
                self.pos += 1;
                Tok::Str(s)
            } else {
                // Multi-char symbols first.
                let two = if self.pos + 1 < self.src.len() {
                    &self.src[self.pos..self.pos + 2]
                } else {
                    &self.src[self.pos..self.pos + 1]
                };
                let sym: &'static str = match two {
                    b"=>" => "=>",
                    b"==" => "==",
                    b"&&" => "&&",
                    b"||" => "||",
                    _ => match c {
                        b'(' => "(",
                        b')' => ")",
                        b',' => ",",
                        b'.' => ".",
                        b'+' => "+",
                        b'-' => "-",
                        b'*' => "*",
                        b'/' => "/",
                        b'<' => "<",
                        b'>' => ">",
                        b'=' => "=",
                        b'!' => "!",
                        _ => {
                            return Err(ParseError {
                                at: start,
                                message: format!("unexpected character {:?}", c as char),
                            })
                        }
                    },
                };
                self.pos += sym.len();
                Tok::Sym(sym)
            };
            out.push((start, self.pos, tok));
        }
        Ok(out)
    }
}

struct Parser {
    toks: Vec<(usize, usize, Tok)>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|(_, _, t)| t)
    }

    fn at(&self) -> usize {
        self.toks
            .get(self.i)
            .map(|(p, _, _)| *p)
            .unwrap_or_else(|| self.toks.last().map(|(_, e, _)| *e).unwrap_or(0))
    }

    /// End offset of the most recently consumed token (the exclusive end of
    /// whatever was parsed so far).
    fn prev_end(&self) -> usize {
        if self.i == 0 {
            0
        } else {
            self.toks.get(self.i - 1).map(|(_, e, _)| *e).unwrap_or(0)
        }
    }

    /// Wrap `e` with the byte span from `lo` to the last consumed token,
    /// unless it is already wrapped with that exact span.
    fn spanned(&self, lo: usize, e: Expr) -> Expr {
        let sp = Span::new(lo, self.prev_end());
        match &e {
            Expr::Spanned(existing, _) if *existing == sp => e,
            _ => Expr::Spanned(sp, Box::new(e)),
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { at: self.at(), message: message.into() })
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).map(|(_, _, t)| t.clone());
        self.i += 1;
        t
    }

    fn eat_sym(&mut self, s: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Tok::Sym(x)) if *x == s => {
                self.i += 1;
                Ok(())
            }
            other => self.err(format!("expected `{s}`, found {other:?}")),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Tok::Ident(x)) if x == kw => {
                self.i += 1;
                Ok(())
            }
            other => self.err(format!("expected keyword `{kw}`, found {other:?}")),
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(x)) if x == kw)
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(x)) => Ok(x),
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let lo = self.at();
        if self.peek_kw("let") {
            self.eat_kw("let")?;
            let name = self.ident()?;
            self.eat_sym("=")?;
            let value = self.expr()?;
            self.eat_kw("in")?;
            let body = self.expr()?;
            return Ok(self.spanned(lo, Expr::Let(name, Box::new(value), Box::new(body))));
        }
        if self.peek_kw("if") {
            self.eat_kw("if")?;
            let c = self.expr()?;
            self.eat_kw("then")?;
            let t = self.expr()?;
            self.eat_kw("else")?;
            let e = self.expr()?;
            return Ok(self.spanned(lo, Expr::If(Box::new(c), Box::new(t), Box::new(e))));
        }
        if self.peek_kw("loop") {
            self.eat_kw("loop")?;
            self.eat_sym("(")?;
            let mut init = Vec::new();
            loop {
                let n = self.ident()?;
                self.eat_sym("=")?;
                let v = self.expr()?;
                init.push((n, v));
                if matches!(self.peek(), Some(Tok::Sym(","))) {
                    self.i += 1;
                } else {
                    break;
                }
            }
            self.eat_sym(")")?;
            self.eat_kw("while")?;
            let cond = self.expr()?;
            self.eat_kw("do")?;
            self.eat_sym("(")?;
            let mut step = vec![self.expr()?];
            while matches!(self.peek(), Some(Tok::Sym(","))) {
                self.i += 1;
                step.push(self.expr()?);
            }
            self.eat_sym(")")?;
            self.eat_kw("yield")?;
            let result = self.expr()?;
            if step.len() != init.len() {
                return self.err(format!(
                    "loop has {} variables but {} step expressions",
                    init.len(),
                    step.len()
                ));
            }
            return Ok(self.spanned(
                lo,
                Expr::Loop { init, cond: Box::new(cond), step, result: Box::new(result) },
            ));
        }
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let lo = self.at();
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), Some(Tok::Sym("||"))) {
            self.i += 1;
            let rhs = self.and_expr()?;
            lhs = self.spanned(lo, Expr::bin(BinOp::Or, lhs, rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let lo = self.at();
        let mut lhs = self.cmp_expr()?;
        while matches!(self.peek(), Some(Tok::Sym("&&"))) {
            self.i += 1;
            let rhs = self.cmp_expr()?;
            lhs = self.spanned(lo, Expr::bin(BinOp::And, lhs, rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lo = self.at();
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Tok::Sym("==")) => Some(BinOp::Eq),
            Some(Tok::Sym("<")) => Some(BinOp::Lt),
            Some(Tok::Sym(">")) => Some(BinOp::Gt),
            _ => None,
        };
        if let Some(op) = op {
            self.i += 1;
            let rhs = self.add_expr()?;
            Ok(self.spanned(lo, Expr::bin(op, lhs, rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let lo = self.at();
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Sym("+")) => BinOp::Add,
                Some(Tok::Sym("-")) => BinOp::Sub,
                _ => break,
            };
            self.i += 1;
            let rhs = self.mul_expr()?;
            lhs = self.spanned(lo, Expr::bin(op, lhs, rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let lo = self.at();
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Sym("*")) => BinOp::Mul,
                Some(Tok::Sym("/")) => BinOp::Div,
                _ => break,
            };
            self.i += 1;
            let rhs = self.unary_expr()?;
            lhs = self.spanned(lo, Expr::bin(op, lhs, rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        let lo = self.at();
        match self.peek() {
            Some(Tok::Sym("-")) => {
                self.i += 1;
                let inner = self.unary_expr()?;
                Ok(self.spanned(lo, Expr::Un(UnOp::Neg, Box::new(inner))))
            }
            Some(Tok::Sym("!")) => {
                self.i += 1;
                let inner = self.unary_expr()?;
                Ok(self.spanned(lo, Expr::Un(UnOp::Not, Box::new(inner))))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let lo = self.at();
        let mut e = self.primary()?;
        while matches!(self.peek(), Some(Tok::Sym("."))) {
            self.i += 1;
            match self.bump() {
                Some(Tok::Int(i)) if i >= 0 => {
                    e = self.spanned(lo, Expr::Proj(Box::new(e), i as usize))
                }
                other => {
                    return self.err(format!("expected tuple index after `.`, found {other:?}"))
                }
            }
        }
        Ok(e)
    }

    fn lambda(&mut self) -> Result<Lambda, ParseError> {
        let p = self.ident()?;
        self.eat_sym("=>")?;
        let body = self.expr()?;
        Ok(Lambda::new(&p, body))
    }

    fn lambda2(&mut self) -> Result<Lambda2, ParseError> {
        self.eat_sym("(")?;
        let a = self.ident()?;
        self.eat_sym(",")?;
        let b = self.ident()?;
        self.eat_sym(")")?;
        self.eat_sym("=>")?;
        let body = self.expr()?;
        Ok(Lambda2::new(&a, &b, body))
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let lo = self.at();
        let e = self.primary_inner()?;
        Ok(self.spanned(lo, e))
    }

    fn primary_inner(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Int(i)) => {
                self.i += 1;
                Ok(Expr::Const(Value::Long(i)))
            }
            Some(Tok::Float(x)) => {
                self.i += 1;
                Ok(Expr::Const(Value::Double(x)))
            }
            Some(Tok::Str(s)) => {
                self.i += 1;
                Ok(Expr::Const(Value::str(&s)))
            }
            Some(Tok::Sym("(")) => {
                self.i += 1;
                let mut items = vec![self.expr()?];
                while matches!(self.peek(), Some(Tok::Sym(","))) {
                    self.i += 1;
                    items.push(self.expr()?);
                }
                self.eat_sym(")")?;
                if items.len() == 1 {
                    Ok(items.pop().expect("one item"))
                } else {
                    Ok(Expr::Tuple(items))
                }
            }
            Some(Tok::Ident(name)) => {
                // Builtins take call syntax; plain identifiers are variables.
                let is_call = matches!(self.toks.get(self.i + 1), Some((_, _, Tok::Sym("("))));
                if !is_call {
                    match name.as_str() {
                        "true" => {
                            self.i += 1;
                            return Ok(Expr::Const(Value::Bool(true)));
                        }
                        "false" => {
                            self.i += 1;
                            return Ok(Expr::Const(Value::Bool(false)));
                        }
                        _ => {
                            self.i += 1;
                            return Ok(Expr::var(&name));
                        }
                    }
                }
                self.i += 1; // name
                self.eat_sym("(")?;
                let e = match name.as_str() {
                    "source" => {
                        let n = self.ident()?;
                        Expr::Source(n)
                    }
                    "toDouble" => Expr::Un(UnOp::ToDouble, Box::new(self.expr()?)),
                    "map" | "filter" | "flatMap" => {
                        let bag = self.expr()?;
                        self.eat_sym(",")?;
                        let l = self.lambda()?;
                        match name.as_str() {
                            "map" => Expr::Map(Box::new(bag), l),
                            "filter" => Expr::Filter(Box::new(bag), l),
                            _ => Expr::FlatMapTuple(Box::new(bag), l),
                        }
                    }
                    "reduceByKey" => {
                        let bag = self.expr()?;
                        self.eat_sym(",")?;
                        let l2 = self.lambda2()?;
                        Expr::ReduceByKey(Box::new(bag), l2)
                    }
                    "fold" => {
                        let bag = self.expr()?;
                        self.eat_sym(",")?;
                        let zero = self.expr()?;
                        self.eat_sym(",")?;
                        let l2 = self.lambda2()?;
                        Expr::Fold(Box::new(bag), Box::new(zero), l2)
                    }
                    "join" | "union" => {
                        let a = self.expr()?;
                        self.eat_sym(",")?;
                        let b = self.expr()?;
                        if name == "join" {
                            Expr::Join(Box::new(a), Box::new(b))
                        } else {
                            Expr::Union(Box::new(a), Box::new(b))
                        }
                    }
                    "groupByKey" => Expr::GroupByKey(Box::new(self.expr()?)),
                    "distinct" => Expr::Distinct(Box::new(self.expr()?)),
                    "count" => Expr::Count(Box::new(self.expr()?)),
                    "cache" => Expr::Cache(Box::new(self.expr()?)),
                    other => return self.err(format!("unknown function `{other}`")),
                };
                self.eat_sym(")")?;
                Ok(e)
            }
            other => self.err(format!("unexpected token {other:?}")),
        }
    }
}

/// Parse a program text into an AST.
pub fn parse_program(src: &str) -> Result<Expr, ParseError> {
    let toks = Lexer::new(src).tokens()?;
    let mut p = Parser { toks, i: 0 };
    let e = p.expr()?;
    if p.i != p.toks.len() {
        return p.err("trailing input after expression");
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_literals_and_arithmetic_with_precedence() {
        let e = parse_program("1 + 2 * 3").unwrap().strip_spans();
        // 1 + (2 * 3)
        match e {
            Expr::Bin(BinOp::Add, _, rhs) => assert!(matches!(*rhs, Expr::Bin(BinOp::Mul, _, _))),
            other => panic!("{other:?}"),
        }
        assert!(parse_program("1.5 / 2.0").is_ok());
        assert!(parse_program("true && !false || 1 < 2").is_ok());
    }

    #[test]
    fn parses_tuples_and_projections() {
        let e = parse_program("(1, 2, 3).1").unwrap().strip_spans();
        assert!(matches!(e, Expr::Proj(_, 1)));
        // Single parens are grouping, not tuples.
        assert!(matches!(parse_program("(1)").unwrap().strip_spans(), Expr::Const(_)));
    }

    #[test]
    fn parses_let_and_if() {
        let e = parse_program("let x = 2 in if x > 1 then x else 0").unwrap().strip_spans();
        assert!(matches!(e, Expr::Let(..)));
    }

    #[test]
    fn parses_loops() {
        let e = parse_program("loop (i = 0, acc = 1) while i < 5 do (i + 1, acc * 2) yield acc")
            .unwrap()
            .strip_spans();
        match e {
            Expr::Loop { init, step, .. } => {
                assert_eq!(init.len(), 2);
                assert_eq!(step.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn loop_arity_mismatch_is_an_error() {
        let err = parse_program("loop (i = 0, j = 0) while i < 1 do (i + 1) yield i").unwrap_err();
        assert!(err.message.contains("step"));
    }

    #[test]
    fn parses_bag_operations() {
        let e = parse_program("count(filter(map(source(xs), x => x + 1), y => y > 2))")
            .unwrap()
            .strip_spans();
        assert!(matches!(e, Expr::Count(_)));
        assert!(parse_program("reduceByKey(source(xs), (a, b) => a + b)").is_ok());
        assert!(parse_program("fold(source(xs), 0, (a, b) => a + b)").is_ok());
        assert!(parse_program("join(source(xs), distinct(source(ys)))").is_ok());
    }

    #[test]
    fn parses_cache_hints() {
        let e = parse_program("count(cache(distinct(source(xs))))").unwrap().strip_spans();
        match e {
            Expr::Count(inner) => assert!(matches!(*inner, Expr::Cache(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_program("map(source(xs), )").unwrap_err();
        assert!(err.at > 0);
        let err2 = parse_program("1 +").unwrap_err();
        assert!(err2.to_string().contains("parse error"));
    }

    #[test]
    fn comments_and_whitespace_are_skipped() {
        let e =
            parse_program("// a comment\nlet x = 1 in // another\n x + 1").unwrap().strip_spans();
        assert!(matches!(e, Expr::Let(..)));
    }

    #[test]
    fn unknown_function_is_an_error() {
        let err = parse_program("frobnicate(1)").unwrap_err();
        assert!(err.message.contains("unknown function"));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(parse_program("\"abc").is_err());
    }

    #[test]
    fn full_bounce_rate_program_parses_and_flattens() {
        let src = r#"
            map(groupByKey(source(visits)), g =>
              let group = g.1 in
              let counts = reduceByKey(map(group, ip => (ip, 1)), (a, b) => a + b) in
              let bounces = count(filter(counts, kv => kv.1 == 1)) in
              let total = count(distinct(group)) in
              (g.0, toDouble(bounces) / toDouble(total)))
        "#;
        let ast = parse_program(src).unwrap();
        let parsed =
            crate::parse::parsing_phase(&ast, &["visits"], crate::parse::Dialect::Matryoshka)
                .unwrap();
        assert!(matches!(parsed.unspanned(), Expr::MapWithLiftedUdf { .. }));
    }

    #[test]
    fn parsed_program_executes_end_to_end() {
        use std::collections::HashMap;
        let src = "map(groupByKey(source(xs)), g => (g.0, count(g.1)))";
        let ast = parse_program(src).unwrap();
        let parsed =
            crate::parse::parsing_phase(&ast, &["xs"], crate::parse::Dialect::Matryoshka).unwrap();
        let e = matryoshka_engine::Engine::local();
        let xs = e.parallelize(
            vec![
                Value::tuple(vec![Value::Long(1), Value::Long(0)]),
                Value::tuple(vec![Value::Long(1), Value::Long(0)]),
                Value::tuple(vec![Value::Long(2), Value::Long(0)]),
            ],
            2,
        );
        let lowering =
            crate::lower::Lowering::new(e, matryoshka_core::MatryoshkaConfig::optimized());
        let out = lowering.run(&parsed, &HashMap::from([("xs".to_string(), xs)])).unwrap();
        let mut rows = match out {
            crate::lower::RtVal::Bag(b) => b.collect().unwrap(),
            other => panic!("{other:?}"),
        };
        rows.sort();
        assert_eq!(
            rows,
            vec![
                Value::tuple(vec![Value::Long(1), Value::Long(2)]),
                Value::tuple(vec![Value::Long(2), Value::Long(1)]),
            ]
        );
    }
}
