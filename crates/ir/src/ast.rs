//! The abstract syntax tree of the embedded nested-parallel language.
//!
//! This is the Rust equivalent of the paper's Emma programs: a collection
//! (`Bag`) language with nested bags, nested parallel operations and
//! imperative-style control flow. The paper's parsing phase operates on
//! Scala ASTs via macros; here the AST is an explicit data structure that
//! the parsing phase (`crate::parse`) rewrites, inserting the nesting
//! primitives `GroupByKeyIntoNestedBag` and `MapWithLiftedUdf` — exactly the
//! Listing 1 → Listing 2 transformation.
//!
//! Control flow note: `Loop` is already the *higher-order functional form*
//! the paper's Sec. 6.1 converts `while` statements into — the body maps the
//! previous loop-variable values to the next values plus the exit condition.

use std::sync::Arc;

use crate::value::Value;

/// Binary scalar operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition (numeric).
    Add,
    /// Subtraction (numeric).
    Sub,
    /// Multiplication (numeric).
    Mul,
    /// Division (always produces a Double).
    Div,
    /// Equality (any values).
    Eq,
    /// Less-than (numeric).
    Lt,
    /// Greater-than (numeric).
    Gt,
    /// Logical and.
    And,
    /// Logical or.
    Or,
}

/// Unary scalar operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Logical negation.
    Not,
    /// Numeric negation.
    Neg,
    /// Long -> Double widening.
    ToDouble,
}

/// A one-parameter anonymous function (UDF).
#[derive(Debug, Clone)]
pub struct Lambda {
    /// Parameter name, bound inside `body`.
    pub param: String,
    /// Function body.
    pub body: Arc<Expr>,
}

impl Lambda {
    /// Construct a lambda.
    pub fn new(param: &str, body: Expr) -> Lambda {
        Lambda { param: param.to_string(), body: Arc::new(body) }
    }
}

/// A two-parameter anonymous function (for reductions and joins-by-UDF).
#[derive(Debug, Clone)]
pub struct Lambda2 {
    /// First parameter name.
    pub a: String,
    /// Second parameter name.
    pub b: String,
    /// Function body.
    pub body: Arc<Expr>,
}

impl Lambda2 {
    /// Construct a two-parameter lambda.
    pub fn new(a: &str, b: &str, body: Expr) -> Lambda2 {
        Lambda2 { a: a.to_string(), b: b.to_string(), body: Arc::new(body) }
    }
}

/// Expressions of the nested-parallel language. Scalar- and bag-typed
/// expressions share one syntax; the parsing phase's shape analysis tells
/// them apart.
#[derive(Debug, Clone)]
pub enum Expr {
    /// A literal value.
    Const(Value),
    /// A variable reference.
    Var(String),
    /// Tuple construction.
    Tuple(Vec<Expr>),
    /// Tuple projection.
    Proj(Box<Expr>, usize),
    /// Binary scalar operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary scalar operation.
    Un(UnOp, Box<Expr>),
    /// `let name = value in body`.
    Let(String, Box<Expr>, Box<Expr>),
    /// Conditional (both scalar- and bag-typed branches are allowed).
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// A while loop in higher-order functional form (Sec. 6.1): the
    /// variables start from `init`, each iteration rebinds them to `step`'s
    /// values, and iteration continues while `cond` (evaluated on the
    /// current variables) holds. Evaluates to `result`.
    Loop {
        /// Loop variables with their initializers.
        init: Vec<(String, Expr)>,
        /// Continue-condition over the loop variables.
        cond: Box<Expr>,
        /// Next values of the loop variables, in order.
        step: Vec<Expr>,
        /// Result expression over the final loop variables.
        result: Box<Expr>,
    },

    // --- bag operations -----------------------------------------------
    /// A named input bag, bound when the program runs.
    Source(String),
    /// Element-wise transformation.
    Map(Box<Expr>, Lambda),
    /// Element-wise filtering.
    Filter(Box<Expr>, Lambda),
    /// Element-to-many transformation; the lambda returns a tuple whose
    /// components are emitted individually.
    FlatMapTuple(Box<Expr>, Lambda),
    /// Group a bag of `(key, value)` tuples by key. The paper's nested-bag
    /// producer: its conceptual output type is `Bag[(K, Bag[V])]`.
    GroupByKey(Box<Expr>),
    /// Merge values per key of a `(key, value)` bag.
    ReduceByKey(Box<Expr>, Lambda2),
    /// Equi-join two `(key, value)` bags on their keys.
    Join(Box<Expr>, Box<Expr>),
    /// Duplicate elimination.
    Distinct(Box<Expr>),
    /// Bag union.
    Union(Box<Expr>, Box<Expr>),
    /// Number of elements (scalar result).
    Count(Box<Expr>),
    /// Fold to a scalar with zero and combine (the UDF must be scalar-only:
    /// bags inside aggregation UDFs are outside the flattening's
    /// completeness preconditions, Sec. 7).
    Fold(Box<Expr>, Box<Expr>, Lambda2),

    // --- nesting primitives (inserted by the parsing phase) ------------
    /// `groupByKeyIntoNestedBag` (paper Listing 2 line 3).
    GroupByKeyIntoNestedBag(Box<Expr>),
    /// `mapWithLiftedUDF` (paper Listing 2 line 4): the UDF runs *once*
    /// over the lifted primitives. `closures` lists outer variables the UDF
    /// reads (made explicit by the parsing phase, Sec. 5).
    MapWithLiftedUdf {
        /// The (nested) input.
        input: Box<Expr>,
        /// The lifted UDF; its parameter binds to the `(outer, inner)`
        /// pair of the NestedBag.
        udf: Lambda,
        /// Names of enclosing bindings the UDF captures.
        closures: Vec<String>,
    },
}

impl Expr {
    /// `let`-builder.
    pub fn let_(name: &str, value: Expr, body: Expr) -> Expr {
        Expr::Let(name.to_string(), Box::new(value), Box::new(body))
    }
    /// Variable reference builder.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }
    /// Long literal builder.
    pub fn long(x: i64) -> Expr {
        Expr::Const(Value::Long(x))
    }
    /// Binary-op builder.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }
    /// Projection builder.
    pub fn proj(e: Expr, i: usize) -> Expr {
        Expr::Proj(Box::new(e), i)
    }

    /// Does this expression *contain* any bag operation? (Used by the
    /// parsing phase to decide which map UDFs must be lifted: "the
    /// operation's UDF contains bag operations", Sec. 7.)
    pub fn contains_bag_ops(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(
                e,
                Expr::Source(_)
                    | Expr::Map(..)
                    | Expr::Filter(..)
                    | Expr::FlatMapTuple(..)
                    | Expr::GroupByKey(..)
                    | Expr::ReduceByKey(..)
                    | Expr::Join(..)
                    | Expr::Distinct(..)
                    | Expr::Union(..)
                    | Expr::Count(..)
                    | Expr::Fold(..)
                    | Expr::GroupByKeyIntoNestedBag(..)
                    | Expr::MapWithLiftedUdf { .. }
            ) {
                found = true;
            }
        });
        found
    }

    /// Visit every sub-expression (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Const(_) | Expr::Var(_) | Expr::Source(_) => {}
            Expr::Tuple(items) => items.iter().for_each(|e| e.visit(f)),
            Expr::Proj(e, _) | Expr::Un(_, e) => e.visit(f),
            Expr::Bin(_, a, b) | Expr::Join(a, b) | Expr::Union(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Let(_, v, b) => {
                v.visit(f);
                b.visit(f);
            }
            Expr::If(c, t, e) => {
                c.visit(f);
                t.visit(f);
                e.visit(f);
            }
            Expr::Loop { init, cond, step, result } => {
                init.iter().for_each(|(_, e)| e.visit(f));
                cond.visit(f);
                step.iter().for_each(|e| e.visit(f));
                result.visit(f);
            }
            Expr::Map(e, l) | Expr::Filter(e, l) | Expr::FlatMapTuple(e, l) => {
                e.visit(f);
                l.body.visit(f);
            }
            Expr::GroupByKey(e)
            | Expr::Distinct(e)
            | Expr::Count(e)
            | Expr::GroupByKeyIntoNestedBag(e) => e.visit(f),
            Expr::ReduceByKey(e, l2) => {
                e.visit(f);
                l2.body.visit(f);
            }
            Expr::Fold(e, z, l2) => {
                e.visit(f);
                z.visit(f);
                l2.body.visit(f);
            }
            Expr::MapWithLiftedUdf { input, udf, .. } => {
                input.visit(f);
                udf.body.visit(f);
            }
        }
    }

    /// Free variables of the expression (everything not bound by a `let`,
    /// lambda parameter, or loop variable), excluding source names.
    pub fn free_vars(&self) -> Vec<String> {
        fn go(e: &Expr, bound: &mut Vec<String>, out: &mut Vec<String>) {
            match e {
                Expr::Var(n) => {
                    if !bound.iter().any(|b| b == n) && !out.iter().any(|o| o == n) {
                        out.push(n.clone());
                    }
                }
                Expr::Const(_) | Expr::Source(_) => {}
                Expr::Tuple(items) => items.iter().for_each(|x| go(x, bound, out)),
                Expr::Proj(x, _) | Expr::Un(_, x) => go(x, bound, out),
                Expr::Bin(_, a, b) | Expr::Join(a, b) | Expr::Union(a, b) => {
                    go(a, bound, out);
                    go(b, bound, out);
                }
                Expr::Let(n, v, b) => {
                    go(v, bound, out);
                    bound.push(n.clone());
                    go(b, bound, out);
                    bound.pop();
                }
                Expr::If(c, t, el) => {
                    go(c, bound, out);
                    go(t, bound, out);
                    go(el, bound, out);
                }
                Expr::Loop { init, cond, step, result } => {
                    for (_, x) in init {
                        go(x, bound, out);
                    }
                    let n0 = bound.len();
                    bound.extend(init.iter().map(|(n, _)| n.clone()));
                    go(cond, bound, out);
                    step.iter().for_each(|x| go(x, bound, out));
                    go(result, bound, out);
                    bound.truncate(n0);
                }
                Expr::Map(x, l) | Expr::Filter(x, l) | Expr::FlatMapTuple(x, l) => {
                    go(x, bound, out);
                    bound.push(l.param.clone());
                    go(&l.body, bound, out);
                    bound.pop();
                }
                Expr::GroupByKey(x)
                | Expr::Distinct(x)
                | Expr::Count(x)
                | Expr::GroupByKeyIntoNestedBag(x) => go(x, bound, out),
                Expr::ReduceByKey(x, l2) => {
                    go(x, bound, out);
                    bound.push(l2.a.clone());
                    bound.push(l2.b.clone());
                    go(&l2.body, bound, out);
                    bound.pop();
                    bound.pop();
                }
                Expr::Fold(x, z, l2) => {
                    go(x, bound, out);
                    go(z, bound, out);
                    bound.push(l2.a.clone());
                    bound.push(l2.b.clone());
                    go(&l2.body, bound, out);
                    bound.pop();
                    bound.pop();
                }
                Expr::MapWithLiftedUdf { input, udf, .. } => {
                    go(input, bound, out);
                    bound.push(udf.param.clone());
                    go(&udf.body, bound, out);
                    bound.pop();
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_bag_ops_detects_nesting() {
        let scalar_only = Expr::bin(BinOp::Add, Expr::long(1), Expr::var("x"));
        assert!(!scalar_only.contains_bag_ops());
        let with_bag = Expr::Count(Box::new(Expr::Source("xs".into())));
        assert!(with_bag.contains_bag_ops());
        let nested = Expr::let_("n", with_bag, Expr::var("n"));
        assert!(nested.contains_bag_ops());
    }

    #[test]
    fn free_vars_respect_binders() {
        // let a = x in a + b   -> free: x, b
        let e =
            Expr::let_("a", Expr::var("x"), Expr::bin(BinOp::Add, Expr::var("a"), Expr::var("b")));
        assert_eq!(e.free_vars(), vec!["x".to_string(), "b".to_string()]);
    }

    #[test]
    fn lambda_params_are_bound() {
        // xs.map(p => p + q): free = q (xs is a source, not a var)
        let e = Expr::Map(
            Box::new(Expr::Source("xs".into())),
            Lambda::new("p", Expr::bin(BinOp::Add, Expr::var("p"), Expr::var("q"))),
        );
        assert_eq!(e.free_vars(), vec!["q".to_string()]);
    }

    #[test]
    fn loop_vars_are_bound_in_body() {
        let e = Expr::Loop {
            init: vec![("i".into(), Expr::long(0))],
            cond: Box::new(Expr::bin(BinOp::Lt, Expr::var("i"), Expr::var("limit"))),
            step: vec![Expr::bin(BinOp::Add, Expr::var("i"), Expr::long(1))],
            result: Box::new(Expr::var("i")),
        };
        assert_eq!(e.free_vars(), vec!["limit".to_string()]);
    }

    #[test]
    fn visit_reaches_all_nodes() {
        let e = Expr::If(
            Box::new(Expr::var("c")),
            Box::new(Expr::long(1)),
            Box::new(Expr::Tuple(vec![Expr::long(2), Expr::long(3)])),
        );
        let mut n = 0;
        e.visit(&mut |_| n += 1);
        assert_eq!(n, 6); // if, c, 1, tuple, 2, 3
    }
}
