//! The abstract syntax tree of the embedded nested-parallel language.
//!
//! This is the Rust equivalent of the paper's Emma programs: a collection
//! (`Bag`) language with nested bags, nested parallel operations and
//! imperative-style control flow. The paper's parsing phase operates on
//! Scala ASTs via macros; here the AST is an explicit data structure that
//! the parsing phase (`crate::parse`) rewrites, inserting the nesting
//! primitives `GroupByKeyIntoNestedBag` and `MapWithLiftedUdf` — exactly the
//! Listing 1 → Listing 2 transformation.
//!
//! Control flow note: `Loop` is already the *higher-order functional form*
//! the paper's Sec. 6.1 converts `while` statements into — the body maps the
//! previous loop-variable values to the next values plus the exit condition.

use std::sync::Arc;

use crate::value::Value;

/// A half-open byte range `[start, end)` into the source text a node was
/// parsed from. Hand-built ASTs carry no spans; the text front-end
/// (`crate::syntax`) attaches them so that analysis diagnostics
/// (`crate::analyze`) can point at source locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first byte of the node.
    pub start: usize,
    /// Byte offset one past the last byte of the node.
    pub end: usize,
}

impl Span {
    /// Construct a span from byte offsets.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }
}

/// Binary scalar operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition (numeric).
    Add,
    /// Subtraction (numeric).
    Sub,
    /// Multiplication (numeric).
    Mul,
    /// Division (always produces a Double).
    Div,
    /// Equality (any values).
    Eq,
    /// Less-than (numeric).
    Lt,
    /// Greater-than (numeric).
    Gt,
    /// Logical and.
    And,
    /// Logical or.
    Or,
}

/// Unary scalar operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Logical negation.
    Not,
    /// Numeric negation.
    Neg,
    /// Long -> Double widening.
    ToDouble,
}

/// A one-parameter anonymous function (UDF).
#[derive(Debug, Clone, PartialEq)]
pub struct Lambda {
    /// Parameter name, bound inside `body`.
    pub param: String,
    /// Function body.
    pub body: Arc<Expr>,
}

impl Lambda {
    /// Construct a lambda.
    pub fn new(param: &str, body: Expr) -> Lambda {
        Lambda { param: param.to_string(), body: Arc::new(body) }
    }
}

/// A two-parameter anonymous function (for reductions and joins-by-UDF).
#[derive(Debug, Clone, PartialEq)]
pub struct Lambda2 {
    /// First parameter name.
    pub a: String,
    /// Second parameter name.
    pub b: String,
    /// Function body.
    pub body: Arc<Expr>,
}

impl Lambda2 {
    /// Construct a two-parameter lambda.
    pub fn new(a: &str, b: &str, body: Expr) -> Lambda2 {
        Lambda2 { a: a.to_string(), b: b.to_string(), body: Arc::new(body) }
    }
}

/// Expressions of the nested-parallel language. Scalar- and bag-typed
/// expressions share one syntax; the parsing phase's shape analysis tells
/// them apart.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A source-location annotation wrapping another expression. Inserted by
    /// the text front-end ([`crate::syntax`]); transparent to evaluation,
    /// rewriting and printing, and consumed by the static analyzer
    /// ([`crate::analyze()`]) to attach byte spans to diagnostics.
    Spanned(Span, Box<Expr>),
    /// A literal value.
    Const(Value),
    /// A variable reference.
    Var(String),
    /// Tuple construction.
    Tuple(Vec<Expr>),
    /// Tuple projection.
    Proj(Box<Expr>, usize),
    /// Binary scalar operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary scalar operation.
    Un(UnOp, Box<Expr>),
    /// `let name = value in body`.
    Let(String, Box<Expr>, Box<Expr>),
    /// Conditional (both scalar- and bag-typed branches are allowed).
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// A while loop in higher-order functional form (Sec. 6.1): the
    /// variables start from `init`, each iteration rebinds them to `step`'s
    /// values, and iteration continues while `cond` (evaluated on the
    /// current variables) holds. Evaluates to `result`.
    Loop {
        /// Loop variables with their initializers.
        init: Vec<(String, Expr)>,
        /// Continue-condition over the loop variables.
        cond: Box<Expr>,
        /// Next values of the loop variables, in order.
        step: Vec<Expr>,
        /// Result expression over the final loop variables.
        result: Box<Expr>,
    },

    // --- bag operations -----------------------------------------------
    /// A named input bag, bound when the program runs.
    Source(String),
    /// Element-wise transformation.
    Map(Box<Expr>, Lambda),
    /// Element-wise filtering.
    Filter(Box<Expr>, Lambda),
    /// Element-to-many transformation; the lambda returns a tuple whose
    /// components are emitted individually.
    FlatMapTuple(Box<Expr>, Lambda),
    /// Group a bag of `(key, value)` tuples by key. The paper's nested-bag
    /// producer: its conceptual output type is `Bag[(K, Bag[V])]`.
    GroupByKey(Box<Expr>),
    /// Merge values per key of a `(key, value)` bag.
    ReduceByKey(Box<Expr>, Lambda2),
    /// Equi-join two `(key, value)` bags on their keys.
    Join(Box<Expr>, Box<Expr>),
    /// Duplicate elimination.
    Distinct(Box<Expr>),
    /// Bag union.
    Union(Box<Expr>, Box<Expr>),
    /// Number of elements (scalar result).
    Count(Box<Expr>),
    /// Fold to a scalar with zero and combine (the UDF must be scalar-only:
    /// bags inside aggregation UDFs are outside the flattening's
    /// completeness preconditions, Sec. 7).
    Fold(Box<Expr>, Box<Expr>, Lambda2),
    /// Explicit materialization hint: evaluate the child once and reuse the
    /// shared partitions for every consumer. Semantically the identity;
    /// inserted by the plan-rewrite pass ([`crate::analyze::plan`]) above
    /// hoisted loop-invariant subplans and merged common subexpressions,
    /// and writable in source as `cache(e)`. Opaque to further rewriting
    /// (a cache node is a hoist/CSE barrier, like the engine's
    /// `checkpoint`).
    Cache(Box<Expr>),

    // --- nesting primitives (inserted by the parsing phase) ------------
    /// `groupByKeyIntoNestedBag` (paper Listing 2 line 3).
    GroupByKeyIntoNestedBag(Box<Expr>),
    /// `mapWithLiftedUDF` (paper Listing 2 line 4): the UDF runs *once*
    /// over the lifted primitives. `closures` lists outer variables the UDF
    /// reads (made explicit by the parsing phase, Sec. 5).
    MapWithLiftedUdf {
        /// The (nested) input.
        input: Box<Expr>,
        /// The lifted UDF; its parameter binds to the `(outer, inner)`
        /// pair of the NestedBag.
        udf: Lambda,
        /// Names of enclosing bindings the UDF captures.
        closures: Vec<String>,
    },
}

impl Expr {
    /// `let`-builder.
    pub fn let_(name: &str, value: Expr, body: Expr) -> Expr {
        Expr::Let(name.to_string(), Box::new(value), Box::new(body))
    }
    /// Variable reference builder.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }
    /// Long literal builder.
    pub fn long(x: i64) -> Expr {
        Expr::Const(Value::Long(x))
    }
    /// Binary-op builder.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }
    /// Projection builder.
    pub fn proj(e: Expr, i: usize) -> Expr {
        Expr::Proj(Box::new(e), i)
    }

    /// Peel any [`Expr::Spanned`] annotations off the outermost node.
    pub fn unspanned(&self) -> &Expr {
        let mut e = self;
        while let Expr::Spanned(_, inner) = e {
            e = inner;
        }
        e
    }

    /// The outermost source span, if the node carries one.
    pub fn span(&self) -> Option<Span> {
        match self {
            Expr::Spanned(sp, _) => Some(*sp),
            _ => None,
        }
    }

    /// A copy of the expression with every [`Expr::Spanned`] annotation
    /// removed (spans carry no semantics; this normalizes parsed programs
    /// for structural comparison with hand-built ASTs).
    pub fn strip_spans(&self) -> Expr {
        fn lam(l: &Lambda) -> Lambda {
            Lambda { param: l.param.clone(), body: Arc::new(l.body.strip_spans()) }
        }
        fn lam2(l: &Lambda2) -> Lambda2 {
            Lambda2 { a: l.a.clone(), b: l.b.clone(), body: Arc::new(l.body.strip_spans()) }
        }
        match self {
            Expr::Spanned(_, inner) => inner.strip_spans(),
            Expr::Const(_) | Expr::Var(_) | Expr::Source(_) => self.clone(),
            Expr::Tuple(items) => Expr::Tuple(items.iter().map(Expr::strip_spans).collect()),
            Expr::Proj(x, i) => Expr::Proj(Box::new(x.strip_spans()), *i),
            Expr::Bin(op, a, b) => {
                Expr::Bin(*op, Box::new(a.strip_spans()), Box::new(b.strip_spans()))
            }
            Expr::Un(op, a) => Expr::Un(*op, Box::new(a.strip_spans())),
            Expr::Let(n, v, b) => {
                Expr::Let(n.clone(), Box::new(v.strip_spans()), Box::new(b.strip_spans()))
            }
            Expr::If(c, t, e) => Expr::If(
                Box::new(c.strip_spans()),
                Box::new(t.strip_spans()),
                Box::new(e.strip_spans()),
            ),
            Expr::Loop { init, cond, step, result } => Expr::Loop {
                init: init.iter().map(|(n, x)| (n.clone(), x.strip_spans())).collect(),
                cond: Box::new(cond.strip_spans()),
                step: step.iter().map(Expr::strip_spans).collect(),
                result: Box::new(result.strip_spans()),
            },
            Expr::Map(x, l) => Expr::Map(Box::new(x.strip_spans()), lam(l)),
            Expr::Filter(x, l) => Expr::Filter(Box::new(x.strip_spans()), lam(l)),
            Expr::FlatMapTuple(x, l) => Expr::FlatMapTuple(Box::new(x.strip_spans()), lam(l)),
            Expr::GroupByKey(x) => Expr::GroupByKey(Box::new(x.strip_spans())),
            Expr::ReduceByKey(x, l) => Expr::ReduceByKey(Box::new(x.strip_spans()), lam2(l)),
            Expr::Join(a, b) => Expr::Join(Box::new(a.strip_spans()), Box::new(b.strip_spans())),
            Expr::Distinct(x) => Expr::Distinct(Box::new(x.strip_spans())),
            Expr::Union(a, b) => Expr::Union(Box::new(a.strip_spans()), Box::new(b.strip_spans())),
            Expr::Count(x) => Expr::Count(Box::new(x.strip_spans())),
            Expr::Fold(x, z, l) => {
                Expr::Fold(Box::new(x.strip_spans()), Box::new(z.strip_spans()), lam2(l))
            }
            Expr::Cache(x) => Expr::Cache(Box::new(x.strip_spans())),
            Expr::GroupByKeyIntoNestedBag(x) => {
                Expr::GroupByKeyIntoNestedBag(Box::new(x.strip_spans()))
            }
            Expr::MapWithLiftedUdf { input, udf, closures } => Expr::MapWithLiftedUdf {
                input: Box::new(input.strip_spans()),
                udf: lam(udf),
                closures: closures.clone(),
            },
        }
    }

    /// Does this expression *contain* any bag operation? (Used by the
    /// parsing phase to decide which map UDFs must be lifted: "the
    /// operation's UDF contains bag operations", Sec. 7.)
    pub fn contains_bag_ops(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(
                e,
                Expr::Source(_)
                    | Expr::Map(..)
                    | Expr::Filter(..)
                    | Expr::FlatMapTuple(..)
                    | Expr::GroupByKey(..)
                    | Expr::ReduceByKey(..)
                    | Expr::Join(..)
                    | Expr::Distinct(..)
                    | Expr::Union(..)
                    | Expr::Count(..)
                    | Expr::Fold(..)
                    | Expr::GroupByKeyIntoNestedBag(..)
                    | Expr::MapWithLiftedUdf { .. }
            ) {
                found = true;
            }
        });
        found
    }

    /// Visit every sub-expression (pre-order). [`Expr::Spanned`] wrappers
    /// are visited like any other node (peel with [`Expr::unspanned`] when
    /// matching on shapes).
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Spanned(_, inner) => inner.visit(f),
            Expr::Const(_) | Expr::Var(_) | Expr::Source(_) => {}
            Expr::Tuple(items) => items.iter().for_each(|e| e.visit(f)),
            Expr::Proj(e, _) | Expr::Un(_, e) => e.visit(f),
            Expr::Bin(_, a, b) | Expr::Join(a, b) | Expr::Union(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Let(_, v, b) => {
                v.visit(f);
                b.visit(f);
            }
            Expr::If(c, t, e) => {
                c.visit(f);
                t.visit(f);
                e.visit(f);
            }
            Expr::Loop { init, cond, step, result } => {
                init.iter().for_each(|(_, e)| e.visit(f));
                cond.visit(f);
                step.iter().for_each(|e| e.visit(f));
                result.visit(f);
            }
            Expr::Map(e, l) | Expr::Filter(e, l) | Expr::FlatMapTuple(e, l) => {
                e.visit(f);
                l.body.visit(f);
            }
            Expr::GroupByKey(e)
            | Expr::Distinct(e)
            | Expr::Count(e)
            | Expr::Cache(e)
            | Expr::GroupByKeyIntoNestedBag(e) => e.visit(f),
            Expr::ReduceByKey(e, l2) => {
                e.visit(f);
                l2.body.visit(f);
            }
            Expr::Fold(e, z, l2) => {
                e.visit(f);
                z.visit(f);
                l2.body.visit(f);
            }
            Expr::MapWithLiftedUdf { input, udf, .. } => {
                input.visit(f);
                udf.body.visit(f);
            }
        }
    }

    /// Free variables of the expression (everything not bound by a `let`,
    /// lambda parameter, or loop variable), excluding source names.
    pub fn free_vars(&self) -> Vec<String> {
        fn go(e: &Expr, bound: &mut Vec<String>, out: &mut Vec<String>) {
            match e {
                Expr::Spanned(_, inner) => go(inner, bound, out),
                Expr::Var(n) => {
                    if !bound.iter().any(|b| b == n) && !out.iter().any(|o| o == n) {
                        out.push(n.clone());
                    }
                }
                Expr::Const(_) | Expr::Source(_) => {}
                Expr::Tuple(items) => items.iter().for_each(|x| go(x, bound, out)),
                Expr::Proj(x, _) | Expr::Un(_, x) => go(x, bound, out),
                Expr::Bin(_, a, b) | Expr::Join(a, b) | Expr::Union(a, b) => {
                    go(a, bound, out);
                    go(b, bound, out);
                }
                Expr::Let(n, v, b) => {
                    go(v, bound, out);
                    bound.push(n.clone());
                    go(b, bound, out);
                    bound.pop();
                }
                Expr::If(c, t, el) => {
                    go(c, bound, out);
                    go(t, bound, out);
                    go(el, bound, out);
                }
                Expr::Loop { init, cond, step, result } => {
                    for (_, x) in init {
                        go(x, bound, out);
                    }
                    let n0 = bound.len();
                    bound.extend(init.iter().map(|(n, _)| n.clone()));
                    go(cond, bound, out);
                    step.iter().for_each(|x| go(x, bound, out));
                    go(result, bound, out);
                    bound.truncate(n0);
                }
                Expr::Map(x, l) | Expr::Filter(x, l) | Expr::FlatMapTuple(x, l) => {
                    go(x, bound, out);
                    bound.push(l.param.clone());
                    go(&l.body, bound, out);
                    bound.pop();
                }
                Expr::GroupByKey(x)
                | Expr::Distinct(x)
                | Expr::Count(x)
                | Expr::Cache(x)
                | Expr::GroupByKeyIntoNestedBag(x) => go(x, bound, out),
                Expr::ReduceByKey(x, l2) => {
                    go(x, bound, out);
                    bound.push(l2.a.clone());
                    bound.push(l2.b.clone());
                    go(&l2.body, bound, out);
                    bound.pop();
                    bound.pop();
                }
                Expr::Fold(x, z, l2) => {
                    go(x, bound, out);
                    go(z, bound, out);
                    bound.push(l2.a.clone());
                    bound.push(l2.b.clone());
                    go(&l2.body, bound, out);
                    bound.pop();
                    bound.pop();
                }
                Expr::MapWithLiftedUdf { input, udf, .. } => {
                    go(input, bound, out);
                    bound.push(udf.param.clone());
                    go(&udf.body, bound, out);
                    bound.pop();
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_bag_ops_detects_nesting() {
        let scalar_only = Expr::bin(BinOp::Add, Expr::long(1), Expr::var("x"));
        assert!(!scalar_only.contains_bag_ops());
        let with_bag = Expr::Count(Box::new(Expr::Source("xs".into())));
        assert!(with_bag.contains_bag_ops());
        let nested = Expr::let_("n", with_bag, Expr::var("n"));
        assert!(nested.contains_bag_ops());
    }

    #[test]
    fn free_vars_respect_binders() {
        // let a = x in a + b   -> free: x, b
        let e =
            Expr::let_("a", Expr::var("x"), Expr::bin(BinOp::Add, Expr::var("a"), Expr::var("b")));
        assert_eq!(e.free_vars(), vec!["x".to_string(), "b".to_string()]);
    }

    #[test]
    fn lambda_params_are_bound() {
        // xs.map(p => p + q): free = q (xs is a source, not a var)
        let e = Expr::Map(
            Box::new(Expr::Source("xs".into())),
            Lambda::new("p", Expr::bin(BinOp::Add, Expr::var("p"), Expr::var("q"))),
        );
        assert_eq!(e.free_vars(), vec!["q".to_string()]);
    }

    #[test]
    fn loop_vars_are_bound_in_body() {
        let e = Expr::Loop {
            init: vec![("i".into(), Expr::long(0))],
            cond: Box::new(Expr::bin(BinOp::Lt, Expr::var("i"), Expr::var("limit"))),
            step: vec![Expr::bin(BinOp::Add, Expr::var("i"), Expr::long(1))],
            result: Box::new(Expr::var("i")),
        };
        assert_eq!(e.free_vars(), vec!["limit".to_string()]);
    }

    #[test]
    fn visit_reaches_all_nodes() {
        let e = Expr::If(
            Box::new(Expr::var("c")),
            Box::new(Expr::long(1)),
            Box::new(Expr::Tuple(vec![Expr::long(2), Expr::long(3)])),
        );
        let mut n = 0;
        e.visit(&mut |_| n += 1);
        assert_eq!(n, 6); // if, c, 1, tuple, 2, 3
    }
}
