//! Closure-capture enumeration: which enclosing bindings does a UDF body
//! read? This is the single canonical helper; the parsing phase (closure
//! extraction for `MapWithLiftedUdf`) and the lowering (leaf-UDF capture
//! environments) both delegate here instead of re-deriving the set from
//! `free_vars` with ad-hoc filters.

use crate::ast::Expr;

/// The names a UDF body captures from its environment: its free variables
/// minus its own parameters, in first-use order, deduplicated.
///
/// Source names never appear ([`Expr::free_vars`] excludes `Source`
/// references), so every returned name refers to a `let`, lambda-parameter
/// or loop-variable binding in some enclosing scope — or is unbound.
pub fn capture_names(body: &Expr, params: &[&str]) -> Vec<String> {
    body.free_vars().into_iter().filter(|v| !params.contains(&v.as_str())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Lambda};

    #[test]
    fn params_are_excluded() {
        // p => p + q  captures only q
        let body = Expr::bin(BinOp::Add, Expr::var("p"), Expr::var("q"));
        assert_eq!(capture_names(&body, &["p"]), vec!["q".to_string()]);
    }

    #[test]
    fn inner_lambda_params_do_not_leak() {
        // p => count(map(xs, y => y + p + z))  captures p? no: p is a param.
        let body = Expr::Count(Box::new(Expr::Map(
            Box::new(Expr::Source("xs".into())),
            Lambda::new(
                "y",
                Expr::bin(
                    BinOp::Add,
                    Expr::bin(BinOp::Add, Expr::var("y"), Expr::var("p")),
                    Expr::var("z"),
                ),
            ),
        )));
        assert_eq!(capture_names(&body, &["p"]), vec!["z".to_string()]);
    }

    #[test]
    fn order_is_first_use_and_deduplicated() {
        let body = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Add, Expr::var("b"), Expr::var("a")),
            Expr::var("b"),
        );
        assert_eq!(capture_names(&body, &[]), vec!["b".to_string(), "a".to_string()]);
    }
}
