//! Pre-lowering static analysis for the nested IR (the pass between
//! `parse_program`/hand-built ASTs and the parsing-phase rewriter).
//!
//! One [`analyze`] run performs, in a single AST walk:
//!
//! 1. **Nesting-aware type/shape checking**: every expression gets
//!    a [`Ty`] — scalar, bag-with-depth, or group pair — and programs that
//!    would fail inside the engine (bags in tuples, arithmetic on bags,
//!    three levels of parallelism, ...) are rejected *before any engine job
//!    launches*, each with a stable `MAT0xx` code and, for text programs, a
//!    byte span.
//! 2. **Closure-capture and effect analysis** ([`captures`], and the
//!    [`UdfSummary`] records): each UDF is classified pure-scalar vs
//!    bag-launching, its captures are enumerated and classified, and
//!    inner-bag escapes are diagnosed statically.
//! 3. **Read/write-set extraction** ([`rw`]): per-UDF field reads and map
//!    forwarding tables, which feed the safe-reordering pass ([`reorder`])
//!    and `matryoshka_core::optimizer::filter_before_map_safe`.
//!
//! The analyzer is *total*: it never stops at the first defect (ill-typed
//! subtrees continue as [`Ty::Unknown`]), so one run reports every
//! independent problem. [`check`] is the hard-gate variant the parsing
//! phase calls: it turns error-severity diagnostics into
//! [`IrError::Analysis`].
//!
//! See `docs/ANALYSIS.md` for the pass ordering, the full error-code table
//! and how the optimizer consumes the summaries.

pub mod captures;
mod diag;
pub mod plan;
pub mod reorder;
pub mod rw;
mod ty;

pub use diag::{codes, Diagnostic, Diagnostics, Severity};
pub use ty::{ScalarKind, Ty};

use crate::ast::{Expr, Span};
use crate::error::{IrError, IrResult};
use crate::parse::Dialect;

use rw::{MapForwards, UdfFieldUse};

/// What the effect analysis learned about one UDF.
#[derive(Debug, Clone)]
pub struct UdfSummary {
    /// The operation the UDF belongs to (`"map"`, `"lifted map"`,
    /// `"filter"`, `"flatMap"`).
    pub op: &'static str,
    /// Source span of the enclosing operation, when known.
    pub span: Option<Span>,
    /// Parameter names.
    pub params: Vec<String>,
    /// Captured enclosing bindings with their inferred types
    /// ([`Ty::Unknown`] for unbound names, which are separately diagnosed).
    pub captures: Vec<(String, Ty)>,
    /// The body is free of bag operations (safe to run as an engine-side
    /// closure over plain values).
    pub pure_scalar: bool,
    /// The UDF launches nested bag operations, so the rewriter must lift it
    /// (`MapWithLiftedUdf`).
    pub bag_launching: bool,
    /// Which input tuple fields the body reads.
    pub reads: UdfFieldUse,
    /// For map UDFs: which input fields the output forwards verbatim.
    pub forwards: Option<MapForwards>,
}

/// The result of one analyzer run over a program.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The inferred type of the whole program.
    pub program_ty: Ty,
    /// Everything the analyzer found, in AST pre-order.
    pub diagnostics: Diagnostics,
    /// One summary per UDF, in the order the walk reached them.
    pub udfs: Vec<UdfSummary>,
}

impl Analysis {
    /// Did the program pass (no error-severity diagnostics)?
    pub fn is_ok(&self) -> bool {
        !self.diagnostics.has_errors()
    }
}

/// Analyze `program` against the declared `sources` under `dialect`.
/// Always returns; inspect [`Analysis::diagnostics`] for findings.
pub fn analyze(program: &Expr, sources: &[&str], dialect: Dialect) -> Analysis {
    let mut checker = ty::Checker::new(sources, dialect);
    let program_ty = checker.infer(program, 0, program.span());
    Analysis { program_ty, diagnostics: checker.diags, udfs: checker.udfs }
}

/// Analyze and *gate*: error-severity diagnostics become
/// [`IrError::Analysis`], so no engine job can launch for a rejected
/// program. Warnings pass through inside the returned [`Analysis`].
pub fn check(program: &Expr, sources: &[&str], dialect: Dialect) -> IrResult<Analysis> {
    let a = analyze(program, sources, dialect);
    if a.diagnostics.has_errors() {
        return Err(IrError::Analysis(a.diagnostics));
    }
    Ok(a)
}

/// The source (input bag) names a program references, in first-use order.
/// Lets CLI tools derive the `sources` argument of [`analyze`] from the
/// program itself.
pub fn source_names(e: &Expr) -> Vec<String> {
    let mut out = Vec::new();
    e.visit(&mut |x| {
        if let Expr::Source(n) = x {
            if !out.iter().any(|o| o == n) {
                out.push(n.clone());
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Lambda, Lambda2};
    use crate::syntax::parse_program;

    fn errors_of(program: &Expr, sources: &[&str]) -> Vec<&'static str> {
        analyze(program, sources, Dialect::Matryoshka)
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.code)
            .collect()
    }

    fn parse(src: &str) -> Expr {
        parse_program(src).expect("test program parses")
    }

    #[test]
    fn well_typed_programs_are_clean() {
        // Listing 1 shape: group, then aggregate per group.
        let e = parse("map(groupByKey(source(visits)), g => (g.0, count(g.1)))");
        let a = analyze(&e, &["visits"], Dialect::Matryoshka);
        assert!(a.is_ok(), "{}", a.diagnostics);
        assert_eq!(a.program_ty, Ty::Bag(1));
    }

    #[test]
    fn mat001_unbound_variable_with_span() {
        let src = "map(source(xs), x => x + y)";
        let e = parse(src);
        let a = analyze(&e, &["xs"], Dialect::Matryoshka);
        let d = a.diagnostics.iter().find(|d| d.code == codes::UNBOUND_VAR).expect("MAT001");
        let sp = d.span.expect("parsed programs carry spans");
        assert_eq!(&src[sp.start..sp.end], "y");
    }

    #[test]
    fn mat002_unknown_source() {
        let e = parse("count(source(nope))");
        assert_eq!(errors_of(&e, &["xs"]), vec![codes::UNBOUND_SOURCE]);
    }

    #[test]
    fn mat003_projection_on_bag() {
        let e = parse("(source(xs)).0");
        assert_eq!(errors_of(&e, &["xs"]), vec![codes::PROJ_ON_BAG]);
    }

    #[test]
    fn mat004_bag_in_tuple() {
        let e = parse("(1, source(xs))");
        assert_eq!(errors_of(&e, &["xs"]), vec![codes::BAG_IN_TUPLE]);
    }

    #[test]
    fn mat005_branch_mismatch() {
        let e = parse("if true then source(xs) else 1");
        assert_eq!(errors_of(&e, &["xs"]), vec![codes::BRANCH_MISMATCH]);
    }

    #[test]
    fn mat006_bag_ops_in_aggregation() {
        let e = parse("fold(source(xs), 0, (a, b) => a + count(source(xs)))");
        assert!(errors_of(&e, &["xs"]).contains(&codes::BAG_OP_IN_AGG));
    }

    #[test]
    fn mat007_bag_ops_in_filter() {
        let e = parse("filter(source(xs), x => count(source(xs)) > 0)");
        assert!(errors_of(&e, &["xs"]).contains(&codes::BAG_OP_IN_SCALAR_UDF));
    }

    #[test]
    fn mat008_three_levels_of_nesting() {
        let e =
            parse("map(groupByKey(source(xs)), g => count(map(groupByKey(g.1), h => count(h.1))))");
        let errs = errors_of(&e, &["xs"]);
        assert!(errs.contains(&codes::TOO_DEEP), "{errs:?}");
    }

    #[test]
    fn mat009_diql_rejects_inner_loops() {
        let e = parse(
            "map(groupByKey(source(xs)), g => (loop (n = count(g.1)) while n > 10 do (n - 1) yield n))",
        );
        let a = analyze(&e, &["xs"], Dialect::DiqlLike);
        assert!(a.diagnostics.iter().any(|d| d.code == codes::DIQL_INNER_CONTROL_FLOW));
        // The Matryoshka dialect accepts the same program.
        let a2 = analyze(&e, &["xs"], Dialect::Matryoshka);
        assert!(a2.is_ok(), "{}", a2.diagnostics);
    }

    #[test]
    fn mat010_combiner_captures_are_rejected() {
        // The runtime evaluates reduceByKey combiners in an empty
        // environment, so `c` would panic at job time. Must be static.
        let e = parse("let c = 1 in reduceByKey(source(xs), (a, b) => a + b + c)");
        assert!(errors_of(&e, &["xs"]).contains(&codes::INNER_BAG_ESCAPE));
    }

    #[test]
    fn mat010_bag_capture_in_leaf_udf() {
        // let ys = <bag> in map(xs, x => ys) — the leaf UDF captures a bag.
        let e = Expr::let_(
            "ys",
            Expr::Source("xs".into()),
            Expr::Map(Box::new(Expr::Source("xs".into())), Lambda::new("x", Expr::var("ys"))),
        );
        assert!(errors_of(&e, &["xs"]).contains(&codes::INNER_BAG_ESCAPE));
    }

    #[test]
    fn mat011_arithmetic_on_bags() {
        let e = parse("source(xs) + 1");
        assert_eq!(errors_of(&e, &["xs"]), vec![codes::KIND_MISMATCH]);
    }

    #[test]
    fn mat011_count_of_scalar() {
        let e = parse("count(1)");
        assert_eq!(errors_of(&e, &[]), vec![codes::KIND_MISMATCH]);
    }

    #[test]
    fn mat012_loop_variable_changes_shape() {
        let e = parse("loop (x = 1) while x > 0 do (source(xs)) yield x");
        assert!(errors_of(&e, &["xs"]).contains(&codes::LOOP_SHAPE_CHANGE));
    }

    #[test]
    fn mat013_bag_condition() {
        let e = parse("if source(xs) then 1 else 2");
        assert!(errors_of(&e, &["xs"]).contains(&codes::NON_SCALAR_COND));
    }

    #[test]
    fn mat014_projection_out_of_bounds() {
        let e = parse("(1, 2).5");
        assert_eq!(errors_of(&e, &[]), vec![codes::PROJ_OUT_OF_BOUNDS]);
        let e2 = parse("map(groupByKey(source(xs)), g => g.2)");
        assert!(errors_of(&e2, &["xs"]).contains(&codes::PROJ_OUT_OF_BOUNDS));
    }

    #[test]
    fn warnings_do_not_gate() {
        let e = parse("let unused = 1 in let x = 2 in let x = 3 in x");
        let a = analyze(&e, &[], Dialect::Matryoshka);
        assert!(a.is_ok());
        let codes_seen: Vec<_> = a.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes_seen.contains(&codes::UNUSED_BINDING));
        assert!(codes_seen.contains(&codes::SHADOWED_BINDING));
        assert!(check(&e, &[], Dialect::Matryoshka).is_ok());
    }

    #[test]
    fn check_gates_errors_as_ir_error() {
        let e = parse("count(1)");
        let err = check(&e, &[], Dialect::Matryoshka).unwrap_err();
        assert!(matches!(err, IrError::Analysis(_)));
        assert!(err.to_string().contains("MAT011"), "{err}");
    }

    #[test]
    fn analyzer_reports_multiple_independent_defects() {
        let e = parse("(count(1), unbound_name, source(nope))");
        let errs = errors_of(&e, &["xs"]);
        assert!(errs.contains(&codes::KIND_MISMATCH));
        assert!(errs.contains(&codes::UNBOUND_VAR));
        assert!(errs.contains(&codes::UNBOUND_SOURCE));
        assert!(errs.contains(&codes::BAG_IN_TUPLE));
    }

    #[test]
    fn udf_summaries_classify_effects_and_captures() {
        let e = parse(
            "let t = 5 in map(groupByKey(source(visits)), g => count(filter(g.1, v => v > t)))",
        );
        let a = analyze(&e, &["visits"], Dialect::Matryoshka);
        assert!(a.is_ok(), "{}", a.diagnostics);
        let lifted = a.udfs.iter().find(|u| u.bag_launching).expect("the outer map is lifted");
        assert_eq!(lifted.op, "lifted map");
        assert!(!lifted.pure_scalar);
        assert_eq!(lifted.captures, vec![("t".to_string(), Ty::Scalar)]);
        let leaf = a.udfs.iter().find(|u| u.op == "filter").expect("the filter UDF");
        assert!(leaf.pure_scalar && !leaf.bag_launching);
        assert_eq!(leaf.captures, vec![("t".to_string(), Ty::Scalar)]);
    }

    #[test]
    fn source_names_are_derived_in_order() {
        let e = parse("union(map(source(b), x => x), filter(source(a), x => source(b) == x))");
        // Dedup keeps first-use order: b then a.
        assert_eq!(source_names(&e), vec!["b".to_string(), "a".to_string()]);
    }

    #[test]
    fn hand_built_asts_get_snippets_instead_of_spans() {
        let e = Expr::Count(Box::new(Expr::long(1)));
        let a = analyze(&e, &[], Dialect::Matryoshka);
        let d = a.diagnostics.iter().next().expect("one diagnostic");
        assert!(d.span.is_none());
        assert!(d.snippet.as_deref().unwrap_or("").contains("count"), "{d}");
    }

    #[test]
    fn lifted_scalar_captures_in_leaf_maps_are_allowed() {
        // The half-lifted closure shape from the end-to-end tests: a leaf
        // map at lifted level captures the lifted scalar `n` (runtime
        // mapWithClosure). Must pass.
        let e = Expr::Map(
            Box::new(Expr::GroupByKey(Box::new(Expr::Source("xs".into())))),
            Lambda::new(
                "g",
                Expr::let_(
                    "n",
                    Expr::Count(Box::new(Expr::proj(Expr::var("g"), 1))),
                    Expr::Count(Box::new(Expr::Map(
                        Box::new(Expr::proj(Expr::var("g"), 1)),
                        Lambda::new("v", Expr::bin(BinOp::Add, Expr::var("v"), Expr::var("n"))),
                    ))),
                ),
            ),
        );
        let a = analyze(&e, &["xs"], Dialect::Matryoshka);
        assert!(a.is_ok(), "{}", a.diagnostics);
    }

    #[test]
    fn flat_map_with_lifted_captures_is_rejected() {
        let e = Expr::Map(
            Box::new(Expr::GroupByKey(Box::new(Expr::Source("xs".into())))),
            Lambda::new(
                "g",
                Expr::let_(
                    "n",
                    Expr::Count(Box::new(Expr::proj(Expr::var("g"), 1))),
                    Expr::Count(Box::new(Expr::FlatMapTuple(
                        Box::new(Expr::proj(Expr::var("g"), 1)),
                        Lambda::new("v", Expr::Tuple(vec![Expr::var("v"), Expr::var("n")])),
                    ))),
                ),
            ),
        );
        let errs = errors_of(&e, &["xs"]);
        assert!(errs.contains(&codes::INNER_BAG_ESCAPE), "{errs:?}");
    }

    #[test]
    fn fold_zero_must_not_be_lifted() {
        let e = Expr::Map(
            Box::new(Expr::GroupByKey(Box::new(Expr::Source("xs".into())))),
            Lambda::new(
                "g",
                Expr::let_(
                    "n",
                    Expr::Count(Box::new(Expr::proj(Expr::var("g"), 1))),
                    Expr::Fold(
                        Box::new(Expr::proj(Expr::var("g"), 1)),
                        Box::new(Expr::var("n")),
                        Lambda2::new(
                            "a",
                            "b",
                            Expr::bin(BinOp::Add, Expr::var("a"), Expr::var("b")),
                        ),
                    ),
                ),
            ),
        );
        let errs = errors_of(&e, &["xs"]);
        assert!(errs.contains(&codes::INNER_BAG_ESCAPE), "{errs:?}");
    }
}
