//! The diagnostics engine of the static analyzer: stable error codes
//! (`MAT0xx`), severities, source spans, and a collection type that keeps
//! reporting after the first problem (the analyzer is total — it assigns
//! `Ty::Unknown` to ill-typed subtrees and keeps walking, so one run reports
//! every independent defect).
//!
//! Rendering (caret-style, compiler-like) lives in [`crate::pretty`], next
//! to the other printers; this module owns the data model.

use std::fmt;

use crate::ast::Span;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The program is still executable, but something is suspicious.
    Warning,
    /// The program must not be lowered; no engine job may launch.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable machine-readable diagnostic codes. The code of a given defect
/// never changes; new codes are appended. `MAT0xx` are errors, `MAT09x`
/// are warnings.
pub mod codes {
    /// Unbound variable.
    pub const UNBOUND_VAR: &str = "MAT001";
    /// Unknown source (input bag) name.
    pub const UNBOUND_SOURCE: &str = "MAT002";
    /// Tuple projection applied to a bag-typed expression.
    pub const PROJ_ON_BAG: &str = "MAT003";
    /// A bag inside a tuple (violates the Theorem 1 precondition that bags
    /// do not nest inside other data structures, paper Sec. 7).
    pub const BAG_IN_TUPLE: &str = "MAT004";
    /// The branches of an `if` (or the sides of a `union`) disagree in type.
    pub const BRANCH_MISMATCH: &str = "MAT005";
    /// Bag operations inside an aggregation UDF (reduceByKey/fold — outside
    /// the flattening's completeness preconditions, paper Sec. 7).
    pub const BAG_OP_IN_AGG: &str = "MAT006";
    /// Bag operations inside a filter/flatMap UDF (the paper eliminates
    /// these by splitting, Sec. 4.6; this IR requires a map).
    pub const BAG_OP_IN_SCALAR_UDF: &str = "MAT007";
    /// More than two levels of nested parallel operations (the IR dialect's
    /// limit; the typed API in matryoshka-core supports deeper nesting).
    pub const TOO_DEEP: &str = "MAT008";
    /// Control flow inside a lifted UDF under the DIQL-like dialect
    /// (paper Sec. 9.1: DIQL does not support inner control flow).
    pub const DIQL_INNER_CONTROL_FLOW: &str = "MAT009";
    /// A UDF captures or returns an inner bag: inner bags cannot escape
    /// their group (leaf UDFs may only capture scalars).
    pub const INNER_BAG_ESCAPE: &str = "MAT010";
    /// A bag operation or scalar operator applied to an operand of the
    /// wrong kind (count of a scalar, arithmetic on a bag, map over a
    /// scalar, ...).
    pub const KIND_MISMATCH: &str = "MAT011";
    /// A loop variable changes type between its initializer and its step
    /// expression.
    pub const LOOP_SHAPE_CHANGE: &str = "MAT012";
    /// A condition (of `if`, a loop, or a filter) is not scalar-typed.
    pub const NON_SCALAR_COND: &str = "MAT013";
    /// Tuple projection index provably out of bounds.
    pub const PROJ_OUT_OF_BOUNDS: &str = "MAT014";
    /// A `let` binding that is never used (warning).
    pub const UNUSED_BINDING: &str = "MAT090";
    /// A binding shadows an enclosing binding of the same name (warning).
    pub const SHADOWED_BINDING: &str = "MAT091";
    /// An adaptive-execution configuration with nonsensical thresholds
    /// (warning): the plan still runs, but the re-optimizer is inert or
    /// over-eager. Emitted by `matryoshka-check --adaptive-config`.
    pub const ADAPTIVE_CONFIG: &str = "MAT092";
    /// The plan-rewrite pass hoisted a loop-invariant subplan out of a loop
    /// and materialized it once (informational warning; the rewrite is
    /// provably result-preserving).
    pub const PLAN_HOIST: &str = "MAT093";
    /// A loop-invariant hoist candidate was found but blocked (e.g. it names
    /// a loop variable deeper down, or sits behind an explicit `cache`
    /// barrier); the message says why.
    pub const PLAN_HOIST_BLOCKED: &str = "MAT094";
    /// The plan-rewrite pass merged structurally identical subplans (CSE)
    /// or cached a subplan with more than one consumer.
    pub const PLAN_CSE: &str = "MAT095";
    /// The plan-rewrite pass dropped a pure operator whose output is never
    /// consumed (dead-operator elimination).
    pub const PLAN_DEAD_OP: &str = "MAT096";

    /// The full code table: `(code, severity-is-error, summary)`. Kept in
    /// one place so the docs (`docs/ANALYSIS.md`) and the golden tests can
    /// assert it is exhaustive and stable.
    pub const TABLE: &[(&str, bool, &str)] = &[
        (UNBOUND_VAR, true, "unbound variable"),
        (UNBOUND_SOURCE, true, "unknown source name"),
        (PROJ_ON_BAG, true, "projection on a bag-typed expression"),
        (BAG_IN_TUPLE, true, "bag inside a tuple (Sec. 7 precondition)"),
        (BRANCH_MISMATCH, true, "branch/union type mismatch"),
        (BAG_OP_IN_AGG, true, "bag operations inside an aggregation UDF"),
        (BAG_OP_IN_SCALAR_UDF, true, "bag operations inside a filter/flatMap UDF"),
        (TOO_DEEP, true, "more than two levels of nested parallelism"),
        (DIQL_INNER_CONTROL_FLOW, true, "control flow inside a lifted UDF (DIQL dialect)"),
        (INNER_BAG_ESCAPE, true, "inner bag escapes its group"),
        (KIND_MISMATCH, true, "operator applied to the wrong kind of operand"),
        (LOOP_SHAPE_CHANGE, true, "loop variable changes type between init and step"),
        (NON_SCALAR_COND, true, "non-scalar condition"),
        (PROJ_OUT_OF_BOUNDS, true, "tuple projection index out of bounds"),
        (UNUSED_BINDING, false, "unused let binding"),
        (SHADOWED_BINDING, false, "binding shadows an enclosing binding"),
        (ADAPTIVE_CONFIG, false, "nonsensical adaptive-execution configuration"),
        (PLAN_HOIST, false, "loop-invariant subplan hoisted and materialized"),
        (PLAN_HOIST_BLOCKED, false, "loop-invariant hoist blocked"),
        (PLAN_CSE, false, "common subplan merged / multi-consumer subplan cached"),
        (PLAN_DEAD_OP, false, "dead operator eliminated"),
    ];
}

/// One analyzer finding: a stable code, a severity, a message, and — when
/// the program came from the text front-end — a byte span into the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code from [`codes`].
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Byte span into the source text, when known (ASTs built in Rust carry
    /// no spans).
    pub span: Option<Span>,
    /// Human-readable description of the defect.
    pub message: String,
    /// Optional follow-up hint ("help: ...").
    pub note: Option<String>,
    /// A re-rendered snippet of the offending expression
    /// ([`crate::pretty::to_source`]), for programs without source text.
    pub snippet: Option<String>,
}

impl Diagnostic {
    /// Construct an error diagnostic.
    pub fn error(code: &'static str, span: Option<Span>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            span,
            message: message.into(),
            note: None,
            snippet: None,
        }
    }

    /// Construct a warning diagnostic.
    pub fn warning(
        code: &'static str,
        span: Option<Span>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Warning,
            span,
            message: message.into(),
            note: None,
            snippet: None,
        }
    }

    /// Attach a help note.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.note = Some(note.into());
        self
    }

    /// Attach a re-rendered program snippet.
    pub fn with_snippet(mut self, snippet: impl Into<String>) -> Diagnostic {
        self.snippet = Some(snippet.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(sp) = self.span {
            write!(f, " (bytes {}..{})", sp.start, sp.end)?;
        }
        if let Some(s) = &self.snippet {
            write!(f, " in `{s}`")?;
        }
        if let Some(n) = &self.note {
            write!(f, "; help: {n}")?;
        }
        Ok(())
    }
}

/// An ordered collection of diagnostics from one analyzer run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diagnostics {
    diags: Vec<Diagnostic>,
}

impl Diagnostics {
    /// The empty collection.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Append a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// All diagnostics, in the order the analyzer found them (pre-order
    /// over the AST).
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter()
    }

    /// Total number of diagnostics.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// No diagnostics at all?
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Any error-severity diagnostic?
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diags.iter().filter(|d| d.severity == Severity::Error).count()
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.diags.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_table_is_unique_and_complete() {
        let mut seen = std::collections::HashSet::new();
        for (code, _, _) in codes::TABLE {
            assert!(seen.insert(*code), "duplicate code {code}");
            assert!(code.starts_with("MAT"), "bad code prefix {code}");
            assert_eq!(code.len(), 6, "codes are MAT + 3 digits: {code}");
        }
        // Warnings are the MAT09x block.
        for (code, is_error, _) in codes::TABLE {
            let warn_block = code.starts_with("MAT09");
            assert_eq!(!is_error, warn_block, "{code} severity does not match its block");
        }
    }

    #[test]
    fn display_includes_code_span_and_note() {
        let d = Diagnostic::error(codes::BAG_IN_TUPLE, Some(Span::new(3, 9)), "a bag in a tuple")
            .with_note("wrap it in a count() or restructure");
        let s = d.to_string();
        assert!(s.contains("error[MAT004]"), "{s}");
        assert!(s.contains("bytes 3..9"), "{s}");
        assert!(s.contains("help:"), "{s}");
    }

    #[test]
    fn has_errors_distinguishes_warnings() {
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::warning(codes::UNUSED_BINDING, None, "unused"));
        assert!(!ds.has_errors());
        assert_eq!(ds.len(), 1);
        ds.push(Diagnostic::error(codes::UNBOUND_VAR, None, "nope"));
        assert!(ds.has_errors());
        assert_eq!(ds.error_count(), 1);
    }
}
