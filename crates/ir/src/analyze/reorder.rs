//! Filter-pushdown over the IR, driven by the read/write sets of
//! [`super::rw`]: rewrite `filter(map(xs, m), p)` into
//! `map(filter(xs, p'), m)` whenever
//! [`matryoshka_core::optimizer::filter_before_map_safe`] proves it sound,
//! substituting each output-field projection in `p` through the map's
//! forwarding table.
//!
//! The pass is *opt-in*: the parsing phase does not run it, so default
//! plans (and the golden simulation timings) are unchanged. Callers that
//! want the reordering apply [`push_filters_down`] between analysis and
//! lowering.

use std::sync::Arc;

use crate::ast::{Expr, Lambda, Lambda2};

use super::rw::{field_reads, filter_before_map_safe, map_forwards};

/// One applied rewrite, for logs and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReorderDecision {
    /// The map parameter name at the rewrite site (a human-readable anchor;
    /// the IR has no stable node identities).
    pub map_param: String,
    /// `true` when the map was the identity (the predicate was moved
    /// verbatim); `false` when projections were rewritten through the
    /// forwarding table.
    pub identity_map: bool,
}

/// Push filters below maps wherever the read/write sets prove it safe.
/// Returns the rewritten expression and one [`ReorderDecision`] per applied
/// rewrite (bottom-up order).
pub fn push_filters_down(e: &Expr) -> (Expr, Vec<ReorderDecision>) {
    let mut decisions = Vec::new();
    let out = go(e, &mut decisions);
    (out, decisions)
}

fn go(e: &Expr, out: &mut Vec<ReorderDecision>) -> Expr {
    // Rebuild children first (bottom-up), then try the local rewrite.
    let rebuilt = rebuild(e, out);
    try_push(rebuilt, out)
}

fn try_push(e: Expr, out: &mut Vec<ReorderDecision>) -> Expr {
    // filter(map(xs, m), p)  =>  map(filter(xs, p'), m)
    let Expr::Filter(input, pred) = e else { return e };
    // Peel span wrappers off the input to see the map; the rewrite drops
    // them (the reordered tree is synthetic anyway).
    let inner = input.unspanned().clone();
    let Expr::Map(xs, m) = inner else { return Expr::Filter(input, pred) };
    let pred_reads = field_reads(&pred);
    let fwd = map_forwards(&m);
    if !filter_before_map_safe(&pred_reads, &fwd) {
        return Expr::Filter(Box::new(Expr::Map(xs, m)), pred);
    }
    let new_pred = if fwd.identity {
        pred.clone()
    } else {
        let body = substitute_projections(&pred.body, &pred.param, &fwd.forwards);
        Lambda { param: pred.param.clone(), body: Arc::new(body) }
    };
    out.push(ReorderDecision { map_param: m.param.clone(), identity_map: fwd.identity });
    // The pushed-down filter may expose further rewrites (map chains).
    let pushed = try_push(Expr::Filter(xs, new_pred), out);
    Expr::Map(Box::new(pushed), m)
}

/// Rewrite `param.j` into `param.forwards[j]` throughout a predicate body,
/// honoring shadowing of `param`. Only called when the safety predicate
/// holds, so every such projection has a forwarding entry.
fn substitute_projections(
    e: &Expr,
    param: &str,
    forwards: &std::collections::BTreeMap<usize, usize>,
) -> Expr {
    if let Expr::Proj(x, j) = e.unspanned() {
        if matches!(x.unspanned(), Expr::Var(n) if n == param) {
            if let Some(i) = forwards.get(j) {
                return Expr::proj(Expr::var(param), *i);
            }
        }
    }
    match e {
        Expr::Spanned(_, inner) => substitute_projections(inner, param, forwards),
        // A shadowing binder ends the substitution in the shadowed scope.
        Expr::Let(n, v, b) if n == param => {
            Expr::Let(n.clone(), Box::new(substitute_projections(v, param, forwards)), b.clone())
        }
        Expr::Map(x, l) | Expr::Filter(x, l) | Expr::FlatMapTuple(x, l) if l.param == param => {
            let x2 = Box::new(substitute_projections(x, param, forwards));
            match e {
                Expr::Map(..) => Expr::Map(x2, l.clone()),
                Expr::Filter(..) => Expr::Filter(x2, l.clone()),
                _ => Expr::FlatMapTuple(x2, l.clone()),
            }
        }
        _ => rebuild_with(e, &mut |child| substitute_projections(child, param, forwards)),
    }
}

/// Rebuild `e` with `f` applied to every direct child expression. Shared
/// with the plan-rewrite pass ([`super::plan`]).
pub(crate) fn rebuild_with(e: &Expr, f: &mut impl FnMut(&Expr) -> Expr) -> Expr {
    let lam = |l: &Lambda, f: &mut dyn FnMut(&Expr) -> Expr| Lambda {
        param: l.param.clone(),
        body: Arc::new(f(&l.body)),
    };
    let lam2 = |l: &Lambda2, f: &mut dyn FnMut(&Expr) -> Expr| Lambda2 {
        a: l.a.clone(),
        b: l.b.clone(),
        body: Arc::new(f(&l.body)),
    };
    match e {
        Expr::Spanned(sp, inner) => Expr::Spanned(*sp, Box::new(f(inner))),
        Expr::Const(_) | Expr::Var(_) | Expr::Source(_) => e.clone(),
        Expr::Tuple(items) => Expr::Tuple(items.iter().map(&mut *f).collect()),
        Expr::Proj(x, i) => Expr::Proj(Box::new(f(x)), *i),
        Expr::Bin(op, a, b) => Expr::Bin(*op, Box::new(f(a)), Box::new(f(b))),
        Expr::Un(op, a) => Expr::Un(*op, Box::new(f(a))),
        Expr::Let(n, v, b) => Expr::Let(n.clone(), Box::new(f(v)), Box::new(f(b))),
        Expr::If(c, t, el) => Expr::If(Box::new(f(c)), Box::new(f(t)), Box::new(f(el))),
        Expr::Loop { init, cond, step, result } => Expr::Loop {
            init: init.iter().map(|(n, x)| (n.clone(), f(x))).collect(),
            cond: Box::new(f(cond)),
            step: step.iter().map(&mut *f).collect(),
            result: Box::new(f(result)),
        },
        Expr::Map(x, l) => Expr::Map(Box::new(f(x)), lam(l, f)),
        Expr::Filter(x, l) => Expr::Filter(Box::new(f(x)), lam(l, f)),
        Expr::FlatMapTuple(x, l) => Expr::FlatMapTuple(Box::new(f(x)), lam(l, f)),
        Expr::GroupByKey(x) => Expr::GroupByKey(Box::new(f(x))),
        Expr::ReduceByKey(x, l) => Expr::ReduceByKey(Box::new(f(x)), lam2(l, f)),
        Expr::Join(a, b) => Expr::Join(Box::new(f(a)), Box::new(f(b))),
        Expr::Distinct(x) => Expr::Distinct(Box::new(f(x))),
        Expr::Union(a, b) => Expr::Union(Box::new(f(a)), Box::new(f(b))),
        Expr::Count(x) => Expr::Count(Box::new(f(x))),
        Expr::Cache(x) => Expr::Cache(Box::new(f(x))),
        Expr::Fold(x, z, l) => Expr::Fold(Box::new(f(x)), Box::new(f(z)), lam2(l, f)),
        Expr::GroupByKeyIntoNestedBag(x) => Expr::GroupByKeyIntoNestedBag(Box::new(f(x))),
        Expr::MapWithLiftedUdf { input, udf, closures } => Expr::MapWithLiftedUdf {
            input: Box::new(f(input)),
            udf: lam(udf, f),
            closures: closures.clone(),
        },
    }
}

fn rebuild(e: &Expr, out: &mut Vec<ReorderDecision>) -> Expr {
    rebuild_with(e, &mut |child| go(child, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinOp;

    // filter(map(xs, x => (x.1, x.0)), p => p.0 > 5)
    fn swap_then_filter() -> Expr {
        Expr::Filter(
            Box::new(Expr::Map(
                Box::new(Expr::Source("xs".into())),
                Lambda::new(
                    "x",
                    Expr::Tuple(vec![Expr::proj(Expr::var("x"), 1), Expr::proj(Expr::var("x"), 0)]),
                ),
            )),
            Lambda::new("p", Expr::bin(BinOp::Gt, Expr::proj(Expr::var("p"), 0), Expr::long(5))),
        )
    }

    #[test]
    fn pushes_filter_through_forwarding_map() {
        let (out, decisions) = push_filters_down(&swap_then_filter());
        assert_eq!(decisions.len(), 1);
        assert!(!decisions[0].identity_map);
        // Now a map over a filter, with the projection rewritten 0 -> 1.
        let Expr::Map(inner, _) = out else { panic!("expected map on top, got {out:?}") };
        let Expr::Filter(src, pred) = *inner else { panic!("expected filter below") };
        assert!(matches!(*src, Expr::Source(_)));
        assert_eq!(
            pred.body.strip_spans(),
            Expr::bin(BinOp::Gt, Expr::proj(Expr::var("p"), 1), Expr::long(5))
        );
    }

    #[test]
    fn leaves_unsafe_sites_alone() {
        // filter(map(xs, x => (x.0 + 1,)), p => p.0 > 5): field 0 is computed.
        let e = Expr::Filter(
            Box::new(Expr::Map(
                Box::new(Expr::Source("xs".into())),
                Lambda::new(
                    "x",
                    Expr::Tuple(vec![Expr::bin(
                        BinOp::Add,
                        Expr::proj(Expr::var("x"), 0),
                        Expr::long(1),
                    )]),
                ),
            )),
            Lambda::new("p", Expr::bin(BinOp::Gt, Expr::proj(Expr::var("p"), 0), Expr::long(5))),
        );
        let (out, decisions) = push_filters_down(&e);
        assert!(decisions.is_empty());
        assert_eq!(out, e);
    }

    #[test]
    fn identity_map_moves_predicate_verbatim() {
        let e = Expr::Filter(
            Box::new(Expr::Map(
                Box::new(Expr::Source("xs".into())),
                Lambda::new("x", Expr::var("x")),
            )),
            Lambda::new("p", Expr::bin(BinOp::Gt, Expr::var("p"), Expr::long(5))),
        );
        let (out, decisions) = push_filters_down(&e);
        assert_eq!(decisions.len(), 1);
        assert!(decisions[0].identity_map);
        assert!(matches!(out, Expr::Map(..)));
    }

    #[test]
    fn reordered_plan_computes_the_same_result() {
        use crate::lower::{Lowering, RtVal};
        use crate::value::Value;
        use matryoshka_core::MatryoshkaConfig;
        use matryoshka_engine::Engine;
        use std::collections::HashMap;

        let e = swap_then_filter();
        let (reordered, decisions) = push_filters_down(&e);
        assert_eq!(decisions.len(), 1);

        let data: Vec<Value> =
            (0..20).map(|i| Value::tuple(vec![Value::Long(i), Value::Long(i % 10)])).collect();
        let run = |prog: &Expr| {
            let engine = Engine::local();
            let xs = engine.parallelize(data.clone(), 3);
            let lowering = Lowering::new(engine, MatryoshkaConfig::optimized());
            let out = lowering.run(prog, &HashMap::from([("xs".to_string(), xs)])).unwrap();
            let RtVal::Bag(b) = out else { panic!("expected a bag result") };
            let mut rows = b.collect().unwrap();
            rows.sort();
            rows
        };
        assert_eq!(run(&e), run(&reordered));
    }
}
