//! Read/write-set extraction for UDFs, in the style of Hueske et al.'s
//! black-box-opening dataflow optimization: which fields of its input tuple
//! a UDF *reads*, and which input fields a map UDF *forwards* verbatim into
//! its output. The engine-agnostic data model and the safety predicate
//! ([`filter_before_map_safe`]) live in
//! [`matryoshka_core::optimizer`]; this module walks IR lambdas to fill it
//! in, and [`super::reorder`] applies it.

pub use matryoshka_core::optimizer::{filter_before_map_safe, MapForwards, UdfFieldUse};

use crate::ast::{Expr, Lambda};

/// The read set of `l`: the input tuple fields its body projects out of the
/// parameter, or "the whole input" if the parameter is used any other way.
///
/// Conservative by construction: re-binding the parameter name (an inner
/// lambda, `let`, or loop variable of the same name) shadows it, and any
/// non-projection use — including passing the parameter to an inner UDF —
/// degrades to [`UdfFieldUse::whole`].
pub fn field_reads(l: &Lambda) -> UdfFieldUse {
    let mut use_ = UdfFieldUse::default();
    go(&l.body, &l.param, 0, &mut use_);
    use_
}

/// `shadow` counts active re-bindings of `param`; reads only count at 0.
fn go(e: &Expr, param: &str, shadow: u32, out: &mut UdfFieldUse) {
    // A projection directly on the (unshadowed) parameter is a field read;
    // don't descend into it, or the bare `Var` underneath would flip
    // `reads_whole`.
    if shadow == 0 {
        if let Expr::Proj(x, i) = e.unspanned() {
            if matches!(x.unspanned(), Expr::Var(n) if n == param) {
                out.reads.insert(*i);
                return;
            }
        }
    }
    let sh = |binds: bool| if binds { shadow + 1 } else { shadow };
    match e {
        Expr::Spanned(_, inner) => go(inner, param, shadow, out),
        Expr::Var(n) => {
            if shadow == 0 && n == param {
                out.reads_whole = true;
            }
        }
        Expr::Const(_) | Expr::Source(_) => {}
        Expr::Tuple(items) => items.iter().for_each(|x| go(x, param, shadow, out)),
        Expr::Proj(x, _) | Expr::Un(_, x) => go(x, param, shadow, out),
        Expr::Bin(_, a, b) | Expr::Join(a, b) | Expr::Union(a, b) => {
            go(a, param, shadow, out);
            go(b, param, shadow, out);
        }
        Expr::Let(n, v, b) => {
            go(v, param, shadow, out);
            go(b, param, sh(n == param), out);
        }
        Expr::If(c, t, el) => {
            go(c, param, shadow, out);
            go(t, param, shadow, out);
            go(el, param, shadow, out);
        }
        Expr::Loop { init, cond, step, result } => {
            init.iter().for_each(|(_, x)| go(x, param, shadow, out));
            let body_shadow = sh(init.iter().any(|(n, _)| n == param));
            go(cond, param, body_shadow, out);
            step.iter().for_each(|x| go(x, param, body_shadow, out));
            go(result, param, body_shadow, out);
        }
        Expr::Map(x, l) | Expr::Filter(x, l) | Expr::FlatMapTuple(x, l) => {
            go(x, param, shadow, out);
            go(&l.body, param, sh(l.param == param), out);
        }
        Expr::GroupByKey(x)
        | Expr::Distinct(x)
        | Expr::Count(x)
        | Expr::Cache(x)
        | Expr::GroupByKeyIntoNestedBag(x) => go(x, param, shadow, out),
        Expr::ReduceByKey(x, l2) => {
            go(x, param, shadow, out);
            go(&l2.body, param, sh(l2.a == param || l2.b == param), out);
        }
        Expr::Fold(x, z, l2) => {
            go(x, param, shadow, out);
            go(z, param, shadow, out);
            go(&l2.body, param, sh(l2.a == param || l2.b == param), out);
        }
        Expr::MapWithLiftedUdf { input, udf, .. } => {
            go(input, param, shadow, out);
            go(&udf.body, param, sh(udf.param == param), out);
        }
    }
}

/// The forwarding structure of a map UDF: identity, or a tuple whose
/// components are verbatim projections of the input.
pub fn map_forwards(l: &Lambda) -> MapForwards {
    let mut fwd = MapForwards::default();
    let body = l.body.unspanned();
    if matches!(body, Expr::Var(n) if *n == l.param) {
        fwd.identity = true;
        return fwd;
    }
    if let Expr::Tuple(items) = body {
        for (j, item) in items.iter().enumerate() {
            if let Expr::Proj(x, i) = item.unspanned() {
                if matches!(x.unspanned(), Expr::Var(n) if *n == l.param) {
                    fwd.forwards.insert(j, *i);
                }
            }
        }
    }
    fwd
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Lambda};

    #[test]
    fn projection_reads_are_per_field() {
        // p => (p.1, p.0 + 1)
        let l = Lambda::new(
            "p",
            Expr::Tuple(vec![
                Expr::proj(Expr::var("p"), 1),
                Expr::bin(BinOp::Add, Expr::proj(Expr::var("p"), 0), Expr::long(1)),
            ]),
        );
        let r = field_reads(&l);
        assert!(!r.reads_whole);
        assert_eq!(r.reads.into_iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn bare_param_use_reads_whole() {
        // p => (p, p.0)
        let l = Lambda::new("p", Expr::Tuple(vec![Expr::var("p"), Expr::proj(Expr::var("p"), 0)]));
        let r = field_reads(&l);
        assert!(r.reads_whole);
        assert_eq!(r.reads.into_iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn shadowing_binder_stops_reads() {
        // p => let p = 1 in p      — the inner p is a fresh scalar
        let l = Lambda::new("p", Expr::let_("p", Expr::long(1), Expr::var("p")));
        let r = field_reads(&l);
        assert!(!r.reads_whole);
        assert!(r.reads.is_empty());
    }

    #[test]
    fn nested_projection_still_descends() {
        // p => (p.0).1 — reads field 0 (the inner projection is on a value,
        // not directly on the parameter).
        let l = Lambda::new("p", Expr::proj(Expr::proj(Expr::var("p"), 0), 1));
        let r = field_reads(&l);
        assert!(!r.reads_whole);
        assert_eq!(r.reads.into_iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn identity_and_tuple_forwards() {
        let id = Lambda::new("x", Expr::var("x"));
        assert!(map_forwards(&id).identity);

        // x => (x.1, x.0 + 1, x.0): forwards 0 <- 1 and 2 <- 0.
        let l = Lambda::new(
            "x",
            Expr::Tuple(vec![
                Expr::proj(Expr::var("x"), 1),
                Expr::bin(BinOp::Add, Expr::proj(Expr::var("x"), 0), Expr::long(1)),
                Expr::proj(Expr::var("x"), 0),
            ]),
        );
        let f = map_forwards(&l);
        assert!(!f.identity);
        assert_eq!(f.forwards.into_iter().collect::<Vec<_>>(), vec![(0, 1), (2, 0)]);
    }
}
