//! Global plan rewrites: loop-invariant subplan hoisting, common-subplan
//! elimination with auto-caching, and dead-operator elimination.
//!
//! The pass runs after type/effect checking and *before* lowering, on the
//! post-parsing-phase AST (so `map` UDFs that launch bag operations have
//! already been rewritten into [`Expr::MapWithLiftedUdf`]). It is **off by
//! default**: [`rewrite_plan`] with a default
//! [`matryoshka_core::PlanRewriteConfig`] returns the input unchanged, which
//! keeps default plans — and the golden simulation timings — bit-identical.
//!
//! Every rewrite is gated by a safety proof derived from the same facts the
//! checker establishes:
//!
//! * **Purity.** The IR is a pure expression language; the only "effects"
//!   are bag-operator launches. A subplan is movable when every UDF inside
//!   it is a pure scalar function (no bag operations in any lambda body, no
//!   bag-launching lifted UDF), so evaluating it earlier, later, once, or
//!   not at all cannot change any result.
//! * **Capture discipline.** A subplan is loop-invariant only when its free
//!   variables are disjoint from the loop's carried bindings (and from any
//!   binder introduced between the loop header and the subplan), mirroring
//!   the capture analysis in [`super::captures`].
//! * **Barriers.** An explicit [`Expr::Cache`] node is opaque: nothing is
//!   hoisted or merged into or out of it. This is the plan-level analogue of
//!   the engine's fusion barrier (`Bag::absorbable` refuses to fuse through
//!   `cache`/`checkpoint` parents and multi-consumer bags), expressed once
//!   here as [`is_rewrite_barrier`].
//! * **Cost monotonicity.** Hoisted and merged subplans are wrapped in
//!   [`Expr::Cache`], and bag-valued plans are lazy in the engine, so a
//!   speculative hoist that is never consumed never launches a job. Eager
//!   positions (driver-mode scalar reductions) are only hoisted from slots
//!   that are provably evaluated at least once (a `while` condition; any
//!   slot of a lifted do-while), so a rewritten plan never runs more stages
//!   than the baseline.
//!
//! Each applied rewrite is reported as a [`RewriteInfo`] (for the decision
//! log and `matryoshka-check --explain`) and as a `MAT093`–`MAT096` warning
//! diagnostic (for the golden diagnostics corpus).

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

use matryoshka_core::PlanRewriteConfig;

use crate::ast::{Expr, Lambda};
use crate::pretty;

use super::diag::{codes, Diagnostic, Diagnostics};
use super::reorder::rebuild_with;

/// One applied (or refused) rewrite, for the decision log, `--explain`, and
/// tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewriteInfo {
    /// Stable diagnostic code (`MAT093`–`MAT096`).
    pub code: &'static str,
    /// Short human label, e.g. `hoist __h0`.
    pub title: String,
    /// One-line re-rendered snippet of the rewritten subplan.
    pub site: String,
    /// Why the rewrite is safe (or why it was blocked).
    pub justification: String,
}

impl fmt::Display for RewriteInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: `{}` -- {}", self.code, self.title, self.site, self.justification)
    }
}

/// The result of [`rewrite_plan`].
#[derive(Debug)]
pub struct PlanRewrite {
    /// The (possibly) rewritten program.
    pub expr: Expr,
    /// `MAT093`–`MAT096` warnings describing what happened and why.
    pub diagnostics: Diagnostics,
    /// One entry per *applied* rewrite, in application order.
    pub rewrites: Vec<RewriteInfo>,
}

/// Shared barrier predicate: an explicit `cache` node is opaque to hoisting
/// and CSE, exactly as the engine's `cache`/`checkpoint` parents refuse
/// operator fusion. Both the hoist and the CSE walkers call this single
/// predicate rather than keeping private copies.
pub fn is_rewrite_barrier(e: &Expr) -> bool {
    matches!(e.unspanned(), Expr::Cache(_))
}

/// Apply the configured plan rewrites to `program`. With the default
/// (all-off) config this is the identity.
///
/// Pass order: hoisting first (it exposes merged `let`s for CSE to count),
/// then CSE + auto-caching, then dead-operator elimination (which cleans up
/// anything the earlier passes orphaned).
pub fn rewrite_plan(program: &Expr, cfg: &PlanRewriteConfig) -> PlanRewrite {
    let mut pass =
        Pass { diags: Diagnostics::new(), rewrites: Vec::new(), next_hoist: 0, next_cse: 0 };
    let mut e = program.clone();
    if cfg.enabled {
        if cfg.hoist {
            e = pass.hoist(&e, false);
        }
        if cfg.cse {
            e = pass.cse(&e);
            e = pass.auto_cache(&e);
        }
        if cfg.dce {
            e = pass.dce(&e);
        }
    }
    PlanRewrite { expr: e, diagnostics: pass.diags, rewrites: pass.rewrites }
}

struct Pass {
    diags: Diagnostics,
    rewrites: Vec<RewriteInfo>,
    next_hoist: usize,
    next_cse: usize,
}

/// Per-loop hoisting state: the loop's carried bindings, the subtrees
/// extracted so far, and a canonical-form map so structurally identical
/// candidates share one hoisted binding.
struct HoistSite {
    loop_vars: Vec<String>,
    hoisted: Vec<(String, Expr)>,
    keymap: BTreeMap<String, String>,
}

/// A candidate root: an operator whose subtree is worth materializing.
/// (`source` alone is excluded — it is already materialized input.)
fn is_plan_root(e: &Expr) -> bool {
    matches!(
        e.unspanned(),
        Expr::Map(..)
            | Expr::Filter(..)
            | Expr::FlatMapTuple(..)
            | Expr::GroupByKey(..)
            | Expr::ReduceByKey(..)
            | Expr::Join(..)
            | Expr::Distinct(..)
            | Expr::Union(..)
            | Expr::Count(..)
            | Expr::Fold(..)
            | Expr::GroupByKeyIntoNestedBag(..)
            | Expr::MapWithLiftedUdf { .. }
    )
}

/// Scalar-valued candidate roots are evaluated *eagerly* by the driver, so
/// moving one is only free when its target position is provably reached.
fn is_scalar_rooted(e: &Expr) -> bool {
    matches!(e.unspanned(), Expr::Count(..) | Expr::Fold(..))
}

/// Bag-valued roots stay lazy in the engine: a `let`-bound bag only builds
/// lineage until an action forces it.
fn is_bag_valued_root(e: &Expr) -> bool {
    matches!(
        e.unspanned(),
        Expr::Map(..)
            | Expr::Filter(..)
            | Expr::FlatMapTuple(..)
            | Expr::ReduceByKey(..)
            | Expr::Join(..)
            | Expr::Union(..)
            | Expr::Distinct(..)
            | Expr::MapWithLiftedUdf { .. }
    )
}

fn contains_barrier(e: &Expr) -> bool {
    let mut found = false;
    e.visit(&mut |x| {
        if is_rewrite_barrier(x) {
            found = true;
        }
    });
    found
}

fn contains_lifted_udf(e: &Expr) -> bool {
    let mut found = false;
    e.visit(&mut |x| {
        if matches!(x, Expr::MapWithLiftedUdf { .. }) {
            found = true;
        }
    });
    found
}

/// Every UDF in the subtree is a pure scalar function. (The effect checker
/// classifies a UDF as pure exactly when its body launches no bag
/// operation; see [`super::UdfSummary`].)
fn lambdas_pure(e: &Expr) -> bool {
    let mut ok = true;
    e.visit(&mut |x| match x {
        Expr::Map(_, l) | Expr::Filter(_, l) | Expr::FlatMapTuple(_, l)
            if l.body.contains_bag_ops() =>
        {
            ok = false;
        }
        Expr::ReduceByKey(_, l2) | Expr::Fold(_, _, l2) if l2.body.contains_bag_ops() => {
            ok = false;
        }
        _ => {}
    });
    ok
}

/// Purity/barrier gate shared by hoisting and CSE. `Some(reason)` blocks.
fn impurity_reason(e: &Expr) -> Option<String> {
    if contains_lifted_udf(e) {
        return Some(
            "contains a bag-launching (lifted) UDF, which the purity analysis does not certify"
                .to_string(),
        );
    }
    if !lambdas_pure(e) {
        return Some("a UDF in the subplan is not a pure scalar function".to_string());
    }
    if contains_barrier(e) {
        return Some("contains an explicit `cache` barrier".to_string());
    }
    None
}

/// One-line, whitespace-collapsed source snippet for diagnostics.
fn snippet(e: &Expr) -> String {
    let s = pretty::to_source(e);
    let s = s.split_whitespace().collect::<Vec<_>>().join(" ");
    if s.chars().count() > 72 {
        let mut t: String = s.chars().take(72).collect();
        t.push('…');
        t
    } else {
        s
    }
}

/// Node count, used to prefer merging the largest shared subplan first.
fn size(e: &Expr) -> usize {
    let mut n = 0;
    e.visit(&mut |_| n += 1);
    n
}

/// Canonical structural key: span-free, with bound variables replaced by
/// De Bruijn indices so alpha-equivalent subplans compare equal.
fn canon(e: &Expr) -> String {
    let mut out = String::new();
    canon_go(e, &mut Vec::new(), &mut out);
    out
}

fn canon_go(e: &Expr, binds: &mut Vec<String>, out: &mut String) {
    match e {
        Expr::Spanned(_, inner) => canon_go(inner, binds, out),
        Expr::Const(v) => {
            let _ = write!(out, "c({v:?})");
        }
        Expr::Var(n) => match binds.iter().rev().position(|b| b == n) {
            Some(i) => {
                let _ = write!(out, "b{i}");
            }
            None => {
                let _ = write!(out, "v({n})");
            }
        },
        Expr::Source(n) => {
            let _ = write!(out, "s({n})");
        }
        Expr::Tuple(items) => {
            out.push_str("t(");
            for x in items {
                canon_go(x, binds, out);
                out.push(',');
            }
            out.push(')');
        }
        Expr::Proj(x, i) => {
            let _ = write!(out, "p{i}(");
            canon_go(x, binds, out);
            out.push(')');
        }
        Expr::Bin(op, a, b) => {
            let _ = write!(out, "bin({op:?},");
            canon_go(a, binds, out);
            out.push(',');
            canon_go(b, binds, out);
            out.push(')');
        }
        Expr::Un(op, a) => {
            let _ = write!(out, "un({op:?},");
            canon_go(a, binds, out);
            out.push(')');
        }
        Expr::Let(n, v, b) => {
            out.push_str("let(");
            canon_go(v, binds, out);
            out.push(',');
            binds.push(n.clone());
            canon_go(b, binds, out);
            binds.pop();
            out.push(')');
        }
        Expr::If(c, t, el) => {
            out.push_str("if(");
            canon_go(c, binds, out);
            out.push(',');
            canon_go(t, binds, out);
            out.push(',');
            canon_go(el, binds, out);
            out.push(')');
        }
        Expr::Loop { init, cond, step, result } => {
            out.push_str("loop(");
            let n0 = binds.len();
            for (n, x) in init {
                canon_go(x, binds, out);
                out.push(',');
                binds.push(n.clone());
            }
            out.push(';');
            canon_go(cond, binds, out);
            out.push(';');
            for s in step {
                canon_go(s, binds, out);
                out.push(',');
            }
            out.push(';');
            canon_go(result, binds, out);
            binds.truncate(n0);
            out.push(')');
        }
        Expr::Map(x, l) | Expr::Filter(x, l) | Expr::FlatMapTuple(x, l) => {
            out.push_str(match e {
                Expr::Map(..) => "map(",
                Expr::Filter(..) => "fil(",
                _ => "fmt(",
            });
            canon_go(x, binds, out);
            out.push(',');
            binds.push(l.param.clone());
            canon_go(&l.body, binds, out);
            binds.pop();
            out.push(')');
        }
        Expr::GroupByKey(x) => {
            out.push_str("gbk(");
            canon_go(x, binds, out);
            out.push(')');
        }
        Expr::ReduceByKey(x, l2) => {
            out.push_str("rbk(");
            canon_go(x, binds, out);
            out.push(',');
            binds.push(l2.a.clone());
            binds.push(l2.b.clone());
            canon_go(&l2.body, binds, out);
            binds.pop();
            binds.pop();
            out.push(')');
        }
        Expr::Join(a, b) => {
            out.push_str("join(");
            canon_go(a, binds, out);
            out.push(',');
            canon_go(b, binds, out);
            out.push(')');
        }
        Expr::Distinct(x) => {
            out.push_str("dis(");
            canon_go(x, binds, out);
            out.push(')');
        }
        Expr::Union(a, b) => {
            out.push_str("uni(");
            canon_go(a, binds, out);
            out.push(',');
            canon_go(b, binds, out);
            out.push(')');
        }
        Expr::Count(x) => {
            out.push_str("cnt(");
            canon_go(x, binds, out);
            out.push(')');
        }
        Expr::Cache(x) => {
            out.push_str("cache(");
            canon_go(x, binds, out);
            out.push(')');
        }
        Expr::Fold(x, z, l2) => {
            out.push_str("fold(");
            canon_go(x, binds, out);
            out.push(',');
            canon_go(z, binds, out);
            out.push(',');
            binds.push(l2.a.clone());
            binds.push(l2.b.clone());
            canon_go(&l2.body, binds, out);
            binds.pop();
            binds.pop();
            out.push(')');
        }
        Expr::GroupByKeyIntoNestedBag(x) => {
            out.push_str("gbkn(");
            canon_go(x, binds, out);
            out.push(')');
        }
        Expr::MapWithLiftedUdf { input, udf, closures } => {
            let _ = write!(out, "mwlu[{}](", closures.join(","));
            canon_go(input, binds, out);
            out.push(',');
            binds.push(udf.param.clone());
            canon_go(&udf.body, binds, out);
            binds.pop();
            out.push(')');
        }
    }
}

/// Occurrence count of `name` as a free variable in `e` (shadowing-aware).
/// A lifted UDF's `closures` list counts as a use: the lowering resolves
/// those names from the environment at launch time.
fn count_uses(name: &str, e: &Expr) -> usize {
    match e {
        Expr::Spanned(_, inner) => count_uses(name, inner),
        Expr::Var(n) => usize::from(n == name),
        Expr::Const(_) | Expr::Source(_) => 0,
        Expr::Tuple(items) => items.iter().map(|x| count_uses(name, x)).sum(),
        Expr::Proj(x, _) | Expr::Un(_, x) => count_uses(name, x),
        Expr::Bin(_, a, b) | Expr::Join(a, b) | Expr::Union(a, b) => {
            count_uses(name, a) + count_uses(name, b)
        }
        Expr::Let(n, v, b) => count_uses(name, v) + if n == name { 0 } else { count_uses(name, b) },
        Expr::If(c, t, el) => count_uses(name, c) + count_uses(name, t) + count_uses(name, el),
        Expr::Loop { init, cond, step, result } => {
            let mut total = 0;
            let mut shadowed = false;
            for (n, x) in init {
                if !shadowed {
                    total += count_uses(name, x);
                }
                if n == name {
                    shadowed = true;
                }
            }
            if !shadowed {
                total += count_uses(name, cond);
                total += step.iter().map(|s| count_uses(name, s)).sum::<usize>();
                total += count_uses(name, result);
            }
            total
        }
        Expr::Map(x, l) | Expr::Filter(x, l) | Expr::FlatMapTuple(x, l) => {
            count_uses(name, x) + if l.param == name { 0 } else { count_uses(name, &l.body) }
        }
        Expr::GroupByKey(x)
        | Expr::Distinct(x)
        | Expr::Count(x)
        | Expr::Cache(x)
        | Expr::GroupByKeyIntoNestedBag(x) => count_uses(name, x),
        Expr::ReduceByKey(x, l2) => {
            count_uses(name, x)
                + if l2.a == name || l2.b == name { 0 } else { count_uses(name, &l2.body) }
        }
        Expr::Fold(x, z, l2) => {
            count_uses(name, x)
                + count_uses(name, z)
                + if l2.a == name || l2.b == name { 0 } else { count_uses(name, &l2.body) }
        }
        Expr::MapWithLiftedUdf { input, udf, closures } => {
            count_uses(name, input)
                + closures.iter().filter(|c| c.as_str() == name).count()
                + if udf.param == name { 0 } else { count_uses(name, &udf.body) }
        }
    }
}

// ---------------------------------------------------------------------------
// Loop-invariant hoisting
// ---------------------------------------------------------------------------

impl Pass {
    /// Walk the whole program, processing every loop outermost-first.
    /// `lifted` is true inside a lifted UDF body, where loops are do-while
    /// (step and condition both run at least once) and all operator results
    /// stay lazy.
    fn hoist(&mut self, e: &Expr, lifted: bool) -> Expr {
        match e {
            Expr::Spanned(sp, inner) => Expr::Spanned(*sp, Box::new(self.hoist(inner, lifted))),
            Expr::MapWithLiftedUdf { input, udf, closures } => Expr::MapWithLiftedUdf {
                input: Box::new(self.hoist(input, lifted)),
                udf: Lambda {
                    param: udf.param.clone(),
                    body: Arc::new(self.hoist(&udf.body, true)),
                },
                closures: closures.clone(),
            },
            Expr::Loop { init, cond, step, result } => {
                self.hoist_loop(init, cond, step, result, lifted)
            }
            _ => rebuild_with(e, &mut |c| self.hoist(c, lifted)),
        }
    }

    fn hoist_loop(
        &mut self,
        init: &[(String, Expr)],
        cond: &Expr,
        step: &[Expr],
        result: &Expr,
        lifted: bool,
    ) -> Expr {
        let loop_vars: Vec<String> = init.iter().map(|(n, _)| n.clone()).collect();
        let mut site = HoistSite {
            loop_vars: loop_vars.clone(),
            hoisted: Vec::new(),
            keymap: BTreeMap::new(),
        };
        let mut bound = loop_vars.clone();
        // A `while` condition runs at least once in both driver and lifted
        // modes; a driver `while` step may run zero times, so scalar-rooted
        // (eager) hoists from the step are only allowed in lifted do-while
        // loops.
        let cond2 =
            self.hoist_slot(cond, "loop condition", &mut bound, &mut site, lifted, false, false);
        let step2: Vec<Expr> = step
            .iter()
            .map(|s| self.hoist_slot(s, "loop step", &mut bound, &mut site, lifted, !lifted, false))
            .collect();
        // Init and result run exactly once: nothing to save there, but
        // loops nested inside them still get their own pass below.
        let new_loop = Expr::Loop {
            init: init.iter().map(|(n, x)| (n.clone(), self.hoist(x, lifted))).collect(),
            cond: Box::new(self.hoist(&cond2, lifted)),
            step: step2.iter().map(|s| self.hoist(s, lifted)).collect(),
            result: Box::new(self.hoist(result, lifted)),
        };
        let mut out = new_loop;
        for (name, sub) in site.hoisted.into_iter().rev() {
            let sub = self.hoist(&sub, lifted);
            out = Expr::Let(name, Box::new(Expr::Cache(Box::new(sub))), Box::new(out));
        }
        out
    }

    /// Extract maximal invariant subtrees from one loop slot.
    ///
    /// `guarded` marks positions that may be evaluated zero times (a driver
    /// step, an `if` branch); scalar-rooted candidates are skipped there in
    /// driver mode because the driver evaluates `let`-bound reductions
    /// eagerly. `suppress` silences nested MAT094s under an already-reported
    /// blocked candidate.
    #[allow(clippy::too_many_arguments)]
    fn hoist_slot(
        &mut self,
        e: &Expr,
        slot: &'static str,
        bound: &mut Vec<String>,
        site: &mut HoistSite,
        lifted: bool,
        guarded: bool,
        suppress: bool,
    ) -> Expr {
        if let Expr::Spanned(sp, inner) = e {
            return Expr::Spanned(
                *sp,
                Box::new(self.hoist_slot(inner, slot, bound, site, lifted, guarded, suppress)),
            );
        }
        if is_rewrite_barrier(e) {
            // Explicit cache: opaque, exactly like a checkpoint in the
            // engine's fusion pass.
            return e.clone();
        }
        if is_plan_root(e) {
            if is_scalar_rooted(e) && guarded && !lifted {
                // An eager scalar hoist from a maybe-skipped position could
                // add a job; descend for lazy bag-valued pieces instead.
                return self.hoist_slot_children(e, slot, bound, site, lifted, guarded, suppress);
            }
            let fv = e.free_vars();
            let carried: Vec<&String> = fv.iter().filter(|v| site.loop_vars.contains(v)).collect();
            if !carried.is_empty() {
                if !suppress {
                    let names =
                        carried.iter().map(|s| format!("`{s}`")).collect::<Vec<_>>().join(", ");
                    let reason = format!("depends on loop-carried binding(s) {names}");
                    self.diags.push(
                        Diagnostic::warning(
                            codes::PLAN_HOIST_BLOCKED,
                            e.span(),
                            format!("loop-invariant hoist blocked: subplan {reason}"),
                        )
                        .with_snippet(snippet(e)),
                    );
                }
                return self.hoist_slot_children(e, slot, bound, site, lifted, guarded, true);
            }
            if fv.iter().any(|v| bound.contains(v)) {
                // Blocked only by a binder local to this slot — not a
                // loop-carried dependency, so stay quiet and look deeper.
                return self.hoist_slot_children(e, slot, bound, site, lifted, guarded, suppress);
            }
            if let Some(reason) = impurity_reason(e) {
                if !suppress {
                    self.diags.push(
                        Diagnostic::warning(
                            codes::PLAN_HOIST_BLOCKED,
                            e.span(),
                            format!("loop-invariant hoist blocked: subplan {reason}"),
                        )
                        .with_snippet(snippet(e)),
                    );
                }
                return self.hoist_slot_children(e, slot, bound, site, lifted, guarded, true);
            }
            // Safe: invariant, pure, barrier-free. Hoist (or reuse an
            // already-hoisted structurally identical subtree).
            let stripped = e.strip_spans();
            let key = canon(&stripped);
            if let Some(name) = site.keymap.get(&key) {
                return Expr::var(name);
            }
            let name = format!("__h{}", self.next_hoist);
            self.next_hoist += 1;
            site.keymap.insert(key, name.clone());
            let justification = format!(
                "loop-invariant in the {slot}: free variables are all bound outside the loop \
                 and every UDF is a pure scalar function; materialized once above the loop"
            );
            self.diags.push(
                Diagnostic::warning(
                    codes::PLAN_HOIST,
                    e.span(),
                    format!("loop-invariant subplan hoisted out of the {slot} as `{name}`"),
                )
                .with_note(justification.clone())
                .with_snippet(snippet(e)),
            );
            self.rewrites.push(RewriteInfo {
                code: codes::PLAN_HOIST,
                title: format!("hoist {name}"),
                site: snippet(e),
                justification,
            });
            site.hoisted.push((name.clone(), stripped));
            Expr::var(&name)
        } else {
            self.hoist_slot_children(e, slot, bound, site, lifted, guarded, suppress)
        }
    }

    /// Structural descent for [`Pass::hoist_slot`]: tracks binders, treats
    /// UDF bodies as opaque (hoisting across a mode boundary would change
    /// which environment the subplan is evaluated in), and marks `if`
    /// branches and nested driver steps as guarded.
    #[allow(clippy::too_many_arguments)]
    fn hoist_slot_children(
        &mut self,
        e: &Expr,
        slot: &'static str,
        bound: &mut Vec<String>,
        site: &mut HoistSite,
        lifted: bool,
        guarded: bool,
        suppress: bool,
    ) -> Expr {
        match e {
            Expr::Let(n, v, b) => {
                let v2 = self.hoist_slot(v, slot, bound, site, lifted, guarded, suppress);
                bound.push(n.clone());
                let b2 = self.hoist_slot(b, slot, bound, site, lifted, guarded, suppress);
                bound.pop();
                Expr::Let(n.clone(), Box::new(v2), Box::new(b2))
            }
            Expr::If(c, t, el) => {
                let c2 = self.hoist_slot(c, slot, bound, site, lifted, guarded, suppress);
                let t2 = self.hoist_slot(t, slot, bound, site, lifted, true, suppress);
                let el2 = self.hoist_slot(el, slot, bound, site, lifted, true, suppress);
                Expr::If(Box::new(c2), Box::new(t2), Box::new(el2))
            }
            Expr::Loop { init, cond, step, result } => {
                // A nested loop's variables block hoisting past it; the
                // outer hoist pass revisits the loop itself afterwards.
                let n0 = bound.len();
                let mut init2 = Vec::new();
                for (n, x) in init {
                    init2.push((
                        n.clone(),
                        self.hoist_slot(x, slot, bound, site, lifted, guarded, suppress),
                    ));
                    bound.push(n.clone());
                }
                let cond2 = self.hoist_slot(cond, slot, bound, site, lifted, guarded, suppress);
                let step2: Vec<Expr> = step
                    .iter()
                    .map(|s| {
                        self.hoist_slot(s, slot, bound, site, lifted, guarded || !lifted, suppress)
                    })
                    .collect();
                let result2 = self.hoist_slot(result, slot, bound, site, lifted, guarded, suppress);
                bound.truncate(n0);
                Expr::Loop {
                    init: init2,
                    cond: Box::new(cond2),
                    step: step2,
                    result: Box::new(result2),
                }
            }
            Expr::Map(x, l) => Expr::Map(
                Box::new(self.hoist_slot(x, slot, bound, site, lifted, guarded, suppress)),
                l.clone(),
            ),
            Expr::Filter(x, l) => Expr::Filter(
                Box::new(self.hoist_slot(x, slot, bound, site, lifted, guarded, suppress)),
                l.clone(),
            ),
            Expr::FlatMapTuple(x, l) => Expr::FlatMapTuple(
                Box::new(self.hoist_slot(x, slot, bound, site, lifted, guarded, suppress)),
                l.clone(),
            ),
            Expr::ReduceByKey(x, l2) => Expr::ReduceByKey(
                Box::new(self.hoist_slot(x, slot, bound, site, lifted, guarded, suppress)),
                l2.clone(),
            ),
            Expr::Fold(x, z, l2) => Expr::Fold(
                Box::new(self.hoist_slot(x, slot, bound, site, lifted, guarded, suppress)),
                Box::new(self.hoist_slot(z, slot, bound, site, lifted, guarded, suppress)),
                l2.clone(),
            ),
            Expr::MapWithLiftedUdf { input, udf, closures } => Expr::MapWithLiftedUdf {
                input: Box::new(
                    self.hoist_slot(input, slot, bound, site, lifted, guarded, suppress),
                ),
                udf: udf.clone(),
                closures: closures.clone(),
            },
            _ => rebuild_with(e, &mut |c| {
                self.hoist_slot(c, slot, bound, site, lifted, guarded, suppress)
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Common-subplan elimination and auto-caching
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct CseOcc {
    /// Occurrences on unconditionally-evaluated paths.
    trigger: usize,
    /// All eligible occurrences.
    total: usize,
    size: usize,
    bag_rooted: bool,
    example: Expr,
}

impl Pass {
    /// CSE over each region: lifted UDF bodies first (each is its own
    /// region — subplans never move across the driver/lifted boundary
    /// because the closure lists and evaluation environments differ), then
    /// the driver region.
    fn cse(&mut self, e: &Expr) -> Expr {
        let e = self.cse_udf_regions(e);
        self.cse_region(e, Vec::new(), false)
    }

    fn cse_udf_regions(&mut self, e: &Expr) -> Expr {
        match e {
            Expr::MapWithLiftedUdf { input, udf, closures } => {
                let input = Box::new(self.cse_udf_regions(input));
                let body = self.cse_udf_regions(&udf.body);
                let body = self.cse_region(body, vec![udf.param.clone()], true);
                Expr::MapWithLiftedUdf {
                    input,
                    udf: Lambda { param: udf.param.clone(), body: Arc::new(body) },
                    closures: closures.clone(),
                }
            }
            _ => rebuild_with(e, &mut |c| self.cse_udf_regions(c)),
        }
    }

    /// Repeatedly merge the largest shared subplan until none is shared.
    /// Scalar-rooted merges require two occurrences on unconditional paths
    /// (the driver evaluates the merged `let` eagerly); bag-rooted merges
    /// stay lazy, so any two occurrences qualify.
    fn cse_region(&mut self, e: Expr, init_bound: Vec<String>, lifted: bool) -> Expr {
        let mut e = e;
        for _ in 0..32 {
            let mut occ: BTreeMap<String, CseOcc> = BTreeMap::new();
            cse_collect(&e, &mut init_bound.clone(), true, lifted, &mut occ);
            let pick = occ
                .iter()
                .filter(|(_, o)| if lifted || o.bag_rooted { o.total >= 2 } else { o.trigger >= 2 })
                .max_by_key(|(_, o)| o.size)
                .map(|(k, o)| (k.clone(), o.clone()));
            let Some((key, info)) = pick else { break };
            let name = format!("__cse{}", self.next_cse);
            self.next_cse += 1;
            let replaced = cse_replace(&e, &mut init_bound.clone(), &key, &name);
            let justification = format!(
                "{} structurally identical occurrences (after span-stripping and α-renaming) \
                 with pure UDFs merged; the shared subplan is materialized once behind an \
                 explicit cache node so every consumer reuses the same partitions",
                info.total
            );
            self.diags.push(
                Diagnostic::warning(
                    codes::PLAN_CSE,
                    None,
                    format!(
                        "{} occurrences of a common subplan merged into `{name}` and cached",
                        info.total
                    ),
                )
                .with_note(justification.clone())
                .with_snippet(snippet(&info.example)),
            );
            self.rewrites.push(RewriteInfo {
                code: codes::PLAN_CSE,
                title: format!("cse {name}"),
                site: snippet(&info.example),
                justification,
            });
            e = Expr::Let(name, Box::new(Expr::Cache(Box::new(info.example))), Box::new(replaced));
        }
        e
    }

    /// Wrap the value of any multi-consumer `let`-bound bag subplan in an
    /// explicit cache node, so the engine shares one set of `Arc`
    /// partitions across consumers instead of ever recomputing.
    fn auto_cache(&mut self, e: &Expr) -> Expr {
        let e2 = rebuild_with(e, &mut |c| self.auto_cache(c));
        if let Expr::Let(n, v, b) = &e2 {
            let uses = count_uses(n, b);
            if uses >= 2 && is_bag_valued_root(v) && !is_rewrite_barrier(v) {
                let justification = format!(
                    "subplan has {uses} consumers; caching is the identity on results and lets \
                     every consumer share one materialization"
                );
                self.diags.push(
                    Diagnostic::warning(
                        codes::PLAN_CSE,
                        v.span(),
                        format!("multi-consumer subplan `{n}` ({uses} uses) cached"),
                    )
                    .with_note(justification.clone())
                    .with_snippet(snippet(v)),
                );
                self.rewrites.push(RewriteInfo {
                    code: codes::PLAN_CSE,
                    title: format!("auto-cache {n}"),
                    site: snippet(v),
                    justification,
                });
                return Expr::Let(
                    n.clone(),
                    Box::new(Expr::Cache(Box::new((**v).clone()))),
                    Box::new((**b).clone()),
                );
            }
        }
        e2
    }

    // -----------------------------------------------------------------------
    // Dead-operator elimination
    // -----------------------------------------------------------------------

    /// Drop `let`-bound operator subplans whose outputs are never consumed.
    /// Purity makes this trivially safe: an unconsumed pure subplan has no
    /// observable effect. Unused *scalar* bindings are left to the checker's
    /// MAT090 warning.
    fn dce(&mut self, e: &Expr) -> Expr {
        let e2 = rebuild_with(e, &mut |c| self.dce(c));
        if let Expr::Let(n, v, b) = &e2 {
            if v.contains_bag_ops() && count_uses(n, b) == 0 {
                let justification = format!(
                    "the output of `{n}` is never consumed and the subplan is pure, so \
                     dropping it cannot change any result"
                );
                self.diags.push(
                    Diagnostic::warning(
                        codes::PLAN_DEAD_OP,
                        v.span(),
                        format!("dead operator subplan `{n}` eliminated"),
                    )
                    .with_note(justification.clone())
                    .with_snippet(snippet(v)),
                );
                self.rewrites.push(RewriteInfo {
                    code: codes::PLAN_DEAD_OP,
                    title: format!("drop {n}"),
                    site: snippet(v),
                    justification,
                });
                return (**b).clone();
            }
        }
        e2
    }
}

/// Collect CSE candidate occurrences. `trigger` is true on paths evaluated
/// at least once per program run.
fn cse_collect(
    e: &Expr,
    bound: &mut Vec<String>,
    trigger: bool,
    lifted: bool,
    occ: &mut BTreeMap<String, CseOcc>,
) {
    match e {
        Expr::Spanned(_, inner) => return cse_collect(inner, bound, trigger, lifted, occ),
        Expr::Cache(_) => return, // barrier: opaque
        _ => {}
    }
    if is_plan_root(e)
        && impurity_reason(e).is_none()
        && !e.free_vars().iter().any(|v| bound.contains(v))
    {
        let stripped = e.strip_spans();
        let entry = occ.entry(canon(&stripped)).or_insert_with(|| CseOcc {
            trigger: 0,
            total: 0,
            size: size(e),
            bag_rooted: is_bag_valued_root(e),
            example: stripped,
        });
        entry.total += 1;
        entry.trigger += usize::from(trigger);
    }
    match e {
        Expr::Const(_) | Expr::Var(_) | Expr::Source(_) | Expr::Spanned(..) | Expr::Cache(_) => {}
        Expr::Tuple(items) => {
            items.iter().for_each(|x| cse_collect(x, bound, trigger, lifted, occ))
        }
        Expr::Proj(x, _) | Expr::Un(_, x) => cse_collect(x, bound, trigger, lifted, occ),
        Expr::Bin(_, a, b) | Expr::Join(a, b) | Expr::Union(a, b) => {
            cse_collect(a, bound, trigger, lifted, occ);
            cse_collect(b, bound, trigger, lifted, occ);
        }
        Expr::Let(n, v, b) => {
            cse_collect(v, bound, trigger, lifted, occ);
            bound.push(n.clone());
            cse_collect(b, bound, trigger, lifted, occ);
            bound.pop();
        }
        Expr::If(c, t, el) => {
            cse_collect(c, bound, trigger, lifted, occ);
            cse_collect(t, bound, false, lifted, occ);
            cse_collect(el, bound, false, lifted, occ);
        }
        Expr::Loop { init, cond, step, result } => {
            let n0 = bound.len();
            for (n, x) in init {
                cse_collect(x, bound, trigger, lifted, occ);
                bound.push(n.clone());
            }
            cse_collect(cond, bound, trigger, lifted, occ);
            // A driver `while` step may run zero times; a lifted do-while
            // step always runs.
            let step_trigger = trigger && lifted;
            step.iter().for_each(|s| cse_collect(s, bound, step_trigger, lifted, occ));
            cse_collect(result, bound, trigger, lifted, occ);
            bound.truncate(n0);
        }
        // UDF bodies are opaque: leaf lambdas are scalar, and lifted UDF
        // bodies are separate regions.
        Expr::Map(x, _) | Expr::Filter(x, _) | Expr::FlatMapTuple(x, _) => {
            cse_collect(x, bound, trigger, lifted, occ)
        }
        Expr::ReduceByKey(x, _) => cse_collect(x, bound, trigger, lifted, occ),
        Expr::Fold(x, z, _) => {
            cse_collect(x, bound, trigger, lifted, occ);
            cse_collect(z, bound, trigger, lifted, occ);
        }
        Expr::MapWithLiftedUdf { input, .. } => cse_collect(input, bound, trigger, lifted, occ),
        Expr::GroupByKey(x)
        | Expr::Distinct(x)
        | Expr::Count(x)
        | Expr::GroupByKeyIntoNestedBag(x) => cse_collect(x, bound, trigger, lifted, occ),
    }
}

/// Replace every eligible occurrence of the subplan keyed `key` with a
/// reference to `name`. Mirrors the traversal of [`cse_collect`].
fn cse_replace(e: &Expr, bound: &mut Vec<String>, key: &str, name: &str) -> Expr {
    match e {
        Expr::Spanned(sp, inner) => {
            return Expr::Spanned(*sp, Box::new(cse_replace(inner, bound, key, name)))
        }
        Expr::Cache(_) => return e.clone(),
        _ => {}
    }
    if is_plan_root(e)
        && impurity_reason(e).is_none()
        && !e.free_vars().iter().any(|v| bound.contains(v))
        && canon(&e.strip_spans()) == key
    {
        return Expr::var(name);
    }
    match e {
        Expr::Let(n, v, b) => {
            let v2 = cse_replace(v, bound, key, name);
            bound.push(n.clone());
            let b2 = cse_replace(b, bound, key, name);
            bound.pop();
            Expr::Let(n.clone(), Box::new(v2), Box::new(b2))
        }
        Expr::Loop { init, cond, step, result } => {
            let n0 = bound.len();
            let mut init2 = Vec::new();
            for (n, x) in init {
                init2.push((n.clone(), cse_replace(x, bound, key, name)));
                bound.push(n.clone());
            }
            let cond2 = cse_replace(cond, bound, key, name);
            let step2: Vec<Expr> = step.iter().map(|s| cse_replace(s, bound, key, name)).collect();
            let result2 = cse_replace(result, bound, key, name);
            bound.truncate(n0);
            Expr::Loop {
                init: init2,
                cond: Box::new(cond2),
                step: step2,
                result: Box::new(result2),
            }
        }
        Expr::Map(x, l) => Expr::Map(Box::new(cse_replace(x, bound, key, name)), l.clone()),
        Expr::Filter(x, l) => Expr::Filter(Box::new(cse_replace(x, bound, key, name)), l.clone()),
        Expr::FlatMapTuple(x, l) => {
            Expr::FlatMapTuple(Box::new(cse_replace(x, bound, key, name)), l.clone())
        }
        Expr::ReduceByKey(x, l2) => {
            Expr::ReduceByKey(Box::new(cse_replace(x, bound, key, name)), l2.clone())
        }
        Expr::Fold(x, z, l2) => Expr::Fold(
            Box::new(cse_replace(x, bound, key, name)),
            Box::new(cse_replace(z, bound, key, name)),
            l2.clone(),
        ),
        Expr::MapWithLiftedUdf { input, udf, closures } => Expr::MapWithLiftedUdf {
            input: Box::new(cse_replace(input, bound, key, name)),
            udf: udf.clone(),
            closures: closures.clone(),
        },
        _ => rebuild_with(e, &mut |c| cse_replace(c, bound, key, name)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinOp;

    fn cfg_on() -> PlanRewriteConfig {
        PlanRewriteConfig::enabled()
    }

    fn cnt_distinct(src: &str) -> Expr {
        Expr::Count(Box::new(Expr::Distinct(Box::new(Expr::Source(src.into())))))
    }

    // loop (i = 0) while count(distinct(xs)) > i step i + 1 yield i
    fn invariant_cond_loop() -> Expr {
        Expr::Loop {
            init: vec![("i".into(), Expr::long(0))],
            cond: Box::new(Expr::bin(BinOp::Gt, cnt_distinct("xs"), Expr::var("i"))),
            step: vec![Expr::bin(BinOp::Add, Expr::var("i"), Expr::long(1))],
            result: Box::new(Expr::var("i")),
        }
    }

    #[test]
    fn off_by_default_is_identity() {
        let e = invariant_cond_loop();
        let out = rewrite_plan(&e, &PlanRewriteConfig::default());
        assert_eq!(out.expr, e);
        assert!(out.rewrites.is_empty());
        assert!(out.diagnostics.is_empty());
    }

    #[test]
    fn hoists_invariant_subplan_out_of_loop_condition() {
        let out = rewrite_plan(&invariant_cond_loop(), &cfg_on());
        assert_eq!(out.rewrites.len(), 1, "rewrites: {:?}", out.rewrites);
        assert_eq!(out.rewrites[0].code, codes::PLAN_HOIST);
        let Expr::Let(name, value, body) = &out.expr else {
            panic!("expected a hoisted let on top, got {:?}", out.expr);
        };
        assert_eq!(name, "__h0");
        assert!(matches!(value.unspanned(), Expr::Cache(_)));
        let Expr::Loop { cond, .. } = body.unspanned() else { panic!("expected the loop below") };
        // The condition now references the hoisted binding, not the subplan.
        assert!(!cond.contains_bag_ops());
        assert_eq!(count_uses("__h0", cond), 1);
    }

    #[test]
    fn reports_blocked_hoists_on_loop_carried_dependencies() {
        // The filter predicate captures the loop variable `i`.
        let e = Expr::Loop {
            init: vec![("i".into(), Expr::long(0))],
            cond: Box::new(Expr::bin(
                BinOp::Gt,
                Expr::Count(Box::new(Expr::Filter(
                    Box::new(Expr::Source("xs".into())),
                    Lambda::new("x", Expr::bin(BinOp::Gt, Expr::var("x"), Expr::var("i"))),
                ))),
                Expr::var("i"),
            )),
            step: vec![Expr::bin(BinOp::Add, Expr::var("i"), Expr::long(1))],
            result: Box::new(Expr::var("i")),
        };
        let out = rewrite_plan(&e, &cfg_on());
        assert!(out.rewrites.is_empty());
        let blocked: Vec<_> =
            out.diagnostics.iter().filter(|d| d.code == codes::PLAN_HOIST_BLOCKED).collect();
        assert_eq!(blocked.len(), 1, "diags: {:?}", out.diagnostics);
        assert!(blocked[0].message.contains("loop-carried"));
        // The loop is untouched.
        assert_eq!(out.expr, e);
    }

    #[test]
    fn explicit_cache_is_a_rewrite_barrier() {
        let e = Expr::Loop {
            init: vec![("i".into(), Expr::long(0))],
            cond: Box::new(Expr::bin(
                BinOp::Gt,
                Expr::Count(Box::new(Expr::Cache(Box::new(Expr::Distinct(Box::new(
                    Expr::Source("xs".into()),
                )))))),
                Expr::var("i"),
            )),
            step: vec![Expr::bin(BinOp::Add, Expr::var("i"), Expr::long(1))],
            result: Box::new(Expr::var("i")),
        };
        let out = rewrite_plan(&e, &cfg_on());
        assert!(out.rewrites.is_empty());
        assert!(out
            .diagnostics
            .iter()
            .any(|d| { d.code == codes::PLAN_HOIST_BLOCKED && d.message.contains("cache") }));
        assert_eq!(out.expr, e);
    }

    #[test]
    fn cse_merges_duplicate_scalar_subplans() {
        let e = Expr::bin(BinOp::Add, cnt_distinct("xs"), cnt_distinct("xs"));
        let out = rewrite_plan(&e, &cfg_on());
        assert_eq!(out.rewrites.len(), 1);
        assert_eq!(out.rewrites[0].code, codes::PLAN_CSE);
        let Expr::Let(name, value, body) = &out.expr else {
            panic!("expected a cse let on top, got {:?}", out.expr);
        };
        assert_eq!(name, "__cse0");
        assert!(matches!(value.unspanned(), Expr::Cache(_)));
        assert_eq!(count_uses("__cse0", body), 2);
        assert!(!body.contains_bag_ops());
    }

    #[test]
    fn cse_prefers_the_largest_shared_subplan() {
        // distinct(xs) is shared, but only inside the larger shared
        // count(distinct(xs)) — one merge of the outer subplan suffices.
        let e = Expr::bin(BinOp::Add, cnt_distinct("xs"), cnt_distinct("xs"));
        let out = rewrite_plan(&e, &cfg_on());
        let Expr::Let(_, value, _) = &out.expr else { panic!() };
        let Expr::Cache(inner) = value.unspanned() else { panic!() };
        assert!(matches!(inner.unspanned(), Expr::Count(_)));
    }

    #[test]
    fn conditional_scalar_duplicates_are_not_merged_in_driver_mode() {
        // Both `count` occurrences sit in `if` branches: merging the
        // reduction would evaluate it eagerly even when the program never
        // does. The *bag* underneath is fair game — a `let`-bound bag only
        // builds lineage until an action forces it.
        let e = Expr::If(
            Box::new(Expr::bin(BinOp::Gt, Expr::long(1), Expr::long(0))),
            Box::new(cnt_distinct("xs")),
            Box::new(cnt_distinct("xs")),
        );
        let out = rewrite_plan(&e, &cfg_on());
        // No eager (count-rooted) subplan was merged...
        let Expr::Let(_, value, body) = &out.expr else {
            panic!("expected the lazy distinct merge, got {:?}", out.expr);
        };
        let Expr::Cache(cached) = value.unspanned() else { panic!("expected cache") };
        assert!(matches!(cached.unspanned(), Expr::Distinct(_)));
        // ...so both branches still hold their own `count`.
        let Expr::If(_, t, el) = body.unspanned() else { panic!("expected if") };
        assert!(matches!(t.unspanned(), Expr::Count(_)));
        assert!(matches!(el.unspanned(), Expr::Count(_)));
    }

    #[test]
    fn auto_caches_multi_consumer_lets() {
        let map = Expr::Map(
            Box::new(Expr::Source("xs".into())),
            Lambda::new("x", Expr::bin(BinOp::Add, Expr::var("x"), Expr::long(1))),
        );
        let e =
            Expr::let_("a", map, Expr::Union(Box::new(Expr::var("a")), Box::new(Expr::var("a"))));
        let out = rewrite_plan(&e, &cfg_on());
        assert!(out.rewrites.iter().any(|r| r.title == "auto-cache a"));
        let Expr::Let(_, value, _) = &out.expr else { panic!("expected let, got {:?}", out.expr) };
        assert!(matches!(value.unspanned(), Expr::Cache(_)));
    }

    #[test]
    fn dce_drops_unused_operator_bindings() {
        let e = Expr::let_(
            "dead",
            Expr::Distinct(Box::new(Expr::Source("xs".into()))),
            Expr::Count(Box::new(Expr::Source("ys".into()))),
        );
        let out = rewrite_plan(&e, &cfg_on());
        assert_eq!(out.rewrites.len(), 1);
        assert_eq!(out.rewrites[0].code, codes::PLAN_DEAD_OP);
        assert!(matches!(out.expr, Expr::Count(_)));
        // Unused scalar bindings are the checker's business, not DCE's.
        let scalar = Expr::let_("s", Expr::long(1), Expr::long(2));
        assert_eq!(rewrite_plan(&scalar, &cfg_on()).expr, scalar);
    }

    #[test]
    fn rewritten_plan_computes_the_same_result() {
        use crate::lower::{Lowering, RtVal};
        use crate::value::Value;
        use matryoshka_core::MatryoshkaConfig;
        use matryoshka_engine::Engine;
        use std::collections::HashMap;

        // Hoist + CSE + DCE all fire in one program.
        let e = Expr::let_(
            "dead",
            Expr::Distinct(Box::new(Expr::Source("xs".into()))),
            Expr::bin(BinOp::Add, invariant_cond_loop(), cnt_distinct("xs")),
        );
        let out = rewrite_plan(&e, &cfg_on());
        assert!(out.rewrites.len() >= 2, "rewrites: {:?}", out.rewrites);

        let data: Vec<Value> = (0..20).map(|i| Value::Long(i % 5)).collect();
        let run = |prog: &Expr| {
            let engine = Engine::local();
            let xs = engine.parallelize(data.clone(), 3);
            let lowering = Lowering::new(engine, MatryoshkaConfig::optimized());
            let got = lowering.run(prog, &HashMap::from([("xs".to_string(), xs)])).unwrap();
            let RtVal::Scalar(Value::Long(n)) = got else { panic!("expected a long, got {got:?}") };
            n
        };
        assert_eq!(run(&e), run(&out.expr));
    }
}
