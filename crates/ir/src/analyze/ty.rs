//! The nesting-aware type/shape checker: assigns every expression a [`Ty`]
//! (scalar, bag-with-depth, or group pair), enforces the flattening
//! preconditions of the paper's Theorem 1 *before* lowering, and records a
//! [`UdfSummary`] (captures, effects, field reads) for every UDF.
//!
//! Unlike [`crate::parse::shape_of`] — which the rewriter still uses as a
//! local oracle — this checker is *total*: it never stops at the first
//! problem. Ill-typed subtrees get [`Ty::Unknown`] and the walk continues,
//! so a single run reports every independent defect with a stable `MAT0xx`
//! code and (for text programs) a byte span.
//!
//! The depth discipline mirrors the runtime exactly: the lowering's lifted
//! interpreter supports two levels of parallelism (driver + one lifted
//! level); `groupByKey`, `mapWithLiftedUDF` and lift-requiring `map`s inside
//! an already-lifted UDF are the runtime's "more than two levels" errors,
//! surfaced here statically as `MAT008`.

use std::fmt;

use crate::ast::{BinOp, Expr, Lambda, Lambda2, Span};
use crate::parse::Dialect;

use super::diag::{codes, Diagnostic, Diagnostics};
use super::{rw, UdfSummary};

/// The type a program expression evaluates to, as far as the flattening
/// machinery is concerned. Element types of bags are dynamic (records are
/// [`crate::value::Value`]s), so only the *nesting structure* is tracked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// A scalar value, including tuples of scalars.
    Scalar,
    /// A bag with the given nesting depth: `Bag(1)` is a flat `Bag[T]`,
    /// `Bag(2)` is a nested `Bag[(K, Bag[V])]`.
    Bag(u32),
    /// The element of a nested bag: a `(key, inner bag)` pair, where the
    /// inner bag has the given depth. This is the type of a lifted UDF's
    /// parameter when mapping over a `Bag(d + 1)`.
    Group(u32),
    /// Recovery type for ill-typed subtrees; suppresses cascading errors.
    Unknown,
}

impl Ty {
    /// Is this a bag or group (i.e. does it contain bag structure)?
    pub fn is_baggy(&self) -> bool {
        matches!(self, Ty::Bag(_) | Ty::Group(_))
    }
}

/// A refinement of [`Ty::Scalar`] used by the UDF compiler
/// ([`crate::compile`]) to pick specialized slot operations: where the shape
/// checker only needs to know "this is a scalar", the compiler wants to know
/// *which* scalar a subexpression is statically guaranteed to produce, so
/// `Long + Long` can skip the dynamic `Value` dispatch.
///
/// `Any` is the sound fallback ("could be any scalar at runtime" — UDF
/// parameters, loop variables, projections out of dynamically shaped
/// tuples). Every refinement is a *guarantee*: a subexpression whose kind is
/// [`ScalarKind::Long`] evaluates to [`crate::Value::Long`] whenever it
/// evaluates successfully.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarKind {
    /// Statically a boolean.
    Bool,
    /// Statically a 64-bit integer.
    Long,
    /// Statically a 64-bit float.
    Double,
    /// Statically a string.
    Str,
    /// Statically a tuple.
    Tuple,
    /// Statically the unit value.
    Unit,
    /// No static refinement.
    Any,
}

impl ScalarKind {
    /// The kind of a concrete runtime value (used to seed the compiler's
    /// inference from closure-capture constants).
    pub fn of_value(v: &crate::value::Value) -> ScalarKind {
        use crate::value::Value;
        match v {
            Value::Unit => ScalarKind::Unit,
            Value::Bool(_) => ScalarKind::Bool,
            Value::Long(_) => ScalarKind::Long,
            Value::Double(_) => ScalarKind::Double,
            Value::Str(_) => ScalarKind::Str,
            Value::Tuple(_) => ScalarKind::Tuple,
        }
    }

    /// Least upper bound: the kind both branches of an `if` can promise.
    pub fn join(self, other: ScalarKind) -> ScalarKind {
        if self == other {
            self
        } else {
            ScalarKind::Any
        }
    }

    /// Is this kind statically numeric (`Long` or `Double`)?
    pub fn is_numeric(self) -> bool {
        matches!(self, ScalarKind::Long | ScalarKind::Double)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Scalar => write!(f, "a scalar"),
            Ty::Bag(1) => write!(f, "a bag"),
            Ty::Bag(2) => write!(f, "a nested bag"),
            Ty::Bag(d) => write!(f, "a depth-{d} nested bag"),
            Ty::Group(d) => {
                if *d == 1 {
                    write!(f, "a (key, inner bag) group pair")
                } else {
                    write!(f, "a (key, depth-{d} bag) group pair")
                }
            }
            Ty::Unknown => write!(f, "an unknown type"),
        }
    }
}

/// One name in scope during checking.
struct Binding {
    name: String,
    ty: Ty,
    /// 0 = bound at driver level, >= 1 = bound inside a lifted UDF (its
    /// runtime representation is an `InnerScalar`/`InnerBag`, not a plain
    /// value — some leaf operations cannot consume those).
    level: u32,
    used: bool,
    span: Option<Span>,
    /// Emit `MAT090` if the binding is dropped unused (`let`s only).
    warn_unused: bool,
}

pub(super) struct Checker<'a> {
    sources: &'a [&'a str],
    dialect: Dialect,
    env: Vec<Binding>,
    pub(super) diags: Diagnostics,
    pub(super) udfs: Vec<UdfSummary>,
}

const TOO_DEEP_MSG: &str = "more than two levels of parallel operations in the IR dialect \
                            (the typed API in matryoshka-core supports deeper nesting)";
const DIQL_MSG: &str = "DIQL-like flattening does not support control flow at inner nesting levels";

impl<'a> Checker<'a> {
    pub(super) fn new(sources: &'a [&'a str], dialect: Dialect) -> Checker<'a> {
        // Source names double as bag-typed variables (the rewriter's
        // environment does the same), pre-marked used.
        let env = sources
            .iter()
            .map(|s| Binding {
                name: s.to_string(),
                ty: Ty::Bag(1),
                level: 0,
                used: true,
                span: None,
                warn_unused: false,
            })
            .collect();
        Checker { sources, dialect, env, diags: Diagnostics::new(), udfs: Vec::new() }
    }

    // --- environment ---------------------------------------------------

    fn lookup(&mut self, name: &str) -> Option<(Ty, u32)> {
        self.env.iter_mut().rev().find(|b| b.name == name).map(|b| {
            b.used = true;
            (b.ty, b.level)
        })
    }

    /// Look up without marking used (for capture summaries after the body
    /// walk already marked everything).
    fn peek(&self, name: &str) -> Option<(Ty, u32)> {
        self.env.iter().rev().find(|b| b.name == name).map(|b| (b.ty, b.level))
    }

    fn push_let(&mut self, name: &str, ty: Ty, level: u32, span: Option<Span>) {
        if self.env.iter().any(|b| b.name == name) && !name.starts_with('_') {
            self.diags.push(Diagnostic::warning(
                codes::SHADOWED_BINDING,
                span,
                format!("`{name}` shadows an enclosing binding of the same name"),
            ));
        }
        self.env.push(Binding {
            name: name.to_string(),
            ty,
            level,
            used: false,
            span,
            warn_unused: true,
        });
    }

    fn push_param(&mut self, name: &str, ty: Ty, level: u32) {
        self.env.push(Binding {
            name: name.to_string(),
            ty,
            level,
            used: true,
            span: None,
            warn_unused: false,
        });
    }

    fn pop(&mut self) {
        let b = self.env.pop().expect("balanced env scopes");
        if b.warn_unused && !b.used && !b.name.starts_with('_') {
            self.diags.push(Diagnostic::warning(
                codes::UNUSED_BINDING,
                b.span,
                format!("the binding `{}` is never used", b.name),
            ));
        }
    }

    // --- diagnostics ---------------------------------------------------

    fn error(&mut self, code: &'static str, sp: Option<Span>, msg: String, node: &Expr) {
        let mut d = Diagnostic::error(code, sp, msg);
        if sp.is_none() {
            d = d.with_snippet(snippet(node));
        }
        self.diags.push(d);
    }

    // --- the checker ---------------------------------------------------

    /// Infer the type of `e` at nesting `level` (0 = driver, 1 = inside a
    /// lifted UDF). `sp` is the nearest enclosing source span.
    pub(super) fn infer(&mut self, e: &Expr, level: u32, sp: Option<Span>) -> Ty {
        match e {
            Expr::Spanned(s, inner) => self.infer(inner, level, Some(*s)),
            Expr::Const(_) => Ty::Scalar,
            Expr::Var(n) => match self.lookup(n) {
                Some((ty, _)) => ty,
                None => {
                    self.error(codes::UNBOUND_VAR, sp, format!("unbound variable `{n}`"), e);
                    Ty::Unknown
                }
            },
            Expr::Source(n) => {
                if !self.sources.iter().any(|s| s == n) {
                    let known = if self.sources.is_empty() {
                        "no sources are declared".to_string()
                    } else {
                        format!("declared sources: {}", self.sources.join(", "))
                    };
                    self.error(
                        codes::UNBOUND_SOURCE,
                        sp,
                        format!("unknown source `{n}`; {known}"),
                        e,
                    );
                }
                Ty::Bag(1)
            }
            Expr::Tuple(items) => {
                for it in items {
                    let t = self.infer(it, level, it.span().or(sp));
                    if t.is_baggy() {
                        self.error(
                            codes::BAG_IN_TUPLE,
                            it.span().or(sp),
                            format!(
                                "{t} may not appear inside a tuple: bags do not nest inside \
                                 other data structures (Sec. 7 precondition)"
                            ),
                            it,
                        );
                    }
                }
                Ty::Scalar
            }
            Expr::Proj(x, i) => {
                let t = self.infer(x, level, x.span().or(sp));
                match t {
                    Ty::Scalar => {
                        if let Expr::Tuple(items) = x.unspanned() {
                            if *i >= items.len() {
                                self.error(
                                    codes::PROJ_OUT_OF_BOUNDS,
                                    sp,
                                    format!(
                                        "projection index {i} is out of bounds for a tuple \
                                         with {} components",
                                        items.len()
                                    ),
                                    e,
                                );
                                return Ty::Unknown;
                            }
                        }
                        Ty::Scalar
                    }
                    Ty::Group(d) => match i {
                        0 => Ty::Scalar,
                        1 => Ty::Bag(d),
                        _ => {
                            self.error(
                                codes::PROJ_OUT_OF_BOUNDS,
                                sp,
                                format!(
                                    "a group pair has exactly two components (.0 = key, \
                                     .1 = inner bag); index {i} is out of bounds"
                                ),
                                e,
                            );
                            Ty::Unknown
                        }
                    },
                    Ty::Bag(_) => {
                        self.error(
                            codes::PROJ_ON_BAG,
                            sp,
                            format!("projection on {t}; tuple projection needs a scalar tuple"),
                            e,
                        );
                        Ty::Unknown
                    }
                    Ty::Unknown => Ty::Unknown,
                }
            }
            Expr::Bin(op, a, b) => {
                for side in [a, b] {
                    let t = self.infer(side, level, side.span().or(sp));
                    if t.is_baggy() {
                        self.error(
                            codes::KIND_MISMATCH,
                            side.span().or(sp),
                            format!("the scalar operator `{}` is applied to {t}", bin_symbol(*op)),
                            side,
                        );
                    }
                }
                Ty::Scalar
            }
            Expr::Un(op, a) => {
                let t = self.infer(a, level, a.span().or(sp));
                if t.is_baggy() {
                    self.error(
                        codes::KIND_MISMATCH,
                        a.span().or(sp),
                        format!("the scalar operator `{op:?}` is applied to {t}"),
                        a,
                    );
                }
                Ty::Scalar
            }
            Expr::Let(n, v, b) => {
                let tv = self.infer(v, level, v.span().or(sp));
                self.push_let(n, tv, level, e.span().or(sp));
                let tb = self.infer(b, level, b.span().or(sp));
                self.pop();
                tb
            }
            Expr::If(c, t, el) => {
                let tc = self.infer(c, level, c.span().or(sp));
                if tc.is_baggy() {
                    self.error(
                        codes::NON_SCALAR_COND,
                        c.span().or(sp),
                        format!("the condition of an `if` must be a scalar boolean, found {tc}"),
                        c,
                    );
                }
                let tt = self.infer(t, level, t.span().or(sp));
                let te = self.infer(el, level, el.span().or(sp));
                if tt != Ty::Unknown && te != Ty::Unknown && tt != te {
                    self.error(
                        codes::BRANCH_MISMATCH,
                        sp,
                        format!("the branches of an `if` have different types: {tt} vs {te}"),
                        e,
                    );
                }
                if tt != Ty::Unknown {
                    tt
                } else {
                    te
                }
            }
            Expr::Loop { init, cond, step, result } => {
                self.infer_loop(init, cond, step, result, level, sp, e)
            }
            Expr::GroupByKey(x) | Expr::GroupByKeyIntoNestedBag(x) => {
                let t = self.infer(x, level, x.span().or(sp));
                if level >= 1 {
                    // The runtime's lifted interpreter has no third level:
                    // grouping inside an already-lifted UDF cannot execute.
                    self.error(codes::TOO_DEEP, sp, TOO_DEEP_MSG.to_string(), e);
                }
                match t {
                    Ty::Scalar | Ty::Group(_) => {
                        self.error(
                            codes::KIND_MISMATCH,
                            sp,
                            format!("groupByKey applied to {t}; it requires a flat (k, v) bag"),
                            e,
                        );
                        Ty::Unknown
                    }
                    Ty::Bag(d) => {
                        if d >= 2 && level == 0 {
                            self.error(codes::TOO_DEEP, sp, TOO_DEEP_MSG.to_string(), e);
                        }
                        Ty::Bag(2)
                    }
                    Ty::Unknown => Ty::Bag(2),
                }
            }
            Expr::Map(input, l) => self.infer_map(input, l, level, sp, e),
            Expr::MapWithLiftedUdf { input, udf, closures } => {
                self.infer_map_with_lifted_udf(input, udf, closures, level, sp, e)
            }
            Expr::Filter(input, l) => {
                let t = self.infer_flat_bag_input("filter", input, level, sp);
                if l.body.contains_bag_ops() {
                    self.error(
                        codes::BAG_OP_IN_SCALAR_UDF,
                        sp,
                        "bag operations inside a filter UDF are eliminated by splitting in the \
                         paper (Sec. 4.6); this IR requires them to be expressed as a map"
                            .to_string(),
                        e,
                    );
                }
                let tb = self.check_leaf_lambda("filter", l, level, sp);
                if tb.is_baggy() {
                    self.error(
                        codes::NON_SCALAR_COND,
                        sp,
                        format!("the filter predicate must be a scalar boolean, found {tb}"),
                        e,
                    );
                }
                match t {
                    Ty::Bag(d) => Ty::Bag(d),
                    _ => Ty::Bag(1),
                }
            }
            Expr::FlatMapTuple(input, l) => {
                self.infer_flat_bag_input("flatMap", input, level, sp);
                if l.body.contains_bag_ops() {
                    self.error(
                        codes::BAG_OP_IN_SCALAR_UDF,
                        sp,
                        "bag operations inside a flatMap UDF are eliminated by splitting in the \
                         paper (Sec. 4.6); this IR requires them to be expressed as a map"
                            .to_string(),
                        e,
                    );
                }
                let tb = self.check_leaf_lambda("flatMap", l, level, sp);
                if tb.is_baggy() {
                    self.error(
                        codes::INNER_BAG_ESCAPE,
                        sp,
                        format!(
                            "the flatMap UDF closure returns {tb}; inner bags cannot escape \
                             a leaf UDF"
                        ),
                        e,
                    );
                }
                Ty::Bag(1)
            }
            Expr::ReduceByKey(input, l2) => {
                self.infer_flat_bag_input("reduceByKey", input, level, sp);
                if l2.body.contains_bag_ops() {
                    self.error(
                        codes::BAG_OP_IN_AGG,
                        sp,
                        "bag operations inside aggregation UDFs (Sec. 7 precondition)".to_string(),
                        e,
                    );
                }
                self.check_lambda2("reduceByKey", l2, level, sp, e);
                Ty::Bag(1)
            }
            Expr::Fold(input, zero, l2) => {
                self.infer_flat_bag_input("fold", input, level, sp);
                if l2.body.contains_bag_ops() || zero.contains_bag_ops() {
                    self.error(
                        codes::BAG_OP_IN_AGG,
                        sp,
                        "bag operations inside aggregation UDFs (Sec. 7 precondition)".to_string(),
                        e,
                    );
                }
                let tz = self.infer(zero, level, zero.span().or(sp));
                if tz.is_baggy() {
                    self.error(
                        codes::KIND_MISMATCH,
                        zero.span().or(sp),
                        format!("the fold zero must be a scalar, found {tz}"),
                        zero,
                    );
                }
                // The runtime evaluates the zero in a *pure* environment:
                // lifted (inner-scalar) state cannot flow into it.
                if level >= 1 {
                    for name in super::captures::capture_names(zero, &[]) {
                        if let Some((Ty::Scalar, bl)) = self.peek(&name) {
                            if bl >= 1 {
                                self.error(
                                    codes::INNER_BAG_ESCAPE,
                                    sp,
                                    format!(
                                        "the fold zero closure captures the lifted value \
                                         `{name}`; fold zeros must not be lifted"
                                    ),
                                    zero,
                                );
                            }
                        }
                    }
                }
                self.check_lambda2("fold", l2, level, sp, e);
                Ty::Scalar
            }
            Expr::Join(a, b) => {
                for side in [a, b] {
                    let t = self.infer(side, level, side.span().or(sp));
                    if t != Ty::Bag(1) && t != Ty::Unknown {
                        self.error(
                            codes::KIND_MISMATCH,
                            side.span().or(sp),
                            format!("join requires flat (key, value) bags, found {t}"),
                            side,
                        );
                    }
                }
                Ty::Bag(1)
            }
            Expr::Union(a, b) => {
                let ta = self.infer(a, level, a.span().or(sp));
                let tb = self.infer(b, level, b.span().or(sp));
                for (side, t) in [(a, ta), (b, tb)] {
                    if matches!(t, Ty::Scalar | Ty::Group(_)) || matches!(t, Ty::Bag(d) if d >= 2) {
                        self.error(
                            codes::KIND_MISMATCH,
                            side.span().or(sp),
                            format!("union requires flat bags, found {t}"),
                            side,
                        );
                    }
                }
                if let (Ty::Bag(da), Ty::Bag(db)) = (ta, tb) {
                    if da != db {
                        self.error(
                            codes::BRANCH_MISMATCH,
                            sp,
                            format!("the sides of a union have different types: {ta} vs {tb}"),
                            e,
                        );
                    }
                }
                Ty::Bag(1)
            }
            Expr::Distinct(x) => {
                let t = self.infer(x, level, x.span().or(sp));
                if matches!(t, Ty::Scalar | Ty::Group(_)) || matches!(t, Ty::Bag(d) if d >= 2) {
                    self.error(
                        codes::KIND_MISMATCH,
                        sp,
                        format!("distinct applied to {t}; it requires a flat bag"),
                        e,
                    );
                    return Ty::Unknown;
                }
                Ty::Bag(1)
            }
            Expr::Count(x) => {
                let t = self.infer(x, level, x.span().or(sp));
                if matches!(t, Ty::Scalar | Ty::Group(_)) {
                    self.error(
                        codes::KIND_MISMATCH,
                        sp,
                        format!("count of {t}; count requires a bag"),
                        e,
                    );
                }
                Ty::Scalar
            }
            // A materialization hint is the identity on types.
            Expr::Cache(x) => self.infer(x, level, x.span().or(sp)),
        }
    }

    fn infer_flat_bag_input(&mut self, op: &str, input: &Expr, level: u32, sp: Option<Span>) -> Ty {
        let t = self.infer(input, level, input.span().or(sp));
        match t {
            Ty::Scalar | Ty::Group(_) => {
                self.error(
                    codes::KIND_MISMATCH,
                    input.span().or(sp),
                    format!("{op} applied to {t}; it requires a flat bag"),
                    input,
                );
            }
            Ty::Bag(d) if d >= 2 => {
                self.error(
                    codes::KIND_MISMATCH,
                    input.span().or(sp),
                    format!("{op} applied to {t}; it requires a flat bag"),
                    input,
                );
            }
            _ => {}
        }
        t
    }

    fn infer_map(
        &mut self,
        input: &Expr,
        l: &Lambda,
        level: u32,
        sp: Option<Span>,
        node: &Expr,
    ) -> Ty {
        let tin = self.infer(input, level, input.span().or(sp));
        if matches!(tin, Ty::Scalar | Ty::Group(_)) {
            self.error(
                codes::KIND_MISMATCH,
                input.span().or(sp),
                format!("map applied to {tin}; map requires a bag"),
                input,
            );
        }
        let needs_lift = l.body.contains_bag_ops() || matches!(tin, Ty::Bag(d) if d >= 2);
        if needs_lift && level >= 1 {
            self.error(codes::TOO_DEEP, sp, TOO_DEEP_MSG.to_string(), node);
        }
        let param_ty = match tin {
            Ty::Bag(1) => Ty::Scalar,
            Ty::Bag(d) if d >= 2 => Ty::Group(d - 1),
            _ => Ty::Unknown,
        };
        let body_level = if needs_lift { level + 1 } else { level };
        self.push_param(&l.param, param_ty, body_level);
        let tb = self.infer(&l.body, body_level, l.body.span().or(sp));
        self.summarize_udf(if needs_lift { "lifted map" } else { "map" }, sp, l, needs_lift);
        self.pop();
        if tb.is_baggy() {
            if !needs_lift {
                // A leaf UDF producing a bag can only happen through a
                // bag-typed variable; the runtime rejects the capture.
                self.error(
                    codes::INNER_BAG_ESCAPE,
                    sp,
                    format!(
                        "the map UDF closure returns {tb} without being lifted; \
                         bags cannot escape a leaf UDF"
                    ),
                    node,
                );
                return Ty::Bag(1);
            }
            if let Ty::Group(_) = tb {
                self.error(
                    codes::INNER_BAG_ESCAPE,
                    sp,
                    format!(
                        "the lifted map UDF returns {tb}; the inner bag of a group pair \
                         cannot escape its group"
                    ),
                    node,
                );
                return Ty::Bag(1);
            }
        }
        match (tin, tb) {
            (Ty::Unknown, _) => Ty::Unknown,
            (_, Ty::Bag(_)) if needs_lift => Ty::Bag(2),
            _ => Ty::Bag(1),
        }
    }

    fn infer_map_with_lifted_udf(
        &mut self,
        input: &Expr,
        udf: &Lambda,
        closures: &[String],
        level: u32,
        sp: Option<Span>,
        node: &Expr,
    ) -> Ty {
        if level >= 1 {
            self.error(codes::TOO_DEEP, sp, TOO_DEEP_MSG.to_string(), node);
        }
        let tin = self.infer(input, level, input.span().or(sp));
        if matches!(tin, Ty::Scalar | Ty::Group(_)) {
            self.error(
                codes::KIND_MISMATCH,
                input.span().or(sp),
                format!("mapWithLiftedUDF over {tin}; it requires a bag"),
                input,
            );
        }
        for c in closures {
            if self.lookup(c).is_none() {
                self.error(
                    codes::UNBOUND_VAR,
                    sp,
                    format!("unbound variable `{c}` (declared closure of a lifted UDF)"),
                    node,
                );
            }
        }
        let param_ty = match tin {
            Ty::Bag(d) if d >= 2 => Ty::Group(d - 1),
            Ty::Bag(_) => Ty::Scalar,
            _ => Ty::Unknown,
        };
        self.push_param(&udf.param, param_ty, level + 1);
        let tb = self.infer(&udf.body, level + 1, udf.body.span().or(sp));
        self.summarize_udf("lifted map", sp, udf, true);
        self.pop();
        if let Ty::Group(_) = tb {
            self.error(
                codes::INNER_BAG_ESCAPE,
                sp,
                format!(
                    "the lifted map UDF returns {tb}; the inner bag of a group pair cannot \
                     escape its group"
                ),
                node,
            );
            return Ty::Bag(1);
        }
        match tb {
            Ty::Bag(_) => Ty::Bag(2),
            _ => Ty::Bag(1),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn infer_loop(
        &mut self,
        init: &[(String, Expr)],
        cond: &Expr,
        step: &[Expr],
        result: &Expr,
        level: u32,
        sp: Option<Span>,
        node: &Expr,
    ) -> Ty {
        if level >= 1 && self.dialect == Dialect::DiqlLike {
            self.error(codes::DIQL_INNER_CONTROL_FLOW, sp, DIQL_MSG.to_string(), node);
        }
        let mut init_tys = Vec::with_capacity(init.len());
        for (n, x) in init {
            let t = self.infer(x, level, x.span().or(sp));
            if level >= 1 && matches!(t, Ty::Group(_)) {
                self.error(
                    codes::KIND_MISMATCH,
                    x.span().or(sp),
                    format!("lifted loop variables must be scalars or inner bags, found {t}"),
                    x,
                );
            }
            self.push_param(n, t, level);
            init_tys.push(t);
        }
        let tc = self.infer(cond, level, cond.span().or(sp));
        if tc.is_baggy() {
            self.error(
                codes::NON_SCALAR_COND,
                cond.span().or(sp),
                format!("the loop condition must be a scalar boolean, found {tc}"),
                cond,
            );
        }
        if step.len() != init.len() {
            self.error(
                codes::LOOP_SHAPE_CHANGE,
                sp,
                format!(
                    "the loop has {} variables but {} step expressions",
                    init.len(),
                    step.len()
                ),
                node,
            );
        }
        for (((n, _), t0), sx) in init.iter().zip(&init_tys).zip(step) {
            let ts = self.infer(sx, level, sx.span().or(sp));
            if *t0 != Ty::Unknown && ts != Ty::Unknown && *t0 != ts {
                self.error(
                    codes::LOOP_SHAPE_CHANGE,
                    sx.span().or(sp),
                    format!(
                        "loop variable `{n}` changes type between its initializer ({t0}) and \
                         its step expression ({ts})"
                    ),
                    sx,
                );
            }
        }
        let tr = self.infer(result, level, result.span().or(sp));
        for _ in init {
            self.pop();
        }
        tr
    }

    /// Check a leaf (never-lifted) lambda of `op`: bind the parameter as a
    /// scalar, infer the body at the same level, record the summary.
    fn check_leaf_lambda(
        &mut self,
        op: &'static str,
        l: &Lambda,
        level: u32,
        sp: Option<Span>,
    ) -> Ty {
        self.push_param(&l.param, Ty::Scalar, level);
        let tb = self.infer(&l.body, level, l.body.span().or(sp));
        self.summarize_udf(op, sp, l, false);
        self.pop();
        tb
    }

    /// Check a two-parameter aggregation lambda. The runtime evaluates these
    /// in an *empty* environment (`pure2`), so any enclosing-binding capture
    /// is a guaranteed runtime failure — rejected here.
    fn check_lambda2(&mut self, op: &str, l2: &Lambda2, level: u32, sp: Option<Span>, node: &Expr) {
        self.push_param(&l2.a, Ty::Scalar, level);
        self.push_param(&l2.b, Ty::Scalar, level);
        self.infer(&l2.body, level, l2.body.span().or(sp));
        self.pop();
        self.pop();
        for name in super::captures::capture_names(&l2.body, &[&l2.a, &l2.b]) {
            if self.peek(&name).is_some() {
                self.error(
                    codes::INNER_BAG_ESCAPE,
                    sp,
                    format!(
                        "the {op} combiner UDF closure captures `{name}`; aggregation UDFs \
                         cannot capture enclosing bindings in this IR"
                    ),
                    node,
                );
            }
            // Entirely-unbound names were already reported as MAT001 while
            // inferring the body.
        }
    }

    /// Record a [`UdfSummary`] for `l` and validate its captures. Must run
    /// while the lambda's parameter is still the innermost binding.
    fn summarize_udf(
        &mut self,
        op: &'static str,
        sp: Option<Span>,
        l: &Lambda,
        bag_launching: bool,
    ) {
        let names = super::captures::capture_names(&l.body, &[&l.param]);
        let mut captures = Vec::with_capacity(names.len());
        for name in names {
            let Some((ty, bind_level)) = self.peek(&name) else {
                // Unbound: MAT001 was reported while inferring the body.
                captures.push((name, Ty::Unknown));
                continue;
            };
            if !bag_launching {
                // Leaf UDFs run as pure closures: they may only capture
                // scalars. (Lifted-scalar captures are fine for map/filter
                // via mapWithClosure; flatMap has no lifted variant.)
                if ty.is_baggy() {
                    self.error(
                        codes::INNER_BAG_ESCAPE,
                        sp,
                        format!(
                            "the {op} UDF closure captures {ty} (`{name}`); only scalars can \
                             be captured by leaf UDFs"
                        ),
                        &l.body,
                    );
                } else if op == "flatMap" && bind_level >= 1 {
                    self.error(
                        codes::INNER_BAG_ESCAPE,
                        sp,
                        format!(
                            "the flatMap UDF closure captures the lifted value `{name}`; \
                             flatMap with lifted closures is not supported in the IR dialect"
                        ),
                        &l.body,
                    );
                }
            }
            captures.push((name, ty));
        }
        self.udfs.push(UdfSummary {
            op,
            span: sp,
            params: vec![l.param.clone()],
            captures,
            pure_scalar: !l.body.contains_bag_ops(),
            bag_launching,
            reads: rw::field_reads(l),
            forwards: if op.contains("map") { Some(rw::map_forwards(l)) } else { None },
        });
    }
}

pub(super) fn bin_symbol(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Eq => "==",
        BinOp::Lt => "<",
        BinOp::Gt => ">",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

/// A short, single-line re-rendering of `e` for span-less diagnostics.
fn snippet(e: &Expr) -> String {
    let s = crate::pretty::to_source(e);
    let s = s.split_whitespace().collect::<Vec<_>>().join(" ");
    if s.len() > 60 {
        format!("{}…", &s[..s.char_indices().take_while(|(i, _)| *i < 57).count()])
    } else {
        s
    }
}
