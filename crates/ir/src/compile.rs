//! **UDF compilation**: one-time translation of pure scalar `Expr` closures
//! into slot-resolved [`CompiledUdf`] programs, so the lowering phase's
//! per-record UDFs stop paying the tree-walking interpreter's per-`Var`
//! string hashing and per-`Let` environment cloning.
//!
//! The interpreter ([`crate::lower::eval_pure`]) evaluates a UDF body
//! against a `HashMap<String, Value>` for *every record*: each variable
//! reference hashes a string, and each `let`/loop binding mutates a map.
//! Flare (Essertel et al., OSDI '18) showed that once operator plumbing is
//! zero-copy, compiling UDFs out of that interpretive layer is the next big
//! lever — and Labyrinth-style lifted loops re-execute their UDFs every
//! iteration, multiplying the win. This module is that lever for the IR
//! layer:
//!
//! 1. **Slot resolution** — every variable is resolved to a frame-slot
//!    index at compile time. Parameters occupy slots `0..n`; each `let` and
//!    loop binder gets a fresh slot. Shadowing is resolved lexically, so no
//!    runtime lookup ever happens.
//! 2. **Flat register frame** — evaluation runs against a `Vec<Value>`
//!    scratch frame borrowed from a thread-local pool and reused across
//!    records: no per-record environment allocation, no clone-on-`Let`.
//!    Slots are def-before-use by construction (a binder's slot is written
//!    before its body runs), so frames never need clearing between records.
//! 3. **Constant folding** — capture-only subexpressions (closure constants
//!    are inlined as literals at compile time) fold to single constants,
//!    guarded so that folding can never turn a lazily-avoided runtime error
//!    or a debug-mode overflow panic into a compile-time one.
//! 4. **Shape fast paths** — projection chains off a slot (`v.0.1`) walk by
//!    reference and clone once ([`crate::Value::proj_ref`]); statically
//!    `Long`/`Double` arithmetic (typed via [`ScalarKind`], the
//!    type-checker's scalar refinement) skips the dynamic dispatch; and
//!    `if a < b then .. else ..` compares straight into the branch without
//!    materializing a boolean `Value`.
//!
//! Compilation is **total** and **semantics-preserving**: unsupported nodes
//! (bag operations in a scalar context, unbound names) compile to ops that
//! reproduce the interpreter's exact runtime error *if and when they are
//! reached* — an `if` whose untaken branch contains a bag op behaves
//! identically in both engines. `eval_pure` stays as the differential-
//! testing oracle (`crates/ir/tests/compiled_udf.rs` pins compiled ==
//! interpreted over hundreds of seeded random expression trees), and
//! `MatryoshkaConfig::interpret_udfs` forces the interpreted path for the
//! `udf_eval` bench ablation. See `docs/ANALYSIS.md`, "UDF compilation".

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use crate::analyze::ScalarKind;
use crate::ast::{BinOp, Expr, UnOp};
use crate::error::{IrError, IrResult};
use crate::lower::{apply_bin, apply_un, eval_pure_mut};
use crate::value::Value;

type PureEnv = HashMap<String, Value>;

/// A pure scalar UDF, compiled once and evaluated per record.
///
/// Construct with [`CompiledUdf::new`]; evaluate with [`CompiledUdf::eval1`]
/// (one-parameter UDFs), [`CompiledUdf::eval2`] (combiners), or
/// [`CompiledUdf::eval_with_combined`] (lifted `mapWithClosure` shapes where
/// the closure values arrive as one combined tuple per tag).
pub struct CompiledUdf {
    /// Parameter names, in slot order (`params[i]` lives in frame slot `i`).
    params: Vec<String>,
    mode: Mode,
}

enum Mode {
    /// The compiled program and the frame size it needs.
    Compiled { code: Op, frame_len: usize },
    /// The ablation/debug path: per-record `eval_pure` interpretation, with
    /// the same per-record cost profile the lowering had before compilation
    /// (fresh capture-env clone + name insertion per record).
    Interpreted { body: Arc<Expr>, captures: PureEnv },
}

/// A compiled scalar operation over a register frame.
enum Op {
    /// A literal (also: inlined closure captures and folded constants).
    Const(Value),
    /// Read a frame slot.
    Slot(usize),
    /// Projection chain rooted at a slot: walk by reference, clone once.
    ProjPath(usize, Box<[usize]>),
    /// Generic projection.
    Proj(Box<Op>, usize),
    /// Tuple construction.
    Tuple(Vec<Op>),
    /// Generic binary operator (delegates to [`apply_bin`]).
    Bin(BinOp, Box<Op>, Box<Op>),
    /// `Eq`/`Lt`/`Gt` inlined (byte-for-byte [`apply_bin`] semantics:
    /// ordering compares through `as_f64`, equality is structural) — skips
    /// the generic dispatch on the hottest loop-condition shape.
    Cmp(BinOp, Box<Op>, Box<Op>),
    /// `Add`/`Sub`/`Mul` with both operands statically `Long`.
    LongArith(BinOp, Box<Op>, Box<Op>),
    /// `Add`/`Sub`/`Mul`/`Div` guaranteed to take the `f64` path (at least
    /// one operand statically `Double`, or the operator is `Div`).
    DoubleArith(BinOp, Box<Op>, Box<Op>),
    /// Generic unary operator (delegates to [`apply_un`]).
    Un(UnOp, Box<Op>),
    /// Write a slot, then run the body (no restore needed: slots are unique
    /// per binder, so shadowing is resolved at compile time).
    Let(usize, Box<Op>, Box<Op>),
    /// Conditional.
    If(Box<Op>, Box<Op>, Box<Op>),
    /// Comparison-into-branch fast path: `if a <op> b then t else e`
    /// without materializing the intermediate boolean.
    IfCmp { op: BinOp, a: Box<Op>, b: Box<Op>, then: Box<Op>, els: Box<Op> },
    /// A scalar `while` loop: bind `init` slots in order, then while `cond`
    /// holds re-assign all slots simultaneously from `step`.
    While { init: Vec<(usize, Op)>, cond: Box<Op>, step: Vec<Op>, result: Box<Op> },
    /// A node that errors when (and only when) evaluation reaches it —
    /// preserves the interpreter's lazy error behaviour for unbound names
    /// and bag operations in scalar contexts.
    Fail(IrError),
}

thread_local! {
    /// Per-thread scratch frame, reused across records and across UDFs
    /// (frames only grow; def-before-use slotting makes stale values
    /// unreachable). Taken/replaced rather than borrowed so a re-entrant
    /// evaluation degrades to a fresh allocation instead of a panic.
    static FRAME: RefCell<Vec<Value>> = const { RefCell::new(Vec::new()) };
}

fn with_frame<R>(frame_len: usize, f: impl FnOnce(&mut [Value]) -> R) -> R {
    FRAME.with(|cell| {
        let mut buf = cell.take();
        if buf.len() < frame_len {
            buf.resize(frame_len, Value::Unit);
        }
        let r = f(&mut buf);
        cell.replace(buf);
        r
    })
}

impl CompiledUdf {
    /// Compile `body` with the given parameter names (slot order) and
    /// closure captures (inlined as constants). When `interpret` is set the
    /// UDF instead evaluates through the [`crate::eval_pure`] interpreter —
    /// the `udf_eval` ablation arm. Never fails: shapes the compiler cannot
    /// translate become ops that reproduce the interpreter's behaviour.
    pub fn new(body: &Arc<Expr>, params: &[&str], captures: PureEnv, interpret: bool) -> Self {
        let params_owned: Vec<String> = params.iter().map(|p| p.to_string()).collect();
        if interpret {
            return CompiledUdf {
                params: params_owned,
                mode: Mode::Interpreted { body: Arc::clone(body), captures },
            };
        }
        let mut c = Compiler {
            captures: &captures,
            scope: params
                .iter()
                .enumerate()
                .map(|(i, p)| (p.to_string(), i, ScalarKind::Any))
                .collect(),
            next_slot: params.len(),
        };
        let (code, _) = c.compile(body);
        let frame_len = c.next_slot.max(params.len());
        CompiledUdf { params: params_owned, mode: Mode::Compiled { code, frame_len } }
    }

    /// Number of parameters (frame slots `0..arity` are arguments).
    pub fn arity(&self) -> usize {
        self.params.len()
    }

    /// Evaluate a one-parameter UDF on one record.
    pub fn eval1(&self, v: &Value) -> IrResult<Value> {
        debug_assert_eq!(self.params.len(), 1);
        match &self.mode {
            Mode::Compiled { code, frame_len } => with_frame(*frame_len, |frame| {
                frame[0] = v.clone();
                code.run(frame)
            }),
            Mode::Interpreted { body, captures } => {
                let mut env = captures.clone();
                env.insert(self.params[0].clone(), v.clone());
                eval_pure_mut(body, &mut env)
            }
        }
    }

    /// Evaluate a two-parameter UDF (a `reduceByKey`/`fold` combiner).
    pub fn eval2(&self, a: &Value, b: &Value) -> IrResult<Value> {
        debug_assert_eq!(self.params.len(), 2);
        match &self.mode {
            Mode::Compiled { code, frame_len } => with_frame(*frame_len, |frame| {
                frame[0] = a.clone();
                frame[1] = b.clone();
                code.run(frame)
            }),
            Mode::Interpreted { body, captures } => {
                let mut env = captures.clone();
                env.insert(self.params[0].clone(), a.clone());
                env.insert(self.params[1].clone(), b.clone());
                eval_pure_mut(body, &mut env)
            }
        }
    }

    /// Evaluate a lifted-closure UDF: parameter 0 is the record, parameters
    /// `1..` receive the components of the per-tag `combined` closure tuple
    /// (the single tag-joined `mapWithClosure` argument of paper Sec. 5.1).
    pub fn eval_with_combined(&self, v: &Value, combined: &Value) -> IrResult<Value> {
        debug_assert!(self.params.len() >= 2);
        match &self.mode {
            Mode::Compiled { code, frame_len } => with_frame(*frame_len, |frame| {
                frame[0] = v.clone();
                for (i, slot) in frame.iter_mut().enumerate().take(self.params.len()).skip(1) {
                    *slot = combined.proj(i - 1).expect("combined closure arity");
                }
                code.run(frame)
            }),
            Mode::Interpreted { body, captures } => {
                let mut env = captures.clone();
                for i in 1..self.params.len() {
                    env.insert(
                        self.params[i].clone(),
                        combined.proj(i - 1).expect("combined closure arity"),
                    );
                }
                env.insert(self.params[0].clone(), v.clone());
                eval_pure_mut(body, &mut env)
            }
        }
    }

    /// Is this UDF actually compiled (vs. the interpreted ablation path)?
    pub fn is_compiled(&self) -> bool {
        matches!(self.mode, Mode::Compiled { .. })
    }
}

impl Op {
    fn run(&self, frame: &mut [Value]) -> IrResult<Value> {
        Ok(match self {
            Op::Const(v) => v.clone(),
            Op::Slot(s) => frame[*s].clone(),
            Op::ProjPath(s, path) => {
                let mut cur = &frame[*s];
                for &i in path.iter() {
                    cur = cur.proj_ref(i)?;
                }
                cur.clone()
            }
            Op::Proj(x, i) => x.run(frame)?.proj(*i)?,
            Op::Tuple(items) => {
                Value::tuple(items.iter().map(|x| x.run(frame)).collect::<IrResult<_>>()?)
            }
            Op::Bin(op, a, b) => apply_bin(*op, &a.run(frame)?, &b.run(frame)?)?,
            Op::Cmp(op, a, b) => {
                let (av, bv) = (a.run(frame)?, b.run(frame)?);
                Value::Bool(match op {
                    BinOp::Lt => av.as_f64()? < bv.as_f64()?,
                    BinOp::Gt => av.as_f64()? > bv.as_f64()?,
                    _ => av == bv,
                })
            }
            Op::LongArith(op, a, b) => match (a.run(frame)?, b.run(frame)?) {
                (Value::Long(x), Value::Long(y)) => Value::Long(match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    _ => x * y,
                }),
                // The static `Long` guarantee is belt-and-braces: fall back
                // to the generic operator so a refinement bug can only cost
                // speed, never change a result.
                (x, y) => apply_bin(*op, &x, &y)?,
            },
            Op::DoubleArith(op, a, b) => {
                let (av, bv) = (a.run(frame)?, b.run(frame)?);
                if let (Value::Long(_), Value::Long(_)) = (&av, &bv) {
                    // Statically unreachable for Add/Sub/Mul (one side is
                    // proven Double); Div lands here and takes the same
                    // two-float path either way.
                    apply_bin(*op, &av, &bv)?
                } else {
                    let (x, y) = (av.as_f64()?, bv.as_f64()?);
                    Value::Double(match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        _ => x / y,
                    })
                }
            }
            Op::Un(op, a) => apply_un(*op, &a.run(frame)?)?,
            Op::Let(slot, v, b) => {
                frame[*slot] = v.run(frame)?;
                b.run(frame)?
            }
            Op::If(c, t, e) => {
                if c.run(frame)?.as_bool()? {
                    t.run(frame)?
                } else {
                    e.run(frame)?
                }
            }
            Op::IfCmp { op, a, b, then, els } => {
                let (av, bv) = (a.run(frame)?, b.run(frame)?);
                let c = match op {
                    BinOp::Lt => av.as_f64()? < bv.as_f64()?,
                    BinOp::Gt => av.as_f64()? > bv.as_f64()?,
                    _ => av == bv,
                };
                if c {
                    then.run(frame)?
                } else {
                    els.run(frame)?
                }
            }
            Op::While { init, cond, step, result } => {
                for (slot, op) in init {
                    frame[*slot] = op.run(frame)?;
                }
                // One scratch buffer for the whole loop: the simultaneous
                // step assignment needs staging, but not a fresh Vec per
                // iteration.
                let mut next = Vec::with_capacity(step.len());
                while cond.run(frame)?.as_bool()? {
                    for op in step {
                        next.push(op.run(frame)?);
                    }
                    for ((slot, _), v) in init.iter().zip(next.drain(..)) {
                        frame[*slot] = v;
                    }
                }
                result.run(frame)?
            }
            Op::Fail(e) => return Err(e.clone()),
        })
    }

    fn as_const(&self) -> Option<&Value> {
        match self {
            Op::Const(v) => Some(v),
            _ => None,
        }
    }
}

/// Compile-time state: the capture environment (inlined as constants) and
/// the lexical scope mapping names to slots with their static kinds.
struct Compiler<'a> {
    captures: &'a PureEnv,
    /// Innermost binding last; resolved back-to-front.
    scope: Vec<(String, usize, ScalarKind)>,
    next_slot: usize,
}

/// Folding a `Long` arithmetic constant is only safe when it provably
/// cannot overflow (a debug-build overflow must keep panicking at *run*
/// time, per record, exactly like the interpreter — not at compile time,
/// where even a never-evaluated UDF over an empty bag would trip it).
fn fold_safe_long(v: &Value) -> bool {
    match v {
        Value::Long(x) => x.unsigned_abs() < (1 << 31),
        _ => true,
    }
}

/// Fold an op whose operands are all constants into a constant, unless
/// evaluation fails (keep the op: the error must stay lazy) or a `Long`
/// operand is large enough that debug-overflow semantics could differ.
fn try_fold(op: Op) -> Op {
    let foldable = match &op {
        Op::Tuple(items) => items.iter().all(|x| x.as_const().is_some()),
        Op::Proj(x, _) => x.as_const().is_some(),
        Op::Bin(b, x, y) | Op::Cmp(b, x, y) | Op::LongArith(b, x, y) | Op::DoubleArith(b, x, y) => {
            let arith = matches!(b, BinOp::Add | BinOp::Sub | BinOp::Mul);
            match (x.as_const(), y.as_const()) {
                (Some(xv), Some(yv)) => !arith || (fold_safe_long(xv) && fold_safe_long(yv)),
                _ => false,
            }
        }
        Op::Un(u, x) => match x.as_const() {
            Some(xv) => !matches!(u, UnOp::Neg) || fold_safe_long(xv),
            None => false,
        },
        _ => false,
    };
    if foldable {
        let mut empty: [Value; 0] = [];
        if let Ok(v) = op.run(&mut empty) {
            return Op::Const(v);
        }
    }
    op
}

impl Compiler<'_> {
    fn fresh_slot(&mut self) -> usize {
        let s = self.next_slot;
        self.next_slot += 1;
        s
    }

    /// The static result kind of an already-compiled op (post-fold).
    fn kind_of_const(op: &Op) -> Option<ScalarKind> {
        op.as_const().map(ScalarKind::of_value)
    }

    fn compile(&mut self, e: &Expr) -> (Op, ScalarKind) {
        match e {
            Expr::Spanned(_, inner) => self.compile(inner),
            Expr::Const(v) => (Op::Const(v.clone()), ScalarKind::of_value(v)),
            Expr::Var(n) => {
                if let Some((_, slot, kind)) =
                    self.scope.iter().rev().find(|(name, _, _)| name == n)
                {
                    return (Op::Slot(*slot), *kind);
                }
                match self.captures.get(n) {
                    Some(v) => (Op::Const(v.clone()), ScalarKind::of_value(v)),
                    None => (Op::Fail(IrError::Unbound(n.clone())), ScalarKind::Any),
                }
            }
            Expr::Tuple(items) => {
                let ops = items.iter().map(|x| self.compile(x).0).collect();
                let op = try_fold(Op::Tuple(ops));
                (op, ScalarKind::Tuple)
            }
            Expr::Proj(x, i) => {
                let (xo, _) = self.compile(x);
                let op = match xo {
                    Op::Slot(s) => Op::ProjPath(s, Box::new([*i])),
                    Op::ProjPath(s, path) => {
                        let mut p = path.into_vec();
                        p.push(*i);
                        Op::ProjPath(s, p.into_boxed_slice())
                    }
                    other => try_fold(Op::Proj(Box::new(other), *i)),
                };
                let kind = Self::kind_of_const(&op).unwrap_or(ScalarKind::Any);
                (op, kind)
            }
            Expr::Bin(op, a, b) => {
                let (ao, ak) = self.compile(a);
                let (bo, bk) = self.compile(b);
                let (a, b) = (Box::new(ao), Box::new(bo));
                let (compiled, kind) = match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul => {
                        if ak == ScalarKind::Long && bk == ScalarKind::Long {
                            (Op::LongArith(*op, a, b), ScalarKind::Long)
                        } else if ak == ScalarKind::Double || bk == ScalarKind::Double {
                            (Op::DoubleArith(*op, a, b), ScalarKind::Double)
                        } else {
                            let k = if ak.is_numeric() && bk.is_numeric() {
                                ScalarKind::Double
                            } else {
                                ScalarKind::Any
                            };
                            (Op::Bin(*op, a, b), k)
                        }
                    }
                    BinOp::Div => (Op::DoubleArith(*op, a, b), ScalarKind::Double),
                    BinOp::Eq | BinOp::Lt | BinOp::Gt => (Op::Cmp(*op, a, b), ScalarKind::Bool),
                    BinOp::And | BinOp::Or => (Op::Bin(*op, a, b), ScalarKind::Bool),
                };
                let folded = try_fold(compiled);
                let kind = Self::kind_of_const(&folded).unwrap_or(kind);
                (folded, kind)
            }
            Expr::Un(op, a) => {
                let (ao, ak) = self.compile(a);
                let kind = match op {
                    UnOp::Not => ScalarKind::Bool,
                    UnOp::ToDouble => ScalarKind::Double,
                    UnOp::Neg => match ak {
                        ScalarKind::Long => ScalarKind::Long,
                        ScalarKind::Double => ScalarKind::Double,
                        _ => ScalarKind::Any,
                    },
                };
                let folded = try_fold(Op::Un(*op, Box::new(ao)));
                let kind = Self::kind_of_const(&folded).unwrap_or(kind);
                (folded, kind)
            }
            Expr::Let(n, v, b) => {
                let (vo, vk) = self.compile(v);
                let slot = self.fresh_slot();
                self.scope.push((n.clone(), slot, vk));
                let (bo, bk) = self.compile(b);
                self.scope.pop();
                // A fully-folded body with a constant (side-effect-free)
                // binding needs neither the binding nor the slot write.
                if bo.as_const().is_some() && vo.as_const().is_some() {
                    return (bo, bk);
                }
                (Op::Let(slot, Box::new(vo), Box::new(bo)), bk)
            }
            Expr::If(c, t, el) => {
                let (co, _) = self.compile(c);
                // A constant boolean condition selects its branch at compile
                // time (the condition is pure, so eliding it is invisible).
                if let Some(Value::Bool(cv)) = co.as_const() {
                    let cv = *cv;
                    return if cv { self.compile(t) } else { self.compile(el) };
                }
                let (to, tk) = self.compile(t);
                let (eo, ek) = self.compile(el);
                let kind = tk.join(ek);
                let op = match co {
                    Op::Cmp(bop, a, b) => {
                        Op::IfCmp { op: bop, a, b, then: Box::new(to), els: Box::new(eo) }
                    }
                    other => Op::If(Box::new(other), Box::new(to), Box::new(eo)),
                };
                (op, kind)
            }
            Expr::Loop { init, cond, step, result } => {
                // Loop variables are re-assigned from `step` every
                // iteration, so a sound static kind is the *loop invariant*:
                // the join of the initializer's kind with the step's kind
                // under that same assumption. Solve by fixpoint — kinds only
                // widen on the flat `ScalarKind` lattice, so this converges
                // in at most `init.len() + 1` passes. Each pass rewinds the
                // slot counter so the final code sees a stable numbering.
                let scope_base = self.scope.len();
                let slot_base = self.next_slot;
                let mut kinds: Option<Vec<ScalarKind>> = None;
                loop {
                    self.scope.truncate(scope_base);
                    self.next_slot = slot_base;
                    // Initializers see the loop variables bound so far (the
                    // interpreter binds them progressively).
                    let mut init_ops = Vec::with_capacity(init.len());
                    let mut assigned = Vec::with_capacity(init.len());
                    for (idx, (n, x)) in init.iter().enumerate() {
                        let (xo, xk) = self.compile(x);
                        let slot = self.fresh_slot();
                        let k = kinds.as_ref().map_or(xk, |ks| ks[idx].join(xk));
                        self.scope.push((n.clone(), slot, k));
                        init_ops.push((slot, xo));
                        assigned.push(k);
                    }
                    let cond_op = self.compile(cond).0;
                    let steps: Vec<(Op, ScalarKind)> =
                        step.iter().map(|x| self.compile(x)).collect();
                    let widened: Vec<ScalarKind> =
                        assigned.iter().zip(steps.iter()).map(|(k, (_, sk))| k.join(*sk)).collect();
                    if widened != assigned {
                        kinds = Some(widened);
                        continue;
                    }
                    let (result_op, rk) = self.compile(result);
                    self.scope.truncate(scope_base);
                    return (
                        Op::While {
                            init: init_ops,
                            cond: Box::new(cond_op),
                            step: steps.into_iter().map(|(o, _)| o).collect(),
                            result: Box::new(result_op),
                        },
                        rk,
                    );
                }
            }
            // A materialization hint on a scalar is the identity, exactly as
            // in the interpreter.
            Expr::Cache(x) => self.compile(x),
            other => (
                // Bag operations in a scalar-only context: the interpreter
                // errors when evaluation *reaches* the node — reproduce that
                // lazily, with the same message.
                Op::Fail(IrError::Unsupported(format!(
                    "bag operation in a scalar-only context: {other:?}"
                ))),
                ScalarKind::Any,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Lambda;
    use crate::lower::eval_pure;

    fn compile1(body: Expr, captures: PureEnv) -> CompiledUdf {
        CompiledUdf::new(&Arc::new(body), &["v"], captures, false)
    }

    fn oracle(body: &Expr, captures: &PureEnv, v: &Value) -> IrResult<Value> {
        let mut env = captures.clone();
        env.insert("v".to_string(), v.clone());
        eval_pure(body, &env)
    }

    #[test]
    fn slots_resolve_params_lets_and_shadowing() {
        // let a = v + 1 in let a = a * 2 in a + v
        let body = Expr::let_(
            "a",
            Expr::bin(BinOp::Add, Expr::var("v"), Expr::long(1)),
            Expr::let_(
                "a",
                Expr::bin(BinOp::Mul, Expr::var("a"), Expr::long(2)),
                Expr::bin(BinOp::Add, Expr::var("a"), Expr::var("v")),
            ),
        );
        let c = compile1(body.clone(), PureEnv::new());
        for x in [0i64, 5, -3] {
            let v = Value::Long(x);
            assert_eq!(c.eval1(&v).unwrap(), oracle(&body, &PureEnv::new(), &v).unwrap());
        }
        assert_eq!(c.eval1(&Value::Long(5)).unwrap(), Value::Long(17));
    }

    #[test]
    fn captures_inline_and_fold() {
        // v < n * 2 + 1  with n captured: the right side folds to one const.
        let captures = PureEnv::from([("n".to_string(), Value::Long(10))]);
        let body = Expr::bin(
            BinOp::Lt,
            Expr::var("v"),
            Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, Expr::var("n"), Expr::long(2)),
                Expr::long(1),
            ),
        );
        let c = compile1(body.clone(), captures.clone());
        assert_eq!(c.eval1(&Value::Long(20)).unwrap(), Value::Bool(true));
        assert_eq!(c.eval1(&Value::Long(21)).unwrap(), Value::Bool(false));
        assert_eq!(
            c.eval1(&Value::Long(21)).unwrap(),
            oracle(&body, &captures, &Value::Long(21)).unwrap()
        );
    }

    #[test]
    fn projection_chains_walk_by_reference() {
        // v.1.0 over ((..), (x, y))
        let body = Expr::proj(Expr::proj(Expr::var("v"), 1), 0);
        let c = compile1(body, PureEnv::new());
        let v = Value::tuple(vec![
            Value::Long(1),
            Value::tuple(vec![Value::str("inner"), Value::Long(2)]),
        ]);
        assert_eq!(c.eval1(&v).unwrap(), Value::str("inner"));
        // Error parity with the interpreter on a non-tuple.
        let e = c.eval1(&Value::Long(3)).unwrap_err();
        assert!(e.to_string().contains("projection"), "{e}");
    }

    #[test]
    fn while_loops_run_on_slots() {
        // loop (i = v, acc = 0) while i > 0 do (i - 1, acc + i) yield acc
        let body = Expr::Loop {
            init: vec![("i".into(), Expr::var("v")), ("acc".into(), Expr::long(0))],
            cond: Box::new(Expr::bin(BinOp::Gt, Expr::var("i"), Expr::long(0))),
            step: vec![
                Expr::bin(BinOp::Sub, Expr::var("i"), Expr::long(1)),
                Expr::bin(BinOp::Add, Expr::var("acc"), Expr::var("i")),
            ],
            result: Box::new(Expr::var("acc")),
        };
        let c = compile1(body.clone(), PureEnv::new());
        for x in [0i64, 1, 10] {
            let v = Value::Long(x);
            assert_eq!(c.eval1(&v).unwrap(), oracle(&body, &PureEnv::new(), &v).unwrap());
        }
        assert_eq!(c.eval1(&Value::Long(10)).unwrap(), Value::Long(55));
    }

    #[test]
    fn untaken_branches_stay_lazy() {
        // if v > 0 then v else count(source(xs)) — the interpreter only
        // errors when the else-branch is reached; compiled must match.
        let body = Expr::If(
            Box::new(Expr::bin(BinOp::Gt, Expr::var("v"), Expr::long(0))),
            Box::new(Expr::var("v")),
            Box::new(Expr::Count(Box::new(Expr::Source("xs".into())))),
        );
        let c = compile1(body.clone(), PureEnv::new());
        assert_eq!(c.eval1(&Value::Long(3)).unwrap(), Value::Long(3));
        let compiled_err = c.eval1(&Value::Long(-1)).unwrap_err();
        let interp_err = oracle(&body, &PureEnv::new(), &Value::Long(-1)).unwrap_err();
        assert_eq!(compiled_err.to_string(), interp_err.to_string());
    }

    #[test]
    fn unbound_names_fail_lazily_with_interpreter_error() {
        let body = Expr::If(
            Box::new(Expr::Const(Value::Bool(true))),
            Box::new(Expr::long(1)),
            Box::new(Expr::var("nope")),
        );
        let c = compile1(body, PureEnv::new());
        assert_eq!(c.eval1(&Value::Long(0)).unwrap(), Value::Long(1));
        let body2 = Expr::var("nope");
        let c2 = compile1(body2.clone(), PureEnv::new());
        assert_eq!(
            c2.eval1(&Value::Long(0)).unwrap_err().to_string(),
            oracle(&body2, &PureEnv::new(), &Value::Long(0)).unwrap_err().to_string()
        );
    }

    #[test]
    fn overflow_prone_constants_do_not_fold_at_compile_time() {
        // (big * big) would overflow; compilation must not evaluate it.
        let big = i64::MAX / 2;
        let body = Expr::If(
            Box::new(Expr::bin(BinOp::Gt, Expr::var("v"), Expr::long(0))),
            Box::new(Expr::long(1)),
            Box::new(Expr::bin(BinOp::Mul, Expr::long(big), Expr::long(big))),
        );
        let c = compile1(body, PureEnv::new()); // must not panic here
        assert_eq!(c.eval1(&Value::Long(5)).unwrap(), Value::Long(1));
    }

    #[test]
    fn interpreted_mode_matches_compiled() {
        let body = Arc::new(Expr::let_(
            "a",
            Expr::bin(BinOp::Mul, Expr::var("v"), Expr::long(3)),
            Expr::bin(BinOp::Add, Expr::var("a"), Expr::var("n")),
        ));
        let captures = PureEnv::from([("n".to_string(), Value::Long(4))]);
        let compiled = CompiledUdf::new(&body, &["v"], captures.clone(), false);
        let interp = CompiledUdf::new(&body, &["v"], captures, true);
        assert!(compiled.is_compiled() && !interp.is_compiled());
        for x in [-2i64, 0, 9] {
            let v = Value::Long(x);
            assert_eq!(compiled.eval1(&v).unwrap(), interp.eval1(&v).unwrap());
        }
    }

    #[test]
    fn eval2_and_combined_entry_points() {
        // Combiner: (a, b) => a + b.
        let comb = CompiledUdf::new(
            &Arc::new(Expr::bin(BinOp::Add, Expr::var("a"), Expr::var("b"))),
            &["a", "b"],
            PureEnv::new(),
            false,
        );
        assert_eq!(comb.arity(), 2);
        assert_eq!(comb.eval2(&Value::Long(2), &Value::Long(5)).unwrap(), Value::Long(7));
        // mapWithClosure shape: param v plus lifted names (m, k) delivered
        // as one combined tuple.
        let c = CompiledUdf::new(
            &Arc::new(Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, Expr::var("v"), Expr::var("m")),
                Expr::var("k"),
            )),
            &["v", "m", "k"],
            PureEnv::new(),
            false,
        );
        let combined = Value::tuple(vec![Value::Long(10), Value::Long(3)]);
        assert_eq!(c.eval_with_combined(&Value::Long(7), &combined).unwrap(), Value::Long(73));
    }

    #[test]
    fn double_and_comparison_fast_paths_preserve_semantics() {
        // if v > 2.5 then v / 2.0 else v * 4  (mixes Long/Double per record)
        let body = Expr::If(
            Box::new(Expr::bin(BinOp::Gt, Expr::var("v"), Expr::Const(Value::Double(2.5)))),
            Box::new(Expr::bin(BinOp::Div, Expr::var("v"), Expr::Const(Value::Double(2.0)))),
            Box::new(Expr::bin(BinOp::Mul, Expr::var("v"), Expr::long(4))),
        );
        let c = compile1(body.clone(), PureEnv::new());
        for v in [Value::Long(10), Value::Long(1), Value::Double(3.5), Value::Double(-1.0)] {
            assert_eq!(c.eval1(&v).unwrap(), oracle(&body, &PureEnv::new(), &v).unwrap());
        }
        // Non-numeric operand: same error either way.
        assert_eq!(
            c.eval1(&Value::str("x")).unwrap_err().to_string(),
            oracle(&body, &PureEnv::new(), &Value::str("x")).unwrap_err().to_string()
        );
    }

    #[test]
    fn lambda_bodies_from_the_surface_syntax_compile() {
        // The bounce-rate leaf UDFs, via the text front-end.
        let p = crate::parse_program("map(source(xs), ip => (ip, 1))").unwrap();
        let Expr::Map(_, Lambda { param, body }) = p.strip_spans() else {
            panic!("expected a map")
        };
        let c = CompiledUdf::new(&body, &[&param], PureEnv::new(), false);
        assert_eq!(
            c.eval1(&Value::Long(9)).unwrap(),
            Value::tuple(vec![Value::Long(9), Value::Long(1)])
        );
    }
}
