//! Printers for nested-parallel programs and analyzer output:
//!
//! - [`pretty`]: a compact Scala-like rendering for humans (shows the
//!   Listing 1 -> Listing 2 rewrite);
//! - [`to_source`]: a *re-parseable* rendering in the [`crate::syntax`]
//!   grammar (round-trips through `parse_program` for programs in the text
//!   dialect — the nesting primitives have no surface syntax);
//! - [`render_diagnostic`]: compiler-style caret rendering of analyzer
//!   diagnostics against the original source text.

use std::fmt::Write as _;

use crate::analyze::{Diagnostic, Diagnostics};
use crate::ast::{BinOp, Expr, UnOp};
use crate::value::Value;

/// Render `e` as an indented, Scala-like program text.
pub fn pretty(e: &Expr) -> String {
    let mut out = String::new();
    go(e, 0, &mut out);
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn bin_symbol(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Eq => "==",
        BinOp::Lt => "<",
        BinOp::Gt => ">",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

fn go(e: &Expr, depth: usize, out: &mut String) {
    match e {
        Expr::Spanned(_, inner) => go(inner, depth, out),
        Expr::Const(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Var(n) => out.push_str(n),
        Expr::Source(n) => {
            let _ = write!(out, "source({n})");
        }
        Expr::Tuple(items) => {
            out.push('(');
            for (i, x) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                go(x, depth, out);
            }
            out.push(')');
        }
        Expr::Proj(x, i) => {
            go(x, depth, out);
            let _ = write!(out, "._{i}");
        }
        Expr::Bin(op, a, b) => {
            out.push('(');
            go(a, depth, out);
            let _ = write!(out, " {} ", bin_symbol(*op));
            go(b, depth, out);
            out.push(')');
        }
        Expr::Un(op, a) => {
            let name = match op {
                UnOp::Not => "!",
                UnOp::Neg => "-",
                UnOp::ToDouble => "toDouble ",
            };
            out.push_str(name);
            go(a, depth, out);
        }
        Expr::Let(n, v, b) => {
            let _ = write!(out, "val {n} = ");
            go(v, depth, out);
            out.push('\n');
            indent(out, depth);
            go(b, depth, out);
        }
        Expr::If(c, t, el) => {
            out.push_str("if (");
            go(c, depth, out);
            out.push_str(") ");
            go(t, depth, out);
            out.push_str(" else ");
            go(el, depth, out);
        }
        Expr::Loop { init, cond, step, result } => {
            out.push_str("loop {\n");
            for (n, x) in init {
                indent(out, depth + 1);
                let _ = write!(out, "var {n} = ");
                go(x, depth + 1, out);
                out.push('\n');
            }
            indent(out, depth + 1);
            out.push_str("while (");
            go(cond, depth + 1, out);
            out.push_str(") step (");
            for (i, s) in step.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                go(s, depth + 1, out);
            }
            out.push_str(")\n");
            indent(out, depth + 1);
            out.push_str("yield ");
            go(result, depth + 1, out);
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
        Expr::Map(x, l) => method(out, depth, x, "map", &l.param, &l.body),
        Expr::Filter(x, l) => method(out, depth, x, "filter", &l.param, &l.body),
        Expr::FlatMapTuple(x, l) => method(out, depth, x, "flatMap", &l.param, &l.body),
        Expr::GroupByKey(x) => simple(out, depth, x, "groupByKey()"),
        Expr::GroupByKeyIntoNestedBag(x) => simple(out, depth, x, "groupByKeyIntoNestedBag()"),
        Expr::Distinct(x) => simple(out, depth, x, "distinct()"),
        Expr::Count(x) => simple(out, depth, x, "count()"),
        Expr::Cache(x) => simple(out, depth, x, "cache()"),
        Expr::ReduceByKey(x, l2) => {
            go(x, depth, out);
            let _ = write!(out, ".reduceByKey(({}, {}) => ", l2.a, l2.b);
            go(&l2.body, depth, out);
            out.push(')');
        }
        Expr::Fold(x, z, l2) => {
            go(x, depth, out);
            out.push_str(".fold(");
            go(z, depth, out);
            let _ = write!(out, ")(({}, {}) => ", l2.a, l2.b);
            go(&l2.body, depth, out);
            out.push(')');
        }
        Expr::Join(a, b) => {
            out.push('(');
            go(a, depth, out);
            out.push_str(" join ");
            go(b, depth, out);
            out.push(')');
        }
        Expr::Union(a, b) => {
            out.push('(');
            go(a, depth, out);
            out.push_str(" union ");
            go(b, depth, out);
            out.push(')');
        }
        Expr::MapWithLiftedUdf { input, udf, closures } => {
            go(input, depth, out);
            out.push_str(".mapWithLiftedUDF");
            if !closures.is_empty() {
                let _ = write!(out, "[closures: {}]", closures.join(", "));
            }
            let _ = writeln!(out, " {{ {} =>", udf.param);
            indent(out, depth + 1);
            go(&udf.body, depth + 1, out);
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
    }
}

fn method(out: &mut String, depth: usize, x: &Expr, name: &str, param: &str, body: &Expr) {
    go(x, depth, out);
    let _ = write!(out, ".{name}({param} => ");
    go(body, depth, out);
    out.push(')');
}

fn simple(out: &mut String, depth: usize, x: &Expr, call: &str) {
    go(x, depth, out);
    out.push('.');
    out.push_str(call);
}

/// Render `e` in the concrete text grammar of [`crate::syntax`], such that
/// `parse_program(to_source(e))` yields `e` again (modulo spans) for any
/// program expressible in that grammar. Compound expressions are always
/// parenthesized — parentheses are pure grouping, so they add no AST nodes.
///
/// The parsing-phase primitives (`GroupByKeyIntoNestedBag`,
/// `MapWithLiftedUdf`) have no surface syntax; they render as pseudo-calls
/// that do not re-parse.
pub fn to_source(e: &Expr) -> String {
    let mut out = String::new();
    src(e, &mut out);
    out
}

fn src(e: &Expr, out: &mut String) {
    match e {
        Expr::Spanned(_, inner) => src(inner, out),
        Expr::Const(v) => src_const(v, out),
        Expr::Var(n) => out.push_str(n),
        Expr::Source(n) => {
            let _ = write!(out, "source({n})");
        }
        Expr::Tuple(items) => {
            out.push('(');
            for (i, x) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                src(x, out);
            }
            out.push(')');
        }
        Expr::Proj(x, i) => {
            out.push('(');
            src(x, out);
            let _ = write!(out, ").{i}");
        }
        Expr::Bin(op, a, b) => {
            out.push('(');
            src(a, out);
            let _ = write!(out, " {} ", bin_symbol(*op));
            src(b, out);
            out.push(')');
        }
        Expr::Un(op, a) => match op {
            UnOp::ToDouble => {
                out.push_str("toDouble(");
                src(a, out);
                out.push(')');
            }
            UnOp::Not | UnOp::Neg => {
                out.push('(');
                out.push(if matches!(op, UnOp::Not) { '!' } else { '-' });
                src(a, out);
                out.push(')');
            }
        },
        Expr::Let(n, v, b) => {
            let _ = write!(out, "(let {n} = ");
            src(v, out);
            out.push_str(" in ");
            src(b, out);
            out.push(')');
        }
        Expr::If(c, t, el) => {
            out.push_str("(if ");
            src(c, out);
            out.push_str(" then ");
            src(t, out);
            out.push_str(" else ");
            src(el, out);
            out.push(')');
        }
        Expr::Loop { init, cond, step, result } => {
            out.push_str("(loop (");
            for (i, (n, x)) in init.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{n} = ");
                src(x, out);
            }
            out.push_str(") while ");
            src(cond, out);
            out.push_str(" do (");
            for (i, x) in step.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                src(x, out);
            }
            out.push_str(") yield ");
            src(result, out);
            out.push(')');
        }
        Expr::Map(x, l) => src_call1(out, "map", x, &l.param, &l.body),
        Expr::Filter(x, l) => src_call1(out, "filter", x, &l.param, &l.body),
        Expr::FlatMapTuple(x, l) => src_call1(out, "flatMap", x, &l.param, &l.body),
        Expr::GroupByKey(x) => src_call0(out, "groupByKey", x),
        Expr::Distinct(x) => src_call0(out, "distinct", x),
        Expr::Count(x) => src_call0(out, "count", x),
        Expr::Cache(x) => src_call0(out, "cache", x),
        Expr::ReduceByKey(x, l2) => {
            out.push_str("reduceByKey(");
            src(x, out);
            let _ = write!(out, ", ({}, {}) => ", l2.a, l2.b);
            src(&l2.body, out);
            out.push(')');
        }
        Expr::Fold(x, z, l2) => {
            out.push_str("fold(");
            src(x, out);
            out.push_str(", ");
            src(z, out);
            let _ = write!(out, ", ({}, {}) => ", l2.a, l2.b);
            src(&l2.body, out);
            out.push(')');
        }
        Expr::Join(a, b) | Expr::Union(a, b) => {
            out.push_str(if matches!(e, Expr::Join(..)) { "join(" } else { "union(" });
            src(a, out);
            out.push_str(", ");
            src(b, out);
            out.push(')');
        }
        // Pseudo-syntax: the primitives exist only after the parsing phase.
        Expr::GroupByKeyIntoNestedBag(x) => src_call0(out, "groupByKeyIntoNestedBag", x),
        Expr::MapWithLiftedUdf { input, udf, .. } => {
            src_call1(out, "mapWithLiftedUDF", input, &udf.param, &udf.body)
        }
    }
}

fn src_const(v: &Value, out: &mut String) {
    match v {
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Long(x) => {
            let _ = write!(out, "{x}");
        }
        // Debug keeps the decimal point (`1.0`, not `1`), so the literal
        // re-parses as a Double.
        Value::Double(x) => {
            let _ = write!(out, "{x:?}");
        }
        Value::Str(s) => {
            let _ = write!(out, "\"{s}\"");
        }
        // Unit and tuple literals have no surface syntax; Display is a
        // best-effort rendering for snippets.
        other => {
            let _ = write!(out, "{other}");
        }
    }
}

fn src_call0(out: &mut String, name: &str, x: &Expr) {
    let _ = write!(out, "{name}(");
    src(x, out);
    out.push(')');
}

fn src_call1(out: &mut String, name: &str, x: &Expr, param: &str, body: &Expr) {
    let _ = write!(out, "{name}(");
    src(x, out);
    let _ = write!(out, ", {param} => ");
    src(body, out);
    out.push(')');
}

/// Render `e` as an indented operator tree, one node per line — the format
/// `matryoshka-check --explain` prints for before/after plans. Spans are
/// transparent; lambda parameters are shown on the operator line; loop
/// slots are labelled (`init`, `while`, `step`, `yield`).
pub fn plan_tree(e: &Expr) -> String {
    let mut out = String::new();
    tree(e, 0, &mut out);
    out
}

fn tree_line(out: &mut String, depth: usize, label: &str) {
    indent(out, depth);
    out.push_str(label);
    out.push('\n');
}

fn tree(e: &Expr, depth: usize, out: &mut String) {
    match e.unspanned() {
        Expr::Const(v) => tree_line(out, depth, &format!("const {v}")),
        Expr::Var(n) => tree_line(out, depth, &format!("var {n}")),
        Expr::Source(n) => tree_line(out, depth, &format!("source {n}")),
        Expr::Tuple(items) => {
            tree_line(out, depth, "tuple");
            items.iter().for_each(|x| tree(x, depth + 1, out));
        }
        Expr::Proj(x, i) => {
            tree_line(out, depth, &format!("proj .{i}"));
            tree(x, depth + 1, out);
        }
        Expr::Bin(op, a, b) => {
            tree_line(out, depth, &format!("bin {}", bin_symbol(*op)));
            tree(a, depth + 1, out);
            tree(b, depth + 1, out);
        }
        Expr::Un(op, a) => {
            let name = match op {
                UnOp::Not => "not",
                UnOp::Neg => "neg",
                UnOp::ToDouble => "toDouble",
            };
            tree_line(out, depth, &format!("un {name}"));
            tree(a, depth + 1, out);
        }
        Expr::Let(n, v, b) => {
            tree_line(out, depth, &format!("let {n}"));
            tree(v, depth + 1, out);
            tree_line(out, depth, "in");
            tree(b, depth + 1, out);
        }
        Expr::If(c, t, el) => {
            tree_line(out, depth, "if");
            tree(c, depth + 1, out);
            tree_line(out, depth, "then");
            tree(t, depth + 1, out);
            tree_line(out, depth, "else");
            tree(el, depth + 1, out);
        }
        Expr::Loop { init, cond, step, result } => {
            tree_line(out, depth, "loop");
            for (n, x) in init {
                tree_line(out, depth + 1, &format!("init {n}"));
                tree(x, depth + 2, out);
            }
            tree_line(out, depth + 1, "while");
            tree(cond, depth + 2, out);
            for (i, x) in step.iter().enumerate() {
                tree_line(out, depth + 1, &format!("step {}", init[i].0));
                tree(x, depth + 2, out);
            }
            tree_line(out, depth + 1, "yield");
            tree(result, depth + 2, out);
        }
        Expr::Map(x, l) => {
            tree_line(out, depth, &format!("map λ{}", l.param));
            tree(x, depth + 1, out);
            tree(&l.body, depth + 1, out);
        }
        Expr::Filter(x, l) => {
            tree_line(out, depth, &format!("filter λ{}", l.param));
            tree(x, depth + 1, out);
            tree(&l.body, depth + 1, out);
        }
        Expr::FlatMapTuple(x, l) => {
            tree_line(out, depth, &format!("flatMap λ{}", l.param));
            tree(x, depth + 1, out);
            tree(&l.body, depth + 1, out);
        }
        Expr::GroupByKey(x) => {
            tree_line(out, depth, "groupByKey");
            tree(x, depth + 1, out);
        }
        Expr::ReduceByKey(x, l2) => {
            tree_line(out, depth, &format!("reduceByKey λ({}, {})", l2.a, l2.b));
            tree(x, depth + 1, out);
        }
        Expr::Join(a, b) => {
            tree_line(out, depth, "join");
            tree(a, depth + 1, out);
            tree(b, depth + 1, out);
        }
        Expr::Distinct(x) => {
            tree_line(out, depth, "distinct");
            tree(x, depth + 1, out);
        }
        Expr::Union(a, b) => {
            tree_line(out, depth, "union");
            tree(a, depth + 1, out);
            tree(b, depth + 1, out);
        }
        Expr::Count(x) => {
            tree_line(out, depth, "count");
            tree(x, depth + 1, out);
        }
        Expr::Fold(x, z, l2) => {
            tree_line(out, depth, &format!("fold λ({}, {})", l2.a, l2.b));
            tree(x, depth + 1, out);
            tree(z, depth + 1, out);
        }
        Expr::Cache(x) => {
            tree_line(out, depth, "cache");
            tree(x, depth + 1, out);
        }
        Expr::GroupByKeyIntoNestedBag(x) => {
            tree_line(out, depth, "groupByKeyIntoNestedBag");
            tree(x, depth + 1, out);
        }
        Expr::MapWithLiftedUdf { input, udf, closures } => {
            let cl = if closures.is_empty() {
                String::new()
            } else {
                format!(" [closures: {}]", closures.join(", "))
            };
            tree_line(out, depth, &format!("mapWithLiftedUDF λ{}{}", udf.param, cl));
            tree(input, depth + 1, out);
            tree(&udf.body, depth + 1, out);
        }
        Expr::Spanned(..) => unreachable!("unspanned() peels spans"),
    }
}

/// Render one analyzer diagnostic against its source text, compiler-style:
/// a header line, the offending source line, and a caret run under the
/// span. Span-less diagnostics fall back to their `Display` form.
pub fn render_diagnostic(source: &str, d: &Diagnostic) -> String {
    let mut out = String::new();
    let Some(sp) = d.span else {
        let _ = writeln!(out, "{d}");
        return out;
    };
    let start = sp.start.min(source.len());
    let line_start = source[..start].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let line_end = source[start..].find('\n').map(|i| start + i).unwrap_or(source.len());
    let line_no = source[..start].bytes().filter(|b| *b == b'\n').count() + 1;
    let col = start - line_start;
    // Carets cover the span, clamped to the first line it touches.
    let width = sp.end.min(line_end).saturating_sub(start).max(1);
    let gutter = line_no.to_string();
    let pad = " ".repeat(gutter.len());
    let _ = writeln!(out, "{}[{}]: {}", d.severity, d.code, d.message);
    let _ = writeln!(out, "{pad}--> bytes {}..{} (line {line_no})", sp.start, sp.end);
    let _ = writeln!(out, "{pad} |");
    let _ = writeln!(out, "{gutter} | {}", &source[line_start..line_end]);
    let _ = writeln!(out, "{pad} | {}{}", " ".repeat(col), "^".repeat(width));
    if let Some(n) = &d.note {
        let _ = writeln!(out, "{pad} = help: {n}");
    }
    out
}

/// Render a whole diagnostics collection with [`render_diagnostic`],
/// followed by a one-line summary ("N errors, M warnings").
pub fn render_diagnostics(source: &str, ds: &Diagnostics) -> String {
    let mut out = String::new();
    for d in ds.iter() {
        out.push_str(&render_diagnostic(source, d));
    }
    if !ds.is_empty() {
        let errors = ds.error_count();
        let warnings = ds.len() - errors;
        let _ = writeln!(out, "{errors} error(s), {warnings} warning(s)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Lambda;
    use crate::value::Value;

    #[test]
    fn renders_the_listing1_to_listing2_rewrite() {
        let program = Expr::Map(
            Box::new(Expr::GroupByKey(Box::new(Expr::Source("visits".into())))),
            Lambda::new("g", Expr::Count(Box::new(Expr::proj(Expr::var("g"), 1)))),
        );
        let before = pretty(&program);
        assert!(before.contains("groupByKey()"));
        assert!(before.contains(".map(g =>"));

        let parsed =
            crate::parse::parsing_phase(&program, &["visits"], crate::parse::Dialect::Matryoshka)
                .unwrap();
        let after = pretty(&parsed);
        assert!(after.contains("groupByKeyIntoNestedBag()"), "{after}");
        assert!(after.contains("mapWithLiftedUDF"), "{after}");
    }

    #[test]
    fn renders_scalars_and_control_flow() {
        let e = Expr::let_(
            "x",
            Expr::Const(Value::Long(2)),
            Expr::If(
                Box::new(Expr::bin(crate::ast::BinOp::Gt, Expr::var("x"), Expr::long(0))),
                Box::new(Expr::var("x")),
                Box::new(Expr::long(-1)),
            ),
        );
        let s = pretty(&e);
        assert!(s.contains("val x = 2"));
        assert!(s.contains("if ((x > 0)) x else -1"));
    }

    #[test]
    fn renders_loops() {
        let e = Expr::Loop {
            init: vec![("i".into(), Expr::long(0))],
            cond: Box::new(Expr::bin(crate::ast::BinOp::Lt, Expr::var("i"), Expr::long(3))),
            step: vec![Expr::bin(crate::ast::BinOp::Add, Expr::var("i"), Expr::long(1))],
            result: Box::new(Expr::var("i")),
        };
        let s = pretty(&e);
        assert!(s.contains("var i = 0"));
        assert!(s.contains("while ((i < 3))"));
        assert!(s.contains("yield i"));
    }

    #[test]
    fn closures_are_shown_on_the_lifted_primitive() {
        let prog = Expr::let_(
            "w",
            Expr::long(2),
            Expr::Map(
                Box::new(Expr::GroupByKey(Box::new(Expr::Source("xs".into())))),
                Lambda::new(
                    "g",
                    Expr::bin(
                        crate::ast::BinOp::Mul,
                        Expr::var("w"),
                        Expr::Count(Box::new(Expr::proj(Expr::var("g"), 1))),
                    ),
                ),
            ),
        );
        let parsed =
            crate::parse::parsing_phase(&prog, &["xs"], crate::parse::Dialect::Matryoshka).unwrap();
        assert!(pretty(&parsed).contains("[closures: w]"));
    }

    #[test]
    fn to_source_round_trips_through_the_parser() {
        let cases = [
            "map(groupByKey(source(visits)), g => (g.0, count(g.1)))",
            "let x = 2 in if x > 1 then x * 3 else 0 - x",
            "loop (i = 0, acc = 1) while i < 5 do (i + 1, acc * 2) yield acc",
            "fold(filter(source(xs), x => !(x == 1)), 0, (a, b) => a + b)",
            "join(source(xs), distinct(union(source(ys), source(ys))))",
            "toDouble(count(source(xs))) / 2.5",
        ];
        for case in cases {
            let ast = crate::syntax::parse_program(case).unwrap().strip_spans();
            let rendered = to_source(&ast);
            let reparsed = crate::syntax::parse_program(&rendered)
                .unwrap_or_else(|e| panic!("{rendered} -> {e}"))
                .strip_spans();
            assert_eq!(reparsed, ast, "case `{case}` rendered as `{rendered}`");
        }
    }

    #[test]
    fn caret_rendering_points_at_the_span() {
        let src_text = "map(source(xs), x => x + y)";
        let e = crate::syntax::parse_program(src_text).unwrap();
        let a = crate::analyze::analyze(&e, &["xs"], crate::parse::Dialect::Matryoshka);
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code == crate::analyze::codes::UNBOUND_VAR)
            .expect("unbound `y`");
        let rendered = render_diagnostic(src_text, d);
        assert!(rendered.contains("error[MAT001]"), "{rendered}");
        assert!(rendered.contains(src_text), "{rendered}");
        // The caret line has `^` exactly under `y` (column 25).
        let caret_line = rendered.lines().nth(4).expect("caret line");
        assert_eq!(caret_line.find('^'), Some(src_text.find('y').unwrap() + 4), "{rendered}");
        let all = render_diagnostics(src_text, &a.diagnostics);
        assert!(all.contains("error(s)"), "{all}");
    }
}
