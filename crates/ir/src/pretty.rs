//! Pretty-printing of nested-parallel programs: renders the AST in a
//! compact Scala-like surface syntax, so that the parsing phase's rewrite
//! (Listing 1 -> Listing 2 in the paper) is visible to humans.

use std::fmt::Write as _;

use crate::ast::{BinOp, Expr, UnOp};

/// Render `e` as an indented, Scala-like program text.
pub fn pretty(e: &Expr) -> String {
    let mut out = String::new();
    go(e, 0, &mut out);
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn bin_symbol(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Eq => "==",
        BinOp::Lt => "<",
        BinOp::Gt => ">",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

fn go(e: &Expr, depth: usize, out: &mut String) {
    match e {
        Expr::Const(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Var(n) => out.push_str(n),
        Expr::Source(n) => {
            let _ = write!(out, "source({n})");
        }
        Expr::Tuple(items) => {
            out.push('(');
            for (i, x) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                go(x, depth, out);
            }
            out.push(')');
        }
        Expr::Proj(x, i) => {
            go(x, depth, out);
            let _ = write!(out, "._{i}");
        }
        Expr::Bin(op, a, b) => {
            out.push('(');
            go(a, depth, out);
            let _ = write!(out, " {} ", bin_symbol(*op));
            go(b, depth, out);
            out.push(')');
        }
        Expr::Un(op, a) => {
            let name = match op {
                UnOp::Not => "!",
                UnOp::Neg => "-",
                UnOp::ToDouble => "toDouble ",
            };
            out.push_str(name);
            go(a, depth, out);
        }
        Expr::Let(n, v, b) => {
            let _ = write!(out, "val {n} = ");
            go(v, depth, out);
            out.push('\n');
            indent(out, depth);
            go(b, depth, out);
        }
        Expr::If(c, t, el) => {
            out.push_str("if (");
            go(c, depth, out);
            out.push_str(") ");
            go(t, depth, out);
            out.push_str(" else ");
            go(el, depth, out);
        }
        Expr::Loop { init, cond, step, result } => {
            out.push_str("loop {\n");
            for (n, x) in init {
                indent(out, depth + 1);
                let _ = write!(out, "var {n} = ");
                go(x, depth + 1, out);
                out.push('\n');
            }
            indent(out, depth + 1);
            out.push_str("while (");
            go(cond, depth + 1, out);
            out.push_str(") step (");
            for (i, s) in step.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                go(s, depth + 1, out);
            }
            out.push_str(")\n");
            indent(out, depth + 1);
            out.push_str("yield ");
            go(result, depth + 1, out);
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
        Expr::Map(x, l) => method(out, depth, x, "map", &l.param, &l.body),
        Expr::Filter(x, l) => method(out, depth, x, "filter", &l.param, &l.body),
        Expr::FlatMapTuple(x, l) => method(out, depth, x, "flatMap", &l.param, &l.body),
        Expr::GroupByKey(x) => simple(out, depth, x, "groupByKey()"),
        Expr::GroupByKeyIntoNestedBag(x) => simple(out, depth, x, "groupByKeyIntoNestedBag()"),
        Expr::Distinct(x) => simple(out, depth, x, "distinct()"),
        Expr::Count(x) => simple(out, depth, x, "count()"),
        Expr::ReduceByKey(x, l2) => {
            go(x, depth, out);
            let _ = write!(out, ".reduceByKey(({}, {}) => ", l2.a, l2.b);
            go(&l2.body, depth, out);
            out.push(')');
        }
        Expr::Fold(x, z, l2) => {
            go(x, depth, out);
            out.push_str(".fold(");
            go(z, depth, out);
            let _ = write!(out, ")(({}, {}) => ", l2.a, l2.b);
            go(&l2.body, depth, out);
            out.push(')');
        }
        Expr::Join(a, b) => {
            out.push('(');
            go(a, depth, out);
            out.push_str(" join ");
            go(b, depth, out);
            out.push(')');
        }
        Expr::Union(a, b) => {
            out.push('(');
            go(a, depth, out);
            out.push_str(" union ");
            go(b, depth, out);
            out.push(')');
        }
        Expr::MapWithLiftedUdf { input, udf, closures } => {
            go(input, depth, out);
            out.push_str(".mapWithLiftedUDF");
            if !closures.is_empty() {
                let _ = write!(out, "[closures: {}]", closures.join(", "));
            }
            let _ = writeln!(out, " {{ {} =>", udf.param);
            indent(out, depth + 1);
            go(&udf.body, depth + 1, out);
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
    }
}

fn method(out: &mut String, depth: usize, x: &Expr, name: &str, param: &str, body: &Expr) {
    go(x, depth, out);
    let _ = write!(out, ".{name}({param} => ");
    go(body, depth, out);
    out.push(')');
}

fn simple(out: &mut String, depth: usize, x: &Expr, call: &str) {
    go(x, depth, out);
    out.push('.');
    out.push_str(call);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Lambda;
    use crate::value::Value;

    #[test]
    fn renders_the_listing1_to_listing2_rewrite() {
        let program = Expr::Map(
            Box::new(Expr::GroupByKey(Box::new(Expr::Source("visits".into())))),
            Lambda::new("g", Expr::Count(Box::new(Expr::proj(Expr::var("g"), 1)))),
        );
        let before = pretty(&program);
        assert!(before.contains("groupByKey()"));
        assert!(before.contains(".map(g =>"));

        let parsed =
            crate::parse::parsing_phase(&program, &["visits"], crate::parse::Dialect::Matryoshka)
                .unwrap();
        let after = pretty(&parsed);
        assert!(after.contains("groupByKeyIntoNestedBag()"), "{after}");
        assert!(after.contains("mapWithLiftedUDF"), "{after}");
    }

    #[test]
    fn renders_scalars_and_control_flow() {
        let e = Expr::let_(
            "x",
            Expr::Const(Value::Long(2)),
            Expr::If(
                Box::new(Expr::bin(crate::ast::BinOp::Gt, Expr::var("x"), Expr::long(0))),
                Box::new(Expr::var("x")),
                Box::new(Expr::long(-1)),
            ),
        );
        let s = pretty(&e);
        assert!(s.contains("val x = 2"));
        assert!(s.contains("if ((x > 0)) x else -1"));
    }

    #[test]
    fn renders_loops() {
        let e = Expr::Loop {
            init: vec![("i".into(), Expr::long(0))],
            cond: Box::new(Expr::bin(crate::ast::BinOp::Lt, Expr::var("i"), Expr::long(3))),
            step: vec![Expr::bin(crate::ast::BinOp::Add, Expr::var("i"), Expr::long(1))],
            result: Box::new(Expr::var("i")),
        };
        let s = pretty(&e);
        assert!(s.contains("var i = 0"));
        assert!(s.contains("while ((i < 3))"));
        assert!(s.contains("yield i"));
    }

    #[test]
    fn closures_are_shown_on_the_lifted_primitive() {
        let prog = Expr::let_(
            "w",
            Expr::long(2),
            Expr::Map(
                Box::new(Expr::GroupByKey(Box::new(Expr::Source("xs".into())))),
                Lambda::new(
                    "g",
                    Expr::bin(
                        crate::ast::BinOp::Mul,
                        Expr::var("w"),
                        Expr::Count(Box::new(Expr::proj(Expr::var("g"), 1))),
                    ),
                ),
            ),
        );
        let parsed =
            crate::parse::parsing_phase(&prog, &["xs"], crate::parse::Dialect::Matryoshka).unwrap();
        assert!(pretty(&parsed).contains("[closures: w]"));
    }
}
