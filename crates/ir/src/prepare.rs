//! One-call front door from `.mat` program text to a runnable job.
//!
//! The multi-tenant job service (crate `matryoshka-service`) and the
//! submission server admit programs *before* queueing them: a submission
//! whose text fails to parse, or that the static analyzer rejects with
//! `MAT0xx` error diagnostics, is turned away at admission and never
//! occupies scheduler state. [`prepare_program`] packages that gate — parse,
//! analyze, and run the parsing phase — and returns a [`PreparedProgram`]
//! that can later be executed on any engine, any number of times.

use std::collections::HashMap;

use matryoshka_core::MatryoshkaConfig;
use matryoshka_engine::{Bag, Engine};

use crate::analyze::{analyze, source_names, Analysis, Diagnostics};
use crate::ast::Expr;
use crate::error::{IrError, IrResult};
use crate::lower::{Lowering, RtVal};
use crate::parse::{parsing_phase, Dialect};
use crate::syntax::{parse_program, ParseError};
use crate::value::Value;

/// Why a program failed preparation (admission-time rejection reasons).
#[derive(Debug, Clone, PartialEq)]
pub enum PrepareError {
    /// The text is not a syntactically valid program.
    Parse(ParseError),
    /// The analyzer found error-severity `MAT0xx` diagnostics.
    Analysis(Diagnostics),
    /// The parsing-phase rewrite itself failed (rare: analyzer-clean
    /// programs normally rewrite successfully).
    Rewrite(IrError),
}

impl PrepareError {
    /// The `MAT0xx` diagnostics, when the analyzer did the rejecting.
    pub fn diagnostics(&self) -> Option<&Diagnostics> {
        match self {
            PrepareError::Analysis(d) => Some(d),
            _ => None,
        }
    }
}

impl std::fmt::Display for PrepareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrepareError::Parse(e) => write!(f, "{e}"),
            PrepareError::Analysis(d) => write!(f, "analysis rejected the program: {d}"),
            PrepareError::Rewrite(e) => write!(f, "parsing phase failed: {e}"),
        }
    }
}

impl std::error::Error for PrepareError {}

/// A program that passed the admission gate: parsed, analyzer-clean, and
/// rewritten by the parsing phase. Reusable across engines and runs.
#[derive(Debug, Clone)]
pub struct PreparedProgram {
    /// The parsing-phase output (the flattened program the lowering runs).
    pub expr: Expr,
    /// Source (input bag) names the program reads, in first-use order.
    pub sources: Vec<String>,
    /// Dialect the program was checked under.
    pub dialect: Dialect,
    /// The full analyzer result (warnings survive admission and can be
    /// reported back to the submitter).
    pub analysis: Analysis,
}

impl PreparedProgram {
    /// Execute the prepared program on `engine`, binding each name of
    /// [`PreparedProgram::sources`] through `inputs`.
    pub fn run(
        &self,
        engine: Engine,
        config: MatryoshkaConfig,
        inputs: &HashMap<String, Bag<Value>>,
    ) -> IrResult<RtVal> {
        Lowering::new(engine, config).run(&self.expr, inputs)
    }
}

/// Parse, analyze (gating on error diagnostics), and rewrite a program.
///
/// The `sources` argument of [`analyze`] is derived from the program itself
/// ([`source_names`]), matching the `matryoshka-check` CLI's behavior: any
/// `source(name)` is a declared input, and the job runner is responsible
/// for binding every name in [`PreparedProgram::sources`].
pub fn prepare_program(src: &str, dialect: Dialect) -> Result<PreparedProgram, PrepareError> {
    let ast = parse_program(src).map_err(PrepareError::Parse)?;
    let sources = source_names(&ast);
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let analysis = analyze(&ast, &refs, dialect);
    if analysis.diagnostics.has_errors() {
        return Err(PrepareError::Analysis(analysis.diagnostics));
    }
    let expr = parsing_phase(&ast, &refs, dialect).map_err(|e| match e {
        IrError::Analysis(d) => PrepareError::Analysis(d),
        other => PrepareError::Rewrite(other),
    })?;
    Ok(PreparedProgram { expr, sources, dialect, analysis })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepares_and_runs_a_clean_program() {
        let p = prepare_program(
            "map(reduceByKey(source(xs), (a, b) => a + b), x => (x.0, x.1 * 2))",
            Dialect::Matryoshka,
        )
        .expect("clean program prepares");
        assert_eq!(p.sources, vec!["xs".to_string()]);
        let e = Engine::local();
        let xs = e.parallelize(
            vec![
                Value::tuple(vec![Value::Long(1), Value::Long(2)]),
                Value::tuple(vec![Value::Long(1), Value::Long(3)]),
            ],
            2,
        );
        let inputs = HashMap::from([("xs".to_string(), xs)]);
        let out = p.run(e, MatryoshkaConfig::default(), &inputs).expect("runs");
        match out {
            RtVal::Bag(b) => {
                let vals = b.collect().expect("collect");
                assert_eq!(vals.len(), 1);
            }
            other => panic!("expected a bag, got {other:?}"),
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        let err = prepare_program("map(", Dialect::Matryoshka).unwrap_err();
        assert!(matches!(err, PrepareError::Parse(_)), "{err}");
        assert!(err.diagnostics().is_none());
    }

    #[test]
    fn analysis_errors_carry_mat_codes() {
        // MAT001: unbound variable.
        let err = prepare_program("map(source(xs), x => x + y)", Dialect::Matryoshka).unwrap_err();
        let diags = err.diagnostics().expect("analysis rejection");
        assert!(diags.has_errors());
        assert!(err.to_string().contains("MAT"), "{err}");
    }
}
