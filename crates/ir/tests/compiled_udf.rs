//! Differential property tests pinning the compiled UDF evaluator
//! ([`matryoshka_ir::CompiledUdf`]) to the tree-walking interpreter
//! ([`matryoshka_ir::eval_pure`]), which stays in the codebase precisely to
//! serve as this oracle.
//!
//! For hundreds of seeded random scalar expression trees — nested `let`
//! chains, shadowing, guaranteed-terminating `loop`s, mixed Long/Double
//! arithmetic, and deliberately ill-typed or bag-containing subtrees — the
//! two evaluators must agree *exactly*: same `Value` bit-for-bit (doubles
//! compare by bit pattern), same error message, or same panic. A final
//! end-to-end test runs whole programs through the [`Lowering`] twice
//! (compiled vs. `interpret_udfs`) and compares results.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use matryoshka_core::MatryoshkaConfig;
use matryoshka_engine::{Bag, Engine};
use matryoshka_ir::ast::{BinOp, Expr, UnOp};
use matryoshka_ir::{eval_pure, parsing_phase, CompiledUdf, Dialect, Lowering, RtVal, Value};

/// splitmix64 (same generator the round-trip property tests use).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Generates *scalar-shaped* expression trees over two parameters and three
/// captured names. Unlike the round-trip generator it needs no surface
/// syntax, so it can produce shadowing, arbitrary tuples, and (rarely)
/// bag-op subtrees whose lazy errors both evaluators must reproduce alike.
struct Gen {
    rng: Rng,
    scope: Vec<String>,
    fresh: u32,
}

impl Gen {
    fn fresh_name(&mut self) -> String {
        self.fresh += 1;
        format!("x{}", self.fresh)
    }

    fn leaf(&mut self) -> Expr {
        match self.rng.below(8) {
            0 => Expr::long(self.rng.below(100) as i64),
            1 => Expr::Const(Value::Bool(self.rng.below(2) == 0)),
            2 => Expr::Const(Value::Double([0.5, -1.25, 3.0, 10.75][self.rng.below(4) as usize])),
            3 => Expr::Const(Value::Str(["a", "bee"][self.rng.below(2) as usize].into())),
            _ => {
                let i = self.rng.below(self.scope.len() as u64) as usize;
                Expr::var(&self.scope[i].clone())
            }
        }
    }

    fn expr(&mut self, depth: u32) -> Expr {
        if depth == 0 {
            return self.leaf();
        }
        let d = depth - 1;
        match self.rng.below(16) {
            0 | 1 => self.leaf(),
            2 => {
                let n = 2 + self.rng.below(2);
                Expr::Tuple((0..n).map(|_| self.expr(d)).collect())
            }
            3 => Expr::proj(self.expr(d), self.rng.below(3) as usize),
            4..=6 => {
                const OPS: [BinOp; 9] = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Eq,
                    BinOp::Lt,
                    BinOp::Gt,
                    BinOp::And,
                    BinOp::Or,
                ];
                let op = OPS[self.rng.below(9) as usize];
                Expr::bin(op, self.expr(d), self.expr(d))
            }
            7 => {
                let op = [UnOp::Not, UnOp::Neg, UnOp::ToDouble][self.rng.below(3) as usize];
                Expr::Un(op, Box::new(self.expr(d)))
            }
            8..=10 => {
                // `let` chains, sometimes deliberately shadowing an
                // in-scope name (slot resolution must keep them apart).
                let n = if self.rng.below(3) == 0 && !self.scope.is_empty() {
                    let i = self.rng.below(self.scope.len() as u64) as usize;
                    self.scope[i].clone()
                } else {
                    self.fresh_name()
                };
                let v = self.expr(d);
                self.scope.push(n.clone());
                let b = self.expr(d);
                self.scope.pop();
                Expr::Let(n, Box::new(v), Box::new(b))
            }
            11 | 12 => {
                Expr::If(Box::new(self.expr(d)), Box::new(self.expr(d)), Box::new(self.expr(d)))
            }
            13 | 14 => {
                // A loop that provably terminates: a fresh counter ticks
                // down from a small literal, the extra variable is random.
                let i = self.fresh_name();
                let acc = self.fresh_name();
                let init_i = Expr::long(self.rng.below(12) as i64);
                let init_acc = self.expr(d);
                self.scope.push(i.clone());
                self.scope.push(acc.clone());
                let step_acc = self.expr(d);
                let result = self.expr(d);
                self.scope.pop();
                self.scope.pop();
                Expr::Loop {
                    init: vec![(i.clone(), init_i), (acc, init_acc)],
                    cond: Box::new(Expr::bin(BinOp::Gt, Expr::var(&i), Expr::long(0))),
                    step: vec![Expr::bin(BinOp::Sub, Expr::var(&i), Expr::long(1)), step_acc],
                    result: Box::new(result),
                }
            }
            _ => {
                // Rare bag-op subtree: unsupported in a scalar context, but
                // only when evaluation *reaches* it (laziness parity).
                Expr::Count(Box::new(Expr::Source("xs".into())))
            }
        }
    }
}

type Outcome = Result<Result<Value, String>, ()>;

/// Evaluate with panics captured (debug-mode arithmetic overflow must
/// happen on both sides or neither).
fn capture(f: impl FnOnce() -> Result<Value, matryoshka_ir::IrError>) -> Outcome {
    catch_unwind(AssertUnwindSafe(f)).map(|r| r.map_err(|e| e.to_string())).map_err(|_| ())
}

fn differential_case(seed: u64, depth: u32) {
    let mut g = Gen {
        rng: Rng(seed.wrapping_mul(0x9e3779b9) ^ 0x636f_6d70_696c_6564), // "compiled"
        scope: vec!["p".into(), "q".into(), "ca".into(), "cb".into(), "cc".into()],
        fresh: 0,
    };
    let body = Arc::new(g.expr(depth));
    let captures: HashMap<String, Value> = HashMap::from([
        ("ca".to_string(), Value::Long(7)),
        ("cb".to_string(), Value::Double(0.25)),
        ("cc".to_string(), Value::tuple(vec![Value::Long(1), Value::str("t")])),
    ]);
    let compiled = CompiledUdf::new(&body, &["p", "q"], captures.clone(), false);
    assert!(compiled.is_compiled());

    let args = [
        (Value::Long(5), Value::Long(-3)),
        (Value::Double(2.5), Value::Long(1000)),
        (Value::tuple(vec![Value::Long(9), Value::Bool(true)]), Value::str("s")),
    ];
    for (p, q) in &args {
        let got = capture(|| compiled.eval2(p, q));
        let want = capture(|| {
            let mut env = captures.clone();
            env.insert("p".to_string(), p.clone());
            env.insert("q".to_string(), q.clone());
            eval_pure(&body, &env)
        });
        assert_eq!(
            got, want,
            "seed {seed}: compiled and interpreted disagree on {body:?} at p={p}, q={q}"
        );
    }
}

#[test]
fn compiled_matches_interpreter_on_random_trees() {
    // Keep panics from the expected overflow/type-error cases quiet.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let run = catch_unwind(|| {
        for seed in 0..600u64 {
            differential_case(seed, 4);
        }
        // A handful of deep trees: long let chains and nested loops.
        for seed in [3u64, 17, 99, 256, 4095] {
            differential_case(seed, 6);
        }
    });
    std::panic::set_hook(prev);
    run.expect("differential property failed");
}

#[test]
fn deep_let_chain_is_linear_and_exact() {
    // let a1 = p + 1 in let a2 = a1 + 1 in ... yields p + n: a 400-binder
    // chain is far past where the old clone-per-let interpreter hurt, and
    // both evaluators must still agree exactly. Both walk the chain
    // recursively, so give the test thread a roomy stack for debug builds.
    std::thread::Builder::new()
        .stack_size(32 * 1024 * 1024)
        .spawn(|| {
            let mut body = Expr::var("a400");
            for i in (1..=400u32).rev() {
                let prev = if i == 1 { "p".to_string() } else { format!("a{}", i - 1) };
                body = Expr::Let(
                    format!("a{i}"),
                    Box::new(Expr::bin(BinOp::Add, Expr::var(&prev), Expr::long(1))),
                    Box::new(body),
                );
            }
            let body = Arc::new(body);
            let compiled = CompiledUdf::new(&body, &["p"], HashMap::new(), false);
            let mut env = HashMap::from([("p".to_string(), Value::Long(10))]);
            assert_eq!(compiled.eval1(&Value::Long(10)).unwrap(), Value::Long(410));
            env.insert("p".to_string(), Value::Long(-400));
            assert_eq!(
                compiled.eval1(&Value::Long(-400)).unwrap(),
                eval_pure(&body, &env).unwrap()
            );
        })
        .unwrap()
        .join()
        .unwrap();
}

/// End-to-end: the same program lowered twice — compiled UDFs vs. the
/// `interpret_udfs` ablation — must produce identical bags.
#[test]
fn lowering_results_identical_compiled_vs_interpreted() {
    let program = matryoshka_ir::parse_program(
        "map(groupByKey(source(visits)), g =>
            let total = fold(map(g.1, ip => (let w = ip * 2 in w + 1)), 0, (a, b) => a + b) in
            (g.0, toDouble(total) / toDouble(count(g.1))))",
    )
    .unwrap();
    let parsed = parsing_phase(&program, &["visits"], Dialect::Matryoshka).unwrap();

    let run_with = |interpret: bool| -> Vec<Value> {
        let engine = Engine::local();
        let visits: Bag<Value> = engine.parallelize(
            (0..40i64).map(|i| Value::tuple(vec![Value::Long(i % 4), Value::Long(i)])).collect(),
            4,
        );
        let mut cfg = MatryoshkaConfig::optimized();
        cfg.interpret_udfs = interpret;
        let out = Lowering::new(engine, cfg)
            .run(&parsed, &HashMap::from([("visits".to_string(), visits)]))
            .unwrap();
        match out {
            RtVal::Bag(b) => {
                let mut rows = b.collect().unwrap();
                rows.sort();
                rows
            }
            other => panic!("expected a bag, got {other:?}"),
        }
    };

    let compiled = run_with(false);
    let interpreted = run_with(true);
    assert_eq!(compiled, interpreted);
    assert_eq!(compiled.len(), 4);
}
