//! Parse -> pretty -> parse round-trip property tests.
//!
//! [`matryoshka_ir::pretty::to_source`] promises that its output re-parses
//! to the same AST (modulo spans). The unit tests in `pretty.rs` check a
//! handful of hand-written programs; here we generate a few thousand random
//! expression trees with a seeded PRNG and check the property over the
//! whole surface grammar: literals, tuples, projections, operators, `let`,
//! `if`, `loop`, lambdas, two-argument combiners, and every bag builtin.
//!
//! The generator only produces trees that *have* surface syntax: no
//! `Const(Tuple)`/`Const(Unit)` (no literal form), no negative longs (they
//! would re-parse as `Un(Neg, ..)`), no one-element tuples (parentheses are
//! grouping), and no post-parsing-phase primitives.

use matryoshka_ir::ast::{BinOp, Expr, Lambda, Lambda2, UnOp};
use matryoshka_ir::pretty::to_source;
use matryoshka_ir::{parse_program, Value};

/// splitmix64: tiny, seedable, and good enough to shake the grammar.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Generator state: variables currently in scope (for `Var` leaves) and a
/// counter for fresh binder names, so shadowing never collides with a
/// binder the same subtree still needs.
struct Gen {
    rng: Rng,
    scope: Vec<String>,
    fresh: u32,
}

impl Gen {
    fn fresh_name(&mut self) -> String {
        self.fresh += 1;
        format!("v{}", self.fresh)
    }

    fn leaf(&mut self) -> Expr {
        match self.rng.below(6) {
            0 => Expr::long(self.rng.below(1000) as i64),
            1 => Expr::Const(Value::Bool(self.rng.below(2) == 0)),
            2 => Expr::Const(Value::Double([0.5, 1.25, 2.0, 10.75][self.rng.below(4) as usize])),
            3 => Expr::Const(Value::Str(["day", "ip", "k1"][self.rng.below(3) as usize].into())),
            4 => Expr::Source(["xs", "ys", "visits"][self.rng.below(3) as usize].into()),
            _ => match self.scope.is_empty() {
                true => Expr::long(self.rng.below(10) as i64),
                false => Expr::var(&self.scope[self.rng.below(self.scope.len() as u64) as usize]),
            },
        }
    }

    fn lambda(&mut self, depth: u32) -> Lambda {
        let p = self.fresh_name();
        self.scope.push(p.clone());
        let body = self.expr(depth);
        self.scope.pop();
        Lambda::new(&p, body)
    }

    fn lambda2(&mut self, depth: u32) -> Lambda2 {
        let a = self.fresh_name();
        let b = self.fresh_name();
        self.scope.push(a.clone());
        self.scope.push(b.clone());
        let body = self.expr(depth);
        self.scope.pop();
        self.scope.pop();
        Lambda2::new(&a, &b, body)
    }

    fn expr(&mut self, depth: u32) -> Expr {
        if depth == 0 {
            return self.leaf();
        }
        let d = depth - 1;
        match self.rng.below(18) {
            0 | 1 => self.leaf(),
            2 => {
                // Two- or three-element tuple (one element would re-parse
                // as a grouping parenthesis).
                let n = 2 + self.rng.below(2);
                Expr::Tuple((0..n).map(|_| self.expr(d)).collect())
            }
            3 => Expr::proj(self.expr(d), self.rng.below(3) as usize),
            4 => {
                const OPS: [BinOp; 9] = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Eq,
                    BinOp::Lt,
                    BinOp::Gt,
                    BinOp::And,
                    BinOp::Or,
                ];
                let op = OPS[self.rng.below(9) as usize];
                Expr::bin(op, self.expr(d), self.expr(d))
            }
            5 => {
                let op = [UnOp::Not, UnOp::Neg, UnOp::ToDouble][self.rng.below(3) as usize];
                Expr::Un(op, Box::new(self.expr(d)))
            }
            6 => {
                let n = self.fresh_name();
                let v = self.expr(d);
                self.scope.push(n.clone());
                let b = self.expr(d);
                self.scope.pop();
                Expr::Let(n, Box::new(v), Box::new(b))
            }
            7 => Expr::If(Box::new(self.expr(d)), Box::new(self.expr(d)), Box::new(self.expr(d))),
            8 => {
                let n = 1 + self.rng.below(2);
                let names: Vec<String> = (0..n).map(|_| self.fresh_name()).collect();
                let init: Vec<(String, Expr)> =
                    names.iter().map(|nm| (nm.clone(), self.expr(d))).collect();
                for nm in &names {
                    self.scope.push(nm.clone());
                }
                let cond = self.expr(d);
                let step: Vec<Expr> = names.iter().map(|_| self.expr(d)).collect();
                let result = self.expr(d);
                for _ in &names {
                    self.scope.pop();
                }
                Expr::Loop { init, cond: Box::new(cond), step, result: Box::new(result) }
            }
            9 => {
                let x = self.expr(d);
                let l = self.lambda(d);
                Expr::Map(Box::new(x), l)
            }
            10 => {
                let x = self.expr(d);
                let l = self.lambda(d);
                Expr::Filter(Box::new(x), l)
            }
            11 => {
                let x = self.expr(d);
                let l = self.lambda(d);
                Expr::FlatMapTuple(Box::new(x), l)
            }
            12 => Expr::GroupByKey(Box::new(self.expr(d))),
            13 => Expr::Distinct(Box::new(self.expr(d))),
            14 => Expr::Count(Box::new(self.expr(d))),
            15 => {
                let x = self.expr(d);
                let l2 = self.lambda2(d);
                Expr::ReduceByKey(Box::new(x), l2)
            }
            16 => {
                let x = self.expr(d);
                let z = self.expr(d);
                let l2 = self.lambda2(d);
                Expr::Fold(Box::new(x), Box::new(z), l2)
            }
            _ => {
                let a = self.expr(d);
                let b = self.expr(d);
                match self.rng.below(2) {
                    0 => Expr::Join(Box::new(a), Box::new(b)),
                    _ => Expr::Union(Box::new(a), Box::new(b)),
                }
            }
        }
    }
}

fn check_roundtrip(e: &Expr) {
    let rendered = to_source(e);
    let reparsed = parse_program(&rendered)
        .unwrap_or_else(|err| panic!("`{rendered}` failed to re-parse: {err}"))
        .strip_spans();
    assert_eq!(&reparsed, e, "round-trip changed the tree for `{rendered}`");
}

#[test]
fn random_trees_round_trip_through_source() {
    for seed in 0..2000u64 {
        let mut g =
            Gen { rng: Rng(seed.wrapping_mul(0x9e37) ^ xmatry_seed()), scope: vec![], fresh: 0 };
        let e = g.expr(4);
        check_roundtrip(&e);
    }
}

const fn xmatry_seed() -> u64 {
    0x6d61_7472_796f_7368 // "matryosh"
}

#[test]
fn deep_trees_round_trip() {
    // A few deliberately deep trees: depth 7 exercises operator nesting and
    // parenthesisation well past anything the unit tests cover.
    for seed in [1u64, 7, 42, 1913, 65537] {
        let mut g = Gen { rng: Rng(seed), scope: vec![], fresh: 0 };
        let e = g.expr(7);
        check_roundtrip(&e);
    }
}

#[test]
fn parsed_programs_round_trip_with_spans_stripped() {
    // Sources written by hand (with comments-free surface syntax the
    // generator cannot produce, e.g. chained postfix projection and unary
    // minus) still round-trip once parsed.
    let cases = [
        "map(source(visits), v => (v.0, v.1))",
        "let two = 1 + 1 in two * -3",
        "filter(source(xs), x => !(x == 2) && x < 10 || x > 100)",
        "fold(map(source(xs), x => (x.1).0), 0, (a, b) => a + b)",
        "loop (n = 0) while n < 3 do (n + 1) yield (n, \"done\")",
    ];
    for case in cases {
        let ast = parse_program(case).unwrap().strip_spans();
        check_roundtrip(&ast);
    }
}
