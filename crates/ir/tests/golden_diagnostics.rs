//! Golden tests for the analyzer's rendered diagnostics.
//!
//! Each `tests/fixtures/<name>.mat` holds one deliberately malformed (or
//! warning-producing) program. The analyzer runs over it and the full
//! caret-rendered output of [`matryoshka_ir::pretty::render_diagnostics`]
//! — error codes, byte spans, source lines, caret runs, and the summary
//! line — is compared **verbatim** against `tests/fixtures/<name>.expected`.
//!
//! Fixture files may start with `#`-prefixed directive lines:
//!
//! ```text
//! # sources: xs ys
//! # dialect: diql
//! # plan: rewrite
//! ```
//!
//! The program is everything after the directive block (leading blank
//! lines trimmed); spans in the expected output are relative to that
//! program text. Defaults: `sources: xs ys visits`, `dialect: matryoshka`.
//!
//! `# plan: rewrite` switches the fixture from the analyzer to the
//! plan-rewrite pass: the program runs through the parsing phase and
//! [`matryoshka_ir::analyze::plan::rewrite_plan`] with every rewrite
//! enabled, and the rendered `MAT093`–`MAT096` warnings are compared
//! instead.
//!
//! To bless new output after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p matryoshka-ir --test golden_diagnostics
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use matryoshka_core::PlanRewriteConfig;
use matryoshka_ir::pretty::render_diagnostics;
use matryoshka_ir::{analyze, parse_program, parsing_phase, Dialect};

struct Fixture {
    sources: Vec<String>,
    dialect: Dialect,
    plan: bool,
    program: String,
}

fn load_fixture(path: &Path) -> Fixture {
    let raw = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    let mut sources = vec!["xs".to_string(), "ys".to_string(), "visits".to_string()];
    let mut dialect = Dialect::Matryoshka;
    let mut plan = false;
    let mut rest = raw.as_str();
    while let Some(line) = rest.lines().next() {
        let Some(directive) = line.strip_prefix('#') else { break };
        rest = &rest[line.len()..];
        rest = rest.strip_prefix('\n').unwrap_or(rest);
        let directive = directive.trim();
        if let Some(names) = directive.strip_prefix("sources:") {
            sources = names.split_whitespace().map(str::to_string).collect();
        } else if let Some(p) = directive.strip_prefix("plan:") {
            match p.trim() {
                "rewrite" => plan = true,
                other => panic!("{path:?}: unknown plan directive `{other}`"),
            }
        } else if let Some(d) = directive.strip_prefix("dialect:") {
            dialect = match d.trim() {
                "diql" => Dialect::DiqlLike,
                "matryoshka" => Dialect::Matryoshka,
                other => panic!("{path:?}: unknown dialect directive `{other}`"),
            };
        } else {
            panic!("{path:?}: unknown directive `#{directive}`");
        }
    }
    Fixture { sources, dialect, plan, program: rest.trim_start_matches('\n').to_string() }
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn malformed_programs_render_stable_diagnostics() {
    let dir = fixtures_dir();
    let mut mats: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {dir:?}: {e}"))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "mat"))
        .collect();
    mats.sort();
    assert!(!mats.is_empty(), "no .mat fixtures under {dir:?}");

    let bless = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut failures = Vec::new();
    for mat in &mats {
        let fx = load_fixture(mat);
        let ast = parse_program(&fx.program)
            .unwrap_or_else(|e| panic!("{mat:?}: fixture must parse (analysis, not syntax): {e}"));
        let srcs: Vec<&str> = fx.sources.iter().map(String::as_str).collect();
        let diagnostics = if fx.plan {
            let lowered = parsing_phase(&ast, &srcs, fx.dialect)
                .unwrap_or_else(|e| panic!("{mat:?}: parsing phase failed: {e}"));
            matryoshka_ir::analyze::plan::rewrite_plan(&lowered, &PlanRewriteConfig::enabled())
                .diagnostics
        } else {
            analyze(&ast, &srcs, fx.dialect).diagnostics
        };
        assert!(
            !diagnostics.is_empty(),
            "{mat:?}: fixture produced no diagnostics — not a useful golden test"
        );
        let rendered = render_diagnostics(&fx.program, &diagnostics);

        let expected_path = mat.with_extension("expected");
        if bless {
            fs::write(&expected_path, &rendered).unwrap();
            continue;
        }
        let expected = fs::read_to_string(&expected_path).unwrap_or_else(|e| {
            panic!("{expected_path:?}: {e} (run with UPDATE_GOLDEN=1 to create)")
        });
        if rendered != expected {
            failures.push(format!(
                "== {}\n-- expected --\n{expected}\n-- got --\n{rendered}",
                mat.file_name().unwrap().to_string_lossy()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "golden diagnostics drifted (UPDATE_GOLDEN=1 to bless):\n{}",
        failures.join("\n")
    );
}

/// The golden corpus stays honest: every stable error code the table
/// documents as an error has at least one fixture exercising it.
#[test]
fn corpus_covers_every_error_code() {
    let dir = fixtures_dir();
    let mut seen = std::collections::BTreeSet::new();
    for entry in fs::read_dir(&dir).unwrap() {
        let p = entry.unwrap().path();
        if p.extension().is_some_and(|x| x == "mat") {
            let fx = load_fixture(&p);
            let ast = parse_program(&fx.program).unwrap();
            let srcs: Vec<&str> = fx.sources.iter().map(String::as_str).collect();
            if fx.plan {
                continue; // plan fixtures exercise warning codes only
            }
            for d in analyze(&ast, &srcs, fx.dialect).diagnostics.iter() {
                seen.insert(d.code);
            }
        }
    }
    let missing: Vec<&str> = matryoshka_ir::analyze::codes::TABLE
        .iter()
        .filter(|(code, is_error, _)| *is_error && !seen.contains(code))
        .map(|(code, _, _)| *code)
        .collect();
    assert!(missing.is_empty(), "error codes without a fixture: {missing:?}");
}
