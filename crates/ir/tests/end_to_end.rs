//! End-to-end tests of the two-phase flattening through the IR: programs
//! written in the nested-parallel language, parsed (phase 1) and lowered
//! onto the engine (phase 2), checked against driver-side oracles.

use std::collections::HashMap;

use matryoshka_core::MatryoshkaConfig;
use matryoshka_engine::{Bag, Engine};
use matryoshka_ir::ast::{BinOp, Expr, Lambda, Lambda2, UnOp};
use matryoshka_ir::{parsing_phase, Dialect, Lowering, RtVal, Value};

fn run(program: &Expr, sources: Vec<(&str, Bag<Value>)>, engine: &Engine) -> RtVal {
    let parsed = parsing_phase(
        program,
        &sources.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
        Dialect::Matryoshka,
    )
    .expect("parsing phase");
    let inputs: HashMap<String, Bag<Value>> =
        sources.into_iter().map(|(n, b)| (n.to_string(), b)).collect();
    Lowering::new(engine.clone(), MatryoshkaConfig::optimized())
        .run(&parsed, &inputs)
        .expect("lowering")
}

fn bag_of(out: RtVal) -> Vec<Value> {
    match out {
        RtVal::Bag(b) => {
            let mut v = b.collect().unwrap();
            v.sort();
            v
        }
        other => panic!("expected a bag, got {other:?}"),
    }
}

fn pair(a: Value, b: Value) -> Value {
    Value::tuple(vec![a, b])
}

/// The paper's Listing 1: per-day bounce rate, written in the IR and
/// compared against the sequential oracle.
#[test]
fn bounce_rate_listing1_through_the_ir() {
    // (day, ip) visit records: day 1 has ips {10, 10, 11} (one bounce of
    // two visitors), day 2 has {12} (one bounce of one visitor).
    let visits: Vec<(i64, i64)> = vec![(1, 10), (1, 10), (1, 11), (2, 12)];

    let group = Expr::proj(Expr::var("g"), 1);
    let counts_per_ip = Expr::ReduceByKey(
        Box::new(Expr::Map(
            Box::new(group.clone()),
            Lambda::new("ip", Expr::Tuple(vec![Expr::var("ip"), Expr::long(1)])),
        )),
        Lambda2::new("a", "b", Expr::bin(BinOp::Add, Expr::var("a"), Expr::var("b"))),
    );
    let num_bounces = Expr::Count(Box::new(Expr::Filter(
        Box::new(counts_per_ip),
        Lambda::new("kv", Expr::bin(BinOp::Eq, Expr::proj(Expr::var("kv"), 1), Expr::long(1))),
    )));
    let num_visitors = Expr::Count(Box::new(Expr::Distinct(Box::new(group))));
    let rate = Expr::bin(
        BinOp::Div,
        Expr::Un(UnOp::ToDouble, Box::new(num_bounces)),
        Expr::Un(UnOp::ToDouble, Box::new(num_visitors)),
    );
    let program = Expr::Map(
        Box::new(Expr::GroupByKey(Box::new(Expr::Source("visits".into())))),
        Lambda::new("g", Expr::Tuple(vec![Expr::proj(Expr::var("g"), 0), rate])),
    );

    let e = Engine::local();
    let bag = e.parallelize(
        visits.iter().map(|&(d, ip)| pair(Value::Long(d), Value::Long(ip))).collect(),
        3,
    );
    let out = bag_of(run(&program, vec![("visits", bag)], &e));
    assert_eq!(
        out,
        vec![pair(Value::Long(1), Value::Double(0.5)), pair(Value::Long(2), Value::Double(1.0)),]
    );
}

/// A lifted loop: each group's counter counts down from its size; groups
/// exit at different iterations (Sec. 6.2's P1-P3 through the IR).
#[test]
fn per_group_loop_through_the_ir() {
    // Groups: key 1 -> 3 elements, key 2 -> 1 element.
    let data = [(1, 10), (1, 20), (1, 30), (2, 40)];
    // For each group: loop { steps++ ; n-- } while n > 0; result (key, steps).
    let program = Expr::Map(
        Box::new(Expr::GroupByKey(Box::new(Expr::Source("xs".into())))),
        Lambda::new(
            "g",
            Expr::Loop {
                init: vec![
                    ("n".into(), Expr::Count(Box::new(Expr::proj(Expr::var("g"), 1)))),
                    ("steps".into(), Expr::long(0)),
                ],
                cond: Box::new(Expr::bin(BinOp::Gt, Expr::var("n"), Expr::long(0))),
                step: vec![
                    Expr::bin(BinOp::Sub, Expr::var("n"), Expr::long(1)),
                    Expr::bin(BinOp::Add, Expr::var("steps"), Expr::long(1)),
                ],
                result: Box::new(Expr::Tuple(vec![
                    Expr::proj(Expr::var("g"), 0),
                    Expr::var("steps"),
                ])),
            },
        ),
    );
    let e = Engine::local();
    let bag =
        e.parallelize(data.iter().map(|&(k, v)| pair(Value::Long(k), Value::Long(v))).collect(), 2);
    let out = bag_of(run(&program, vec![("xs", bag)], &e));
    assert_eq!(
        out,
        vec![pair(Value::Long(1), Value::Long(3)), pair(Value::Long(2), Value::Long(1))]
    );
}

/// A driver-level closure referenced inside the lifted UDF (Sec. 5.2's
/// scalar replication): scale each group's count by an outer weight.
#[test]
fn scalar_closure_through_the_ir() {
    let program = Expr::let_(
        "w",
        Expr::long(100),
        Expr::Map(
            Box::new(Expr::GroupByKey(Box::new(Expr::Source("xs".into())))),
            Lambda::new(
                "g",
                Expr::bin(
                    BinOp::Mul,
                    Expr::var("w"),
                    Expr::Count(Box::new(Expr::proj(Expr::var("g"), 1))),
                ),
            ),
        ),
    );
    let e = Engine::local();
    let bag = e.parallelize(
        vec![
            pair(Value::Long(1), Value::Long(0)),
            pair(Value::Long(1), Value::Long(0)),
            pair(Value::Long(2), Value::Long(0)),
        ],
        2,
    );
    let out = bag_of(run(&program, vec![("xs", bag)], &e));
    assert_eq!(out, vec![Value::Long(100), Value::Long(200)]);
}

/// A driver-level *bag* closure consumed by a lifted map: the half-lifted
/// mapWithClosure cross product (Sec. 5.2/8.3) through the IR.
#[test]
fn half_lifted_closure_through_the_ir() {
    // For each group, the sum over the shared bag `ys` of (group_count * y).
    let program = Expr::let_(
        "ys_local",
        Expr::long(0), // placeholder to exercise Let around the map
        Expr::Map(
            Box::new(Expr::GroupByKey(Box::new(Expr::Source("xs".into())))),
            Lambda::new(
                "g",
                Expr::let_(
                    "n",
                    Expr::Count(Box::new(Expr::proj(Expr::var("g"), 1))),
                    Expr::Fold(
                        Box::new(Expr::Map(
                            Box::new(Expr::Source("ys".into())),
                            Lambda::new("y", Expr::bin(BinOp::Mul, Expr::var("n"), Expr::var("y"))),
                        )),
                        Box::new(Expr::long(0)),
                        Lambda2::new(
                            "a",
                            "b",
                            Expr::bin(BinOp::Add, Expr::var("a"), Expr::var("b")),
                        ),
                    ),
                ),
            ),
        ),
    );
    // NOTE: `ys` is a source read inside the lifted UDF; the parsing phase
    // treats sources as globally available bags, so the map over `ys`
    // becomes the half-lifted cross against the lifted closure `n`.
    let e = Engine::local();
    let xs = e.parallelize(
        vec![
            pair(Value::Long(1), Value::Long(0)),
            pair(Value::Long(1), Value::Long(0)),
            pair(Value::Long(2), Value::Long(0)),
        ],
        2,
    );
    let ys = e.parallelize(vec![Value::Long(1), Value::Long(2), Value::Long(3)], 2);
    let parsed = parsing_phase(&program, &["xs", "ys"], Dialect::Matryoshka);
    // The IR keeps sources out of closure lists; a source inside a lifted
    // UDF is rejected with a clear error instead of silently mis-running.
    match parsed {
        Ok(p) => {
            let inputs = HashMap::from([("xs".to_string(), xs), ("ys".to_string(), ys)]);
            let r = Lowering::new(e.clone(), MatryoshkaConfig::optimized()).run(&p, &inputs);
            match r {
                Ok(out) => {
                    // If supported, check the values: group1 n=2 -> 2*(1+2+3)=12,
                    // group2 n=1 -> 6.
                    let mut vals = bag_of(out);
                    vals.sort();
                    assert_eq!(vals, vec![Value::Long(6), Value::Long(12)]);
                }
                Err(err) => {
                    assert!(err.to_string().contains("closure"), "unexpected error: {err}");
                }
            }
        }
        Err(err) => assert!(err.to_string().contains("closure"), "unexpected error: {err}"),
    }
}

/// The DIQL dialect rejects the loop program the Matryoshka dialect runs —
/// the capability gap the paper evaluates (Sec. 9.1, 9.4).
#[test]
fn diql_dialect_gap() {
    let program = Expr::Map(
        Box::new(Expr::GroupByKey(Box::new(Expr::Source("xs".into())))),
        Lambda::new(
            "g",
            Expr::Loop {
                init: vec![("n".into(), Expr::Count(Box::new(Expr::proj(Expr::var("g"), 1))))],
                cond: Box::new(Expr::bin(BinOp::Gt, Expr::var("n"), Expr::long(0))),
                step: vec![Expr::bin(BinOp::Sub, Expr::var("n"), Expr::long(1))],
                result: Box::new(Expr::var("n")),
            },
        ),
    );
    assert!(parsing_phase(&program, &["xs"], Dialect::Matryoshka).is_ok());
    assert!(parsing_phase(&program, &["xs"], Dialect::DiqlLike).is_err());
}

/// Driver-mode programs (no nesting) execute directly: the parsed program
/// is unchanged and runs on plain engine bags.
#[test]
fn flat_program_runs_in_driver_mode() {
    // xs.map(x => x * x).filter(x > 10): word-of-god oracle.
    let program = Expr::Filter(
        Box::new(Expr::Map(
            Box::new(Expr::Source("xs".into())),
            Lambda::new("x", Expr::bin(BinOp::Mul, Expr::var("x"), Expr::var("x"))),
        )),
        Lambda::new("x", Expr::bin(BinOp::Gt, Expr::var("x"), Expr::long(10))),
    );
    let e = Engine::local();
    let xs = e.parallelize((1..=6).map(Value::Long).collect(), 3);
    let out = bag_of(run(&program, vec![("xs", xs)], &e));
    assert_eq!(out, vec![Value::Long(16), Value::Long(25), Value::Long(36)]);
}

/// Lifted `if`: groups take different branches per tag.
#[test]
fn lifted_if_through_the_ir() {
    // For each group: if count > 1 then count * 10 else -count.
    let count = Expr::Count(Box::new(Expr::proj(Expr::var("g"), 1)));
    let program = Expr::Map(
        Box::new(Expr::GroupByKey(Box::new(Expr::Source("xs".into())))),
        Lambda::new(
            "g",
            Expr::If(
                Box::new(Expr::bin(BinOp::Gt, count.clone(), Expr::long(1))),
                Box::new(Expr::bin(BinOp::Mul, count.clone(), Expr::long(10))),
                Box::new(Expr::Un(UnOp::Neg, Box::new(count))),
            ),
        ),
    );
    let e = Engine::local();
    let xs = e.parallelize(
        vec![
            pair(Value::Long(1), Value::Long(0)),
            pair(Value::Long(1), Value::Long(0)),
            pair(Value::Long(2), Value::Long(0)),
        ],
        2,
    );
    let out = bag_of(run(&program, vec![("xs", xs)], &e));
    assert_eq!(out, vec![Value::Long(-1), Value::Long(20)]);
}

/// Lifted join between two inner bags of the same group (composite-key
/// rekeying, Sec. 4.4) through the IR.
#[test]
fn lifted_join_through_the_ir() {
    // Per group: join the group's (k, v) records with themselves shifted,
    // then count matches.
    let inner = Expr::proj(Expr::var("g"), 1);
    let left = Expr::Map(
        Box::new(inner.clone()),
        Lambda::new("x", Expr::Tuple(vec![Expr::var("x"), Expr::long(1)])),
    );
    let right = Expr::Map(
        Box::new(inner),
        Lambda::new("x", Expr::Tuple(vec![Expr::var("x"), Expr::long(2)])),
    );
    let program = Expr::Map(
        Box::new(Expr::GroupByKey(Box::new(Expr::Source("xs".into())))),
        Lambda::new("g", Expr::Count(Box::new(Expr::Join(Box::new(left), Box::new(right))))),
    );
    let e = Engine::local();
    // Group 1 has elements {5, 6}; group 2 has {5}. Join keys must NOT
    // cross groups: counts are 2 and 1 (5 in group2 matches only its own).
    let xs = e.parallelize(
        vec![
            pair(Value::Long(1), Value::Long(5)),
            pair(Value::Long(1), Value::Long(6)),
            pair(Value::Long(2), Value::Long(5)),
        ],
        2,
    );
    let out = bag_of(run(&program, vec![("xs", xs)], &e));
    assert_eq!(out, vec![Value::Long(1), Value::Long(2)]);
}
