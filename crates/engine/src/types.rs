//! Marker traits for data flowing through the engine.

use std::hash::Hash;

/// Element types storable in a [`crate::Bag`].
///
/// Blanket-implemented: any `Clone + Send + Sync + 'static` type qualifies.
pub trait Data: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> Data for T {}

/// Key types usable for shuffles (grouping, joins, distinct) and as lifting
/// tags. Blanket-implemented for hashable, equatable [`Data`].
pub trait Key: Data + Eq + Hash {}
impl<T: Data + Eq + Hash> Key for T {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_data<T: Data>() {}
    fn assert_key<T: Key>() {}

    #[test]
    fn common_types_qualify() {
        assert_data::<u64>();
        assert_data::<(u32, Vec<f64>)>();
        assert_data::<String>();
        assert_key::<(u64, u64)>();
        assert_key::<String>();
        // f64 is Data but (correctly) not Key.
        assert_data::<f64>();
    }
}
