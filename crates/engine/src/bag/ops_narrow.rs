//! Narrow (pipelined, shuffle-free) transformations.

use std::sync::Arc;

use super::fuse::{fusible, Batch, ChargeRule, Step};
use super::{to_parts, Bag, Partitioning};
use crate::pool::parallel_map;
use crate::types::Data;

/// Simulated resource estimate returned by the UDF of
/// [`Bag::map_with_work`].
///
/// `cost_units` is interpreted as "equivalent records of the *input* bag's
/// record size" — e.g. an outer-parallel UDF that runs 10 PageRank iterations
/// over a group of 5000 edges reports `cost_units = 50_000`. `mem_bytes` is
/// the peak working set the UDF holds while processing one record; the
/// heaviest record of a partition defines the task's working set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkEstimate {
    /// Work in units of one input-record processing cost.
    pub cost_units: u64,
    /// Peak simulated working-set bytes while processing this record.
    pub mem_bytes: u64,
}

impl<T: Data> Bag<T> {
    /// Element-wise transformation.
    pub fn map<U: Data>(&self, f: impl Fn(&T) -> U + Send + Sync + 'static) -> Bag<U> {
        let engine = self.engine().clone();
        let bytes = self.record_bytes();
        let f = Arc::new(f);
        let step: Step<T, U> = {
            let f = Arc::clone(&f);
            Arc::new(move |_, batch: Batch<'_, T>| batch.as_slice().iter().map(&*f).collect())
        };
        fusible(self, "map", bytes, Partitioning::Arbitrary, ChargeRule::Output, step, {
            move |parent: &Bag<T>| {
                let input = parent.eval()?;
                let out: Vec<Vec<U>> =
                    parallel_map(input.to_vec(), |_, p: Arc<Vec<T>>| p.iter().map(&*f).collect());
                let counts: Vec<usize> = out.iter().map(Vec::len).collect();
                engine.charge_compute(&counts, bytes, false)?;
                Ok(to_parts(out))
            }
        })
    }

    /// Element-wise transformation that also sees the record's position:
    /// `(partition_index, offset_in_partition, record)`. The position is
    /// deterministic, so it can derive stable per-record tags (e.g. the
    /// adaptive re-optimizer's skew salts) without extra shuffles or state.
    pub fn map_indexed<U: Data>(
        &self,
        f: impl Fn(usize, usize, &T) -> U + Send + Sync + 'static,
    ) -> Bag<U> {
        let engine = self.engine().clone();
        let bytes = self.record_bytes();
        let f = Arc::new(f);
        let step: Step<T, U> = {
            let f = Arc::clone(&f);
            Arc::new(move |pi, batch: Batch<'_, T>| {
                batch.as_slice().iter().enumerate().map(|(i, x)| f(pi, i, x)).collect()
            })
        };
        fusible(self, "map_indexed", bytes, Partitioning::Arbitrary, ChargeRule::Output, step, {
            move |parent: &Bag<T>| {
                let input = parent.eval()?;
                let out: Vec<Vec<U>> = parallel_map(input.to_vec(), |pi, p: Arc<Vec<T>>| {
                    p.iter().enumerate().map(|(i, x)| f(pi, i, x)).collect()
                });
                let counts: Vec<usize> = out.iter().map(Vec::len).collect();
                engine.charge_compute(&counts, bytes, false)?;
                Ok(to_parts(out))
            }
        })
    }

    /// Element-wise transformation that also reports a simulated resource
    /// estimate per record. This is how *sequential* inner computations
    /// (the outer-parallel workaround's UDFs) are priced honestly: the UDF
    /// does its real work and tells the simulator how much work that was.
    ///
    /// Never fused: the memory accounting below must observe the real
    /// per-record estimates, and its weighted task costs have no
    /// `charge_compute` equivalent to replay.
    pub fn map_with_work<U: Data>(
        &self,
        f: impl Fn(&T) -> (U, WorkEstimate) + Send + Sync + 'static,
    ) -> Bag<U> {
        let parent = self.clone();
        let engine = self.engine().clone();
        let bytes = self.record_bytes();
        Bag::new(engine.clone(), "map_with_work", bytes, self.num_partitions(), move || {
            let input = parent.eval()?;
            let computed: Vec<(Vec<U>, u64, u64)> =
                parallel_map(input.to_vec(), |_, p: Arc<Vec<T>>| {
                    let mut out = Vec::with_capacity(p.len());
                    let mut work = 0u64;
                    let mut mem = 0u64;
                    for rec in p.iter() {
                        let (u, est) = f(rec);
                        out.push(u);
                        work += est.cost_units;
                        mem = mem.max(est.mem_bytes);
                    }
                    (out, work, mem)
                });
            let per_record = engine.record_cost(bytes);
            let task_costs: Vec<crate::SimTime> =
                computed.iter().map(|(_, work, _)| per_record * *work).collect();
            let working_sets: Vec<u64> = computed.iter().map(|(_, _, mem)| *mem).collect();
            engine.charge_memory("map_with_work", &working_sets)?;
            engine.charge_weighted(&task_costs, false)?;
            engine.core.stats.add_records(computed.iter().map(|(o, _, _)| o.len() as u64).sum());
            Ok(to_parts(computed.into_iter().map(|(o, _, _)| o).collect()))
        })
    }

    /// Keep records satisfying the predicate.
    pub fn filter(&self, f: impl Fn(&T) -> bool + Send + Sync + 'static) -> Bag<T> {
        let engine = self.engine().clone();
        let bytes = self.record_bytes();
        let f = Arc::new(f);
        let step: Step<T, T> = {
            let f = Arc::clone(&f);
            // Survivors clone at the chain head (what the unfused pass pays
            // per survivor) and move for free mid-chain, where the in-place
            // `into_iter().collect()` also reuses the batch's allocation.
            Arc::new(move |_, batch: Batch<'_, T>| match batch {
                Batch::Shared(xs) => xs.iter().filter(|x| f(x)).cloned().collect(),
                Batch::Owned(xs) => xs.into_iter().filter(|x| f(x)).collect(),
            })
        };
        fusible(self, "filter", bytes, Partitioning::Arbitrary, ChargeRule::Input, step, {
            move |parent: &Bag<T>| {
                let input = parent.eval()?;
                let in_counts: Vec<usize> = input.iter().map(|p| p.len()).collect();
                let out: Vec<Vec<T>> = parallel_map(input.to_vec(), |_, p: Arc<Vec<T>>| {
                    p.iter().filter(|x| f(x)).cloned().collect()
                });
                engine.charge_compute(&in_counts, bytes, false)?;
                Ok(to_parts(out))
            }
        })
    }

    /// Element-to-many transformation. Cost is charged on
    /// `max(input, output)` records per partition, so expansion (e.g. a
    /// flattened cross product) is priced by what it produces.
    pub fn flat_map<U: Data, I>(&self, f: impl Fn(&T) -> I + Send + Sync + 'static) -> Bag<U>
    where
        I: IntoIterator<Item = U>,
    {
        let engine = self.engine().clone();
        let bytes = self.record_bytes();
        let f = Arc::new(f);
        let step: Step<T, U> = {
            let f = Arc::clone(&f);
            Arc::new(move |_, batch: Batch<'_, T>| batch.as_slice().iter().flat_map(&*f).collect())
        };
        fusible(self, "flat_map", bytes, Partitioning::Arbitrary, ChargeRule::MaxSide, step, {
            move |parent: &Bag<T>| {
                let input = parent.eval()?;
                let out: Vec<Vec<U>> = parallel_map(input.to_vec(), |_, p: Arc<Vec<T>>| {
                    p.iter().flat_map(&*f).collect()
                });
                let counts: Vec<usize> =
                    input.iter().zip(out.iter()).map(|(i, o)| i.len().max(o.len())).collect();
                engine.charge_compute(&counts, bytes, false)?;
                Ok(to_parts(out))
            }
        })
    }

    /// Pair every record with a unique id (Spark `zipWithUniqueId`:
    /// `index_in_partition * num_partitions + partition_index`).
    pub fn zip_with_unique_id(&self) -> Bag<(T, u64)> {
        let engine = self.engine().clone();
        let bytes = self.record_bytes();
        let nparts = self.num_partitions() as u64;
        let step: Step<T, (T, u64)> = Arc::new(move |pi, batch: Batch<'_, T>| match batch {
            Batch::Shared(xs) => xs
                .iter()
                .enumerate()
                .map(|(i, x)| (x.clone(), i as u64 * nparts + pi as u64))
                .collect(),
            Batch::Owned(xs) => xs
                .into_iter()
                .enumerate()
                .map(|(i, x)| (x, i as u64 * nparts + pi as u64))
                .collect(),
        });
        fusible(
            self,
            "zip_with_unique_id",
            bytes,
            Partitioning::Arbitrary,
            ChargeRule::Output,
            step,
            move |parent: &Bag<T>| {
                let input = parent.eval()?;
                let out: Vec<Vec<(T, u64)>> = parallel_map(input.to_vec(), |pi, p: Arc<Vec<T>>| {
                    p.iter()
                        .enumerate()
                        .map(|(i, x)| (x.clone(), i as u64 * nparts + pi as u64))
                        .collect()
                });
                let counts: Vec<usize> = out.iter().map(Vec::len).collect();
                engine.charge_compute(&counts, bytes, false)?;
                Ok(to_parts(out))
            },
        )
    }

    /// Concatenate two bags (free metadata operation, like Spark `union`).
    pub fn union(&self, other: &Bag<T>) -> Bag<T> {
        assert!(self.engine().same_as(other.engine()), "union of bags from different engines");
        let a = self.clone();
        let b = other.clone();
        let bytes = self.record_bytes().max(other.record_bytes());
        let parts = self.num_partitions() + other.num_partitions();
        Bag::new(self.engine().clone(), "union", bytes, parts, move || {
            let pa = a.eval()?;
            let pb = b.eval()?;
            let mut all: Vec<Arc<Vec<T>>> = pa.to_vec();
            all.extend(pb.to_vec());
            Ok(Arc::new(all))
        })
    }

    /// Reduce the partition count without a shuffle by concatenating
    /// adjacent partitions (Spark `coalesce`).
    pub fn coalesce(&self, n: usize) -> Bag<T> {
        let parent = self.clone();
        let n = n.max(1);
        let bytes = self.record_bytes();
        let out_parts = n.min(self.num_partitions());
        Bag::new(self.engine().clone(), "coalesce", bytes, out_parts, move || {
            let input = parent.eval()?;
            let total = input.len();
            if out_parts == total {
                // Nothing to merge: reuse the parent's partitions as-is
                // (coalesce charges nothing, so this is sim-neutral).
                return Ok(input);
            }
            let group = total.div_ceil(out_parts);
            let mut out: Vec<Vec<T>> = Vec::with_capacity(out_parts);
            for g in 0..out_parts {
                let mut merged = Vec::new();
                for p in input.iter().skip(g * group).take(group) {
                    merged.extend_from_slice(p);
                }
                out.push(merged);
            }
            Ok(to_parts(out))
        })
    }

    /// Convenience: key every record by `f` (a `map` producing pairs).
    pub fn key_by<K: Data>(&self, f: impl Fn(&T) -> K + Send + Sync + 'static) -> Bag<(K, T)> {
        self.map(move |x| (f(x), x.clone()))
    }
}

#[cfg(test)]
mod tests {
    use crate::{Engine, WorkEstimate};

    #[test]
    fn map_filter_flat_map_semantics() {
        let e = Engine::local();
        let b = e.parallelize((1..=10).collect::<Vec<i64>>(), 3);
        let out = b
            .map(|x| x * 10)
            .filter(|x| x % 20 == 0)
            .flat_map(|x| vec![*x, -*x])
            .collect()
            .unwrap();
        let mut sorted = out.clone();
        sorted.sort();
        assert_eq!(sorted, vec![-100, -80, -60, -40, -20, 20, 40, 60, 80, 100]);
    }

    #[test]
    fn map_indexed_sees_stable_positions() {
        let e = Engine::local();
        let b = e.parallelize((0..20u32).collect::<Vec<_>>(), 4);
        let tagged = b.map_indexed(|pi, i, x| (pi, i, *x)).collect().unwrap();
        assert_eq!(tagged.len(), 20);
        // Offsets restart at 0 in every partition and positions are unique.
        let mut pos: Vec<(usize, usize)> = tagged.iter().map(|(pi, i, _)| (*pi, *i)).collect();
        pos.sort_unstable();
        pos.dedup();
        assert_eq!(pos.len(), 20, "(partition, offset) must be unique");
        assert!(tagged.iter().any(|(_, i, _)| *i == 0));
        // Deterministic: a second run tags identically.
        let again = e
            .parallelize((0..20u32).collect::<Vec<_>>(), 4)
            .map_indexed(|pi, i, x| (pi, i, *x))
            .collect()
            .unwrap();
        let mut a = tagged.clone();
        let mut b2 = again.clone();
        a.sort_unstable();
        b2.sort_unstable();
        assert_eq!(a, b2);
    }

    #[test]
    fn zip_with_unique_id_is_unique() {
        let e = Engine::local();
        let b = e.parallelize((0..57).collect::<Vec<u32>>(), 5).zip_with_unique_id();
        let ids: Vec<u64> = b.collect().unwrap().into_iter().map(|(_, id)| id).collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 57, "ids must be unique");
    }

    #[test]
    fn union_concatenates() {
        let e = Engine::local();
        let a = e.parallelize(vec![1, 2], 2);
        let b = e.parallelize(vec![3], 1);
        let mut out = a.union(&b).collect().unwrap();
        out.sort();
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(a.union(&b).num_partitions(), 3);
    }

    #[test]
    #[should_panic(expected = "different engines")]
    fn union_across_engines_panics() {
        let a = Engine::local().parallelize(vec![1], 1);
        let b = Engine::local().parallelize(vec![2], 1);
        let _ = a.union(&b);
    }

    #[test]
    fn coalesce_preserves_data() {
        let e = Engine::local();
        let b = e.parallelize((0..100).collect::<Vec<u32>>(), 10).coalesce(3);
        assert_eq!(b.num_partitions(), 3);
        let mut out = b.collect().unwrap();
        out.sort();
        assert_eq!(out, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn map_with_work_charges_declared_work() {
        let e = Engine::local();
        let b = e.parallelize(vec![1u64, 2, 3], 1);
        let cheap = b.map_with_work(|x| (*x, WorkEstimate { cost_units: 1, mem_bytes: 0 }));
        let t0 = e.sim_time();
        cheap.collect().unwrap();
        let cheap_dt = e.sim_time() - t0;

        let b2 = e.parallelize(vec![1u64, 2, 3], 1);
        let pricey =
            b2.map_with_work(|x| (*x, WorkEstimate { cost_units: 1_000_000, mem_bytes: 0 }));
        let t1 = e.sim_time();
        pricey.collect().unwrap();
        let pricey_dt = e.sim_time() - t1;
        assert!(pricey_dt > cheap_dt);
    }

    #[test]
    fn map_with_work_memory_can_oom() {
        let e = Engine::local(); // 4 GB per machine
        let b = e.parallelize(vec![0u8], 1);
        let huge =
            b.map_with_work(|_| ((), WorkEstimate { cost_units: 1, mem_bytes: 64 * crate::GB }));
        assert!(matches!(huge.collect(), Err(crate::EngineError::OutOfMemory { .. })));
    }

    #[test]
    fn key_by_keys_records() {
        let e = Engine::local();
        let b = e.parallelize(vec!["aa".to_string(), "b".to_string()], 1);
        let mut out = b.key_by(|s| s.len()).collect().unwrap();
        out.sort_by_key(|(k, _)| *k);
        assert_eq!(out, vec![(1, "b".to_string()), (2, "aa".to_string())]);
    }
}
