//! Narrow-chain operator fusion: single-pass pipelined execution of
//! shuffle-free lineage.
//!
//! Every fusible narrow operator (`map`, `filter`, `flat_map`, `map_indexed`,
//! `zip_with_unique_id`, `sample`, `map_values`, and `key_by` via `map`)
//! carries a [`FuseHook`]: a recipe for assembling the *maximal run* of
//! narrow ancestors ending at that operator into one composed batch-transducer
//! chain. When such an operator evaluates and the assembled chain has two or
//! more stages, the whole run executes as **one** `parallel_map_range` pass per
//! partition: one pool dispatch total, and per partition each operator is a
//! single dynamic call whose body is the operator's own *monomorphized* tight
//! loop over the whole [`Batch`]. Mid-chain batches are owned `Vec`s handed
//! from stage to stage, so `into_iter().collect()` reuses the allocation in
//! place where layouts allow, record clones are elided (ownership moves),
//! and none of the elided middles ever becomes a cached partition set
//! (`Arc<Vec<Arc<Vec<_>>>>`) in the lineage.
//!
//! # Sim-transparency invariant
//!
//! Fusion changes *wall-clock* execution only. The fused pass tallies each
//! operator's per-partition input/output record counts ([`OpTally`]) while it
//! runs and then replays **exactly** the `charge_compute` calls the unfused
//! chain would have issued: same source-first order, same per-partition
//! counts (via each operator's [`ChargeRule`]), same record sizes, same
//! `current_operator` attribution. Simulated time, `StatsSnapshot` counters
//! (other than the fusion counters themselves), `Stage` trace events and
//! fault-model draws are bit-identical with fusion on or off (`golden_sim`
//! and the `fusion` property tests pin this).
//!
//! # Fusion barriers
//!
//! A fusible operator materializes its parent (starting a fresh chain there)
//! instead of fusing through it when the parent is:
//!
//! - a **wide** operator, a source, `checkpoint`, `cache`, `coalesce`,
//!   `union`, `with_record_bytes` or `map_with_work` (none carry a fuse
//!   hook — `map_with_work` because its memory accounting must observe real
//!   per-partition outputs, `cache`/`checkpoint` because their whole point
//!   is a stable materialization every consumer can share);
//! - already **materialized** (its memoized partitions are reused as-is);
//! - **multi-consumer**: any other live handle to the parent (a user
//!   binding, a second downstream operator, or a still-live temporary of the
//!   enclosing statement) keeps the shared prefix materialized. That handle
//!   could evaluate the parent later and must find it cached exactly as an
//!   unfused run would have left it; fusing through it would make the later
//!   evaluation re-charge the prefix and diverge from the unfused schedule.
//!
//! Exclusivity is detected by `Arc` strong count: a fusible child holds
//! exactly two references to its parent (one in its assemble hook, one in
//! its compute closure), so a count of 2 proves no other handle exists.
//! The materialized/multi-consumer check is the shared barrier predicate
//! [`Bag::absorbable`](super::Bag::absorbable), which the IR plan-rewrite
//! pass also leans on: its hoist/CSE auto-caching inserts `cache` nodes so
//! shared subplans stay materialized under exactly the same rule.
//!
//! # Iteration stability
//!
//! Composite names like `fused(map|filter)` are `&'static str` (the rest of
//! the trace plumbing stores static operator names). They are interned in a
//! global leak-once table keyed by the composite string, so a `lifted_while`
//! loop that rebuilds the same narrow chain every iteration allocates the
//! name once for the chain *shape* — per-iteration cost stays O(chain
//! length) closure allocations with zero leaked memory after the first
//! iteration.

use std::cell::Cell;
use std::sync::{Arc, Mutex, OnceLock};

use super::{to_parts, Bag, Partitioning, Parts};
use crate::error::Result;
use crate::pool::parallel_map_range;
use crate::trace::EngineEvent;
use crate::types::Data;
use crate::Engine;

/// Per-operator record counts observed by the fused pass in one partition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct OpTally {
    /// Records the operator consumed.
    pub input: u64,
    /// Records the operator emitted.
    pub output: u64,
}

/// Which tally an operator's unfused `charge_compute` call would have used
/// as its per-partition count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChargeRule {
    /// Charged on emitted records (`map`, `map_indexed`, `map_values`,
    /// `zip_with_unique_id`).
    Output,
    /// Charged on consumed records (`filter`, `sample`).
    Input,
    /// Charged on `max(input, output)` (`flat_map`: expansion is priced by
    /// what it produces).
    MaxSide,
}

impl ChargeRule {
    fn count(self, t: OpTally) -> usize {
        (match self {
            ChargeRule::Output => t.output,
            ChargeRule::Input => t.input,
            ChargeRule::MaxSide => t.input.max(t.output),
        }) as usize
    }
}

/// Static description of one operator inside an assembled chain — everything
/// the charge replay needs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FusedOpMeta {
    /// The operator's own name (`map`, `filter`, ...).
    pub name: &'static str,
    /// The `record_bytes` its unfused `charge_compute` call would pass.
    pub bytes: f64,
    /// Which tally its unfused per-partition counts correspond to.
    pub charge: ChargeRule,
}

/// One operator's whole-partition input inside a fused chain: borrowed from
/// the materialized base partition at the chain head, owned (handed off by
/// the upstream stage) everywhere else. Operators that re-emit their input
/// (`filter`, `sample`, `zip_with_unique_id`, `map_values`' keys) clone in
/// the `Shared` head position — exactly the clone the unfused operator
/// performs — and consume the `Owned` vector by value mid-chain, eliding the
/// per-stage clones the unfused pipeline pays and letting
/// `into_iter().collect()` reuse the allocation in place.
pub(crate) enum Batch<'a, T> {
    /// Borrowed view of the head's materialized input partition.
    Shared(&'a [T]),
    /// Produced (and owned) by the upstream fused operator.
    Owned(Vec<T>),
}

impl<T> Batch<'_, T> {
    /// Borrow the records (for operators whose UDF takes `&T` and produces
    /// owned output, where the two ownership cases collapse).
    pub fn as_slice(&self) -> &[T] {
        match self {
            Batch::Shared(s) => s,
            Batch::Owned(v) => v,
        }
    }
}

/// One operator's batch transducer step: receives the partition index and
/// the operator's entire per-partition input stream (so `enumerate`
/// positions inside the step equal the unfused per-partition offsets that
/// `map_indexed`/`zip_with_unique_id`/`sample` observe), and returns the
/// operator's output batch. One dynamic call per operator per partition; the
/// loop inside is the operator's own monomorphized code.
pub(crate) type Step<I, O> = Arc<dyn Fn(usize, Batch<'_, I>) -> Vec<O> + Send + Sync>;

/// Drives one partition of an assembled chain: threads the base partition
/// through the composed steps, crediting each operator's [`OpTally`] cell
/// with its batch sizes.
type DriveFn<T> = Box<dyn Fn(usize, &[Cell<OpTally>]) -> Vec<T> + Send + Sync>;

/// A maximal narrow run, assembled at evaluation time: the per-operator
/// metadata (source-first) and a per-partition driver over the materialized
/// base input.
pub(crate) struct Assembled<T> {
    /// Chain operators, source-first; the evaluating tail is last.
    pub metas: Vec<FusedOpMeta>,
    /// Actual partition count of the materialized base input.
    pub partitions: usize,
    /// Per-partition driver.
    pub drive: DriveFn<T>,
}

/// The fusion recipe carried by every fusible node: assembles the maximal
/// chain ending at that node, plus the slot its composite name lands in when
/// the node executes fused.
pub(crate) struct FuseHook<T> {
    /// Assemble the maximal chain ending at this operator.
    pub assemble: Arc<dyn Fn() -> Result<Assembled<T>> + Send + Sync>,
    /// Composite name (`fused(map|filter)`), set by the fused executor;
    /// shared with the node so `op_name()` and the execution trace report
    /// provenance after evaluation.
    pub fused_name: Arc<OnceLock<&'static str>>,
}

/// Credit one operator's tally with a processed batch.
#[inline]
fn add_tally(t: &Cell<OpTally>, input: usize, output: usize) {
    let v = t.get();
    t.set(OpTally { input: v.input + input as u64, output: v.output + output as u64 });
}

/// Construct a fusible narrow operator.
///
/// `step` is the operator's per-record transducer (used when the operator
/// runs inside a fused chain); `unfused` is its classic whole-partition
/// compute, kept monomorphized and byte-for-byte identical to the pre-fusion
/// implementation so the `fuse_narrow = false` A/B baseline pays no dynamic
/// dispatch. The chain-length-1 case also falls through to `unfused`.
pub(crate) fn fusible<P: Data, T: Data>(
    parent: &Bag<P>,
    name: &'static str,
    record_bytes: f64,
    partitioning: Partitioning,
    charge: ChargeRule,
    step: Step<P, T>,
    unfused: impl Fn(&Bag<P>) -> Result<Parts<T>> + Send + Sync + 'static,
) -> Bag<T> {
    let engine = parent.engine().clone();
    let partitions = parent.num_partitions();
    let fused_name: Arc<OnceLock<&'static str>> = Arc::new(OnceLock::new());

    let assemble: Arc<dyn Fn() -> Result<Assembled<T>> + Send + Sync> = {
        let parent = parent.clone();
        let step = Arc::clone(&step);
        Arc::new(move || {
            let meta = FusedOpMeta { name, bytes: record_bytes, charge };
            if let Some(hook) = parent.fuse_through() {
                // Exclusive fusible parent: extend its chain with this step.
                let assembled = (hook.assemble)()?;
                let k = assembled.metas.len();
                let mut metas = assembled.metas;
                metas.push(meta);
                let upstream = assembled.drive;
                let step = Arc::clone(&step);
                let drive: DriveFn<T> = Box::new(move |pi, tallies| {
                    let input = upstream(pi, tallies);
                    let consumed = input.len();
                    let out = step(pi, Batch::Owned(input));
                    add_tally(&tallies[k], consumed, out.len());
                    out
                });
                Ok(Assembled { metas, partitions: assembled.partitions, drive })
            } else {
                // Barrier: materialize the parent (memoized and charged
                // exactly as the unfused chain would) and start a fresh
                // chain reading its shared partitions by reference.
                let parts = parent.eval()?;
                let base_partitions = parts.len();
                let step = Arc::clone(&step);
                let drive: DriveFn<T> = Box::new(move |pi, tallies| {
                    let input = parts[pi].as_slice();
                    let out = step(pi, Batch::Shared(input));
                    add_tally(&tallies[0], input.len(), out.len());
                    out
                });
                Ok(Assembled { metas: vec![meta], partitions: base_partitions, drive })
            }
        })
    };

    let compute = {
        let engine = engine.clone();
        let assemble = Arc::clone(&assemble);
        let fused_name = Arc::clone(&fused_name);
        let parent = parent.clone();
        move || {
            // Fusing is only worth entering when the parent itself joins the
            // chain; a chain of length 1 runs the classic monomorphized
            // whole-partition pass.
            if engine.config().fuse_narrow && parent.fuse_through().is_some() {
                let assembled = assemble()?;
                debug_assert!(assembled.metas.len() >= 2, "fuse-through implies a chain");
                return run_fused(&engine, assembled, &fused_name);
            }
            unfused(&parent)
        }
    };

    Bag::new_fusible(
        engine,
        name,
        record_bytes,
        partitions,
        partitioning,
        FuseHook { assemble, fused_name },
        compute,
    )
}

/// Execute an assembled chain: one pool dispatch over the base partitions,
/// then the sim-transparent charge replay, fusion counters, `StageFused`
/// trace event, and decision-log entry.
fn run_fused<T: Data>(
    engine: &Engine,
    assembled: Assembled<T>,
    fused_name: &OnceLock<&'static str>,
) -> Result<Parts<T>> {
    let Assembled { metas, partitions, drive } = assembled;
    let ops = metas.len();
    let per_part: Vec<(Vec<T>, Vec<OpTally>)> = parallel_map_range(partitions, |pi| {
        let tallies: Vec<Cell<OpTally>> = (0..ops).map(|_| Cell::new(OpTally::default())).collect();
        let out = drive(pi, &tallies);
        (out, tallies.into_iter().map(Cell::into_inner).collect())
    });
    // Charge replay: the exact sequence the unfused chain would have issued,
    // source-first, attributed to each operator's own name.
    for (j, meta) in metas.iter().enumerate() {
        let counts: Vec<usize> =
            per_part.iter().map(|(_, tallies)| meta.charge.count(tallies[j])).collect();
        engine.push_current_op(meta.name);
        let charged = engine.charge_compute(&counts, meta.bytes, false);
        engine.pop_current_op();
        charged?;
    }
    let composite = *fused_name.get_or_init(|| intern_fused_name(&metas));
    let elided = (ops - 1) as u64;
    engine.core.stats.add_stage_fused(elided);
    let at = engine.sim_time();
    engine.record_event(|| EngineEvent::StageFused {
        ops: composite,
        ops_fused: ops as u64,
        intermediates_elided: elided,
        partitions: partitions as u64,
        at,
    });
    let records: u64 = per_part.iter().map(|(out, _)| out.len() as u64).sum();
    engine.record_decision(
        "narrow_fusion",
        composite.to_string(),
        records,
        0,
        format!("{ops} narrow ops in one pass over {partitions} partitions; {elided} intermediate materializations elided"),
    );
    Ok(to_parts(per_part.into_iter().map(|(out, _)| out).collect()))
}

/// Leak-once interner for composite chain names (see the module docs on
/// iteration stability). The table is tiny — one entry per distinct chain
/// shape ever fused in the process — so a linear scan beats hashing.
static FUSED_NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

fn intern_fused_name(metas: &[FusedOpMeta]) -> &'static str {
    let mut label = String::with_capacity(8 + metas.len() * 10);
    label.push_str("fused(");
    for (i, meta) in metas.iter().enumerate() {
        if i > 0 {
            label.push('|');
        }
        label.push_str(meta.name);
    }
    label.push(')');
    let mut names = FUSED_NAMES.lock().expect("fused-name interner lock poisoned");
    if let Some(existing) = names.iter().find(|n| ***n == *label) {
        return existing;
    }
    let leaked: &'static str = Box::leak(label.into_boxed_str());
    names.push(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(name: &'static str) -> FusedOpMeta {
        FusedOpMeta { name, bytes: 8.0, charge: ChargeRule::Output }
    }

    #[test]
    fn fuse_interner_returns_one_allocation_per_shape() {
        let a = intern_fused_name(&[meta("map"), meta("filter")]);
        let b = intern_fused_name(&[meta("map"), meta("filter")]);
        assert_eq!(a, "fused(map|filter)");
        assert_eq!(a.as_ptr(), b.as_ptr(), "same shape must reuse the leaked name");
        let c = intern_fused_name(&[meta("map"), meta("filter"), meta("flat_map")]);
        assert_eq!(c, "fused(map|filter|flat_map)");
        assert_ne!(a.as_ptr(), c.as_ptr());
    }

    #[test]
    fn fuse_charge_rules_pick_the_unfused_count() {
        let t = OpTally { input: 10, output: 4 };
        assert_eq!(ChargeRule::Output.count(t), 4);
        assert_eq!(ChargeRule::Input.count(t), 10);
        assert_eq!(ChargeRule::MaxSide.count(t), 10);
        let expanding = OpTally { input: 3, output: 9 };
        assert_eq!(ChargeRule::MaxSide.count(expanding), 9);
    }

    #[test]
    fn fuse_batch_exposes_both_ownership_cases() {
        let v = vec![1u32, 2, 3];
        let shared: Batch<'_, u32> = Batch::Shared(&v);
        assert_eq!(shared.as_slice(), &[1, 2, 3]);
        let owned: Batch<'_, u32> = Batch::Owned(v.clone());
        assert_eq!(owned.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn fuse_tallies_accumulate_batch_sizes() {
        let cell = Cell::new(OpTally::default());
        add_tally(&cell, 10, 4);
        add_tally(&cell, 5, 5);
        assert_eq!(cell.get(), OpTally { input: 15, output: 9 });
    }
}
