//! The distributed-collection abstraction: a lazy, partitioned [`Bag`].
//!
//! A `Bag<T>` is a handle to a node in a lineage DAG, exactly like an RDD in
//! Spark: transformations (`map`, `filter`, `join`, ...) build new nodes
//! lazily; *actions* (`collect`, `count`, ...) launch a simulated job that
//! evaluates the lineage. Evaluated nodes memoize their partitions (as if
//! every RDD were cached), so iterative programs do not recompute their
//! history and simulated costs are charged exactly once per operator.

mod actions;
mod fuse;
mod ops_misc;
mod ops_narrow;
mod ops_wide;

pub use ops_narrow::WorkEstimate;
pub use ops_wide::JoinAlgorithm;

/// How a bag's records are known to be distributed across partitions.
///
/// Wide by-key operators record that their output is hash-partitioned by
/// key; a later by-key operator with the same partition count can then skip
/// the shuffle entirely (Spark's co-partitioned narrow dependency — the
/// reason `partitionBy` + cached lineage makes iterative joins cheap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioning {
    /// No known structure.
    Arbitrary,
    /// Records are placed by `stable_hash(key) % partitions` of their key
    /// component.
    HashByKey {
        /// Number of partitions the hash was taken modulo.
        partitions: usize,
    },
}

use std::sync::{Arc, OnceLock};

use crate::error::Result;
use crate::map_output::MapOutputStats;
use crate::types::Data;
use crate::Engine;

/// Evaluated partitions: cheap to clone and share across lineage.
pub(crate) type Parts<T> = Arc<Vec<Arc<Vec<T>>>>;

/// Wrap raw partition vectors.
pub(crate) fn to_parts<T>(parts: Vec<Vec<T>>) -> Parts<T> {
    Arc::new(parts.into_iter().map(Arc::new).collect())
}

pub(crate) struct Node<T> {
    engine: Engine,
    name: &'static str,
    /// Approximate serialized bytes per record; drives shuffle/memory models.
    /// For grouped bags (`Bag<(K, Vec<V>)>`) this refers to bytes per *inner
    /// element* `V`, not per group (see `ops_wide::group_by_key`).
    record_bytes: f64,
    /// Statically known partition count of the output.
    partitions: usize,
    /// Known placement of records across partitions.
    partitioning: Partitioning,
    compute: Box<dyn Fn() -> Result<Parts<T>> + Send + Sync>,
    cache: OnceLock<Result<Parts<T>>>,
    /// Per-reduce-partition map-output statistics, filled by wide operators
    /// when their shuffle scatters on first evaluation. Shared with the
    /// compute closure (which runs without access to the node).
    map_output: Arc<OnceLock<MapOutputStats>>,
    /// Fusion recipe, present on fusible narrow operators only: lets a
    /// downstream narrow operator extend this node's transducer chain
    /// instead of materializing it (see `bag/fuse.rs`). `None` marks a
    /// fusion barrier (sources, wide ops, `checkpoint`, `map_with_work`,
    /// ...).
    fuse: Option<fuse::FuseHook<T>>,
}

/// A lazy, partitioned, immutable distributed collection (Spark RDD
/// equivalent). Cloning is cheap (shares the lineage node).
pub struct Bag<T: Data> {
    pub(crate) node: Arc<Node<T>>,
}

impl<T: Data> Clone for Bag<T> {
    fn clone(&self) -> Self {
        Bag { node: Arc::clone(&self.node) }
    }
}

impl<T: Data> Bag<T> {
    pub(crate) fn new(
        engine: Engine,
        name: &'static str,
        record_bytes: f64,
        partitions: usize,
        compute: impl Fn() -> Result<Parts<T>> + Send + Sync + 'static,
    ) -> Bag<T> {
        Bag::new_with_partitioning(
            engine,
            name,
            record_bytes,
            partitions,
            Partitioning::Arbitrary,
            compute,
        )
    }

    pub(crate) fn new_with_partitioning(
        engine: Engine,
        name: &'static str,
        record_bytes: f64,
        partitions: usize,
        partitioning: Partitioning,
        compute: impl Fn() -> Result<Parts<T>> + Send + Sync + 'static,
    ) -> Bag<T> {
        Bag::new_shuffled(
            engine,
            name,
            record_bytes,
            partitions,
            partitioning,
            Arc::new(OnceLock::new()),
            compute,
        )
    }

    /// Constructor used by wide operators: `map_output` is the shared slot
    /// the operator's compute closure fills with the shuffle's per-partition
    /// statistics when it scatters.
    pub(crate) fn new_shuffled(
        engine: Engine,
        name: &'static str,
        record_bytes: f64,
        partitions: usize,
        partitioning: Partitioning,
        map_output: Arc<OnceLock<MapOutputStats>>,
        compute: impl Fn() -> Result<Parts<T>> + Send + Sync + 'static,
    ) -> Bag<T> {
        Bag {
            node: Arc::new(Node {
                engine,
                name,
                record_bytes,
                partitions: partitions.max(1),
                partitioning,
                compute: Box::new(compute),
                cache: OnceLock::new(),
                map_output,
                fuse: None,
            }),
        }
    }

    /// Constructor used by fusible narrow operators (see `bag/fuse.rs`):
    /// like [`Bag::new_with_partitioning`] but carrying the fusion recipe a
    /// downstream narrow operator uses to extend this node's chain.
    pub(crate) fn new_fusible(
        engine: Engine,
        name: &'static str,
        record_bytes: f64,
        partitions: usize,
        partitioning: Partitioning,
        fuse: fuse::FuseHook<T>,
        compute: impl Fn() -> Result<Parts<T>> + Send + Sync + 'static,
    ) -> Bag<T> {
        Bag {
            node: Arc::new(Node {
                engine,
                name,
                record_bytes,
                partitions: partitions.max(1),
                partitioning,
                compute: Box::new(compute),
                cache: OnceLock::new(),
                map_output: Arc::new(OnceLock::new()),
                fuse: Some(fuse),
            }),
        }
    }

    /// The shared reuse-barrier predicate for chain-extending rewrites:
    /// a node may be absorbed into a longer chain only while it is
    /// **unmaterialized** and **exclusively owned**. Already-evaluated
    /// nodes (including `checkpoint` and `cache` parents, whose whole point
    /// is a stable materialization) and multi-consumer nodes must stay as
    /// they are so every consumer finds the shared partitions cached.
    /// `expected_refs` is the number of handles the single downstream
    /// consumer legitimately holds (fusion holds two: assemble hook +
    /// compute closure). Used by operator fusion here and relied upon by
    /// the IR plan-rewrite pass (`matryoshka-ir::analyze::plan`), whose
    /// hoist/CSE auto-caching inserts `cache` nodes precisely so this
    /// predicate keeps them materialized instead of re-deriving the rule.
    pub(crate) fn absorbable(&self, expected_refs: usize) -> bool {
        self.node.cache.get().is_none() && Arc::strong_count(&self.node) == expected_refs
    }

    /// The fusion recipe of this bag, if a downstream narrow operator may
    /// extend its chain: requires a fusible node that passes the shared
    /// [`Bag::absorbable`] barrier predicate. Any third handle — a user
    /// binding, a second consumer, a still-live temporary of the enclosing
    /// statement — keeps the shared prefix materialized so a later
    /// evaluation finds it cached exactly as an unfused run would have
    /// left it.
    pub(crate) fn fuse_through(&self) -> Option<&fuse::FuseHook<T>> {
        if self.absorbable(2) {
            self.node.fuse.as_ref()
        } else {
            None
        }
    }

    /// Known placement of this bag's records (see [`Partitioning`]).
    pub fn partitioning(&self) -> Partitioning {
        self.node.partitioning
    }

    /// Evaluate (or fetch memoized) partitions, charging simulated costs on
    /// the first evaluation only (which also appends the operator to the
    /// engine's execution trace).
    pub(crate) fn eval(&self) -> Result<Parts<T>> {
        self.node
            .cache
            .get_or_init(|| {
                // While this node computes, charge-site events attribute to it.
                self.node.engine.push_current_op(self.node.name);
                let result = (self.node.compute)();
                self.node.engine.pop_current_op();
                let (records, ok) = match &result {
                    Ok(parts) => (parts.iter().map(|p| p.len() as u64).sum(), true),
                    Err(_) => (0, false),
                };
                self.node.engine.record_trace(crate::TraceEvent {
                    // A tail that executed as a fused chain reports its
                    // composite provenance (`fused(map|filter)`).
                    op: self.op_name(),
                    partitions: self.node.partitions,
                    record_bytes: self.node.record_bytes,
                    records,
                    completed_at: self.node.engine.sim_time(),
                    ok,
                });
                result
            })
            .clone()
    }

    /// The engine this bag belongs to.
    pub fn engine(&self) -> &Engine {
        &self.node.engine
    }

    /// Operator name of the defining node (diagnostics). After a bag has
    /// evaluated as the tail of a fused narrow chain
    /// ([`ClusterConfig::fuse_narrow`](crate::ClusterConfig::fuse_narrow)),
    /// this reports the composite provenance, e.g. `fused(map|filter)`.
    pub fn op_name(&self) -> &'static str {
        self.node
            .fuse
            .as_ref()
            .and_then(|hook| hook.fused_name.get().copied())
            .unwrap_or(self.node.name)
    }

    /// Statically known partition count.
    pub fn num_partitions(&self) -> usize {
        self.node.partitions
    }

    /// Approximate serialized bytes per record used by the cost model.
    pub fn record_bytes(&self) -> f64 {
        self.node.record_bytes
    }

    /// Override the modeled bytes-per-record (no data movement, no cost).
    ///
    /// Use this where the default (`size_of::<T>()`) misrepresents the data
    /// the record stands for, e.g. when a small in-memory struct models a
    /// fat on-disk record in a scaled-down experiment.
    pub fn with_record_bytes(&self, bytes: f64) -> Bag<T> {
        let parent = self.clone();
        Bag::new_with_partitioning(
            self.engine().clone(),
            "with_record_bytes",
            bytes,
            self.num_partitions(),
            self.partitioning(),
            move || parent.eval(),
        )
    }

    /// Explicitly mark this bag for reuse: evaluate the parent once and
    /// share its partitions with every consumer (zero-copy — `Parts` is an
    /// `Arc` of `Arc`ed partitions, like Spark's `cache()` without the
    /// storage-level bookkeeping).
    ///
    /// The node charges nothing of its own (memoization already makes every
    /// evaluated bag reusable), but it is a **fusion barrier** by
    /// construction (no fuse hook), so downstream narrow chains cannot
    /// absorb the parent and recompute it per consumer. The plan-rewrite
    /// pass (`matryoshka-ir::analyze::plan`) lowers its hoisted and merged
    /// subplans onto this node.
    pub fn cache(&self) -> Bag<T> {
        let parent = self.clone();
        Bag::new_with_partitioning(
            self.engine().clone(),
            "cache",
            self.record_bytes(),
            self.num_partitions(),
            self.partitioning(),
            move || parent.eval(),
        )
    }

    /// Checkpoint this bag to simulated replicated storage, truncating
    /// lineage for the machine-loss fault model (see `docs/FAULTS.md`).
    ///
    /// The records are untouched (zero-copy: partitions are shared with the
    /// parent) and the partitioning is preserved, but on first evaluation the
    /// engine charges writing the bag's modeled bytes to checkpoint storage
    /// and clears the recovery ledger — a machine lost after this point only
    /// replays lineage built *after* the checkpoint. With faults disabled the
    /// write cost is still charged (like Spark's `checkpoint()`), so only add
    /// checkpoints when the fault model is in play or the overhead is the
    /// thing being measured.
    pub fn checkpoint(&self) -> Bag<T> {
        let parent = self.clone();
        let engine = self.engine().clone();
        let bytes = self.record_bytes();
        Bag::new_with_partitioning(
            self.engine().clone(),
            "checkpoint",
            bytes,
            self.num_partitions(),
            self.partitioning(),
            move || {
                let parts = parent.eval()?;
                let records: u64 = parts.iter().map(|p| p.len() as u64).sum();
                engine.charge_checkpoint("checkpoint", (records as f64 * bytes) as u64);
                Ok(parts)
            },
        )
    }

    /// Default modeled record size for `T`.
    pub(crate) fn default_record_bytes() -> f64 {
        (std::mem::size_of::<T>() as f64).max(8.0)
    }

    /// Modeled total size in bytes, available only once the bag has been
    /// computed (Spark `SizeEstimator` equivalent: cheap, no job). Returns
    /// `None` for unevaluated or failed bags.
    pub fn size_estimate(&self) -> Option<u64> {
        match self.node.cache.get() {
            Some(Ok(parts)) => {
                let records: u64 = parts.iter().map(|p| p.len() as u64).sum();
                Some((records as f64 * self.node.record_bytes) as u64)
            }
            _ => None,
        }
    }

    /// Number of records, available only once the bag has been computed
    /// (no job charged). Returns `None` for unevaluated or failed bags.
    pub fn cached_count(&self) -> Option<u64> {
        match self.node.cache.get() {
            Some(Ok(parts)) => Some(parts.iter().map(|p| p.len() as u64).sum()),
            _ => None,
        }
    }

    /// Exact per-reduce-partition statistics of the shuffle that produced
    /// this bag, available once the bag has materialized. `None` for
    /// narrow operators, co-partitioned (shuffle-free) paths, and
    /// unevaluated bags.
    pub fn map_output_stats(&self) -> Option<MapOutputStats> {
        self.node.map_output.get().cloned()
    }
}

#[cfg(test)]
mod tests {
    use crate::config::ClusterConfig;
    use crate::Engine;

    #[test]
    fn bags_are_lazy_until_action() {
        let e = Engine::new(ClusterConfig::local_test());
        let before = e.stats();
        let b = e.parallelize((0..100).collect::<Vec<i32>>(), 4);
        let _mapped = b.map(|x| x * 2);
        // No action ran: no jobs, no stages.
        let after = e.stats();
        assert_eq!(after.jobs, before.jobs);
        assert_eq!(after.stages, before.stages);
    }

    #[test]
    fn eval_is_memoized_and_charged_once() {
        let e = Engine::new(ClusterConfig::local_test());
        let b = e.parallelize((0..1000).collect::<Vec<i32>>(), 4).map(|x| x + 1);
        let t0 = e.sim_time();
        let c1 = b.count().unwrap();
        let t1 = e.sim_time();
        let c2 = b.count().unwrap();
        let t2 = e.sim_time();
        assert_eq!(c1, c2);
        // Second count only pays the job launch, not recomputation.
        let first = t1 - t0;
        let second = t2 - t1;
        assert!(second < first, "memoized action should be cheaper: {second} vs {first}");
    }

    #[test]
    fn trace_records_each_operator_once_in_topological_order() {
        let e = Engine::new(ClusterConfig::local_test());
        let b = e.parallelize((0..100u32).map(|i| (i % 5, i)).collect::<Vec<_>>(), 4);
        let r = b.map(|(k, v)| (*k, v + 1)).reduce_by_key(|a, b| a + b);
        r.count().unwrap();
        r.count().unwrap(); // memoized: no new trace entries
        let trace = e.trace();
        let names: Vec<&str> = trace.iter().map(|ev| ev.op).collect();
        assert_eq!(names, vec!["parallelize", "map", "reduce_by_key"]);
        assert!(trace.iter().all(|ev| ev.ok));
        assert_eq!(trace[0].records, 100);
        assert_eq!(trace[2].records, 5);
        let report = e.trace_report();
        assert!(report.contains("reduce_by_key"));
    }

    #[test]
    fn trace_marks_failed_operators() {
        let mut cfg = ClusterConfig::local_test();
        cfg.memory_per_machine = 1; // everything OOMs
        let e = Engine::new(cfg);
        let b = e.parallelize((0..100u32).map(|i| (0u8, i)).collect::<Vec<_>>(), 2).group_by_key();
        assert!(b.collect().is_err());
        let trace = e.trace();
        assert!(trace.iter().any(|ev| ev.op == "group_by_key" && !ev.ok));
    }

    #[test]
    fn cache_is_a_zero_cost_identity_sharing_partitions() {
        let e = Engine::new(ClusterConfig::local_test());
        let b = e.parallelize((0..100).collect::<Vec<i32>>(), 4).map(|x| x * 2);
        let c = b.cache();
        assert_eq!(c.num_partitions(), b.num_partitions());
        assert_eq!(c.record_bytes(), b.record_bytes());
        assert_eq!(c.collect().unwrap(), b.collect().unwrap());
        // Zero-copy: the cache node's partitions are the parent's Arcs.
        let (cp, bp) = (c.eval().unwrap(), b.eval().unwrap());
        assert!(cp.iter().zip(bp.iter()).all(|(a, b)| std::sync::Arc::ptr_eq(a, b)));
    }

    #[test]
    fn cache_and_checkpoint_parents_block_fusion() {
        let run = |wrap: fn(&crate::Bag<i32>) -> crate::Bag<i32>| {
            let mut cfg = ClusterConfig::local_test();
            cfg.fuse_narrow = true;
            let e = Engine::new(cfg);
            let b = wrap(&e.parallelize((0..100).collect::<Vec<i32>>(), 4).map(|x| x + 1));
            let out = b.map(|x| x * 2).filter(|x| x % 4 == 0);
            out.count().unwrap();
            (out.collect().unwrap(), e.trace().iter().map(|ev| ev.op).collect::<Vec<_>>())
        };
        let (plain_rows, _plain_ops) = run(|b| b.clone());
        let (cached_rows, cached_ops) = run(|b| b.cache());
        let (ckpt_rows, ckpt_ops) = run(|b| b.checkpoint());
        assert_eq!(plain_rows, cached_rows);
        assert_eq!(plain_rows, ckpt_rows);
        // The downstream map|filter chain still fuses, but never through
        // the barrier node: the barrier appears in the trace by name.
        assert!(cached_ops.contains(&"cache"), "{cached_ops:?}");
        assert!(ckpt_ops.contains(&"checkpoint"), "{ckpt_ops:?}");
        assert!(
            cached_ops.iter().all(|op| !op.contains("cache|") && !op.contains("|cache")),
            "fused through a cache barrier: {cached_ops:?}"
        );
    }

    #[test]
    fn record_bytes_override_propagates() {
        let e = Engine::new(ClusterConfig::local_test());
        let b = e.parallelize(vec![1u8, 2, 3], 2).with_record_bytes(1024.0);
        assert_eq!(b.record_bytes(), 1024.0);
        let m = b.map(|x| *x as u64);
        assert_eq!(m.record_bytes(), 1024.0, "derived bags inherit record bytes");
        assert_eq!(m.collect().unwrap(), vec![1u64, 2, 3]);
    }
}
