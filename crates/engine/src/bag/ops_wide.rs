//! Wide (shuffle) transformations: grouping, aggregation, joins, distinct,
//! repartitioning.
//!
//! Every wide operator charges: map-side serialization + network transfer
//! for the shuffled records, then a new stage (driver scheduling + task
//! launch per output partition + per-record processing), and a memory check
//! for whatever it materializes per task (hash tables, grouped values).
//!
//! # Wall-clock fast path
//!
//! Host-side, these operators are on the zero-copy partition flow (see
//! `DESIGN.md`): co-partitioned (narrow) branches read straight out of the
//! shared `Arc<Vec<T>>` partitions instead of deep-copying them, shuffling
//! branches scatter through the parallel
//! [`crate::partitioner::scatter_shared_by_key`], and worker-private hash
//! tables use the deterministic [`crate::fx`] hasher. None of this changes
//! a single charge: simulated times and [`crate::StatsSnapshot`] are pinned
//! bit-identical by `tests/golden_sim.rs`.

use std::sync::{Arc, OnceLock};

use super::{to_parts, Bag, Partitioning};
use crate::fx::{fx_map, fx_map_with_capacity, fx_set_with_capacity, FxHashMap};
use crate::map_output::MapOutputStats;
use crate::partitioner::{scatter_by_key, scatter_shared_by_key};
use crate::pool::parallel_map;
use crate::types::{Data, Key};

/// Record the exact per-reduce-partition map-output counts of a shuffle:
/// update the engine's peaks/history/trace and fill the producing bag's
/// shared stats slot. Pure bookkeeping — charges nothing.
fn record_scatter<T>(
    engine: &crate::Engine,
    slot: &Arc<OnceLock<MapOutputStats>>,
    operator: &'static str,
    shuffled: &[Vec<T>],
    record_bytes: f64,
) {
    let counts: Vec<u64> = shuffled.iter().map(|p| p.len() as u64).collect();
    let stats = MapOutputStats::from_partition_records(operator, counts, record_bytes);
    engine.record_map_output(&stats);
    let _ = slot.set(stats);
}

/// How a join should be executed. The Matryoshka optimizer (crate
/// `matryoshka-core`) picks between these at runtime; baselines may force
/// one (the ablation of the paper's Fig. 8, left).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgorithm {
    /// Shuffle both sides by key hash; build a hash table from the right
    /// side per partition.
    Repartition,
    /// Collect and broadcast the right side; the left side stays in place
    /// (narrow). Fails with simulated OOM if the right side cannot fit on a
    /// single machine.
    BroadcastRight,
}

impl<K: Key, V: Data> Bag<(K, V)> {
    /// Group values by key into in-memory `Vec`s (Spark `groupByKey`).
    ///
    /// The output's `record_bytes` still refers to bytes per *inner element*
    /// `V`; the memory model uses real group sizes, so a giant group makes a
    /// giant task exactly as on a real engine (the outer-parallel failure
    /// mode of the paper's Sec. 9.4-9.5).
    pub fn group_by_key(&self) -> Bag<(K, Vec<V>)> {
        self.group_by_key_into(self.default_wide_partitions())
    }

    /// Default output partition count for wide by-key operators: the parent
    /// partition count capped at the configured default parallelism (as
    /// Spark caps at `spark.default.parallelism`) — without the cap,
    /// `union`-then-aggregate loops would grow partition counts without
    /// bound.
    fn default_wide_partitions(&self) -> usize {
        self.num_partitions().min(self.engine().config().default_parallelism)
    }

    /// [`Bag::group_by_key`] with an explicit output partition count.
    pub fn group_by_key_into(&self, partitions: usize) -> Bag<(K, Vec<V>)> {
        let parent = self.clone();
        let engine = self.engine().clone();
        let bytes = self.record_bytes();
        let partitions = partitions.max(1);
        let co_partitioned = parent.partitioning() == Partitioning::HashByKey { partitions };
        let meta = Partitioning::HashByKey { partitions };
        let map_output: Arc<OnceLock<MapOutputStats>> = Arc::new(OnceLock::new());
        let slot = Arc::clone(&map_output);
        Bag::new_shuffled(
            engine.clone(),
            "group_by_key",
            bytes,
            partitions,
            meta,
            map_output,
            move || {
                let input = parent.eval()?;
                if co_partitioned {
                    // Already hash-placed by key with the right modulus: a
                    // narrow dependency, no shuffle (Spark co-partitioning) —
                    // and zero-copy: group straight out of the shared
                    // partitions.
                    let in_counts: Vec<usize> = input.iter().map(|p| p.len()).collect();
                    let factor = engine.config().costs.materialize_factor;
                    let working_sets: Vec<u64> =
                        in_counts.iter().map(|&n| (n as f64 * bytes * factor) as u64).collect();
                    engine.charge_memory("group_by_key", &working_sets)?;
                    let out: Vec<Vec<(K, Vec<V>)>> =
                        parallel_map(input.to_vec(), |_, p: Arc<Vec<(K, V)>>| {
                            let mut groups: FxHashMap<K, Vec<V>> = fx_map();
                            for (k, v) in p.iter() {
                                groups.entry(k.clone()).or_default().push(v.clone());
                            }
                            groups.into_iter().collect()
                        });
                    engine.charge_compute(&in_counts, bytes, true)?;
                    return Ok(to_parts(out));
                }
                let records: u64 = input.iter().map(|p| p.len() as u64).sum();
                engine.charge_shuffle("group_by_key", records, bytes);
                let shuffled = scatter_shared_by_key(&input, partitions, |r| &r.0);
                record_scatter(&engine, &slot, "group_by_key", &shuffled, bytes);
                let factor = engine.config().costs.materialize_factor;
                let working_sets: Vec<u64> =
                    shuffled.iter().map(|p| (p.len() as f64 * bytes * factor) as u64).collect();
                engine.charge_memory("group_by_key", &working_sets)?;
                let in_counts: Vec<usize> = shuffled.iter().map(Vec::len).collect();
                let out: Vec<Vec<(K, Vec<V>)>> = parallel_map(shuffled, |_, part| {
                    let mut groups: FxHashMap<K, Vec<V>> = fx_map();
                    for (k, v) in part {
                        groups.entry(k).or_default().push(v);
                    }
                    groups.into_iter().collect()
                });
                engine.charge_compute(&in_counts, bytes, true)?;
                Ok(to_parts(out))
            },
        )
    }

    /// Merge values per key with an associative function, with map-side
    /// combining (Spark `reduceByKey`).
    pub fn reduce_by_key(&self, f: impl Fn(&V, &V) -> V + Send + Sync + 'static) -> Bag<(K, V)> {
        self.reduce_by_key_into(self.default_wide_partitions(), f)
    }

    /// [`Bag::reduce_by_key`] with an explicit output partition count.
    pub fn reduce_by_key_into(
        &self,
        partitions: usize,
        f: impl Fn(&V, &V) -> V + Send + Sync + 'static,
    ) -> Bag<(K, V)> {
        let bytes = self.record_bytes();
        self.reduce_by_key_partials(partitions, bytes, f)
    }

    /// [`Bag::reduce_by_key_into`] with an explicit modeled size for the
    /// *post-combine* partial records.
    ///
    /// By default partials inherit the input's record weight, which is right
    /// when the key cardinality scales with the data (word counts). When the
    /// key space is structural (one partial per cluster per configuration in
    /// K-means), a partial is a small real record no matter how much data it
    /// aggregates — pass that size here so the combine output's shuffle and
    /// memory are modeled honestly.
    pub fn reduce_by_key_partials(
        &self,
        partitions: usize,
        partial_bytes: f64,
        f: impl Fn(&V, &V) -> V + Send + Sync + 'static,
    ) -> Bag<(K, V)> {
        let parent = self.clone();
        let engine = self.engine().clone();
        let bytes = self.record_bytes();
        let partitions = partitions.max(1);
        let co_partitioned = parent.partitioning() == Partitioning::HashByKey { partitions };
        let meta = Partitioning::HashByKey { partitions };
        let f = Arc::new(f);
        let map_output: Arc<OnceLock<MapOutputStats>> = Arc::new(OnceLock::new());
        let slot = Arc::clone(&map_output);
        Bag::new_shuffled(
            engine.clone(),
            "reduce_by_key",
            partial_bytes,
            partitions,
            meta,
            map_output,
            move || {
                let input = parent.eval()?;
                let in_counts: Vec<usize> = input.iter().map(|p| p.len()).collect();
                // Map-side combine.
                let fc = Arc::clone(&f);
                let combined: Vec<Vec<(K, V)>> =
                    parallel_map(input.to_vec(), move |_, p: Arc<Vec<(K, V)>>| {
                        let mut acc: FxHashMap<K, V> = fx_map_with_capacity(p.len());
                        for (k, v) in p.iter() {
                            match acc.get_mut(k) {
                                Some(cur) => *cur = fc(cur, v),
                                None => {
                                    acc.insert(k.clone(), v.clone());
                                }
                            }
                        }
                        acc.into_iter().collect()
                    });
                engine.charge_compute(&in_counts, bytes, false)?;
                let factor = engine.config().costs.materialize_factor;
                let combine_ws: Vec<u64> = combined
                    .iter()
                    .map(|p| (p.len() as f64 * partial_bytes * factor) as u64)
                    .collect();
                engine.charge_memory("reduce_by_key(combine)", &combine_ws)?;
                if co_partitioned {
                    // Co-location puts every record of a key in exactly one
                    // partition, so the map-side combine already produced the
                    // final value per key: the reduce pass would rebuild an
                    // identical table. Skip the rebuild host-side but charge
                    // the reduce stage exactly as before — the *model* still
                    // runs it.
                    let reduce_ws: Vec<u64> = combined
                        .iter()
                        .map(|p| (p.len() as f64 * partial_bytes * factor) as u64)
                        .collect();
                    engine.charge_memory("reduce_by_key", &reduce_ws)?;
                    let counts: Vec<usize> = combined.iter().map(Vec::len).collect();
                    engine.charge_compute(&counts, bytes, true)?;
                    return Ok(to_parts(combined));
                }
                let shuffled = {
                    let records: u64 = combined.iter().map(|p| p.len() as u64).sum();
                    engine.charge_shuffle("reduce_by_key", records, partial_bytes);
                    scatter_by_key(combined, partitions, |r| &r.0)
                };
                record_scatter(&engine, &slot, "reduce_by_key", &shuffled, partial_bytes);
                let reduce_ws: Vec<u64> = shuffled
                    .iter()
                    .map(|p| (p.len() as f64 * partial_bytes * factor) as u64)
                    .collect();
                engine.charge_memory("reduce_by_key", &reduce_ws)?;
                let counts: Vec<usize> = shuffled.iter().map(Vec::len).collect();
                let fr = Arc::clone(&f);
                let out: Vec<Vec<(K, V)>> = parallel_map(shuffled, move |_, part| {
                    let mut acc: FxHashMap<K, V> = fx_map();
                    for (k, v) in part {
                        match acc.get_mut(&k) {
                            Some(cur) => *cur = fr(cur, &v),
                            None => {
                                acc.insert(k, v);
                            }
                        }
                    }
                    acc.into_iter().collect()
                });
                engine.charge_compute(&counts, bytes, true)?;
                Ok(to_parts(out))
            },
        )
    }

    /// Equi-join with a selectable algorithm.
    pub fn join_with<W: Data>(
        &self,
        other: &Bag<(K, W)>,
        algorithm: JoinAlgorithm,
    ) -> Bag<(K, (V, W))> {
        match algorithm {
            JoinAlgorithm::Repartition => self.join(other),
            JoinAlgorithm::BroadcastRight => self.broadcast_join(other),
        }
    }

    /// Repartition (shuffle) equi-join.
    pub fn join<W: Data>(&self, other: &Bag<(K, W)>) -> Bag<(K, (V, W))> {
        let p = self
            .num_partitions()
            .max(other.num_partitions())
            .min(self.engine().config().default_parallelism);
        self.join_into(p, other)
    }

    /// [`Bag::join`] with an explicit output partition count.
    pub fn join_into<W: Data>(&self, partitions: usize, other: &Bag<(K, W)>) -> Bag<(K, (V, W))> {
        assert!(self.engine().same_as(other.engine()), "join of bags from different engines");
        let left = self.clone();
        let right = other.clone();
        let engine = self.engine().clone();
        let lbytes = self.record_bytes();
        let rbytes = other.record_bytes();
        let out_bytes = lbytes + rbytes;
        let partitions = partitions.max(1);
        let l_co = left.partitioning() == Partitioning::HashByKey { partitions };
        let r_co = right.partitioning() == Partitioning::HashByKey { partitions };
        let meta = Partitioning::HashByKey { partitions };
        let map_output: Arc<OnceLock<MapOutputStats>> = Arc::new(OnceLock::new());
        let slot = Arc::clone(&map_output);
        Bag::new_shuffled(
            engine.clone(),
            "join",
            out_bytes,
            partitions,
            meta,
            map_output,
            move || {
                let lp = left.eval()?;
                let rp = right.eval()?;
                // Co-partitioned sides are reused as-is (refcount bump only); a
                // side that must shuffle scatters straight from the shared
                // partitions. Either way no input is deep-copied: the only
                // per-record clones left are the output tuples themselves.
                let ls: Vec<Arc<Vec<(K, V)>>> = if l_co {
                    lp.to_vec()
                } else {
                    let lrecords: u64 = lp.iter().map(|p| p.len() as u64).sum();
                    engine.charge_shuffle("join", lrecords, lbytes);
                    scatter_shared_by_key(&lp, partitions, |r| &r.0)
                        .into_iter()
                        .map(Arc::new)
                        .collect()
                };
                let rs: Vec<Arc<Vec<(K, W)>>> = if r_co {
                    rp.to_vec()
                } else {
                    let rrecords: u64 = rp.iter().map(|p| p.len() as u64).sum();
                    engine.charge_shuffle("join", rrecords, rbytes);
                    scatter_shared_by_key(&rp, partitions, |r| &r.0)
                        .into_iter()
                        .map(Arc::new)
                        .collect()
                };
                if !(l_co && r_co) {
                    // Both sides land in the same reduce partition: record the
                    // combined per-partition load (each side weighted by its own
                    // record size).
                    let stats = MapOutputStats {
                        operator: "join",
                        partition_records: ls
                            .iter()
                            .zip(rs.iter())
                            .map(|(l, r)| (l.len() + r.len()) as u64)
                            .collect(),
                        partition_bytes: ls
                            .iter()
                            .zip(rs.iter())
                            .map(|(l, r)| {
                                (l.len() as f64 * lbytes + r.len() as f64 * rbytes) as u64
                            })
                            .collect(),
                    };
                    engine.record_map_output(&stats);
                    let _ = slot.set(stats);
                }
                let factor = engine.config().costs.materialize_factor;
                let build_ws: Vec<u64> =
                    rs.iter().map(|p| (p.len() as f64 * rbytes * factor) as u64).collect();
                engine.charge_memory("join(build)", &build_ws)?;
                let zipped: Vec<(Arc<Vec<(K, V)>>, Arc<Vec<(K, W)>>)> =
                    ls.into_iter().zip(rs).collect();
                let out: Vec<Vec<(K, (V, W))>> = parallel_map(zipped, |_, (l, r)| {
                    // Chained-index multimap over the shared right side: one map
                    // entry per key plus one `next` slot per record — no per-key
                    // `Vec` allocations, and nothing is cloned until an actual
                    // match is emitted. Chains are threaded back-to-front so a
                    // probe walks matches in right-side record order.
                    const NIL: u32 = u32::MAX;
                    assert!(r.len() < NIL as usize, "join partition exceeds u32 chain capacity");
                    let mut head: FxHashMap<&K, u32> = fx_map_with_capacity(r.len());
                    let mut next: Vec<u32> = vec![NIL; r.len()];
                    for (i, (k, _)) in r.iter().enumerate().rev() {
                        if let Some(later) = head.insert(k, i as u32) {
                            next[i] = later;
                        }
                    }
                    let mut res: Vec<(K, (V, W))> = Vec::with_capacity(l.len());
                    for (k, v) in l.iter() {
                        let Some(&first) = head.get(k) else { continue };
                        let mut i = first;
                        loop {
                            let w = &r[i as usize].1;
                            res.push((k.clone(), (v.clone(), w.clone())));
                            i = next[i as usize];
                            if i == NIL {
                                break;
                            }
                        }
                    }
                    res
                });
                let counts: Vec<usize> = out.iter().map(Vec::len).collect();
                engine.charge_compute(&counts, out_bytes, true)?;
                Ok(to_parts(out))
            },
        )
    }

    /// Broadcast-hash equi-join: the right side is collected and broadcast,
    /// the left side is probed in place (no shuffle of the left side).
    pub fn broadcast_join<W: Data>(&self, other: &Bag<(K, W)>) -> Bag<(K, (V, W))> {
        assert!(self.engine().same_as(other.engine()), "join of bags from different engines");
        let left = self.clone();
        let right = other.clone();
        let engine = self.engine().clone();
        let lbytes = self.record_bytes();
        let rbytes = other.record_bytes();
        let out_bytes = lbytes + rbytes;
        Bag::new(engine.clone(), "broadcast_join", out_bytes, self.num_partitions(), move || {
            let rp = right.eval()?;
            let rrecords: u64 = rp.iter().map(|p| p.len() as u64).sum();
            engine.charge_driver_collect(rrecords, rbytes);
            engine.charge_broadcast("broadcast_join", (rrecords as f64 * rbytes) as u64)?;
            let mut table: FxHashMap<K, Vec<W>> = fx_map_with_capacity(rrecords as usize);
            for p in rp.iter() {
                for (k, w) in p.iter() {
                    table.entry(k.clone()).or_default().push(w.clone());
                }
            }
            let table = Arc::new(table);
            let lp = left.eval()?;
            let out: Vec<Vec<(K, (V, W))>> = parallel_map(lp.to_vec(), |_, p: Arc<Vec<(K, V)>>| {
                let mut res = Vec::new();
                for (k, v) in p.iter() {
                    if let Some(ws) = table.get(k) {
                        for w in ws {
                            res.push((k.clone(), (v.clone(), w.clone())));
                        }
                    }
                }
                res
            });
            let counts: Vec<usize> = out.iter().map(Vec::len).collect();
            engine.charge_compute(&counts, out_bytes, false)?;
            Ok(to_parts(out))
        })
    }

    /// Group both sides by key (Spark `cogroup`).
    pub fn co_group<W: Data>(&self, other: &Bag<(K, W)>) -> Bag<(K, (Vec<V>, Vec<W>))> {
        assert!(self.engine().same_as(other.engine()), "co_group of bags from different engines");
        let partitions = self.num_partitions().max(other.num_partitions()).max(1);
        let left = self.clone();
        let right = other.clone();
        let engine = self.engine().clone();
        let lbytes = self.record_bytes();
        let rbytes = other.record_bytes();
        let map_output: Arc<OnceLock<MapOutputStats>> = Arc::new(OnceLock::new());
        let slot = Arc::clone(&map_output);
        Bag::new_shuffled(
            engine.clone(),
            "co_group",
            lbytes + rbytes,
            partitions,
            Partitioning::Arbitrary,
            map_output,
            move || {
                let lp = left.eval()?;
                let rp = right.eval()?;
                let lrecords: u64 = lp.iter().map(|p| p.len() as u64).sum();
                let rrecords: u64 = rp.iter().map(|p| p.len() as u64).sum();
                engine.charge_shuffle("co_group", lrecords, lbytes);
                engine.charge_shuffle("co_group", rrecords, rbytes);
                let ls = scatter_shared_by_key(&lp, partitions, |r| &r.0);
                let rs = scatter_shared_by_key(&rp, partitions, |r| &r.0);
                let stats = MapOutputStats {
                    operator: "co_group",
                    partition_records: ls
                        .iter()
                        .zip(rs.iter())
                        .map(|(l, r)| (l.len() + r.len()) as u64)
                        .collect(),
                    partition_bytes: ls
                        .iter()
                        .zip(rs.iter())
                        .map(|(l, r)| (l.len() as f64 * lbytes + r.len() as f64 * rbytes) as u64)
                        .collect(),
                };
                engine.record_map_output(&stats);
                let _ = slot.set(stats);
                let factor = engine.config().costs.materialize_factor;
                let ws: Vec<u64> = ls
                    .iter()
                    .zip(rs.iter())
                    .map(|(l, r)| {
                        ((l.len() as f64 * lbytes + r.len() as f64 * rbytes) * factor) as u64
                    })
                    .collect();
                engine.charge_memory("co_group", &ws)?;
                let zipped: Vec<(Vec<(K, V)>, Vec<(K, W)>)> = ls.into_iter().zip(rs).collect();
                let out: Vec<Vec<(K, (Vec<V>, Vec<W>))>> = parallel_map(zipped, |_, (l, r)| {
                    let mut table: FxHashMap<K, (Vec<V>, Vec<W>)> = fx_map();
                    for (k, v) in l {
                        table.entry(k).or_default().0.push(v);
                    }
                    for (k, w) in r {
                        table.entry(k).or_default().1.push(w);
                    }
                    table.into_iter().collect()
                });
                let counts: Vec<usize> = out.iter().map(Vec::len).collect();
                engine.charge_compute(&counts, lbytes + rbytes, true)?;
                Ok(to_parts(out))
            },
        )
    }

    /// Left outer equi-join (implemented over [`Bag::co_group`]).
    pub fn left_outer_join<W: Data>(&self, other: &Bag<(K, W)>) -> Bag<(K, (V, Option<W>))> {
        self.co_group(other).flat_map(|(k, (vs, ws))| {
            let mut res = Vec::new();
            for v in vs {
                if ws.is_empty() {
                    res.push((k.clone(), (v.clone(), None)));
                } else {
                    for w in ws {
                        res.push((k.clone(), (v.clone(), Some(w.clone()))));
                    }
                }
            }
            res
        })
    }

    /// Hash-partition by key (identity wide operation, used to co-partition
    /// inputs). A no-op if the bag is already hash-partitioned by key with
    /// the same partition count.
    pub fn partition_by_key(&self, partitions: usize) -> Bag<(K, V)> {
        let partitions = partitions.max(1);
        if self.partitioning() == (Partitioning::HashByKey { partitions }) {
            return self.clone();
        }
        let parent = self.clone();
        let engine = self.engine().clone();
        let bytes = self.record_bytes();
        let meta = Partitioning::HashByKey { partitions };
        let map_output: Arc<OnceLock<MapOutputStats>> = Arc::new(OnceLock::new());
        let slot = Arc::clone(&map_output);
        Bag::new_shuffled(
            engine.clone(),
            "partition_by_key",
            bytes,
            partitions,
            meta,
            map_output,
            move || {
                let input = parent.eval()?;
                let records: u64 = input.iter().map(|p| p.len() as u64).sum();
                engine.charge_shuffle("partition_by_key", records, bytes);
                let shuffled = scatter_shared_by_key(&input, partitions, |r| &r.0);
                record_scatter(&engine, &slot, "partition_by_key", &shuffled, bytes);
                let counts: Vec<usize> = shuffled.iter().map(Vec::len).collect();
                engine.charge_compute(&counts, bytes, true)?;
                Ok(to_parts(shuffled))
            },
        )
    }
}

impl<T: Key> Bag<T> {
    /// Remove duplicates (shuffle by value, dedup per partition).
    pub fn distinct(&self) -> Bag<T> {
        self.distinct_into(self.num_partitions().min(self.engine().config().default_parallelism))
    }

    /// [`Bag::distinct`] with an explicit output partition count.
    ///
    /// Like Spark's `distinct` (a `reduceByKey` underneath), duplicates are
    /// first removed per input partition (map-side combine), then the
    /// partial results shuffle.
    pub fn distinct_into(&self, partitions: usize) -> Bag<T> {
        let parent = self.clone();
        let engine = self.engine().clone();
        let bytes = self.record_bytes();
        let partitions = partitions.max(1);
        let map_output: Arc<OnceLock<MapOutputStats>> = Arc::new(OnceLock::new());
        let slot = Arc::clone(&map_output);
        Bag::new_shuffled(
            engine.clone(),
            "distinct",
            bytes,
            partitions,
            Partitioning::Arbitrary,
            map_output,
            move || {
                let input = parent.eval()?;
                let in_counts: Vec<usize> = input.iter().map(|p| p.len()).collect();
                // Map-side dedup: the seen-set borrows from the shared partition,
                // so each kept record is cloned exactly once.
                let combined: Vec<Vec<T>> = parallel_map(input.to_vec(), |_, p: Arc<Vec<T>>| {
                    let mut seen = fx_set_with_capacity(p.len());
                    let mut out = Vec::new();
                    for x in p.iter() {
                        if seen.insert(x) {
                            out.push(x.clone());
                        }
                    }
                    out
                });
                engine.charge_compute(&in_counts, bytes, false)?;
                let factor = engine.config().costs.materialize_factor;
                let combine_ws: Vec<u64> =
                    combined.iter().map(|p| (p.len() as f64 * bytes * factor) as u64).collect();
                engine.charge_memory("distinct(combine)", &combine_ws)?;
                let records: u64 = combined.iter().map(|p| p.len() as u64).sum();
                engine.charge_shuffle("distinct", records, bytes);
                // Whole-record keys: the shuffle is the ordinary by-key scatter.
                let shuffled = scatter_by_key(combined, partitions, |rec| rec);
                record_scatter(&engine, &slot, "distinct", &shuffled, bytes);
                let ws: Vec<u64> =
                    shuffled.iter().map(|p| (p.len() as f64 * bytes * factor) as u64).collect();
                engine.charge_memory("distinct", &ws)?;
                let in_counts: Vec<usize> = shuffled.iter().map(Vec::len).collect();
                let out: Vec<Vec<T>> = parallel_map(shuffled, |_, part| {
                    let mut seen = fx_set_with_capacity(part.len());
                    let mut res = Vec::with_capacity(part.len());
                    for x in part {
                        if !seen.contains(&x) {
                            seen.insert(x.clone());
                            res.push(x);
                        }
                    }
                    res
                });
                engine.charge_compute(&in_counts, bytes, true)?;
                Ok(to_parts(out))
            },
        )
    }
}

impl<T: Data> Bag<T> {
    /// Round-robin shuffle into `n` partitions (Spark `repartition`).
    pub fn repartition(&self, n: usize) -> Bag<T> {
        let parent = self.clone();
        let engine = self.engine().clone();
        let bytes = self.record_bytes();
        let n = n.max(1);
        let map_output: Arc<OnceLock<MapOutputStats>> = Arc::new(OnceLock::new());
        let slot = Arc::clone(&map_output);
        Bag::new_shuffled(
            engine.clone(),
            "repartition",
            bytes,
            n,
            Partitioning::Arbitrary,
            map_output,
            move || {
                let input = parent.eval()?;
                let records: u64 = input.iter().map(|p| p.len() as u64).sum();
                engine.charge_shuffle("repartition", records, bytes);
                let mut out: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
                let mut i = 0usize;
                for p in input.iter() {
                    for rec in p.iter() {
                        out[i % n].push(rec.clone());
                        i += 1;
                    }
                }
                record_scatter(&engine, &slot, "repartition", &out, bytes);
                let counts: Vec<usize> = out.iter().map(Vec::len).collect();
                engine.charge_compute(&counts, bytes, true)?;
                Ok(to_parts(out))
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;

    fn sorted<T: Ord>(mut v: Vec<T>) -> Vec<T> {
        v.sort();
        v
    }

    #[test]
    fn group_by_key_groups_everything() {
        let e = Engine::local();
        let b = e.parallelize(vec![(1u32, 10), (2, 20), (1, 11), (2, 21), (3, 30)], 3);
        let out = b.group_by_key().collect().unwrap();
        let mut groups: Vec<(u32, Vec<i32>)> =
            out.into_iter().map(|(k, mut vs)| (k, sorted(std::mem::take(&mut vs)))).collect();
        groups.sort_by_key(|(k, _)| *k);
        assert_eq!(groups, vec![(1, vec![10, 11]), (2, vec![20, 21]), (3, vec![30])]);
    }

    #[test]
    fn reduce_by_key_matches_group_then_fold() {
        let e = Engine::local();
        let data: Vec<(u8, u64)> = (0..1000).map(|i| ((i % 7) as u8, i)).collect();
        let expect: std::collections::HashMap<u8, u64> =
            data.iter().fold(std::collections::HashMap::new(), |mut m, (k, v)| {
                *m.entry(*k).or_insert(0) += v;
                m
            });
        let b = e.parallelize(data, 8).reduce_by_key(|a, b| a + b);
        for (k, v) in b.collect().unwrap() {
            assert_eq!(expect[&k], v);
        }
    }

    #[test]
    fn join_algorithms_agree() {
        let e = Engine::local();
        let l = e.parallelize(vec![(1u32, "a"), (2, "b"), (2, "B"), (3, "c")], 2);
        let r = e.parallelize(vec![(1u32, 10), (2, 20), (4, 40)], 3);
        let rep = sorted(l.join_with(&r, JoinAlgorithm::Repartition).collect().unwrap());
        let bro = sorted(l.join_with(&r, JoinAlgorithm::BroadcastRight).collect().unwrap());
        assert_eq!(rep, bro);
        assert_eq!(rep, vec![(1, ("a", 10)), (2, ("B", 20)), (2, ("b", 20))]);
    }

    #[test]
    fn broadcast_join_avoids_shuffling_left() {
        let e = Engine::local();
        let l = e.parallelize((0..1000u32).map(|i| (i, i)).collect::<Vec<_>>(), 4);
        let r = e.parallelize(vec![(1u32, 1u32)], 1);
        let s0 = e.stats();
        l.broadcast_join(&r).collect().unwrap();
        let d = e.stats().since(&s0);
        assert_eq!(d.shuffle_bytes, 0, "broadcast join must not shuffle");
        assert!(d.broadcast_bytes > 0);
    }

    #[test]
    fn distinct_removes_duplicates() {
        let e = Engine::local();
        let b = e.parallelize(vec![1, 2, 2, 3, 3, 3, 1], 3).distinct();
        assert_eq!(sorted(b.collect().unwrap()), vec![1, 2, 3]);
    }

    #[test]
    fn left_outer_join_keeps_unmatched_left() {
        let e = Engine::local();
        let l = e.parallelize(vec![(1u32, "a"), (2, "b")], 2);
        let r = e.parallelize(vec![(1u32, 10)], 1);
        let out = sorted(l.left_outer_join(&r).collect().unwrap());
        assert_eq!(out, vec![(1, ("a", Some(10))), (2, ("b", None))]);
    }

    #[test]
    fn co_group_collects_both_sides() {
        let e = Engine::local();
        let l = e.parallelize(vec![(1u32, 'x'), (1, 'y')], 2);
        let r = e.parallelize(vec![(1u32, 9), (2, 8)], 2);
        let mut out = l.co_group(&r).collect().unwrap();
        out.sort_by_key(|(k, _)| *k);
        assert_eq!(out.len(), 2);
        let (k1, (vs, ws)) = &out[0];
        assert_eq!(*k1, 1);
        assert_eq!(sorted(vs.clone()), vec!['x', 'y']);
        assert_eq!(ws, &vec![9]);
        assert_eq!(out[1], (2, (vec![], vec![8])));
    }

    #[test]
    fn repartition_changes_partition_count_not_data() {
        let e = Engine::local();
        let b = e.parallelize((0..50).collect::<Vec<u32>>(), 2).repartition(7);
        assert_eq!(b.num_partitions(), 7);
        assert_eq!(sorted(b.collect().unwrap()), (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn partition_by_key_colocates_keys() {
        let e = Engine::local();
        let b = e
            .parallelize((0..100u32).map(|i| (i % 5, i)).collect::<Vec<_>>(), 4)
            .partition_by_key(3);
        let parts = b.collect_partitions().unwrap();
        for part in &parts {
            // Every key must appear in exactly one partition.
            for (k, _) in part {
                let elsewhere = parts
                    .iter()
                    .filter(|p| !std::ptr::eq(*p, part))
                    .any(|p| p.iter().any(|(k2, _)| k2 == k));
                assert!(!elsewhere, "key {k} appears in multiple partitions");
            }
        }
    }

    #[test]
    fn co_partitioned_join_skips_shuffle() {
        let e = Engine::local();
        let l =
            e.parallelize((0..1000u32).map(|i| (i, i)).collect::<Vec<_>>(), 4).partition_by_key(8);
        let r = e
            .parallelize((0..1000u32).map(|i| (i, i * 2)).collect::<Vec<_>>(), 4)
            .partition_by_key(8);
        // Force both sides computed so the join's delta is clean.
        l.count().unwrap();
        r.count().unwrap();
        let s0 = e.stats();
        let out = l.join_into(8, &r);
        assert_eq!(out.count().unwrap(), 1000);
        let d = e.stats().since(&s0);
        assert_eq!(d.shuffle_bytes, 0, "co-partitioned join must not shuffle");
        // And the result is marked partitioned for further by-key ops.
        assert_eq!(out.partitioning(), Partitioning::HashByKey { partitions: 8 });
    }

    #[test]
    fn partition_by_key_is_idempotent() {
        let e = Engine::local();
        let b = e.parallelize(vec![(1u32, 1)], 1).partition_by_key(4);
        b.count().unwrap();
        let s0 = e.stats();
        let again = b.partition_by_key(4);
        again.count().unwrap();
        assert_eq!(e.stats().since(&s0).shuffle_bytes, 0);
    }

    #[test]
    fn reduce_by_key_on_partitioned_input_skips_shuffle() {
        let e = Engine::local();
        let b = e
            .parallelize((0..500u32).map(|i| (i % 7, 1u64)).collect::<Vec<_>>(), 4)
            .partition_by_key(6);
        b.count().unwrap();
        let s0 = e.stats();
        let out = b.reduce_by_key_into(6, |a, b| a + b).collect().unwrap();
        assert_eq!(out.len(), 7);
        assert_eq!(e.stats().since(&s0).shuffle_bytes, 0);
    }

    #[test]
    fn shuffles_record_exact_map_output_stats() {
        let e = Engine::local();
        let data: Vec<(u8, u64)> = (0..1000).map(|i| ((i % 7) as u8, i)).collect();
        let b = e.parallelize(data, 8).reduce_by_key_into(4, |a, b| a + b);
        assert!(b.map_output_stats().is_none(), "no stats before evaluation");
        b.count().unwrap();
        let stats = b.map_output_stats().expect("shuffle records stats");
        assert_eq!(stats.operator, "reduce_by_key");
        assert_eq!(stats.partitions(), 4);
        // Map-side combine: 7 keys per input partition at most, 8 partitions.
        assert_eq!(stats.total_records(), 7 * 8);
        assert!(e.stats().peak_partition_bytes > 0);
        assert_eq!(
            e.last_map_output().map(|s| s.operator),
            Some("reduce_by_key"),
            "engine history sees the shuffle"
        );
    }

    #[test]
    fn co_partitioned_paths_record_no_stats() {
        let e = Engine::local();
        let b = e
            .parallelize((0..500u32).map(|i| (i % 7, 1u64)).collect::<Vec<_>>(), 4)
            .partition_by_key(6);
        b.count().unwrap();
        let out = b.reduce_by_key_into(6, |a, b| a + b);
        out.count().unwrap();
        assert!(out.map_output_stats().is_none(), "co-partitioned reduce does not shuffle");
        assert!(b.map_output_stats().is_some(), "the partitioning shuffle itself does");
    }

    #[test]
    fn join_stats_combine_both_sides() {
        let e = Engine::local();
        let l = e.parallelize((0..100u32).map(|i| (i % 5, i)).collect::<Vec<_>>(), 4);
        let r = e.parallelize((0..50u32).map(|i| (i % 5, i)).collect::<Vec<_>>(), 2);
        let j = l.join_into(4, &r);
        j.count().unwrap();
        let stats = j.map_output_stats().expect("shuffling join records stats");
        assert_eq!(stats.operator, "join");
        assert_eq!(stats.total_records(), 150, "both sides counted");
    }

    #[test]
    fn group_by_key_giant_group_ooms_on_small_cluster() {
        let mut cfg = crate::ClusterConfig::local_test();
        cfg.memory_per_machine = crate::MB;
        let e = Engine::new(cfg);
        // One key, many fat records: the single group cannot fit in a task.
        let b = e
            .parallelize_with_bytes((0..10_000u32).map(|i| (0u8, i)).collect::<Vec<_>>(), 4, 1000.0)
            .group_by_key();
        assert!(matches!(b.collect(), Err(crate::EngineError::OutOfMemory { .. })));
    }
}
