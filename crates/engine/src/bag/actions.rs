//! Actions: operations that launch a simulated job and return driver-side
//! values.
//!
//! Every action charges one job launch ([`crate::CostModel::job_launch`]).
//! This is the overhead that sinks the *inner-parallel* workaround in the
//! paper: one job (or several) per inner computation per iteration. Actions
//! run via [`Engine::run_job`](crate::Engine), which also brackets the work
//! with `JobStart`/`JobEnd` trace events when tracing is enabled.

use super::Bag;
use crate::types::Data;
use crate::Result;

impl<T: Data> Bag<T> {
    /// Materialize all records on the driver.
    pub fn collect(&self) -> Result<Vec<T>> {
        self.engine().run_job("collect", || {
            let parts = self.eval()?;
            let records: u64 = parts.iter().map(|p| p.len() as u64).sum();
            self.engine().charge_driver_collect(records, self.record_bytes());
            let mut out = Vec::with_capacity(records as usize);
            for p in parts.iter() {
                out.extend_from_slice(p);
            }
            Ok(out)
        })
    }

    /// Materialize per-partition vectors on the driver (diagnostics/tests).
    pub fn collect_partitions(&self) -> Result<Vec<Vec<T>>> {
        self.engine().run_job("collect_partitions", || {
            let parts = self.eval()?;
            let records: u64 = parts.iter().map(|p| p.len() as u64).sum();
            self.engine().charge_driver_collect(records, self.record_bytes());
            Ok(parts.iter().map(|p| p.to_vec()).collect())
        })
    }

    /// Number of records.
    pub fn count(&self) -> Result<u64> {
        self.engine().run_job("count", || {
            let parts = self.eval()?;
            Ok(parts.iter().map(|p| p.len() as u64).sum())
        })
    }

    /// True if the bag has no records.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.count()? == 0)
    }

    /// Combine all records with an associative function; `None` when empty.
    pub fn reduce(&self, f: impl Fn(&T, &T) -> T) -> Result<Option<T>> {
        self.engine().run_job("reduce", || {
            let parts = self.eval()?;
            let mut acc: Option<T> = None;
            for p in parts.iter() {
                for x in p.iter() {
                    acc = Some(match acc {
                        Some(a) => f(&a, x),
                        None => x.clone(),
                    });
                }
            }
            Ok(acc)
        })
    }

    /// Fold all records starting from `zero`.
    pub fn fold<A: Clone>(&self, zero: A, f: impl Fn(A, &T) -> A) -> Result<A> {
        self.engine().run_job("fold", || {
            let parts = self.eval()?;
            let mut acc = zero;
            for p in parts.iter() {
                for x in p.iter() {
                    acc = f(acc, x);
                }
            }
            Ok(acc)
        })
    }

    /// Up to `n` records (driver-side head).
    pub fn take(&self, n: usize) -> Result<Vec<T>> {
        self.engine().run_job("take", || {
            let parts = self.eval()?;
            let mut out = Vec::with_capacity(n);
            'outer: for p in parts.iter() {
                for x in p.iter() {
                    if out.len() == n {
                        break 'outer;
                    }
                    out.push(x.clone());
                }
            }
            self.engine().charge_driver_collect(out.len() as u64, self.record_bytes());
            Ok(out)
        })
    }

    /// The first record, if any.
    pub fn first(&self) -> Result<Option<T>> {
        Ok(self.take(1)?.pop())
    }
}

#[cfg(test)]
mod tests {
    use crate::Engine;

    #[test]
    fn count_reduce_fold_agree() {
        let e = Engine::local();
        let b = e.parallelize((1..=100u64).collect::<Vec<_>>(), 7);
        assert_eq!(b.count().unwrap(), 100);
        assert_eq!(b.reduce(|a, x| a + x).unwrap(), Some(5050));
        assert_eq!(b.fold(0u64, |a, x| a + x).unwrap(), 5050);
    }

    #[test]
    fn reduce_of_empty_is_none() {
        let e = Engine::local();
        assert_eq!(e.empty::<u64>().reduce(|a, b| a + b).unwrap(), None);
    }

    #[test]
    fn take_and_first() {
        let e = Engine::local();
        let b = e.parallelize(vec![5, 6, 7], 2);
        assert_eq!(b.take(2).unwrap().len(), 2);
        assert_eq!(b.take(100).unwrap().len(), 3);
        assert!(b.first().unwrap().is_some());
        assert_eq!(e.empty::<i32>().first().unwrap(), None);
    }

    #[test]
    fn every_action_launches_a_job() {
        let e = Engine::local();
        let b = e.parallelize(vec![1, 2, 3], 2);
        let s0 = e.stats();
        let _ = b.count().unwrap();
        let _ = b.collect().unwrap();
        let _ = b.is_empty().unwrap();
        let d = e.stats().since(&s0);
        assert_eq!(d.jobs, 3);
    }
}
