//! Additional operators rounding out the Spark-like surface: sampling,
//! sorting, per-key aggregation/statistics, set operations and outer joins.
//!
//! These are not exercised by the headline experiments but belong to the
//! substrate a flattening layer targets — several of the lifted operations
//! in `matryoshka-core` (per-tag statistics, set differences in BFS-style
//! loops) have natural implementations over them.

use std::sync::Arc;

use super::fuse::{fusible, Batch, ChargeRule, Step};
use super::{to_parts, Bag, Partitioning};
use crate::fx::{fx_set_with_capacity, FxHashSet};
use crate::partitioner::{scatter_shared_by_key, stable_hash};
use crate::pool::parallel_map;
use crate::types::{Data, Key};
use crate::Result;

impl<T: Data> Bag<T> {
    /// Deterministic Bernoulli sample: keeps each record with probability
    /// `fraction`, decided by a stable per-record hash of `(seed, index)` so
    /// the sample is reproducible across runs and engines.
    pub fn sample(&self, fraction: f64, seed: u64) -> Bag<T> {
        let engine = self.engine().clone();
        let bytes = self.record_bytes();
        let threshold = (fraction.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
        let step: Step<T, T> = Arc::new(move |pi, batch: Batch<'_, T>| {
            let keep = move |i: usize| stable_hash(&(seed, pi as u64, i as u64)) <= threshold;
            match batch {
                Batch::Shared(xs) => xs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| keep(*i))
                    .map(|(_, x)| x.clone())
                    .collect(),
                Batch::Owned(xs) => {
                    xs.into_iter().enumerate().filter(|(i, _)| keep(*i)).map(|(_, x)| x).collect()
                }
            }
        });
        fusible(self, "sample", bytes, Partitioning::Arbitrary, ChargeRule::Input, step, {
            move |parent: &Bag<T>| {
                let input = parent.eval()?;
                let in_counts: Vec<usize> = input.iter().map(|p| p.len()).collect();
                let out: Vec<Vec<T>> = parallel_map(input.to_vec(), |pi, p: Arc<Vec<T>>| {
                    p.iter()
                        .enumerate()
                        .filter(|(i, _)| stable_hash(&(seed, pi as u64, *i as u64)) <= threshold)
                        .map(|(_, x)| x.clone())
                        .collect()
                });
                engine.charge_compute(&in_counts, bytes, false)?;
                Ok(to_parts(out))
            }
        })
    }

    /// Total sort by a key function: range-partition by sampled split
    /// points, then sort each partition (Spark `sortBy`). Output partition
    /// `i` holds keys entirely `<=` those of partition `i+1`.
    pub fn sort_by<K: Data + Ord>(
        &self,
        partitions: usize,
        key: impl Fn(&T) -> K + Send + Sync + 'static,
    ) -> Bag<T> {
        let parent = self.clone();
        let engine = self.engine().clone();
        let bytes = self.record_bytes();
        let partitions = partitions.max(1);
        Bag::new(engine.clone(), "sort_by", bytes, partitions, move || {
            let input = parent.eval()?;
            let records: u64 = input.iter().map(|p| p.len() as u64).sum();
            engine.charge_shuffle("sort_by", records, bytes);
            // Exact split points from the full key set (a simulator can
            // afford exact quantiles; Spark samples).
            let mut keys: Vec<K> = input.iter().flat_map(|p| p.iter().map(&key)).collect();
            keys.sort();
            let splits: Vec<K> = (1..partitions)
                .filter_map(|i| keys.get(i * keys.len() / partitions).cloned())
                .collect();
            let mut out: Vec<Vec<T>> = (0..partitions).map(|_| Vec::new()).collect();
            for p in input.iter() {
                for x in p.iter() {
                    let k = key(x);
                    let idx = splits.partition_point(|s| *s <= k);
                    out[idx].push(x.clone());
                }
            }
            let factor = engine.config().costs.materialize_factor;
            let ws: Vec<u64> =
                out.iter().map(|p| (p.len() as f64 * bytes * factor) as u64).collect();
            engine.charge_memory("sort_by", &ws)?;
            let counts: Vec<usize> = out.iter().map(Vec::len).collect();
            let out: Vec<Vec<T>> = parallel_map(out, |_, mut p| {
                p.sort_by_key(|a| key(a));
                p
            });
            engine.charge_compute(&counts, bytes, true)?;
            Ok(to_parts(out))
        })
    }

    /// The `n` smallest records by a key function (driver-side result).
    pub fn top_k_by<K: Data + Ord>(
        &self,
        n: usize,
        key: impl Fn(&T) -> K + Send + Sync,
    ) -> Result<Vec<T>> {
        self.engine().run_job("top_k_by", || {
            let parts = self.eval()?;
            let mut all: Vec<T> = parts.iter().flat_map(|p| p.iter().cloned()).collect();
            all.sort_by_key(|a| key(a));
            all.truncate(n);
            self.engine().charge_driver_collect(all.len() as u64, self.record_bytes());
            Ok(all)
        })
    }
}

impl<T: Data + Into<f64> + Copy> Bag<T> {
    /// Sum of a numeric bag (action).
    pub fn sum_f64(&self) -> Result<f64> {
        self.fold(0.0, |a, x| a + Into::<f64>::into(*x))
    }

    /// Mean of a numeric bag (action); `None` when empty.
    pub fn mean(&self) -> Result<Option<f64>> {
        self.engine().run_job("mean", || {
            let parts = self.eval()?;
            let mut n = 0u64;
            let mut s = 0.0;
            for p in parts.iter() {
                for x in p.iter() {
                    n += 1;
                    s += Into::<f64>::into(*x);
                }
            }
            Ok(if n == 0 { None } else { Some(s / n as f64) })
        })
    }
}

impl<T: Key> Bag<T> {
    /// Multiset difference: records of `self` whose value does not occur in
    /// `other` (Spark `subtract`, by hash co-partitioning).
    pub fn subtract(&self, other: &Bag<T>) -> Bag<T> {
        assert!(self.engine().same_as(other.engine()), "subtract across engines");
        let partitions = self.num_partitions().max(other.num_partitions()).max(1);
        let left = self.clone();
        let right = other.clone();
        let engine = self.engine().clone();
        let bytes = self.record_bytes();
        Bag::new(engine.clone(), "subtract", bytes, partitions, move || {
            let lp = left.eval()?;
            let rp = right.eval()?;
            let lrec: u64 = lp.iter().map(|p| p.len() as u64).sum();
            let rrec: u64 = rp.iter().map(|p| p.len() as u64).sum();
            engine.charge_shuffle("subtract", lrec, bytes);
            engine.charge_shuffle("subtract", rrec, right.record_bytes());
            let ls = scatter_by_value(&lp, partitions);
            let rs = scatter_by_value(&rp, partitions);
            let zipped: Vec<(Vec<T>, Vec<T>)> = ls.into_iter().zip(rs).collect();
            let out: Vec<Vec<T>> = parallel_map(zipped, |_, (l, r)| {
                let mut exclude: FxHashSet<T> = fx_set_with_capacity(r.len());
                exclude.extend(r);
                l.into_iter().filter(|x| !exclude.contains(x)).collect()
            });
            let counts: Vec<usize> = out.iter().map(Vec::len).collect();
            engine.charge_compute(&counts, bytes, true)?;
            Ok(to_parts(out))
        })
    }

    /// Set intersection (distinct records present in both bags).
    pub fn intersection(&self, other: &Bag<T>) -> Bag<T> {
        assert!(self.engine().same_as(other.engine()), "intersection across engines");
        let partitions = self.num_partitions().max(other.num_partitions()).max(1);
        let left = self.clone();
        let right = other.clone();
        let engine = self.engine().clone();
        let bytes = self.record_bytes();
        Bag::new(engine.clone(), "intersection", bytes, partitions, move || {
            let lp = left.eval()?;
            let rp = right.eval()?;
            let lrec: u64 = lp.iter().map(|p| p.len() as u64).sum();
            let rrec: u64 = rp.iter().map(|p| p.len() as u64).sum();
            engine.charge_shuffle("intersection", lrec, bytes);
            engine.charge_shuffle("intersection", rrec, right.record_bytes());
            let ls = scatter_by_value(&lp, partitions);
            let rs = scatter_by_value(&rp, partitions);
            let zipped: Vec<(Vec<T>, Vec<T>)> = ls.into_iter().zip(rs).collect();
            let out: Vec<Vec<T>> = parallel_map(zipped, |_, (l, r)| {
                let mut rset: FxHashSet<T> = fx_set_with_capacity(r.len());
                rset.extend(r);
                let mut seen: FxHashSet<T> = fx_set_with_capacity(l.len().min(rset.len()));
                l.into_iter().filter(|x| rset.contains(x) && seen.insert(x.clone())).collect()
            });
            let counts: Vec<usize> = out.iter().map(Vec::len).collect();
            engine.charge_compute(&counts, bytes, true)?;
            Ok(to_parts(out))
        })
    }
}

/// Shuffle whole records by their own hash: the zero-copy parallel scatter
/// with the identity key.
fn scatter_by_value<T: Key>(parts: &super::Parts<T>, partitions: usize) -> Vec<Vec<T>> {
    scatter_shared_by_key(parts, partitions, |x| x)
}

impl<K: Key, V: Data> Bag<(K, V)> {
    /// Value-side map that provably preserves the key — and therefore the
    /// bag's hash partitioning (a narrow op that keeps co-partitioned joins
    /// co-partitioned, like Spark `mapValues`).
    pub fn map_values<W: Data>(&self, f: impl Fn(&V) -> W + Send + Sync + 'static) -> Bag<(K, W)> {
        let engine = self.engine().clone();
        let bytes = self.record_bytes();
        let f = Arc::new(f);
        let step: Step<(K, V), (K, W)> = {
            let f = Arc::clone(&f);
            // Keys clone only at the chain head (what the unfused pass pays)
            // and move for free mid-chain.
            Arc::new(move |_, batch: Batch<'_, (K, V)>| match batch {
                Batch::Shared(xs) => xs.iter().map(|(k, v)| (k.clone(), f(v))).collect(),
                Batch::Owned(xs) => xs.into_iter().map(|(k, v)| (k, f(&v))).collect(),
            })
        };
        fusible(self, "map_values", bytes, self.partitioning(), ChargeRule::Output, step, {
            move |parent: &Bag<(K, V)>| {
                let input = parent.eval()?;
                let out: Vec<Vec<(K, W)>> =
                    parallel_map(input.to_vec(), |_, p: Arc<Vec<(K, V)>>| {
                        p.iter().map(|(k, v)| (k.clone(), f(v))).collect()
                    });
                let counts: Vec<usize> = out.iter().map(Vec::len).collect();
                engine.charge_compute(&counts, bytes, false)?;
                Ok(to_parts(out))
            }
        })
    }

    /// Spark `combineByKey`/`aggregateByKey`: per-key aggregation with a
    /// distinct accumulator type, map-side combining included.
    pub fn aggregate_by_key<A: Data>(
        &self,
        zero: A,
        seq_op: impl Fn(&A, &V) -> A + Send + Sync + 'static,
        comb_op: impl Fn(&A, &A) -> A + Send + Sync + 'static,
    ) -> Bag<(K, A)> {
        let z = zero.clone();
        self.map_values(move |v| seq_op(&z, v)).reduce_by_key(comb_op)
    }

    /// Per-key record counts (Spark `countByKey`, but distributed).
    pub fn count_by_key(&self) -> Bag<(K, u64)> {
        self.map_values(|_| 1u64).reduce_by_key(|a, b| a + b)
    }

    /// Full outer equi-join.
    pub fn full_outer_join<W: Data>(
        &self,
        other: &Bag<(K, W)>,
    ) -> Bag<(K, (Option<V>, Option<W>))> {
        self.co_group(other).flat_map(|(k, (vs, ws))| {
            let mut out = Vec::new();
            match (vs.is_empty(), ws.is_empty()) {
                (false, false) => {
                    for v in vs {
                        for w in ws {
                            out.push((k.clone(), (Some(v.clone()), Some(w.clone()))));
                        }
                    }
                }
                (false, true) => {
                    for v in vs {
                        out.push((k.clone(), (Some(v.clone()), None)));
                    }
                }
                (true, false) => {
                    for w in ws {
                        out.push((k.clone(), (None, Some(w.clone()))));
                    }
                }
                (true, true) => {}
            }
            out
        })
    }

    /// Right outer equi-join (the mirror of
    /// [`Bag::left_outer_join`]).
    pub fn right_outer_join<W: Data>(&self, other: &Bag<(K, W)>) -> Bag<(K, (Option<V>, W))> {
        self.co_group(other).flat_map(|(k, (vs, ws))| {
            let mut out = Vec::new();
            for w in ws {
                if vs.is_empty() {
                    out.push((k.clone(), (None, w.clone())));
                } else {
                    for v in vs {
                        out.push((k.clone(), (Some(v.clone()), w.clone())));
                    }
                }
            }
            out
        })
    }

    /// Per-key minimum value by natural order.
    pub fn min_by_key(&self) -> Bag<(K, V)>
    where
        V: Ord,
    {
        self.reduce_by_key(|a, b| if a <= b { a.clone() } else { b.clone() })
    }
}

#[cfg(test)]
mod tests {
    use crate::{Engine, Partitioning};
    use std::collections::HashMap;

    fn sorted<T: Ord>(mut v: Vec<T>) -> Vec<T> {
        v.sort();
        v
    }

    #[test]
    fn sample_is_deterministic_and_roughly_sized() {
        let e = Engine::local();
        let b = e.parallelize((0..10_000u64).collect::<Vec<_>>(), 8);
        let s1 = b.sample(0.25, 7).collect().unwrap();
        let s2 = b.sample(0.25, 7).collect().unwrap();
        assert_eq!(s1, s2, "same seed, same sample");
        let frac = s1.len() as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.03, "sample fraction {frac}");
        let s3 = b.sample(0.25, 8).collect().unwrap();
        assert_ne!(s1, s3, "different seed, different sample");
    }

    #[test]
    fn sample_extremes() {
        let e = Engine::local();
        let b = e.parallelize((0..100u64).collect::<Vec<_>>(), 4);
        assert_eq!(b.sample(0.0, 1).count().unwrap(), 0);
        assert_eq!(b.sample(1.0, 1).count().unwrap(), 100);
    }

    #[test]
    fn sort_by_globally_orders() {
        let e = Engine::local();
        let data: Vec<i64> = (0..500).map(|i| (i * 7919) % 1000 - 500).collect();
        let b = e.parallelize(data.clone(), 7).sort_by(5, |x| *x);
        let parts = b.collect_partitions().unwrap();
        // Within-partition sorted...
        for p in &parts {
            assert!(p.windows(2).all(|w| w[0] <= w[1]));
        }
        // ...and across partitions ordered.
        let flat: Vec<i64> = parts.into_iter().flatten().collect();
        let mut expect = data;
        expect.sort();
        assert_eq!(flat, expect);
    }

    #[test]
    fn top_k_by_returns_smallest() {
        let e = Engine::local();
        let b = e.parallelize(vec![5, 1, 9, 3, 7], 3);
        assert_eq!(b.top_k_by(2, |x| *x).unwrap(), vec![1, 3]);
        assert_eq!(b.top_k_by(0, |x| *x).unwrap(), Vec::<i32>::new());
        assert_eq!(b.top_k_by(99, |x| *x).unwrap().len(), 5);
    }

    #[test]
    fn subtract_and_intersection() {
        let e = Engine::local();
        let a = e.parallelize(vec![1, 2, 2, 3, 4], 3);
        let b = e.parallelize(vec![2, 4, 5], 2);
        assert_eq!(sorted(a.subtract(&b).collect().unwrap()), vec![1, 3]);
        assert_eq!(sorted(a.intersection(&b).collect().unwrap()), vec![2, 4]);
    }

    #[test]
    fn subtract_of_disjoint_is_identity() {
        let e = Engine::local();
        let a = e.parallelize(vec![1, 2, 3], 2);
        let b = e.parallelize(vec![9], 1);
        assert_eq!(sorted(a.subtract(&b).collect().unwrap()), vec![1, 2, 3]);
    }

    #[test]
    fn map_values_preserves_partitioning() {
        let e = Engine::local();
        let b = e
            .parallelize((0..100u32).map(|i| (i % 7, i)).collect::<Vec<_>>(), 4)
            .partition_by_key(5);
        let m = b.map_values(|v| v * 2);
        assert_eq!(m.partitioning(), Partitioning::HashByKey { partitions: 5 });
        // And a by-key op after it skips the shuffle entirely.
        m.count().unwrap();
        let s0 = e.stats();
        m.reduce_by_key_into(5, |a, b| a + b).count().unwrap();
        assert_eq!(e.stats().since(&s0).shuffle_bytes, 0);
    }

    #[test]
    fn aggregate_by_key_computes_averages() {
        let e = Engine::local();
        let b = e.parallelize(vec![(1u32, 10.0f64), (1, 20.0), (2, 5.0)], 2);
        let sums = b.aggregate_by_key(
            (0.0f64, 0u64),
            |z, v| (z.0 + v, z.1 + 1),
            |a, b| (a.0 + b.0, a.1 + b.1),
        );
        let mut avgs: Vec<(u32, f64)> =
            sums.collect().unwrap().into_iter().map(|(k, (s, n))| (k, s / n as f64)).collect();
        avgs.sort_by_key(|(k, _)| *k);
        assert_eq!(avgs, vec![(1, 15.0), (2, 5.0)]);
    }

    #[test]
    fn count_by_key_matches_hashmap() {
        let e = Engine::local();
        let data: Vec<(u8, ())> = (0..300).map(|i| ((i % 5) as u8, ())).collect();
        let expect: HashMap<u8, u64> = data.iter().fold(HashMap::new(), |mut m, (k, _)| {
            *m.entry(*k).or_insert(0) += 1;
            m
        });
        for (k, c) in e.parallelize(data, 4).count_by_key().collect().unwrap() {
            assert_eq!(expect[&k], c);
        }
    }

    #[test]
    fn outer_joins_cover_all_sides() {
        let e = Engine::local();
        let l = e.parallelize(vec![(1u32, 'a'), (2, 'b')], 2);
        let r = e.parallelize(vec![(2u32, 20), (3, 30)], 2);
        let full = sorted(l.full_outer_join(&r).collect().unwrap());
        assert_eq!(
            full,
            vec![(1, (Some('a'), None)), (2, (Some('b'), Some(20))), (3, (None, Some(30))),]
        );
        let right = sorted(l.right_outer_join(&r).collect().unwrap());
        assert_eq!(right, vec![(2, (Some('b'), 20)), (3, (None, 30))]);
    }

    #[test]
    fn min_by_key_picks_minimum() {
        let e = Engine::local();
        let b = e.parallelize(vec![(1u32, 5), (1, 2), (2, 9)], 2);
        assert_eq!(sorted(b.min_by_key().collect().unwrap()), vec![(1, 2), (2, 9)]);
    }

    #[test]
    fn numeric_actions() {
        let e = Engine::local();
        let b = e.parallelize(vec![1.0f64, 2.0, 3.0], 2);
        assert_eq!(b.sum_f64().unwrap(), 6.0);
        assert_eq!(b.mean().unwrap(), Some(2.0));
        assert_eq!(e.empty::<f64>().mean().unwrap(), None);
    }
}
