//! Exact map-output statistics of one shuffle.
//!
//! Every wide operator that scatters records into reduce-side partitions
//! records, per reduce partition, how many records and modeled bytes landed
//! there. The counts are exact and deterministic (they come from the real
//! hash placement, not sampling), so a re-optimizer consuming them at a
//! stage boundary makes reproducible decisions. Collection is pure
//! bookkeeping: it charges no simulated time and no simulated memory.

/// Per-reduce-partition record/byte counts of one shuffle's map output,
/// plus derived summary statistics (percentiles and skew ratio).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapOutputStats {
    /// Operator that produced the shuffle (e.g. `"join"`, `"reduce_by_key"`).
    pub operator: &'static str,
    /// Records landing in each reduce partition.
    pub partition_records: Vec<u64>,
    /// Modeled bytes landing in each reduce partition.
    pub partition_bytes: Vec<u64>,
}

impl MapOutputStats {
    /// Build stats from the scattered partitions' record counts and the
    /// modeled per-record size.
    pub fn from_partition_records(
        operator: &'static str,
        records: Vec<u64>,
        record_bytes: f64,
    ) -> Self {
        let bytes = records.iter().map(|&n| (n as f64 * record_bytes) as u64).collect();
        MapOutputStats { operator, partition_records: records, partition_bytes: bytes }
    }

    /// Number of reduce partitions.
    pub fn partitions(&self) -> usize {
        self.partition_bytes.len()
    }

    /// Total records across all partitions.
    pub fn total_records(&self) -> u64 {
        self.partition_records.iter().sum()
    }

    /// Total modeled bytes across all partitions.
    pub fn total_bytes(&self) -> u64 {
        self.partition_bytes.iter().sum()
    }

    /// Largest partition, in bytes.
    pub fn max_bytes(&self) -> u64 {
        self.partition_bytes.iter().copied().max().unwrap_or(0)
    }

    /// Median partition size in bytes (lower median for even counts).
    pub fn p50_bytes(&self) -> u64 {
        self.percentile_bytes(50)
    }

    /// 99th-percentile partition size in bytes.
    pub fn p99_bytes(&self) -> u64 {
        self.percentile_bytes(99)
    }

    /// `pct`-th percentile of partition bytes (nearest-rank over the sorted
    /// sizes; 0 for an empty shuffle).
    pub fn percentile_bytes(&self, pct: u64) -> u64 {
        if self.partition_bytes.is_empty() {
            return 0;
        }
        let mut sorted = self.partition_bytes.clone();
        sorted.sort_unstable();
        let rank = (pct.min(100) as usize * sorted.len()).div_ceil(100);
        sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
    }

    /// Skew ratio: largest partition over the mean partition size, in
    /// thousandths (`1000` = perfectly balanced). 0 for an empty shuffle.
    pub fn skew_ratio_milli(&self) -> u64 {
        let total = self.total_bytes();
        if total == 0 || self.partition_bytes.is_empty() {
            return 0;
        }
        let mean = total as f64 / self.partition_bytes.len() as f64;
        ((self.max_bytes() as f64 / mean) * 1000.0) as u64
    }
}

/// A compact, copyable digest of one shuffle's [`MapOutputStats`]: what the
/// engine keeps in its bounded map-output history for re-optimizers that run
/// before the next stage's bags materialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapOutputSummary {
    /// Operator that produced the shuffle.
    pub operator: &'static str,
    /// Number of reduce partitions.
    pub partitions: u64,
    /// Total records shuffled.
    pub total_records: u64,
    /// Total modeled bytes shuffled.
    pub total_bytes: u64,
    /// Median partition size in bytes.
    pub p50_bytes: u64,
    /// 99th-percentile partition size in bytes.
    pub p99_bytes: u64,
    /// Largest partition size in bytes.
    pub max_bytes: u64,
    /// Skew ratio (max/mean) in thousandths.
    pub skew_ratio_milli: u64,
}

impl MapOutputSummary {
    /// Summarize full per-partition stats.
    pub fn of(stats: &MapOutputStats) -> Self {
        MapOutputSummary {
            operator: stats.operator,
            partitions: stats.partitions() as u64,
            total_records: stats.total_records(),
            total_bytes: stats.total_bytes(),
            p50_bytes: stats.p50_bytes(),
            p99_bytes: stats.p99_bytes(),
            max_bytes: stats.max_bytes(),
            skew_ratio_milli: stats.skew_ratio_milli(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(records: &[u64]) -> MapOutputStats {
        MapOutputStats::from_partition_records("test", records.to_vec(), 10.0)
    }

    #[test]
    fn totals_and_max_are_exact() {
        let s = stats(&[1, 2, 3, 10]);
        assert_eq!(s.partitions(), 4);
        assert_eq!(s.total_records(), 16);
        assert_eq!(s.total_bytes(), 160);
        assert_eq!(s.max_bytes(), 100);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let s = stats(&[1, 2, 3, 4]);
        assert_eq!(s.p50_bytes(), 20);
        assert_eq!(s.p99_bytes(), 40);
        assert_eq!(s.percentile_bytes(100), 40);
        assert_eq!(stats(&[]).p50_bytes(), 0);
    }

    #[test]
    fn skew_ratio_is_max_over_mean() {
        // mean = 4, max = 10 -> 2.5x -> 2500 milli.
        assert_eq!(stats(&[1, 2, 3, 10]).skew_ratio_milli(), 2_500);
        assert_eq!(stats(&[5, 5, 5, 5]).skew_ratio_milli(), 1_000, "balanced is 1.000x");
        assert_eq!(stats(&[0, 0]).skew_ratio_milli(), 0, "empty shuffle has no skew");
    }

    #[test]
    fn summary_matches_full_stats() {
        let s = stats(&[1, 2, 3, 10]);
        let d = MapOutputSummary::of(&s);
        assert_eq!(d.partitions, 4);
        assert_eq!(d.total_records, 16);
        assert_eq!(d.total_bytes, 160);
        assert_eq!(d.p50_bytes, 20);
        assert_eq!(d.max_bytes, 100);
        assert_eq!(d.skew_ratio_milli, 2_500);
    }
}
