//! Deterministic hash partitioning.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Deterministic hash of a key (SipHash-1-3 with fixed keys, the std default
/// hasher constructed via `new()`), stable across runs and threads so that
/// simulated schedules and test results are reproducible.
pub fn stable_hash<K: Hash>(key: &K) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// Partition index for `key` among `partitions` partitions.
pub fn partition_for<K: Hash>(key: &K, partitions: usize) -> usize {
    (stable_hash(key) % partitions.max(1) as u64) as usize
}

/// Scatter `(key, value)`-shaped records of several input partitions into
/// `partitions` output buckets by key hash.
pub fn scatter_by_key<T, K: Hash, F: Fn(&T) -> &K>(
    inputs: Vec<Vec<T>>,
    partitions: usize,
    key_of: F,
) -> Vec<Vec<T>> {
    let mut out: Vec<Vec<T>> = (0..partitions.max(1)).map(|_| Vec::new()).collect();
    for part in inputs {
        for rec in part {
            let p = partition_for(key_of(&rec), partitions);
            out[p].push(rec);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(stable_hash(&42u64), stable_hash(&42u64));
        assert_eq!(stable_hash(&"abc"), stable_hash(&"abc"));
    }

    #[test]
    fn partition_in_range() {
        for k in 0..1000u64 {
            assert!(partition_for(&k, 7) < 7);
        }
    }

    #[test]
    fn zero_partitions_clamped_to_one() {
        assert_eq!(partition_for(&1u64, 0), 0);
    }

    #[test]
    fn scatter_groups_same_keys_together() {
        let inputs = vec![vec![(1u64, "a"), (2, "b")], vec![(1, "c"), (3, "d")]];
        let out = scatter_by_key(inputs, 4, |r| &r.0);
        // All records with key 1 must land in the same partition.
        let p1 = partition_for(&1u64, 4);
        let ones: Vec<_> = out[p1].iter().filter(|r| r.0 == 1).collect();
        assert_eq!(ones.len(), 2);
        let total: usize = out.iter().map(Vec::len).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn scatter_spreads_distinct_keys() {
        let inputs = vec![(0..1000u64).map(|k| (k, ())).collect::<Vec<_>>()];
        let out = scatter_by_key(inputs, 8, |r| &r.0);
        let nonempty = out.iter().filter(|p| !p.is_empty()).count();
        assert!(nonempty >= 7, "hash partitioning should use nearly all partitions");
    }
}
