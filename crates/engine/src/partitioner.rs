//! Deterministic hash partitioning.
//!
//! Partition *placement* ([`stable_hash`] / [`partition_for`]) is part of
//! the simulated cost model's identity: where a record lands decides task
//! sizes, skew, and therefore simulated schedules. It stays SipHash-1-3 with
//! fixed keys, bit-stable forever. The *scatter* implementations below are
//! host-side mechanics only — they may (and do) parallelize, but every
//! variant produces the exact same buckets in the exact same order as the
//! naive sequential loop, so nothing observable depends on which path ran.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::pool::parallel_map;

/// Deterministic hash of a key (SipHash-1-3 with fixed keys, the std default
/// hasher constructed via `new()`), stable across runs and threads so that
/// simulated schedules and test results are reproducible.
pub fn stable_hash<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// Partition index for `key` among `partitions` partitions.
pub fn partition_for<K: Hash + ?Sized>(key: &K, partitions: usize) -> usize {
    (stable_hash(key) % partitions.max(1) as u64) as usize
}

/// Below this many total records a scatter stays sequential: spawning the
/// pool costs more than the loop it would parallelize.
const PARALLEL_SCATTER_MIN_RECORDS: usize = 4096;

/// Scatter `(key, value)`-shaped records of several input partitions into
/// `partitions` output buckets by key hash, consuming the inputs (no
/// per-record clone).
///
/// Large inputs are scattered on the thread pool: each worker builds a
/// private bucket set for one input partition, and the per-input sets are
/// merged in input order — producing bit-identical bucket contents and
/// record order to the sequential loop.
pub fn scatter_by_key<T, K, F>(inputs: Vec<Vec<T>>, partitions: usize, key_of: F) -> Vec<Vec<T>>
where
    T: Send,
    K: Hash + ?Sized,
    F: Fn(&T) -> &K + Send + Sync,
{
    let partitions = partitions.max(1);
    let total: usize = inputs.iter().map(Vec::len).sum();
    if total < PARALLEL_SCATTER_MIN_RECORDS
        || inputs.len() <= 1
        || crate::pool::host_parallelism() <= 1
    {
        let mut out: Vec<Vec<T>> = make_buckets(partitions, total);
        for part in inputs {
            for rec in part {
                out[partition_for(key_of(&rec), partitions)].push(rec);
            }
        }
        return out;
    }
    let locals: Vec<Vec<Vec<T>>> = parallel_map(inputs, |_, part: Vec<T>| {
        let mut buckets: Vec<Vec<T>> = make_buckets(partitions, part.len());
        for rec in part {
            buckets[partition_for(key_of(&rec), partitions)].push(rec);
        }
        buckets
    });
    merge_bucket_sets(locals, partitions)
}

/// [`scatter_by_key`] over *shared* partitions (`Arc<Vec<T>>`, the engine's
/// memoized representation): records are cloned exactly once, straight into
/// their destination bucket, with no intermediate deep copy of the input.
///
/// This is what lets every shuffle site take its input as `&Parts<T>`
/// instead of materializing `p.to_vec()` first.
pub fn scatter_shared_by_key<T, K, F>(
    inputs: &[Arc<Vec<T>>],
    partitions: usize,
    key_of: F,
) -> Vec<Vec<T>>
where
    T: Clone + Send + Sync,
    K: Hash + ?Sized,
    F: Fn(&T) -> &K + Send + Sync,
{
    let partitions = partitions.max(1);
    let total: usize = inputs.iter().map(|p| p.len()).sum();
    if total < PARALLEL_SCATTER_MIN_RECORDS
        || inputs.len() <= 1
        || crate::pool::host_parallelism() <= 1
    {
        let mut out: Vec<Vec<T>> = make_buckets(partitions, total);
        for part in inputs {
            for rec in part.iter() {
                out[partition_for(key_of(rec), partitions)].push(rec.clone());
            }
        }
        return out;
    }
    let shared: Vec<Arc<Vec<T>>> = inputs.to_vec(); // refcount bumps only
    let locals: Vec<Vec<Vec<T>>> = parallel_map(shared, |_, part: Arc<Vec<T>>| {
        let mut buckets: Vec<Vec<T>> = make_buckets(partitions, part.len());
        for rec in part.iter() {
            buckets[partition_for(key_of(rec), partitions)].push(rec.clone());
        }
        buckets
    });
    merge_bucket_sets(locals, partitions)
}

/// Pre-sized output buckets: `records` spread over `partitions` with a
/// little headroom, so the common near-uniform case never regrows.
fn make_buckets<T>(partitions: usize, records: usize) -> Vec<Vec<T>> {
    let hint = if records == 0 { 0 } else { records / partitions + records / (partitions * 8) + 1 };
    (0..partitions).map(|_| Vec::with_capacity(hint)).collect()
}

/// Concatenate per-input bucket sets in input order. Input partition order
/// is what the sequential scatter iterates in, so the merged output is
/// record-for-record identical to it.
fn merge_bucket_sets<T>(locals: Vec<Vec<Vec<T>>>, partitions: usize) -> Vec<Vec<T>> {
    let mut out: Vec<Vec<T>> = (0..partitions)
        .map(|p| Vec::with_capacity(locals.iter().map(|l| l[p].len()).sum()))
        .collect();
    for local in locals {
        for (p, mut bucket) in local.into_iter().enumerate() {
            out[p].append(&mut bucket);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(stable_hash(&42u64), stable_hash(&42u64));
        assert_eq!(stable_hash(&"abc"), stable_hash(&"abc"));
    }

    #[test]
    fn partition_in_range() {
        for k in 0..1000u64 {
            assert!(partition_for(&k, 7) < 7);
        }
    }

    #[test]
    fn zero_partitions_clamped_to_one() {
        assert_eq!(partition_for(&1u64, 0), 0);
    }

    #[test]
    fn scatter_groups_same_keys_together() {
        let inputs = vec![vec![(1u64, "a"), (2, "b")], vec![(1, "c"), (3, "d")]];
        let out = scatter_by_key(inputs, 4, |r| &r.0);
        // All records with key 1 must land in the same partition.
        let p1 = partition_for(&1u64, 4);
        let ones: Vec<_> = out[p1].iter().filter(|r| r.0 == 1).collect();
        assert_eq!(ones.len(), 2);
        let total: usize = out.iter().map(Vec::len).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn scatter_spreads_distinct_keys() {
        let inputs = vec![(0..1000u64).map(|k| (k, ())).collect::<Vec<_>>()];
        let out = scatter_by_key(inputs, 8, |r| &r.0);
        let nonempty = out.iter().filter(|p| !p.is_empty()).count();
        assert!(nonempty >= 7, "hash partitioning should use nearly all partitions");
    }

    /// Reference implementation: the naive sequential scatter every variant
    /// must reproduce bit-for-bit (contents *and* order).
    fn sequential_scatter<T: Clone>(
        inputs: &[Vec<T>],
        partitions: usize,
        key_of: impl Fn(&T) -> u64,
    ) -> Vec<Vec<T>> {
        let mut out: Vec<Vec<T>> = (0..partitions).map(|_| Vec::new()).collect();
        for part in inputs {
            for rec in part {
                out[(stable_hash(&key_of(rec)) % partitions as u64) as usize].push(rec.clone());
            }
        }
        out
    }

    #[test]
    fn parallel_scatter_matches_sequential_exactly() {
        // Well above the parallel threshold, uneven partition sizes.
        let inputs: Vec<Vec<(u64, u64)>> = (0..9)
            .map(|p| (0..(1500 + p * 321)).map(|i| ((i * 31 + p) % 4093, i)).collect())
            .collect();
        let expect = sequential_scatter(&inputs, 13, |r| r.0);
        let owned = scatter_by_key(inputs.clone(), 13, |r| &r.0);
        assert_eq!(owned, expect, "owned parallel scatter must match the sequential loop");
        let shared: Vec<Arc<Vec<(u64, u64)>>> = inputs.into_iter().map(Arc::new).collect();
        let zero_copy = scatter_shared_by_key(&shared, 13, |r| &r.0);
        assert_eq!(zero_copy, expect, "shared parallel scatter must match the sequential loop");
    }

    #[test]
    fn shared_scatter_small_input_serial_path_matches_too() {
        let inputs: Vec<Arc<Vec<u64>>> = vec![Arc::new((0..50).collect())];
        let out = scatter_shared_by_key(&inputs, 4, |x| x);
        let expect = sequential_scatter(&[(0..50).collect()], 4, |x| *x);
        assert_eq!(out, expect);
    }
}
