//! Simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A simulated duration / point in simulated time, in nanoseconds.
///
/// Newtype so that simulated time can never be confused with wall-clock time
/// anywhere in the codebase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Zero duration.
    pub const ZERO: SimTime = SimTime(0);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    /// From seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }
    /// From fractional seconds (saturating at zero for negatives).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e9) as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime((self.0 as f64 * rhs.max(0.0)) as u64)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        SimTime(iter.map(|t| t.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(4);
        assert_eq!(a + b, SimTime::from_millis(14));
        assert_eq!(a - b, SimTime::from_millis(6));
        assert_eq!(b * 3u64, SimTime::from_millis(12));
        assert_eq!(a.saturating_sub(SimTime::from_secs(1)), SimTime::ZERO);
        let s: SimTime = vec![a, b].into_iter().sum();
        assert_eq!(s, SimTime::from_millis(14));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
    }
}
