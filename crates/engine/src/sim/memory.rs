//! Simulated memory model: spilling and out-of-memory decisions.
//!
//! A stage whose concurrently resident tasks need more working-set memory
//! than a worker has will, on a real engine, first spill to disk and
//! eventually fail with an OutOfMemoryError. Both behaviours matter for the
//! paper: Matryoshka *spills* on Bounce Rate at low group counts (Sec. 9.4)
//! while outer-parallel and DIQL *fail* outright on large groups
//! (Sec. 9.4, 9.5).

use crate::config::ClusterConfig;
use crate::error::{EngineError, Result};
use crate::sim::SimTime;

/// Outcome of a memory check for one stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryOutcome {
    /// Bytes spilled per worker (0 when everything fits).
    pub spilled_bytes: u64,
    /// Extra simulated time spent on spill I/O (write + re-read).
    pub spill_time: SimTime,
    /// Peak bytes concurrently resident on the heaviest machine (0 only for
    /// stages with no non-empty task).
    pub peak_bytes: u64,
}

impl MemoryOutcome {
    /// No memory pressure (and no resident working set at all).
    pub const FITS: MemoryOutcome =
        MemoryOutcome { spilled_bytes: 0, spill_time: SimTime::ZERO, peak_bytes: 0 };
}

/// Check whether a stage with the given per-task working sets fits in worker
/// memory; decide to spill or fail.
///
/// The model: the heaviest machine concurrently runs
/// `min(cores_per_machine, ceil(nonempty_tasks / machines))` tasks, and in
/// the worst case those are the heaviest tasks of the stage — so its peak
/// demand is the sum of the top-`concurrency` working sets. (This makes one
/// giant skewed task expensive without pretending every slot holds a copy of
/// it.) Demand beyond `spill_fraction * memory` spills (charged at disk
/// bandwidth, write + re-read); demand beyond `oom_fraction * memory` fails
/// the job.
pub fn check_stage_memory(
    cfg: &ClusterConfig,
    operator: &str,
    per_task_working_set: &[u64],
) -> Result<MemoryOutcome> {
    let nonempty = per_task_working_set.iter().filter(|&&b| b > 0).count();
    if nonempty == 0 {
        return Ok(MemoryOutcome::FITS);
    }
    let concurrency = nonempty.div_ceil(cfg.machines).min(cfg.cores_per_machine);
    let mut sorted: Vec<u64> = per_task_working_set.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let peak: u64 = sorted.iter().take(concurrency).sum();
    let mem = cfg.memory_per_machine;
    let oom_limit = (mem as f64 * cfg.costs.oom_fraction) as u64;
    if peak > oom_limit {
        return Err(EngineError::OutOfMemory {
            operator: operator.to_string(),
            needed_bytes: peak,
            available_bytes: oom_limit,
        });
    }
    let spill_limit = (mem as f64 * cfg.costs.spill_fraction) as u64;
    if peak > spill_limit {
        let spilled = peak - spill_limit;
        // Written once and read back once.
        let secs = (2 * spilled) as f64 / cfg.costs.disk_bandwidth as f64;
        return Ok(MemoryOutcome {
            spilled_bytes: spilled,
            spill_time: SimTime::from_secs_f64(secs),
            peak_bytes: peak,
        });
    }
    Ok(MemoryOutcome { spilled_bytes: 0, spill_time: SimTime::ZERO, peak_bytes: peak })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, GB, MB};

    fn cfg() -> ClusterConfig {
        let mut c = ClusterConfig::with_machines(2);
        c.memory_per_machine = GB;
        c.costs.spill_fraction = 0.5;
        c.costs.oom_fraction = 1.0;
        c.costs.materialize_factor = 1.0;
        c
    }

    #[test]
    fn small_working_sets_fit() {
        let out = check_stage_memory(&cfg(), "t", &[MB, MB, MB]).unwrap();
        assert_eq!(out.spilled_bytes, 0);
        assert_eq!(out.spill_time, SimTime::ZERO);
        // 3 non-empty tasks on 2 machines: 2 concurrent on the heaviest.
        assert_eq!(out.peak_bytes, 2 * MB);
    }

    #[test]
    fn empty_stage_fits() {
        assert_eq!(check_stage_memory(&cfg(), "t", &[]).unwrap(), MemoryOutcome::FITS);
        assert_eq!(check_stage_memory(&cfg(), "t", &[0, 0]).unwrap(), MemoryOutcome::FITS);
    }

    #[test]
    fn moderate_pressure_spills() {
        // One task of 700 MB on a 1 GB worker with 0.5 spill fraction.
        let out = check_stage_memory(&cfg(), "t", &[700 * MB]).unwrap();
        assert!(out.spilled_bytes > 0);
        assert!(out.spill_time > SimTime::ZERO);
    }

    #[test]
    fn extreme_pressure_ooms() {
        let err = check_stage_memory(&cfg(), "group_by_key", &[3 * GB]).unwrap_err();
        match err {
            EngineError::OutOfMemory { operator, .. } => assert_eq!(operator, "group_by_key"),
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn concurrency_multiplies_pressure() {
        // 16 tasks of 300 MB on 2 machines x 4 cores: 4 concurrent x 300 MB
        // = 1.2 GB > 1 GB -> OOM, even though one task alone fits.
        let c = cfg();
        let ws = vec![300 * MB; 16];
        assert!(check_stage_memory(&c, "t", &ws).is_err());
        assert!(check_stage_memory(&c, "t", &[300 * MB]).is_ok());
    }

    #[test]
    fn spill_time_scales_with_excess() {
        let a = check_stage_memory(&cfg(), "t", &[600 * MB]).unwrap();
        let b = check_stage_memory(&cfg(), "t", &[900 * MB]).unwrap();
        assert!(b.spill_time > a.spill_time);
    }
}
