//! Execution statistics: jobs, stages, tasks, shuffled/spilled bytes.
//!
//! The experiment harnesses use these counters to explain *why* a strategy is
//! slow (e.g. inner-parallel launching thousands of jobs), mirroring the
//! paper's analysis in Sec. 9.2-9.3.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe counters. One instance lives in each `Engine`.
#[derive(Debug, Default)]
pub struct Stats {
    jobs: AtomicU64,
    stages: AtomicU64,
    tasks: AtomicU64,
    records: AtomicU64,
    shuffle_bytes: AtomicU64,
    spill_bytes: AtomicU64,
    broadcast_bytes: AtomicU64,
    peak_memory_bytes: AtomicU64,
    tasks_retried: AtomicU64,
    peak_partition_bytes: AtomicU64,
    peak_partition_skew_milli: AtomicU64,
    partitions_lost: AtomicU64,
    recompute_nanos: AtomicU64,
    checkpoint_bytes: AtomicU64,
    stages_fused: AtomicU64,
    intermediates_elided: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_cancelled: AtomicU64,
    jobs_rejected: AtomicU64,
    queue_wait_nanos: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Jobs launched (actions executed).
    pub jobs: u64,
    /// Stages executed (source + shuffle boundaries + result stages).
    pub stages: u64,
    /// Tasks launched across all stages.
    pub tasks: u64,
    /// Records processed across all operators.
    pub records: u64,
    /// Bytes crossing shuffle boundaries.
    pub shuffle_bytes: u64,
    /// Bytes spilled to simulated disk.
    pub spill_bytes: u64,
    /// Bytes shipped for broadcast variables.
    pub broadcast_bytes: u64,
    /// High-water mark of a single stage's peak concurrent working-set
    /// memory on the heaviest worker (a maximum, not an accumulating
    /// counter).
    pub peak_memory_bytes: u64,
    /// Task attempts re-run after a simulated fault (`FaultConfig`).
    pub tasks_retried: u64,
    /// High-water mark of a single post-shuffle partition's bytes (a
    /// maximum, like `peak_memory_bytes`).
    pub peak_partition_bytes: u64,
    /// High-water mark of the per-shuffle partition skew ratio
    /// (max partition bytes over mean partition bytes), in thousandths.
    pub peak_partition_skew_milli: u64,
    /// Materialized partitions invalidated by simulated machine losses
    /// (`FaultConfig::machine_loss_rate`).
    pub partitions_lost: u64,
    /// Simulated nanoseconds spent replaying lineage to recompute lost
    /// partitions (already included in the simulated clock).
    pub recompute_nanos: u64,
    /// Modeled bytes written to replicated checkpoint storage by
    /// `Bag::checkpoint` (lineage truncation).
    pub checkpoint_bytes: u64,
    /// Narrow operator chains executed as one fused per-partition pass
    /// (`ClusterConfig::fuse_narrow`). Host-side only: fusion never changes
    /// the simulated clock or the other counters.
    pub stages_fused: u64,
    /// Intermediate per-operator materializations elided by fusion (for a
    /// fused chain of `k` operators, `k - 1` intermediates are elided).
    pub intermediates_elided: u64,
    /// Service-level jobs that ran to completion (multi-tenant job service,
    /// `docs/SERVICE.md`). Always 0 for a directly-driven engine: the
    /// service accounts these on its own `Stats`, one per submitted program,
    /// not per engine action.
    pub jobs_completed: u64,
    /// Service-level jobs cancelled (client request or missed deadline).
    pub jobs_cancelled: u64,
    /// Service-level jobs rejected by admission control (queue saturated,
    /// unknown pool, or analysis errors).
    pub jobs_rejected: u64,
    /// Total simulated nanoseconds service-level jobs spent queued between
    /// admission and their first core-slot (scheduler virtual time).
    pub queue_wait_nanos: u64,
}

impl StatsSnapshot {
    /// Difference since an earlier snapshot (for per-experiment deltas).
    ///
    /// `peak_memory_bytes` is a high-water mark, not a counter: the delta
    /// carries the later snapshot's value unchanged (the peak observed up to
    /// that point, which bounds the peak of the interval).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            jobs: self.jobs - earlier.jobs,
            stages: self.stages - earlier.stages,
            tasks: self.tasks - earlier.tasks,
            records: self.records - earlier.records,
            shuffle_bytes: self.shuffle_bytes - earlier.shuffle_bytes,
            spill_bytes: self.spill_bytes - earlier.spill_bytes,
            broadcast_bytes: self.broadcast_bytes - earlier.broadcast_bytes,
            peak_memory_bytes: self.peak_memory_bytes,
            tasks_retried: self.tasks_retried - earlier.tasks_retried,
            peak_partition_bytes: self.peak_partition_bytes,
            peak_partition_skew_milli: self.peak_partition_skew_milli,
            partitions_lost: self.partitions_lost - earlier.partitions_lost,
            recompute_nanos: self.recompute_nanos - earlier.recompute_nanos,
            checkpoint_bytes: self.checkpoint_bytes - earlier.checkpoint_bytes,
            stages_fused: self.stages_fused - earlier.stages_fused,
            intermediates_elided: self.intermediates_elided - earlier.intermediates_elided,
            jobs_completed: self.jobs_completed - earlier.jobs_completed,
            jobs_cancelled: self.jobs_cancelled - earlier.jobs_cancelled,
            jobs_rejected: self.jobs_rejected - earlier.jobs_rejected,
            queue_wait_nanos: self.queue_wait_nanos - earlier.queue_wait_nanos,
        }
    }
}

impl Stats {
    /// Count one job launch.
    pub fn add_job(&self) {
        self.jobs.fetch_add(1, Ordering::Relaxed);
    }
    /// Count one stage with `tasks` tasks.
    pub fn add_stage(&self, tasks: u64) {
        self.stages.fetch_add(1, Ordering::Relaxed);
        self.tasks.fetch_add(tasks, Ordering::Relaxed);
    }
    /// Count processed records.
    pub fn add_records(&self, n: u64) {
        self.records.fetch_add(n, Ordering::Relaxed);
    }
    /// Count shuffled bytes.
    pub fn add_shuffle_bytes(&self, n: u64) {
        self.shuffle_bytes.fetch_add(n, Ordering::Relaxed);
    }
    /// Count spilled bytes.
    pub fn add_spill_bytes(&self, n: u64) {
        self.spill_bytes.fetch_add(n, Ordering::Relaxed);
    }
    /// Count broadcast bytes.
    pub fn add_broadcast_bytes(&self, n: u64) {
        self.broadcast_bytes.fetch_add(n, Ordering::Relaxed);
    }
    /// Raise the peak-memory high-water mark (no-op if `n` is below it).
    pub fn add_peak_memory(&self, n: u64) {
        self.peak_memory_bytes.fetch_max(n, Ordering::Relaxed);
    }
    /// Count one re-run task attempt (a fault-injection retry).
    pub fn add_task_retry(&self) {
        self.tasks_retried.fetch_add(1, Ordering::Relaxed);
    }
    /// Raise the partition-size and partition-skew high-water marks from one
    /// shuffle's map-output summary.
    pub fn add_partition_peaks(&self, max_bytes: u64, skew_milli: u64) {
        self.peak_partition_bytes.fetch_max(max_bytes, Ordering::Relaxed);
        self.peak_partition_skew_milli.fetch_max(skew_milli, Ordering::Relaxed);
    }
    /// Count partitions invalidated by a simulated machine loss.
    pub fn add_partitions_lost(&self, n: u64) {
        self.partitions_lost.fetch_add(n, Ordering::Relaxed);
    }
    /// Count simulated time spent replaying lineage after a machine loss.
    pub fn add_recompute_nanos(&self, n: u64) {
        self.recompute_nanos.fetch_add(n, Ordering::Relaxed);
    }
    /// Count bytes written to replicated checkpoint storage.
    pub fn add_checkpoint_bytes(&self, n: u64) {
        self.checkpoint_bytes.fetch_add(n, Ordering::Relaxed);
    }
    /// Count one fused narrow-chain execution that elided `intermediates`
    /// per-operator materializations.
    pub fn add_stage_fused(&self, intermediates: u64) {
        self.stages_fused.fetch_add(1, Ordering::Relaxed);
        self.intermediates_elided.fetch_add(intermediates, Ordering::Relaxed);
    }
    /// Count one service-level job that ran to completion.
    pub fn add_job_completed(&self) {
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
    }
    /// Count one service-level job cancelled (request or deadline).
    pub fn add_job_cancelled(&self) {
        self.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
    }
    /// Count one service-level job rejected by admission control.
    pub fn add_job_rejected(&self) {
        self.jobs_rejected.fetch_add(1, Ordering::Relaxed);
    }
    /// Accumulate simulated queue-wait time of a service-level job.
    pub fn add_queue_wait_nanos(&self, n: u64) {
        self.queue_wait_nanos.fetch_add(n, Ordering::Relaxed);
    }

    /// Take a snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            jobs: self.jobs.load(Ordering::Relaxed),
            stages: self.stages.load(Ordering::Relaxed),
            tasks: self.tasks.load(Ordering::Relaxed),
            records: self.records.load(Ordering::Relaxed),
            shuffle_bytes: self.shuffle_bytes.load(Ordering::Relaxed),
            spill_bytes: self.spill_bytes.load(Ordering::Relaxed),
            broadcast_bytes: self.broadcast_bytes.load(Ordering::Relaxed),
            peak_memory_bytes: self.peak_memory_bytes.load(Ordering::Relaxed),
            tasks_retried: self.tasks_retried.load(Ordering::Relaxed),
            peak_partition_bytes: self.peak_partition_bytes.load(Ordering::Relaxed),
            peak_partition_skew_milli: self.peak_partition_skew_milli.load(Ordering::Relaxed),
            partitions_lost: self.partitions_lost.load(Ordering::Relaxed),
            recompute_nanos: self.recompute_nanos.load(Ordering::Relaxed),
            checkpoint_bytes: self.checkpoint_bytes.load(Ordering::Relaxed),
            stages_fused: self.stages_fused.load(Ordering::Relaxed),
            intermediates_elided: self.intermediates_elided.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            jobs_cancelled: self.jobs_cancelled.load(Ordering::Relaxed),
            jobs_rejected: self.jobs_rejected.load(Ordering::Relaxed),
            queue_wait_nanos: self.queue_wait_nanos.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = Stats::default();
        s.add_job();
        s.add_job();
        s.add_stage(10);
        s.add_stage(5);
        s.add_records(100);
        s.add_shuffle_bytes(42);
        s.add_spill_bytes(7);
        s.add_broadcast_bytes(3);
        s.add_peak_memory(500);
        s.add_peak_memory(200);
        s.add_task_retry();
        s.add_partition_peaks(900, 1_500);
        s.add_partition_peaks(600, 2_500);
        s.add_partitions_lost(4);
        s.add_recompute_nanos(1_000);
        s.add_checkpoint_bytes(256);
        s.add_stage_fused(2);
        s.add_stage_fused(4);
        s.add_job_completed();
        s.add_job_cancelled();
        s.add_job_rejected();
        s.add_job_rejected();
        s.add_queue_wait_nanos(7_000);
        let snap = s.snapshot();
        assert_eq!(snap.jobs, 2);
        assert_eq!(snap.stages, 2);
        assert_eq!(snap.tasks, 15);
        assert_eq!(snap.records, 100);
        assert_eq!(snap.shuffle_bytes, 42);
        assert_eq!(snap.spill_bytes, 7);
        assert_eq!(snap.broadcast_bytes, 3);
        assert_eq!(snap.peak_memory_bytes, 500, "peak is a max, not a sum");
        assert_eq!(snap.tasks_retried, 1);
        assert_eq!(snap.peak_partition_bytes, 900, "partition peak is a max");
        assert_eq!(snap.peak_partition_skew_milli, 2_500, "skew peak is a max");
        assert_eq!(snap.partitions_lost, 4);
        assert_eq!(snap.recompute_nanos, 1_000);
        assert_eq!(snap.checkpoint_bytes, 256);
        assert_eq!(snap.stages_fused, 2);
        assert_eq!(snap.intermediates_elided, 6);
        assert_eq!(snap.jobs_completed, 1);
        assert_eq!(snap.jobs_cancelled, 1);
        assert_eq!(snap.jobs_rejected, 2);
        assert_eq!(snap.queue_wait_nanos, 7_000);
    }

    #[test]
    fn since_computes_delta() {
        let s = Stats::default();
        s.add_job();
        let a = s.snapshot();
        s.add_job();
        s.add_stage(3);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.jobs, 1);
        assert_eq!(d.tasks, 3);
    }
}
