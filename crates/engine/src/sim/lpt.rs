//! Longest-processing-time-first (LPT) list scheduling of simulated tasks
//! onto simulated cores.
//!
//! The makespan of a stage's tasks under LPT is what drives the simulated
//! clock. Using real per-partition record counts makes the model sensitive to
//! skew: one giant partition yields one giant task, which dominates the
//! makespan exactly as it would on a real cluster (paper Sec. 9.5).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use super::SimTime;

/// Schedule `task_costs` greedily (longest first) onto `cores` identical
/// cores and return the makespan.
///
/// LPT is a 4/3-approximation of optimal makespan scheduling, which is more
/// than accurate enough for a cost model; Spark's own scheduler is also a
/// greedy list scheduler.
pub fn lpt_makespan(task_costs: &[SimTime], cores: usize) -> SimTime {
    let cores = cores.max(1);
    if task_costs.is_empty() {
        return SimTime::ZERO;
    }
    if task_costs.len() <= cores {
        return task_costs.iter().copied().max().unwrap_or(SimTime::ZERO);
    }
    let mut sorted: Vec<SimTime> = task_costs.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    // Min-heap of core loads.
    let mut loads: BinaryHeap<Reverse<SimTime>> =
        (0..cores).map(|_| Reverse(SimTime::ZERO)).collect();
    for t in sorted {
        let Reverse(load) = loads.pop().expect("heap has `cores` entries");
        loads.push(Reverse(load + t));
    }
    loads.into_iter().map(|Reverse(l)| l).max().unwrap_or(SimTime::ZERO)
}

/// Convenience: makespan of `n` identical tasks of cost `each`.
pub fn uniform_makespan(n: usize, each: SimTime, cores: usize) -> SimTime {
    if n == 0 {
        return SimTime::ZERO;
    }
    let waves = n.div_ceil(cores.max(1)) as u64;
    each * waves
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn fewer_tasks_than_cores_is_max() {
        assert_eq!(lpt_makespan(&[ms(5), ms(3)], 8), ms(5));
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(lpt_makespan(&[], 4), SimTime::ZERO);
    }

    #[test]
    fn single_core_is_sum() {
        assert_eq!(lpt_makespan(&[ms(1), ms(2), ms(3)], 1), ms(6));
    }

    #[test]
    fn balanced_tasks_divide_evenly() {
        let tasks = vec![ms(2); 8];
        assert_eq!(lpt_makespan(&tasks, 4), ms(4));
    }

    #[test]
    fn skewed_task_dominates() {
        // One 100ms task and many 1ms tasks: the long task is the makespan.
        let mut tasks = vec![ms(1); 50];
        tasks.push(ms(100));
        assert_eq!(lpt_makespan(&tasks, 16), ms(100));
    }

    #[test]
    fn uniform_makespan_counts_waves() {
        assert_eq!(uniform_makespan(10, ms(2), 4), ms(6)); // 3 waves
        assert_eq!(uniform_makespan(0, ms(2), 4), SimTime::ZERO);
        assert_eq!(uniform_makespan(4, ms(2), 4), ms(2));
    }

    #[test]
    fn lpt_never_below_lower_bounds() {
        // makespan >= max task and >= sum/cores.
        let tasks: Vec<SimTime> = (1..40).map(ms).collect();
        let cores = 7;
        let span = lpt_makespan(&tasks, cores);
        let max = tasks.iter().copied().max().unwrap();
        let total: u64 = tasks.iter().map(|t| t.as_nanos()).sum();
        assert!(span >= max);
        assert!(span.as_nanos() >= total / cores as u64);
    }
}
