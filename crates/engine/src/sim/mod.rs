//! The cluster simulator: simulated time, task scheduling, memory model and
//! execution statistics.
//!
//! Real data flows through the engine's operators in-process (so results are
//! real and testable), while this module accounts for what the same program
//! would cost on a configured cluster. See `crate::config` for the model
//! parameters and `crate::exec` for where costs are charged.

mod lpt;
mod memory;
mod stats;
mod time;

pub use lpt::{lpt_makespan, uniform_makespan};
pub use memory::{check_stage_memory, MemoryOutcome};
pub use stats::{Stats, StatsSnapshot};
pub use time::SimTime;

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic simulated clock. Operators advance it as they "execute".
#[derive(Debug, Default)]
pub struct SimClock(AtomicU64);

impl SimClock {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        SimTime(self.0.load(Ordering::Relaxed))
    }

    /// Advance the clock by `dt`.
    pub fn advance(&self, dt: SimTime) {
        self.0.fetch_add(dt.as_nanos(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let c = SimClock::default();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(SimTime::from_millis(5));
        c.advance(SimTime::from_millis(7));
        assert_eq!(c.now(), SimTime::from_millis(12));
    }
}
