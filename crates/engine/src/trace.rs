//! Structured observability: engine events, the lowering-decision log, and
//! exporters.
//!
//! Three complementary surfaces, mirroring what a real engine's UI exposes:
//!
//! 1. **[`EngineEvent`]s** — job, stage, shuffle, broadcast, spill, collect
//!    and memory-peak events with simulated start/end times, recorded by the
//!    cost-charging sites in `crate::exec`. Collection is gated on
//!    [`ClusterConfig::trace_events`](crate::ClusterConfig::trace_events) or
//!    [`Engine::enable_tracing`](crate::Engine::enable_tracing); when off,
//!    each would-be event costs one relaxed atomic load and the event is
//!    never even constructed.
//! 2. **The decision log** — [`Decision`] records appended by the Matryoshka
//!    lowering phase (crate `matryoshka-core`) each time runtime cardinality
//!    information drives a physical choice: partition counts (paper
//!    Sec. 8.1), broadcast vs. repartition tag joins (Sec. 8.2), the
//!    broadcast side of half-lifted cross products (Sec. 8.3), and live-tag
//!    counts in lifted loops (Sec. 6.2). The log is always on: its volume is
//!    bounded by plan size and loop iterations, never by data size.
//! 3. **Exporters** — [`export_json`] dumps a run as a self-contained JSON
//!    document; [`export_chrome_trace`] emits the Chrome Trace Event Format
//!    consumed by Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`.
//!
//! [`TraceSummary::from_events`] aggregates an event stream back into the
//! counters of [`StatsSnapshot`](crate::StatsSnapshot), so a traced run can
//! be reconciled against the engine's own statistics (see
//! `docs/OBSERVABILITY.md` at the repository root).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::sim::SimTime;

/// One structured event of a traced run, in recording order.
///
/// Interval events carry simulated `start`/`end` times; instantaneous events
/// carry a single `at` timestamp. All times come from the engine's simulated
/// clock, so durations are *modeled* cluster time, not host wall-clock.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineEvent {
    /// An action began executing (one simulated job).
    JobStart {
        /// Job sequence number, unique per engine.
        job: u64,
        /// The action that launched the job (`collect`, `count`, ...).
        action: &'static str,
        /// Simulated time when the driver started the job (before the
        /// job-launch overhead is charged).
        at: SimTime,
    },
    /// The matching end of a [`EngineEvent::JobStart`].
    JobEnd {
        /// Job sequence number.
        job: u64,
        /// Simulated completion (or failure) time.
        at: SimTime,
        /// Whether the action succeeded.
        ok: bool,
    },
    /// One stage-like unit of compute charged onto the simulated cores.
    ///
    /// `scheduled == true` marks a real stage boundary (a source or shuffle
    /// read paying driver scheduling and task launch — what
    /// [`StatsSnapshot::stages`](crate::StatsSnapshot::stages) counts);
    /// `scheduled == false` is the pipelined compute of a narrow operator
    /// riding inside an already-scheduled stage.
    Stage {
        /// Stage counter value at charge time (stable within a run).
        stage: u64,
        /// Operator being evaluated when the charge happened (`map`,
        /// `reduce_by_key`, ... or `driver` outside any operator).
        operator: &'static str,
        /// Number of simulated tasks.
        tasks: u64,
        /// True for stage starts (scheduling + task-launch overhead paid).
        scheduled: bool,
        /// Simulated start time.
        start: SimTime,
        /// Simulated end time.
        end: SimTime,
        /// Total task time (sum over tasks, before LPT packing).
        busy: SimTime,
    },
    /// Records crossed a shuffle boundary.
    Shuffle {
        /// Operator that shuffled.
        operator: &'static str,
        /// Records shuffled.
        records: u64,
        /// Total bytes shuffled.
        bytes: u64,
        /// Simulated start time.
        start: SimTime,
        /// Simulated end time.
        end: SimTime,
    },
    /// A broadcast variable was shipped to every worker.
    Broadcast {
        /// Operator that broadcast (`broadcast`, `broadcast_join`, ...).
        operator: &'static str,
        /// Serialized bytes shipped.
        bytes: u64,
        /// Simulated start time.
        start: SimTime,
        /// Simulated end time.
        end: SimTime,
    },
    /// A stage's working set exceeded the spill threshold.
    Spill {
        /// Operator that spilled.
        operator: &'static str,
        /// Bytes written to (and re-read from) simulated disk.
        bytes: u64,
        /// Simulated start time.
        start: SimTime,
        /// Simulated end time.
        end: SimTime,
    },
    /// Records were moved to the driver.
    Collect {
        /// Records transferred.
        records: u64,
        /// Total bytes transferred.
        bytes: u64,
        /// Simulated start time.
        start: SimTime,
        /// Simulated end time.
        end: SimTime,
    },
    /// Peak concurrent working-set memory of a stage on the heaviest worker.
    MemoryPeak {
        /// Operator whose stage was memory-checked.
        operator: &'static str,
        /// Peak bytes concurrently resident on the heaviest machine.
        peak_bytes: u64,
        /// Simulated time of the check.
        at: SimTime,
    },
    /// A task attempt failed under the fault model and was re-run.
    TaskRetry {
        /// Stage whose task failed.
        stage: u64,
        /// Index of the failing task within the stage.
        task: u64,
        /// Attempt number that failed (1 = the first run failed once).
        attempt: u32,
        /// Simulated start time of the stage being retried.
        at: SimTime,
    },
    /// A simulated machine was lost at a stage boundary, invalidating the
    /// materialized partitions placed on it (`FaultConfig::machine_loss_rate`;
    /// see `docs/FAULTS.md`).
    MachineLost {
        /// Index of the lost machine.
        machine: u64,
        /// Stage boundary at which the loss was detected.
        stage: u64,
        /// Materialized partitions invalidated by the loss.
        partitions_lost: u64,
        /// Simulated time of the loss.
        at: SimTime,
    },
    /// Lineage replay recomputed the partitions lost with a machine, on the
    /// surviving cluster. One event per recovery (aggregated over the lost
    /// partitions, not one per partition).
    PartitionRecomputed {
        /// Machine whose partitions were recomputed.
        machine: u64,
        /// Stage boundary that triggered the recovery.
        stage: u64,
        /// Partitions recomputed.
        partitions: u64,
        /// Simulated start of the replay.
        start: SimTime,
        /// Simulated end of the replay.
        end: SimTime,
    },
    /// A bag was checkpointed to replicated storage, truncating its lineage
    /// for the fault model (`Bag::checkpoint`).
    Checkpoint {
        /// Operator that checkpointed.
        operator: &'static str,
        /// Modeled bytes written (records x record_bytes).
        bytes: u64,
        /// Simulated start of the write.
        start: SimTime,
        /// Simulated end of the write.
        end: SimTime,
    },
    /// A maximal run of narrow operators executed as one fused per-partition
    /// pass (`ClusterConfig::fuse_narrow`; see `DESIGN.md`, "Narrow-stage
    /// fusion"). Host-side only: the chain's simulated charges are replayed
    /// unchanged, so the matching [`EngineEvent::Stage`] events still appear
    /// one per fused operator.
    StageFused {
        /// Composite operator name, e.g. `fused(map|filter|flat_map)`.
        ops: &'static str,
        /// Number of narrow operators collapsed into the pass.
        ops_fused: u64,
        /// Intermediate materializations elided (`ops_fused - 1`).
        intermediates_elided: u64,
        /// Partitions processed by the single pass.
        partitions: u64,
        /// Simulated time when the fused pass finished charging.
        at: SimTime,
    },
    /// Map-output partition-size distribution of one shuffle (per-wide-stage
    /// histogram digest; see `MapOutputStats`).
    PartitionStats {
        /// Operator that shuffled.
        operator: &'static str,
        /// Number of reduce-side partitions.
        partitions: u64,
        /// Total records scattered.
        records: u64,
        /// Total modeled bytes scattered.
        bytes: u64,
        /// Median partition size in bytes.
        p50_bytes: u64,
        /// 99th-percentile partition size in bytes.
        p99_bytes: u64,
        /// Largest partition size in bytes.
        max_bytes: u64,
        /// Skew ratio (max/mean partition bytes) in thousandths.
        skew_ratio_milli: u64,
        /// Simulated time of the scatter.
        at: SimTime,
    },
    /// A service-level job passed admission control and entered the
    /// multi-tenant scheduler's queue (see `docs/SERVICE.md`). All `Job*`
    /// lifecycle events below are recorded by the job service on its own
    /// event stream, in scheduler virtual time — not by a directly-driven
    /// engine.
    JobQueued {
        /// Service job id (unique per service, submission order).
        job: u64,
        /// Client-supplied job name.
        name: String,
        /// Scheduler pool the job was admitted to.
        pool: String,
        /// Virtual arrival time.
        at: SimTime,
    },
    /// A queued service-level job was granted its core slots and began
    /// executing.
    JobStarted {
        /// Service job id.
        job: u64,
        /// Scheduler pool the job ran in.
        pool: String,
        /// Time spent queued ([`EngineEvent::JobQueued`] to this event).
        queue_wait: SimTime,
        /// Virtual start time.
        at: SimTime,
    },
    /// A running service-level job released its core slots with an outcome.
    JobFinished {
        /// Service job id.
        job: u64,
        /// Whether the program succeeded (`false` covers simulated OOM and
        /// other engine errors; cancellations get
        /// [`EngineEvent::JobCancelled`] instead).
        ok: bool,
        /// The job's own simulated execution time in nanoseconds
        /// (engine-local, excludes queue wait).
        sim_nanos: u64,
        /// Virtual completion time.
        at: SimTime,
    },
    /// A service-level job was cancelled — client request, or a deadline
    /// missed in queue or (deterministically, on the simulated clock) during
    /// execution.
    JobCancelled {
        /// Service job id.
        job: u64,
        /// Why the job was cancelled.
        reason: String,
        /// Virtual cancellation time.
        at: SimTime,
    },
    /// Admission control turned a submission away before it was queued
    /// (saturated queue, unknown pool, or static-analysis errors).
    JobRejected {
        /// Service job id assigned to the rejected submission.
        job: u64,
        /// Why admission refused the job.
        reason: String,
        /// Virtual rejection time.
        at: SimTime,
    },
}

impl EngineEvent {
    /// A copy of this event with every timestamp shifted `offset` later.
    ///
    /// The multi-tenant job service records each job's engine events on the
    /// job's own simulated clock (starting at zero); shifting by the job's
    /// virtual start time places concurrent jobs on the service's shared
    /// timeline for merged exports ([`export_chrome_trace_multi`]).
    pub fn shifted(&self, offset: SimTime) -> EngineEvent {
        let mut ev = self.clone();
        match &mut ev {
            EngineEvent::JobStart { at, .. }
            | EngineEvent::JobEnd { at, .. }
            | EngineEvent::MemoryPeak { at, .. }
            | EngineEvent::TaskRetry { at, .. }
            | EngineEvent::MachineLost { at, .. }
            | EngineEvent::StageFused { at, .. }
            | EngineEvent::PartitionStats { at, .. }
            | EngineEvent::JobQueued { at, .. }
            | EngineEvent::JobStarted { at, .. }
            | EngineEvent::JobFinished { at, .. }
            | EngineEvent::JobCancelled { at, .. }
            | EngineEvent::JobRejected { at, .. } => *at += offset,
            EngineEvent::Stage { start, end, .. }
            | EngineEvent::Shuffle { start, end, .. }
            | EngineEvent::Broadcast { start, end, .. }
            | EngineEvent::Spill { start, end, .. }
            | EngineEvent::Collect { start, end, .. }
            | EngineEvent::PartitionRecomputed { start, end, .. }
            | EngineEvent::Checkpoint { start, end, .. } => {
                *start += offset;
                *end += offset;
            }
        }
        ev
    }
}

/// One entry of the lowering-decision log: a physical choice the runtime
/// optimizer made from actual cardinality information (paper Sec. 8).
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Decision site: `partition_tuning`, `tag_join`, `cross_product`,
    /// `co_partition`, `lifted_while`, ...
    pub site: &'static str,
    /// The choice taken (`broadcast`, `repartition`, a partition count, ...).
    pub choice: String,
    /// The driving cardinality estimate (records / tags), when applicable.
    pub cardinality: u64,
    /// The driving size estimate in bytes, when applicable (0 if unused).
    pub bytes: u64,
    /// Human-readable explanation of why this choice won.
    pub detail: String,
    /// Simulated time of the decision.
    pub at: SimTime,
}

/// Aggregate totals of an event stream, field-compatible with
/// [`StatsSnapshot`](crate::StatsSnapshot) so traced runs can be reconciled
/// against the engine's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Jobs started ([`EngineEvent::JobStart`] count).
    pub jobs: u64,
    /// Jobs that ended with `ok == false`.
    pub jobs_failed: u64,
    /// Scheduled stages ([`EngineEvent::Stage`] with `scheduled`).
    pub stages: u64,
    /// Tasks of scheduled stages.
    pub tasks: u64,
    /// Total shuffled bytes.
    pub shuffle_bytes: u64,
    /// Total spilled bytes.
    pub spill_bytes: u64,
    /// Total broadcast bytes.
    pub broadcast_bytes: u64,
    /// Records moved to the driver by collects.
    pub collected_records: u64,
    /// Maximum [`EngineEvent::MemoryPeak`] seen.
    pub peak_memory_bytes: u64,
    /// Task attempts re-run after simulated faults
    /// ([`EngineEvent::TaskRetry`] count).
    pub tasks_retried: u64,
    /// Maximum single-partition bytes across all
    /// [`EngineEvent::PartitionStats`] events.
    pub peak_partition_bytes: u64,
    /// Partitions invalidated by machine losses
    /// ([`EngineEvent::MachineLost`] sums).
    pub partitions_lost: u64,
    /// Partitions recomputed by lineage replay
    /// ([`EngineEvent::PartitionRecomputed`] sums).
    pub partitions_recomputed: u64,
    /// Bytes written to checkpoint storage ([`EngineEvent::Checkpoint`]
    /// sums).
    pub checkpoint_bytes: u64,
    /// Fused narrow-chain passes ([`EngineEvent::StageFused`] count).
    pub stages_fused: u64,
    /// Intermediate materializations elided by fusion
    /// ([`EngineEvent::StageFused`] sums).
    pub intermediates_elided: u64,
    /// Service-level jobs that ran to an outcome
    /// ([`EngineEvent::JobFinished`] count).
    pub jobs_completed: u64,
    /// Service-level jobs cancelled ([`EngineEvent::JobCancelled`] count).
    pub jobs_cancelled: u64,
    /// Submissions refused by admission control
    /// ([`EngineEvent::JobRejected`] count).
    pub jobs_rejected: u64,
    /// Total virtual nanoseconds jobs spent queued
    /// ([`EngineEvent::JobStarted`] sums).
    pub queue_wait_nanos: u64,
}

impl TraceSummary {
    /// Aggregate an event stream. The result matches the engine's
    /// [`StatsSnapshot`](crate::StatsSnapshot) deltas for the same run on
    /// every shared field (`jobs`, `stages`, `tasks`, `shuffle_bytes`,
    /// `spill_bytes`, `broadcast_bytes`, `peak_memory_bytes`).
    pub fn from_events(events: &[EngineEvent]) -> TraceSummary {
        let mut s = TraceSummary::default();
        for ev in events {
            match ev {
                EngineEvent::JobStart { .. } => s.jobs += 1,
                EngineEvent::JobEnd { ok, .. } => {
                    if !ok {
                        s.jobs_failed += 1;
                    }
                }
                EngineEvent::Stage { tasks, scheduled, .. } => {
                    if *scheduled {
                        s.stages += 1;
                        s.tasks += tasks;
                    }
                }
                EngineEvent::Shuffle { bytes, .. } => s.shuffle_bytes += bytes,
                EngineEvent::Spill { bytes, .. } => s.spill_bytes += bytes,
                EngineEvent::Broadcast { bytes, .. } => s.broadcast_bytes += bytes,
                EngineEvent::Collect { records, .. } => s.collected_records += records,
                EngineEvent::MemoryPeak { peak_bytes, .. } => {
                    s.peak_memory_bytes = s.peak_memory_bytes.max(*peak_bytes)
                }
                EngineEvent::TaskRetry { .. } => s.tasks_retried += 1,
                EngineEvent::PartitionStats { max_bytes, .. } => {
                    s.peak_partition_bytes = s.peak_partition_bytes.max(*max_bytes)
                }
                EngineEvent::MachineLost { partitions_lost, .. } => {
                    s.partitions_lost += partitions_lost
                }
                EngineEvent::PartitionRecomputed { partitions, .. } => {
                    s.partitions_recomputed += partitions
                }
                EngineEvent::Checkpoint { bytes, .. } => s.checkpoint_bytes += bytes,
                EngineEvent::StageFused { intermediates_elided, .. } => {
                    s.stages_fused += 1;
                    s.intermediates_elided += intermediates_elided;
                }
                EngineEvent::JobQueued { .. } => {}
                EngineEvent::JobStarted { queue_wait, .. } => {
                    s.queue_wait_nanos += queue_wait.as_nanos();
                }
                EngineEvent::JobFinished { .. } => s.jobs_completed += 1,
                EngineEvent::JobCancelled { .. } => s.jobs_cancelled += 1,
                EngineEvent::JobRejected { .. } => s.jobs_rejected += 1,
            }
        }
        s
    }
}

/// The config-gated event collector held by each engine.
///
/// Recording costs one relaxed atomic load when disabled; the event value is
/// only constructed (and the mutex only taken) when enabled, so untraced
/// runs stay within measurement noise.
pub(crate) struct TraceCollector {
    enabled: AtomicBool,
    events: Mutex<Vec<EngineEvent>>,
}

/// Initial capacity reserved when tracing is enabled, so steady-state
/// recording does not reallocate for typical runs.
const EVENT_CAPACITY: usize = 4096;

impl TraceCollector {
    pub(crate) fn new(enabled: bool) -> TraceCollector {
        let events = if enabled { Vec::with_capacity(EVENT_CAPACITY) } else { Vec::new() };
        TraceCollector { enabled: AtomicBool::new(enabled), events: Mutex::new(events) }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub(crate) fn set_enabled(&self, on: bool) {
        if on {
            let mut ev = self.events.lock().expect("trace collector lock poisoned");
            if ev.capacity() == 0 {
                ev.reserve(EVENT_CAPACITY);
            }
        }
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Record an event; `make` runs only when the collector is enabled.
    pub(crate) fn record(&self, make: impl FnOnce() -> EngineEvent) {
        if self.enabled() {
            self.events.lock().expect("trace collector lock poisoned").push(make());
        }
    }

    pub(crate) fn events(&self) -> Vec<EngineEvent> {
        self.events.lock().expect("trace collector lock poisoned").clone()
    }
}

/// Escape a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Simulated time as fractional microseconds (the unit of the Chrome Trace
/// Event Format; also used in the JSON dump for readability).
fn micros(t: SimTime) -> f64 {
    t.as_nanos() as f64 / 1e3
}

fn span(out: &mut String, start: SimTime, end: SimTime) {
    let _ = write!(out, "\"start_us\":{:.3},\"end_us\":{:.3}", micros(start), micros(end));
}

/// Serialize events, decisions and the derived [`TraceSummary`] as one
/// self-contained JSON document (hand-rolled; the engine has no serializer
/// dependency). Timestamps are simulated microseconds.
pub fn export_json(events: &[EngineEvent], decisions: &[Decision]) -> String {
    let summary = TraceSummary::from_events(events);
    let mut out = String::with_capacity(events.len() * 96 + decisions.len() * 128 + 512);
    out.push_str("{\n  \"summary\": {");
    let _ = write!(
        out,
        "\"jobs\":{},\"jobs_failed\":{},\"stages\":{},\"tasks\":{},\"shuffle_bytes\":{},\
         \"spill_bytes\":{},\"broadcast_bytes\":{},\"collected_records\":{},\"peak_memory_bytes\":{},\
         \"partitions_lost\":{},\"partitions_recomputed\":{},\"checkpoint_bytes\":{},\
         \"jobs_completed\":{},\"jobs_cancelled\":{},\"jobs_rejected\":{},\"queue_wait_nanos\":{}",
        summary.jobs,
        summary.jobs_failed,
        summary.stages,
        summary.tasks,
        summary.shuffle_bytes,
        summary.spill_bytes,
        summary.broadcast_bytes,
        summary.collected_records,
        summary.peak_memory_bytes,
        summary.partitions_lost,
        summary.partitions_recomputed,
        summary.checkpoint_bytes,
        summary.jobs_completed,
        summary.jobs_cancelled,
        summary.jobs_rejected,
        summary.queue_wait_nanos
    );
    out.push_str("},\n  \"events\": [\n");
    for (i, ev) in events.iter().enumerate() {
        out.push_str("    {");
        match ev {
            EngineEvent::JobStart { job, action, at } => {
                let _ = write!(
                    out,
                    "\"type\":\"job_start\",\"job\":{job},\"action\":\"{}\",\"at_us\":{:.3}",
                    esc(action),
                    micros(*at)
                );
            }
            EngineEvent::JobEnd { job, at, ok } => {
                let _ = write!(
                    out,
                    "\"type\":\"job_end\",\"job\":{job},\"ok\":{ok},\"at_us\":{:.3}",
                    micros(*at)
                );
            }
            EngineEvent::Stage { stage, operator, tasks, scheduled, start, end, busy } => {
                let _ = write!(
                    out,
                    "\"type\":\"stage\",\"stage\":{stage},\"operator\":\"{}\",\"tasks\":{tasks},\
                     \"scheduled\":{scheduled},\"busy_us\":{:.3},",
                    esc(operator),
                    micros(*busy)
                );
                span(&mut out, *start, *end);
            }
            EngineEvent::Shuffle { operator, records, bytes, start, end } => {
                let _ = write!(
                    out,
                    "\"type\":\"shuffle\",\"operator\":\"{}\",\"records\":{records},\"bytes\":{bytes},",
                    esc(operator)
                );
                span(&mut out, *start, *end);
            }
            EngineEvent::Broadcast { operator, bytes, start, end } => {
                let _ = write!(
                    out,
                    "\"type\":\"broadcast\",\"operator\":\"{}\",\"bytes\":{bytes},",
                    esc(operator)
                );
                span(&mut out, *start, *end);
            }
            EngineEvent::Spill { operator, bytes, start, end } => {
                let _ = write!(
                    out,
                    "\"type\":\"spill\",\"operator\":\"{}\",\"bytes\":{bytes},",
                    esc(operator)
                );
                span(&mut out, *start, *end);
            }
            EngineEvent::Collect { records, bytes, start, end } => {
                let _ =
                    write!(out, "\"type\":\"collect\",\"records\":{records},\"bytes\":{bytes},");
                span(&mut out, *start, *end);
            }
            EngineEvent::MemoryPeak { operator, peak_bytes, at } => {
                let _ = write!(
                    out,
                    "\"type\":\"memory_peak\",\"operator\":\"{}\",\"peak_bytes\":{peak_bytes},\
                     \"at_us\":{:.3}",
                    esc(operator),
                    micros(*at)
                );
            }
            EngineEvent::TaskRetry { stage, task, attempt, at } => {
                let _ = write!(
                    out,
                    "\"type\":\"task_retry\",\"stage\":{stage},\"task\":{task},\
                     \"attempt\":{attempt},\"at_us\":{:.3}",
                    micros(*at)
                );
            }
            EngineEvent::MachineLost { machine, stage, partitions_lost, at } => {
                let _ = write!(
                    out,
                    "\"type\":\"machine_lost\",\"machine\":{machine},\"stage\":{stage},\
                     \"partitions_lost\":{partitions_lost},\"at_us\":{:.3}",
                    micros(*at)
                );
            }
            EngineEvent::PartitionRecomputed { machine, stage, partitions, start, end } => {
                let _ = write!(
                    out,
                    "\"type\":\"partition_recomputed\",\"machine\":{machine},\"stage\":{stage},\
                     \"partitions\":{partitions},"
                );
                span(&mut out, *start, *end);
            }
            EngineEvent::Checkpoint { operator, bytes, start, end } => {
                let _ = write!(
                    out,
                    "\"type\":\"checkpoint\",\"operator\":\"{}\",\"bytes\":{bytes},",
                    esc(operator)
                );
                span(&mut out, *start, *end);
            }
            EngineEvent::StageFused { ops, ops_fused, intermediates_elided, partitions, at } => {
                let _ = write!(
                    out,
                    "\"type\":\"stage_fused\",\"ops\":\"{}\",\"ops_fused\":{ops_fused},\
                     \"intermediates_elided\":{intermediates_elided},\"partitions\":{partitions},\
                     \"at_us\":{:.3}",
                    esc(ops),
                    micros(*at)
                );
            }
            EngineEvent::PartitionStats {
                operator,
                partitions,
                records,
                bytes,
                p50_bytes,
                p99_bytes,
                max_bytes,
                skew_ratio_milli,
                at,
            } => {
                let _ = write!(
                    out,
                    "\"type\":\"partition_stats\",\"operator\":\"{}\",\"partitions\":{partitions},\
                     \"records\":{records},\"bytes\":{bytes},\"p50_bytes\":{p50_bytes},\
                     \"p99_bytes\":{p99_bytes},\"max_bytes\":{max_bytes},\
                     \"skew_ratio_milli\":{skew_ratio_milli},\"at_us\":{:.3}",
                    esc(operator),
                    micros(*at)
                );
            }
            EngineEvent::JobQueued { job, name, pool, at } => {
                let _ = write!(
                    out,
                    "\"type\":\"job_queued\",\"job\":{job},\"name\":\"{}\",\"pool\":\"{}\",\
                     \"at_us\":{:.3}",
                    esc(name),
                    esc(pool),
                    micros(*at)
                );
            }
            EngineEvent::JobStarted { job, pool, queue_wait, at } => {
                let _ = write!(
                    out,
                    "\"type\":\"job_started\",\"job\":{job},\"pool\":\"{}\",\
                     \"queue_wait_us\":{:.3},\"at_us\":{:.3}",
                    esc(pool),
                    micros(*queue_wait),
                    micros(*at)
                );
            }
            EngineEvent::JobFinished { job, ok, sim_nanos, at } => {
                let _ = write!(
                    out,
                    "\"type\":\"job_finished\",\"job\":{job},\"ok\":{ok},\
                     \"sim_nanos\":{sim_nanos},\"at_us\":{:.3}",
                    micros(*at)
                );
            }
            EngineEvent::JobCancelled { job, reason, at } => {
                let _ = write!(
                    out,
                    "\"type\":\"job_cancelled\",\"job\":{job},\"reason\":\"{}\",\"at_us\":{:.3}",
                    esc(reason),
                    micros(*at)
                );
            }
            EngineEvent::JobRejected { job, reason, at } => {
                let _ = write!(
                    out,
                    "\"type\":\"job_rejected\",\"job\":{job},\"reason\":\"{}\",\"at_us\":{:.3}",
                    esc(reason),
                    micros(*at)
                );
            }
        }
        out.push('}');
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n  \"decisions\": [\n");
    for (i, d) in decisions.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"site\":\"{}\",\"choice\":\"{}\",\"cardinality\":{},\"bytes\":{},\
             \"detail\":\"{}\",\"at_us\":{:.3}}}",
            esc(d.site),
            esc(&d.choice),
            d.cardinality,
            d.bytes,
            esc(&d.detail),
            micros(d.at)
        );
        if i + 1 < decisions.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Virtual thread ids of the Chrome trace: one lane per event family.
const TID_JOBS: u32 = 1;
const TID_STAGES: u32 = 2;
const TID_SHUFFLE: u32 = 3;
const TID_IO: u32 = 4;

/// Serialize events in the Chrome Trace Event Format (JSON array form),
/// loadable in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
///
/// The simulated cluster appears as one process with a lane ("thread") per
/// event family: jobs, stages, shuffles, and driver/broadcast/spill I/O.
/// Decisions become instant events on the jobs lane; memory peaks become a
/// counter track. Timestamps are simulated microseconds.
pub fn export_chrome_trace(events: &[EngineEvent], decisions: &[Decision]) -> String {
    export_chrome_trace_multi(&[ChromeLane {
        pid: 1,
        name: "simulated cluster".to_string(),
        events,
        decisions,
    }])
}

/// One process ("pid") lane of a merged Chrome trace export.
///
/// The multi-tenant job service exports one lane per job (its engine's
/// events, [`shifted`](EngineEvent::shifted) onto the service timeline) plus
/// a service lane carrying the `Job*` lifecycle events, so concurrent jobs
/// render as separate Perfetto tracks.
pub struct ChromeLane<'a> {
    /// Perfetto process id of the lane (1 for a single-engine export).
    pub pid: u32,
    /// Process name shown on the track (e.g. `job 3: pagerank`).
    pub name: String,
    /// Events of this lane, in recording order.
    pub events: &'a [EngineEvent],
    /// Lowering decisions of this lane (instant events on the jobs track).
    pub decisions: &'a [Decision],
}

/// Serialize several per-process lanes as one Chrome Trace Event Format
/// document. Each [`ChromeLane`] becomes its own Perfetto process with the
/// standard per-family threads; timestamps are simulated microseconds on a
/// shared timeline.
pub fn export_chrome_trace_multi(lanes: &[ChromeLane<'_>]) -> String {
    let total: usize = lanes.iter().map(|l| l.events.len()).sum();
    let mut out = String::with_capacity(total * 128 + 1024);
    out.push_str("[\n");
    for lane in lanes {
        // Process/thread names (metadata events).
        let _ = writeln!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":\"{}\"}}}},",
            lane.pid,
            esc(&lane.name)
        );
        for (tid, name) in
            [(TID_JOBS, "jobs"), (TID_STAGES, "stages"), (TID_SHUFFLE, "shuffle"), (TID_IO, "io")]
        {
            let _ = writeln!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{tid},\"args\":{{\"name\":\"{name}\"}}}},",
                lane.pid
            );
        }
        write_chrome_lane(&mut out, lane.pid, lane.events, lane.decisions);
    }
    // Trailing metadata event avoids dangling-comma bookkeeping.
    out.push_str("{\"name\":\"trace_end\",\"ph\":\"M\",\"pid\":1,\"args\":{}}\n]\n");
    out
}

/// Write one lane's events and decisions (no metadata, no array brackets).
fn write_chrome_lane(out: &mut String, pid: u32, events: &[EngineEvent], decisions: &[Decision]) {
    let complete = |out: &mut String,
                    name: String,
                    cat: &str,
                    tid: u32,
                    start: SimTime,
                    end: SimTime,
                    args: String| {
        let dur = (micros(end) - micros(start)).max(0.001);
        let _ = writeln!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
             \"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}},",
            esc(&name),
            micros(start),
            dur
        );
    };
    // Pair job starts with their ends to draw one slice per job.
    let mut open_jobs: Vec<(u64, &'static str, SimTime)> = Vec::new();
    // Pair service job-started events with their finish/cancel.
    let mut open_service: Vec<(u64, String, SimTime)> = Vec::new();
    for ev in events {
        match ev {
            EngineEvent::JobStart { job, action, at } => open_jobs.push((*job, action, *at)),
            EngineEvent::JobEnd { job, at, ok } => {
                if let Some(pos) = open_jobs.iter().rposition(|(j, _, _)| j == job) {
                    let (j, action, start) = open_jobs.remove(pos);
                    complete(
                        out,
                        format!("job {j}: {action}"),
                        "job",
                        TID_JOBS,
                        start,
                        *at,
                        format!("\"job\":{j},\"ok\":{ok}"),
                    );
                }
            }
            EngineEvent::Stage { stage, operator, tasks, scheduled, start, end, busy } => {
                complete(
                    out,
                    format!("{operator} [{tasks} tasks]"),
                    if *scheduled { "stage" } else { "narrow" },
                    TID_STAGES,
                    *start,
                    *end,
                    format!(
                        "\"stage\":{stage},\"tasks\":{tasks},\"scheduled\":{scheduled},\"busy_us\":{:.3}",
                        micros(*busy)
                    ),
                );
            }
            EngineEvent::Shuffle { operator, records, bytes, start, end } => {
                complete(
                    out,
                    format!("shuffle: {operator}"),
                    "shuffle",
                    TID_SHUFFLE,
                    *start,
                    *end,
                    format!("\"records\":{records},\"bytes\":{bytes}"),
                );
            }
            EngineEvent::Broadcast { operator, bytes, start, end } => {
                complete(
                    out,
                    format!("broadcast: {operator}"),
                    "broadcast",
                    TID_IO,
                    *start,
                    *end,
                    format!("\"bytes\":{bytes}"),
                );
            }
            EngineEvent::Spill { operator, bytes, start, end } => {
                complete(
                    out,
                    format!("spill: {operator}"),
                    "spill",
                    TID_IO,
                    *start,
                    *end,
                    format!("\"bytes\":{bytes}"),
                );
            }
            EngineEvent::Collect { records, bytes, start, end } => {
                complete(
                    out,
                    "collect".to_string(),
                    "collect",
                    TID_IO,
                    *start,
                    *end,
                    format!("\"records\":{records},\"bytes\":{bytes}"),
                );
            }
            EngineEvent::MemoryPeak { operator, peak_bytes, at } => {
                let _ = writeln!(
                    out,
                    "{{\"name\":\"stage peak memory\",\"ph\":\"C\",\"ts\":{:.3},\"pid\":{pid},\
                     \"args\":{{\"bytes\":{peak_bytes}}},\"cat\":\"memory\",\"id\":\"{}\"}},",
                    micros(*at),
                    esc(operator)
                );
            }
            EngineEvent::TaskRetry { stage, task, attempt, at } => {
                let _ = writeln!(
                    out,
                    "{{\"name\":\"task retry: stage {stage} task {task}\",\"cat\":\"retry\",\
                     \"ph\":\"i\",\"ts\":{:.3},\"pid\":{pid},\"tid\":{TID_STAGES},\"s\":\"t\",\
                     \"args\":{{\"stage\":{stage},\"task\":{task},\"attempt\":{attempt}}}}},",
                    micros(*at)
                );
            }
            EngineEvent::MachineLost { machine, stage, partitions_lost, at } => {
                let _ = writeln!(
                    out,
                    "{{\"name\":\"machine {machine} lost at stage {stage}\",\"cat\":\"fault\",\
                     \"ph\":\"i\",\"ts\":{:.3},\"pid\":{pid},\"tid\":{TID_STAGES},\"s\":\"t\",\
                     \"args\":{{\"machine\":{machine},\"stage\":{stage},\
                     \"partitions_lost\":{partitions_lost}}}}},",
                    micros(*at)
                );
            }
            EngineEvent::PartitionRecomputed { machine, stage, partitions, start, end } => {
                complete(
                    out,
                    format!("lineage replay: machine {machine} [{partitions} partitions]"),
                    "recovery",
                    TID_STAGES,
                    *start,
                    *end,
                    format!("\"machine\":{machine},\"stage\":{stage},\"partitions\":{partitions}"),
                );
            }
            EngineEvent::Checkpoint { operator, bytes, start, end } => {
                complete(
                    out,
                    format!("checkpoint: {operator}"),
                    "checkpoint",
                    TID_IO,
                    *start,
                    *end,
                    format!("\"bytes\":{bytes}"),
                );
            }
            EngineEvent::StageFused { ops, ops_fused, intermediates_elided, partitions, at } => {
                let _ = writeln!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"fusion\",\"ph\":\"i\",\"ts\":{:.3},\"pid\":{pid},\
                     \"tid\":{TID_STAGES},\"s\":\"t\",\"args\":{{\"ops_fused\":{ops_fused},\
                     \"intermediates_elided\":{intermediates_elided},\
                     \"partitions\":{partitions}}}}},",
                    esc(ops),
                    micros(*at)
                );
            }
            EngineEvent::PartitionStats {
                operator,
                partitions,
                records,
                bytes,
                p50_bytes,
                p99_bytes,
                max_bytes,
                skew_ratio_milli,
                at,
            } => {
                let _ = writeln!(
                    out,
                    "{{\"name\":\"partitions: {}\",\"cat\":\"partition_stats\",\"ph\":\"i\",\
                     \"ts\":{:.3},\"pid\":{pid},\"tid\":{TID_SHUFFLE},\"s\":\"t\",\
                     \"args\":{{\"partitions\":{partitions},\"records\":{records},\
                     \"bytes\":{bytes},\"p50_bytes\":{p50_bytes},\"p99_bytes\":{p99_bytes},\
                     \"max_bytes\":{max_bytes},\"skew_ratio_milli\":{skew_ratio_milli}}}}},",
                    esc(operator),
                    micros(*at)
                );
            }
            EngineEvent::JobQueued { job, name, pool, at } => {
                let _ = writeln!(
                    out,
                    "{{\"name\":\"job {job} queued [{}]\",\"cat\":\"service\",\"ph\":\"i\",\
                     \"ts\":{:.3},\"pid\":{pid},\"tid\":{TID_JOBS},\"s\":\"t\",\
                     \"args\":{{\"job\":{job},\"name\":\"{}\",\"pool\":\"{}\"}}}},",
                    esc(pool),
                    micros(*at),
                    esc(name),
                    esc(pool)
                );
            }
            EngineEvent::JobStarted { job, pool, queue_wait, at } => {
                // Draw the queue wait as its own slice ending at the start.
                if queue_wait.as_nanos() > 0 {
                    complete(
                        out,
                        format!("queued: job {job}"),
                        "queue",
                        TID_JOBS,
                        at.saturating_sub(*queue_wait),
                        *at,
                        format!("\"job\":{job},\"queue_wait_us\":{:.3}", micros(*queue_wait)),
                    );
                }
                open_service.push((*job, pool.clone(), *at));
            }
            EngineEvent::JobFinished { job, ok, sim_nanos, at } => {
                if let Some(pos) = open_service.iter().rposition(|(j, _, _)| j == job) {
                    let (j, pool, start) = open_service.remove(pos);
                    complete(
                        out,
                        format!("job {j} [{pool}]"),
                        "service_job",
                        TID_JOBS,
                        start,
                        *at,
                        format!("\"job\":{j},\"ok\":{ok},\"sim_nanos\":{sim_nanos}"),
                    );
                }
            }
            EngineEvent::JobCancelled { job, reason, at } => {
                if let Some(pos) = open_service.iter().rposition(|(j, _, _)| j == job) {
                    let (j, pool, start) = open_service.remove(pos);
                    complete(
                        out,
                        format!("job {j} [{pool}] (cancelled)"),
                        "service_job",
                        TID_JOBS,
                        start,
                        *at,
                        format!("\"job\":{j},\"reason\":\"{}\"", esc(reason)),
                    );
                } else {
                    let _ = writeln!(
                        out,
                        "{{\"name\":\"job {job} cancelled\",\"cat\":\"service\",\"ph\":\"i\",\
                         \"ts\":{:.3},\"pid\":{pid},\"tid\":{TID_JOBS},\"s\":\"t\",\
                         \"args\":{{\"job\":{job},\"reason\":\"{}\"}}}},",
                        micros(*at),
                        esc(reason)
                    );
                }
            }
            EngineEvent::JobRejected { job, reason, at } => {
                let _ = writeln!(
                    out,
                    "{{\"name\":\"job {job} rejected\",\"cat\":\"service\",\"ph\":\"i\",\
                     \"ts\":{:.3},\"pid\":{pid},\"tid\":{TID_JOBS},\"s\":\"t\",\
                     \"args\":{{\"job\":{job},\"reason\":\"{}\"}}}},",
                    micros(*at),
                    esc(reason)
                );
            }
        }
    }
    for d in decisions {
        let _ = writeln!(
            out,
            "{{\"name\":\"{}: {}\",\"cat\":\"decision\",\"ph\":\"i\",\"ts\":{:.3},\"pid\":{pid},\
             \"tid\":{TID_JOBS},\"s\":\"p\",\"args\":{{\"cardinality\":{},\"bytes\":{},\"detail\":\"{}\"}}}},",
            esc(d.site),
            esc(&d.choice),
            micros(d.at),
            d.cardinality,
            d.bytes,
            esc(&d.detail)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn sample_events() -> Vec<EngineEvent> {
        vec![
            EngineEvent::JobStart { job: 0, action: "count", at: t(0) },
            EngineEvent::Stage {
                stage: 0,
                operator: "parallelize",
                tasks: 4,
                scheduled: true,
                start: t(1),
                end: t(2),
                busy: t(3),
            },
            EngineEvent::Shuffle {
                operator: "reduce_by_key",
                records: 10,
                bytes: 80,
                start: t(2),
                end: t(3),
            },
            EngineEvent::Stage {
                stage: 1,
                operator: "reduce_by_key",
                tasks: 4,
                scheduled: true,
                start: t(3),
                end: t(4),
                busy: t(2),
            },
            EngineEvent::Stage {
                stage: 2,
                operator: "map",
                tasks: 4,
                scheduled: false,
                start: t(4),
                end: t(4),
                busy: SimTime::ZERO,
            },
            EngineEvent::Broadcast {
                operator: "broadcast_join",
                bytes: 64,
                start: t(4),
                end: t(5),
            },
            EngineEvent::Spill { operator: "group_by_key", bytes: 100, start: t(5), end: t(6) },
            EngineEvent::Collect { records: 5, bytes: 40, start: t(6), end: t(7) },
            EngineEvent::MemoryPeak { operator: "group_by_key", peak_bytes: 4096, at: t(6) },
            EngineEvent::TaskRetry { stage: 1, task: 2, attempt: 1, at: t(3) },
            EngineEvent::MachineLost { machine: 1, stage: 1, partitions_lost: 2, at: t(4) },
            EngineEvent::PartitionRecomputed {
                machine: 1,
                stage: 1,
                partitions: 2,
                start: t(4),
                end: t(5),
            },
            EngineEvent::Checkpoint { operator: "checkpoint", bytes: 512, start: t(5), end: t(6) },
            EngineEvent::StageFused {
                ops: "fused(map|filter)",
                ops_fused: 2,
                intermediates_elided: 1,
                partitions: 4,
                at: t(4),
            },
            EngineEvent::PartitionStats {
                operator: "reduce_by_key",
                partitions: 4,
                records: 10,
                bytes: 80,
                p50_bytes: 16,
                p99_bytes: 40,
                max_bytes: 40,
                skew_ratio_milli: 2_000,
                at: t(3),
            },
            EngineEvent::JobEnd { job: 0, at: t(7), ok: true },
        ]
    }

    #[test]
    fn summary_aggregates_scheduled_stages_only() {
        let s = TraceSummary::from_events(&sample_events());
        assert_eq!(s.jobs, 1);
        assert_eq!(s.jobs_failed, 0);
        assert_eq!(s.stages, 2, "narrow charges are not stages");
        assert_eq!(s.tasks, 8);
        assert_eq!(s.shuffle_bytes, 80);
        assert_eq!(s.spill_bytes, 100);
        assert_eq!(s.broadcast_bytes, 64);
        assert_eq!(s.collected_records, 5);
        assert_eq!(s.peak_memory_bytes, 4096);
        assert_eq!(s.tasks_retried, 1);
        assert_eq!(s.peak_partition_bytes, 40);
        assert_eq!(s.partitions_lost, 2);
        assert_eq!(s.partitions_recomputed, 2);
        assert_eq!(s.checkpoint_bytes, 512);
        assert_eq!(s.stages_fused, 1);
        assert_eq!(s.intermediates_elided, 1);
    }

    #[test]
    fn collector_is_inert_when_disabled() {
        let c = TraceCollector::new(false);
        let mut built = false;
        c.record(|| {
            built = true;
            EngineEvent::JobEnd { job: 0, at: SimTime::ZERO, ok: true }
        });
        assert!(!built, "event must not be constructed when tracing is off");
        assert!(c.events().is_empty());
        c.set_enabled(true);
        c.record(|| EngineEvent::JobEnd { job: 0, at: SimTime::ZERO, ok: true });
        assert_eq!(c.events().len(), 1);
    }

    #[test]
    fn json_export_is_balanced_and_contains_fields() {
        let decisions = vec![Decision {
            site: "tag_join",
            choice: "broadcast".into(),
            cardinality: 12,
            bytes: 96,
            detail: "scalar smaller than 2 x cores".into(),
            at: t(1),
        }];
        let json = export_json(&sample_events(), &decisions);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for needle in [
            "\"summary\"",
            "\"job_start\"",
            "\"shuffle\"",
            "\"tag_join\"",
            "\"broadcast\"",
            "\"stages\":2",
            "\"task_retry\"",
            "\"partition_stats\"",
            "\"skew_ratio_milli\":2000",
            "\"machine_lost\"",
            "\"partition_recomputed\"",
            "\"checkpoint\"",
            "\"checkpoint_bytes\":512",
            "\"stage_fused\"",
            "\"ops\":\"fused(map|filter)\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn chrome_export_has_complete_events_and_thread_names() {
        let chrome = export_chrome_trace(&sample_events(), &[]);
        assert!(chrome.starts_with("[\n"));
        assert!(chrome.trim_end().ends_with(']'));
        assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());
        assert!(chrome.contains("\"ph\":\"X\""), "needs complete events");
        assert!(chrome.contains("\"ph\":\"C\""), "needs the memory counter");
        assert!(chrome.contains("thread_name"));
        assert!(chrome.contains("job 0: count"));
        assert!(chrome.contains("task retry: stage 1 task 2"), "retries must be visible");
        assert!(chrome.contains("partitions: reduce_by_key"));
        assert!(chrome.contains("machine 1 lost at stage 1"), "losses must be visible");
        assert!(chrome.contains("lineage replay: machine 1"));
        assert!(chrome.contains("checkpoint: checkpoint"));
        assert!(chrome.contains("fused(map|filter)"), "fusions must be visible");
    }

    #[test]
    fn service_lifecycle_events_export_and_summarize() {
        let evs = vec![
            EngineEvent::JobQueued {
                job: 1,
                name: "wordcount".into(),
                pool: "batch".into(),
                at: t(0),
            },
            EngineEvent::JobStarted { job: 1, pool: "batch".into(), queue_wait: t(2), at: t(2) },
            EngineEvent::JobFinished { job: 1, ok: true, sim_nanos: 5_000_000, at: t(7) },
            EngineEvent::JobQueued { job: 2, name: "slow".into(), pool: "batch".into(), at: t(1) },
            EngineEvent::JobCancelled {
                job: 2,
                reason: "deadline exceeded in queue".into(),
                at: t(4),
            },
            EngineEvent::JobRejected { job: 3, reason: "queue full".into(), at: t(5) },
        ];
        let s = TraceSummary::from_events(&evs);
        assert_eq!(s.jobs_completed, 1);
        assert_eq!(s.jobs_cancelled, 1);
        assert_eq!(s.jobs_rejected, 1);
        assert_eq!(s.queue_wait_nanos, 2_000_000);
        let json = export_json(&evs, &[]);
        for needle in [
            "\"job_queued\"",
            "\"job_started\"",
            "\"job_finished\"",
            "\"job_cancelled\"",
            "\"job_rejected\"",
            "\"jobs_completed\":1",
            "\"queue_wait_nanos\":2000000",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        let chrome = export_chrome_trace(&evs, &[]);
        assert!(chrome.contains("job 1 [batch]"), "started/finished must pair into a slice");
        assert!(chrome.contains("queued: job 1"), "queue wait must be a slice");
        assert!(chrome.contains("job 2 cancelled"), "queue-cancel must be an instant");
        assert!(chrome.contains("job 3 rejected"));
        assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());
    }

    #[test]
    fn multi_lane_chrome_export_gives_each_job_its_own_pid() {
        let lane_a = vec![
            EngineEvent::JobStart { job: 0, action: "count", at: t(0) },
            EngineEvent::JobEnd { job: 0, at: t(2), ok: true },
        ];
        let lane_b: Vec<EngineEvent> =
            lane_a.iter().map(|e| e.shifted(SimTime::from_millis(5))).collect();
        let chrome = export_chrome_trace_multi(&[
            ChromeLane { pid: 2, name: "job 1: a".into(), events: &lane_a, decisions: &[] },
            ChromeLane { pid: 3, name: "job 2: b".into(), events: &lane_b, decisions: &[] },
        ]);
        assert!(chrome.contains("\"pid\":2"));
        assert!(chrome.contains("\"pid\":3"));
        assert!(chrome.contains("job 1: a"));
        assert_eq!(chrome.matches("process_name").count(), 2, "one process per lane");
        assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());
    }

    #[test]
    fn shifted_moves_interval_and_instant_timestamps() {
        let off = SimTime::from_millis(10);
        match (EngineEvent::Stage {
            stage: 0,
            operator: "map",
            tasks: 1,
            scheduled: true,
            start: t(1),
            end: t(2),
            busy: t(1),
        })
        .shifted(off)
        {
            EngineEvent::Stage { start, end, busy, .. } => {
                assert_eq!(start, t(11));
                assert_eq!(end, t(12));
                assert_eq!(busy, t(1), "durations must not shift");
            }
            other => panic!("unexpected {other:?}"),
        }
        match (EngineEvent::JobEnd { job: 0, at: t(3), ok: true }).shifted(off) {
            EngineEvent::JobEnd { at, .. } => assert_eq!(at, t(13)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn escaping_handles_quotes_and_control_chars() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
