//! Real (wall-clock) parallel execution of partition work on a shared,
//! process-wide worker pool.
//!
//! The engine evaluates each operator's partitions in parallel on the host
//! machine. This is orthogonal to the *simulated* cluster model: the pool
//! makes test and benchmark runs fast; the simulator decides what the
//! program would cost on the modeled cluster.
//!
//! ## One pool per process, not one per call
//!
//! All entry points ([`parallel_map`], [`parallel_map_range`]) drain their
//! work through a single lazily-started set of persistent worker threads
//! ([`shared_pool_workers`] of them) plus the calling thread itself, which
//! participates until its own call completes. Concurrent callers — e.g. two
//! jobs of the multi-tenant service executing at once — therefore *share*
//! the same workers instead of each spawning `host_parallelism()` threads:
//! the process never oversubscribes the host no matter how many jobs run
//! (regression-tested in `tests/pool_sharing.rs`). Calls may also nest (a
//! worker's closure may itself call [`parallel_map`]): the nested caller
//! helps drain its own batch, so no new threads are created and progress
//! never depends on a free worker.
//!
//! ## Determinism
//!
//! The output of every entry point is index-aligned with its input
//! regardless of which thread ran which item, so results are bit-identical
//! to a sequential loop — scheduling only affects wall-clock time, never
//! values or the simulated clock.

// Every unsafe operation must sit in its own `unsafe` block with a
// `// SAFETY:` justification, even inside `unsafe fn` bodies.
#![deny(unsafe_op_in_unsafe_fn)]

use std::any::Any;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Number of worker threads to use for real execution (the host's available
/// parallelism; callers of the shared pool count toward this budget).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// Number of persistent worker threads in the shared pool: one less than
/// [`host_parallelism`], because the calling thread always participates in
/// draining its own batch.
pub fn shared_pool_workers() -> usize {
    host_parallelism().saturating_sub(1)
}

/// A vector of slots that worker threads access disjointly by index.
///
/// Each index is touched by exactly one worker (ownership of an index is
/// claimed through an atomic cursor before any access), so the unsynchronized
/// interior mutability is race-free by construction.
struct SlotVec<T>(Vec<UnsafeCell<MaybeUninit<T>>>);

// SAFETY: slots are only accessed by the unique worker that claimed their
// index off the atomic cursor; distinct indices are distinct memory locations.
unsafe impl<T: Send> Sync for SlotVec<T> {}

impl<T> SlotVec<T> {
    fn filled(items: Vec<T>) -> SlotVec<T> {
        SlotVec(items.into_iter().map(|x| UnsafeCell::new(MaybeUninit::new(x))).collect())
    }

    fn uninit(n: usize) -> SlotVec<T> {
        SlotVec((0..n).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect())
    }

    /// Move the value out of slot `i`.
    ///
    /// # Safety
    /// The caller must hold the unique claim on index `i`, the slot must be
    /// initialized, and it must never be read again.
    unsafe fn take(&self, i: usize) -> T {
        unsafe { (*self.0[i].get()).assume_init_read() }
    }

    /// Write `value` into slot `i`.
    ///
    /// # Safety
    /// The caller must hold the unique claim on index `i` and the slot must
    /// not be written more than once.
    unsafe fn put(&self, i: usize, value: T) {
        unsafe { (*self.0[i].get()).write(value) };
    }

    /// Move all values out, assuming every slot is initialized.
    ///
    /// # Safety
    /// Every slot must have been written exactly once and never taken.
    unsafe fn into_vec(self) -> Vec<T> {
        self.0
            .into_iter()
            .map(|slot| {
                // SAFETY: the caller guarantees all slots are initialized.
                unsafe { slot.into_inner().assume_init() }
            })
            .collect()
    }
}

/// An erased `&(dyn Fn(usize) + Sync)` pointing into the submitting call's
/// stack frame. The completion protocol of [`Batch`] guarantees the pointee
/// outlives every dereference (see `Batch::runner`).
struct RunnerPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared-callable from any thread), and the
// pointer itself is only dereferenced while the submitting call keeps the
// closure alive (enforced by the batch completion protocol below).
unsafe impl Send for RunnerPtr {}
// SAFETY: as above — shared access to a `Sync` closure.
unsafe impl Sync for RunnerPtr {}

/// One submitted batch of indexed work: `runner(i)` for every `i in 0..n`.
///
/// ## Completion protocol (what makes the raw pointer sound)
///
/// - Indices are claimed in chunks off `cursor`; a claim is the *only* path
///   to invoking `runner`, and claims stop forever once `cursor >= n`.
/// - Every claimed index is eventually accounted into `state.remaining`
///   (successful chunks subtract their length; a panicking chunk subtracts
///   its length *and* the never-to-be-claimed tail after poisoning the
///   cursor).
/// - The submitting call returns only after `remaining == 0`, at which point
///   every `runner` invocation has returned and no new claim can succeed —
///   so the closure (and the slot vectors it captures) may safely leave
///   scope even though workers may still hold the `Arc<Batch>`.
struct Batch {
    cursor: AtomicUsize,
    n: usize,
    chunk: usize,
    runner: RunnerPtr,
    state: Mutex<BatchState>,
    done: Condvar,
}

struct BatchState {
    remaining: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Batch {
    /// Claim and run chunks until no claimable work remains. Returns once
    /// this thread can contribute nothing more (other threads may still be
    /// running their claimed chunks).
    fn drive(&self) {
        loop {
            let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.n {
                return;
            }
            let end = (start + self.chunk).min(self.n);
            let run = catch_unwind(AssertUnwindSafe(|| {
                for i in start..end {
                    // SAFETY: `i` was claimed exactly once (the cursor only
                    // grows and hands out disjoint ranges) and the submitting
                    // call keeps the runner alive until `remaining == 0`,
                    // which cannot happen before this invocation is accounted
                    // below.
                    unsafe { (*self.runner.0)(i) };
                }
            }));
            match run {
                Ok(()) => self.account(end - start, None),
                Err(payload) => {
                    // Poison the cursor so no further chunk is ever claimed,
                    // then account both our chunk and the unclaimed tail so
                    // the submitter wakes up. Items that never ran leak their
                    // inputs (MaybeUninit never drops) — safe, and the
                    // submitter is about to rethrow the panic anyway.
                    let prev = self.cursor.swap(self.n, Ordering::Relaxed);
                    let unclaimed = self.n.saturating_sub(prev.min(self.n));
                    self.account((end - start) + unclaimed, Some(payload));
                    return;
                }
            }
        }
    }

    /// Account `k` indices as settled; the first panic payload wins.
    fn account(&self, k: usize, panic: Option<Box<dyn Any + Send>>) {
        let mut st = self.state.lock().expect("pool batch lock poisoned");
        st.remaining -= k;
        if let Some(p) = panic {
            st.panic.get_or_insert(p);
        }
        if st.remaining == 0 {
            self.done.notify_all();
        }
    }
}

/// The process-wide pool: a FIFO of active batches served by persistent
/// worker threads.
struct SharedPool {
    queue: Mutex<VecDeque<Arc<Batch>>>,
    work: Condvar,
}

impl SharedPool {
    /// Pop the oldest batch that still has claimable work, pruning exhausted
    /// batches (cursor past the end — their remaining chunks are finishing
    /// on the threads that claimed them).
    fn next_batch(queue: &mut VecDeque<Arc<Batch>>) -> Option<Arc<Batch>> {
        while let Some(front) = queue.front() {
            if front.cursor.load(Ordering::Relaxed) >= front.n {
                queue.pop_front();
            } else {
                return queue.front().cloned();
            }
        }
        None
    }

    fn worker_loop(&self) {
        loop {
            let batch = {
                let mut q = self.queue.lock().expect("pool queue lock poisoned");
                loop {
                    if let Some(b) = Self::next_batch(&mut q) {
                        break b;
                    }
                    q = self.work.wait(q).expect("pool queue lock poisoned");
                }
            };
            batch.drive();
        }
    }
}

fn shared_pool() -> &'static SharedPool {
    static POOL: OnceLock<&'static SharedPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let pool: &'static SharedPool = Box::leak(Box::new(SharedPool {
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
        }));
        for i in 0..shared_pool_workers() {
            std::thread::Builder::new()
                .name(format!("matryoshka-pool-{i}"))
                .spawn(move || pool.worker_loop())
                .expect("spawn pool worker");
        }
        pool
    })
}

/// Submit `runner(i)` for `0..n` to the shared pool and drain it, with this
/// thread participating. Panics from `runner` are rethrown here after every
/// claimed index has settled.
fn run_shared(n: usize, chunk: usize, runner: &(dyn Fn(usize) + Sync)) {
    // SAFETY: pure lifetime erasure on the trait-object pointer (identical
    // layout); the completion protocol guarantees the pointee outlives every
    // dereference (see `Batch`).
    let runner: *const (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute(runner as *const (dyn Fn(usize) + Sync + '_)) };
    let batch = Arc::new(Batch {
        cursor: AtomicUsize::new(0),
        n,
        chunk: chunk.max(1),
        runner: RunnerPtr(runner),
        state: Mutex::new(BatchState { remaining: n, panic: None }),
        done: Condvar::new(),
    });
    let pool = shared_pool();
    {
        let mut q = pool.queue.lock().expect("pool queue lock poisoned");
        q.push_back(Arc::clone(&batch));
    }
    pool.work.notify_all();
    // The caller helps drain its own batch: ensures progress even when every
    // worker is busy (or when the pool has zero workers on a 1-core host),
    // and keeps nested calls deadlock-free.
    batch.drive();
    let mut st = batch.state.lock().expect("pool batch lock poisoned");
    while st.remaining > 0 {
        st = batch.done.wait(st).expect("pool batch lock poisoned");
    }
    if let Some(payload) = st.panic.take() {
        drop(st);
        resume_unwind(payload);
    }
}

/// Chunk granule for `n` items across the effective thread budget: small
/// claim granules keep skewed items from hiding behind light ones while
/// still amortizing the cursor traffic for very long inputs.
fn chunk_for(n: usize, threads: usize) -> usize {
    (n / (threads * 8)).max(1)
}

/// Apply `f` to every item of `items` in parallel, preserving order.
///
/// # Ordering guarantee
///
/// The output is index-aligned with the input: `result[i] == f(i, items[i])`
/// for every `i`, regardless of which worker ran which item or in what
/// order items finished.
///
/// # Scheduling
///
/// Threads (shared-pool workers plus the caller) claim small index ranges
/// off an atomic cursor (no per-call thread spawning, no mutex on the hot
/// path, no channel): claiming is one `fetch_add`, each input is *taken*
/// from its slot exactly once, and each output is written to a
/// pre-allocated write-once slot. Skewed items therefore never serialize
/// behind a static chunking, and the fast path allocates exactly one output
/// buffer.
///
/// Panics in `f` propagate to the caller once every claimed item has
/// settled. (A panicking run leaks not-yet-processed items and
/// already-produced outputs — safe, and irrelevant since the caller is
/// unwinding the whole job.)
pub fn parallel_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(usize, I) -> O + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = host_parallelism().min(n);
    if threads <= 1 {
        return items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let inputs = SlotVec::filled(items);
    let outputs: SlotVec<O> = SlotVec::uninit(n);
    let runner = |i: usize| {
        // SAFETY: `i` was claimed exactly once by the batch cursor, the
        // input slot was initialized from `items`, and nothing reads it
        // again after this take.
        let item = unsafe { inputs.take(i) };
        let out = f(i, item);
        // SAFETY: same unique claim; the slot is written once and read only
        // after the batch completes.
        unsafe { outputs.put(i, out) };
    };
    run_shared(n, chunk_for(n, threads), &runner);
    // All claims settled without panicking: every input was consumed and
    // every output slot initialized. (`MaybeUninit` never drops its payload,
    // so dropping `inputs` cannot double-drop the moved-out items.)
    // SAFETY: each slot was written exactly once by its unique claimant.
    unsafe { outputs.into_vec() }
}

/// Apply `f` to every index in `0..n` in parallel, preserving order.
///
/// The index-driven twin of [`parallel_map`] for work that is *generated*
/// per index rather than moved out of an input vector (the fused
/// narrow-chain executor drives one partition per index): same cursor-based
/// dynamic scheduling and write-once output slots, but no input `SlotVec`
/// to fill, take from, or drop.
pub fn parallel_map_range<O, F>(n: usize, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(usize) -> O + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = host_parallelism().min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let outputs: SlotVec<O> = SlotVec::uninit(n);
    let runner = |i: usize| {
        let out = f(i);
        // SAFETY: `i` was claimed exactly once by the batch cursor, so the
        // slot is written once and read only after the batch completes.
        unsafe { outputs.put(i, out) };
    };
    run_shared(n, chunk_for(n, threads), &runner);
    // SAFETY: each slot was written exactly once by its unique claimant.
    unsafe { outputs.into_vec() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn range_maps_in_order() {
        let out = parallel_map_range(10_000, |i| i * 3);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn range_empty_and_single() {
        assert!(parallel_map_range(0, |i| i).is_empty());
        assert_eq!(parallel_map_range(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn maps_in_order() {
        let out = parallel_map((0..100).collect(), |i, x: i32| (i as i32) + x);
        assert_eq!(out, (0..100).map(|x| 2 * x).collect::<Vec<_>>());
    }

    #[test]
    fn maps_in_order_for_large_inputs() {
        // Many more items than threads: every chunk boundary is exercised.
        let out = parallel_map((0..10_000u64).collect(), |i, x| (i as u64) * 1_000_000 + x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 1_000_000 + i as u64);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = parallel_map(vec![41], |_, x: i32| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn handles_non_clone_items() {
        struct NoClone(u32);
        let items = vec![NoClone(1), NoClone(2)];
        let out = parallel_map(items, |_, x| x.0 * 10);
        assert_eq!(out, vec![10, 20]);
    }

    #[test]
    fn drops_every_input_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Tracked;
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        DROPS.store(0, Ordering::Relaxed);
        let items: Vec<Tracked> = (0..256).map(|_| Tracked).collect();
        let out = parallel_map(items, |i, t| {
            drop(t);
            i
        });
        assert_eq!(out.len(), 256);
        assert_eq!(DROPS.load(Ordering::Relaxed), 256, "each item dropped exactly once");
    }

    #[test]
    fn actually_uses_multiple_threads_for_many_items() {
        use std::collections::HashSet;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let _ = parallel_map((0..64).collect::<Vec<i32>>(), |_, x| {
            seen.lock().unwrap().insert(std::thread::current().id());
            // A little work so threads overlap.
            (0..1000).fold(x, |a, b| a.wrapping_add(b))
        });
        // On a multi-core host more than one thread should have participated.
        if host_parallelism() > 1 {
            assert!(seen.lock().unwrap().len() > 1);
        }
    }

    #[test]
    fn skewed_items_still_complete() {
        // One heavy item and many light ones: dynamic distribution finishes
        // them all.
        let out = parallel_map((0..32u64).collect(), |_, x| {
            if x == 0 {
                (0..200_000u64).sum::<u64>() % 97
            } else {
                x
            }
        });
        assert_eq!(out.len(), 32);
        assert_eq!(out[1], 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            parallel_map((0..16u32).collect(), |_, x| {
                if x == 7 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(r.is_err(), "a panicking worker must fail the whole map");
    }

    #[test]
    fn pool_survives_a_panicked_batch() {
        // A batch that panics must not wedge the shared workers: subsequent
        // batches still complete.
        let _ = std::panic::catch_unwind(|| {
            parallel_map((0..64u32).collect(), |_, x| {
                if x % 3 == 0 {
                    panic!("recurring boom");
                }
                x
            })
        });
        let out = parallel_map((0..128u64).collect(), |_, x| x + 1);
        assert_eq!(out, (1..=128).collect::<Vec<u64>>());
    }

    #[test]
    fn nested_calls_complete() {
        // A worker's closure may itself submit a batch; the nested caller
        // drains its own work, so this terminates even with zero free
        // workers.
        let out = parallel_map((0..8u64).collect(), |_, x| {
            parallel_map_range(16, |i| i as u64 * x).iter().sum::<u64>()
        });
        let inner: u64 = (0..16u64).sum();
        assert_eq!(out, (0..8).map(|x| inner * x).collect::<Vec<_>>());
    }
}
