//! Real (wall-clock) parallel execution of partition work.
//!
//! The engine evaluates each operator's partitions in parallel on the host
//! machine using scoped threads over a crossbeam work queue. This is
//! orthogonal to the *simulated* cluster model: the pool makes test and
//! benchmark runs fast; the simulator decides what the program would cost
//! on the modeled cluster.

use crossbeam::channel;
use parking_lot::Mutex;

/// Number of worker threads to use for real execution.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// Apply `f` to every item of `items` in parallel, preserving order.
///
/// Work is distributed dynamically through an MPMC channel so that skewed
/// partitions do not serialize behind a static chunking. Panics in `f`
/// propagate to the caller.
pub fn parallel_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(usize, I) -> O + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = host_parallelism().min(n);
    if threads <= 1 {
        return items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let (tx, rx) = channel::bounded::<(usize, I)>(n);
    for pair in items.into_iter().enumerate() {
        tx.send(pair).expect("bounded(n) queue accepts all items");
    }
    drop(tx);
    let outs: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                while let Ok((i, item)) = rx.recv() {
                    let out = f(i, item);
                    *outs[i].lock() = Some(out);
                }
            });
        }
    });
    outs.into_iter().map(|m| m.into_inner().expect("every slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let out = parallel_map((0..100).collect(), |i, x: i32| (i as i32) + x);
        assert_eq!(out, (0..100).map(|x| 2 * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = parallel_map(vec![41], |_, x: i32| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn handles_non_clone_items() {
        struct NoClone(u32);
        let items = vec![NoClone(1), NoClone(2)];
        let out = parallel_map(items, |_, x| x.0 * 10);
        assert_eq!(out, vec![10, 20]);
    }

    #[test]
    fn actually_uses_multiple_threads_for_many_items() {
        use std::collections::HashSet;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let _ = parallel_map((0..64).collect::<Vec<i32>>(), |_, x| {
            seen.lock().insert(std::thread::current().id());
            // A little work so threads overlap.
            (0..1000).fold(x, |a, b| a.wrapping_add(b))
        });
        // On a multi-core host more than one thread should have participated.
        if host_parallelism() > 1 {
            assert!(seen.lock().len() > 1);
        }
    }

    #[test]
    fn skewed_items_still_complete() {
        // One heavy item and many light ones: dynamic distribution finishes
        // them all.
        let out = parallel_map((0..32u64).collect(), |_, x| {
            if x == 0 {
                (0..200_000u64).sum::<u64>() % 97
            } else {
                x
            }
        });
        assert_eq!(out.len(), 32);
        assert_eq!(out[1], 1);
    }
}
