//! Real (wall-clock) parallel execution of partition work.
//!
//! The engine evaluates each operator's partitions in parallel on the host
//! machine using scoped threads over a dynamic work queue. This is
//! orthogonal to the *simulated* cluster model: the pool makes test and
//! benchmark runs fast; the simulator decides what the program would cost
//! on the modeled cluster.

use std::sync::mpsc;
use std::sync::Mutex;

/// Number of worker threads to use for real execution.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// Apply `f` to every item of `items` in parallel, preserving order.
///
/// # Ordering guarantee
///
/// The output is index-aligned with the input: `result[i] == f(i, items[i])`
/// for every `i`, regardless of which worker ran which item or in what
/// order items finished. Workers claim items dynamically (so skewed items
/// do not serialize behind a static chunking) and send `(index, output)`
/// pairs over a channel; outputs are then placed by index — a write-once
/// slot per item, with no per-slot lock.
///
/// Panics in `f` propagate to the caller when the thread scope joins.
pub fn parallel_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(usize, I) -> O + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = host_parallelism().min(n);
    if threads <= 1 {
        return items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    // Dynamic distribution: workers pop the next unclaimed item under a
    // short-lived lock (claim only; `f` runs outside the critical section).
    let queue = Mutex::new(items.into_iter().enumerate());
    let (tx, rx) = mpsc::channel::<(usize, O)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            scope.spawn(|| {
                let tx = tx; // move the clone into the worker
                loop {
                    let next = queue.lock().expect("queue lock poisoned").next();
                    match next {
                        Some((i, item)) => {
                            let out = f(i, item);
                            if tx.send((i, out)).is_err() {
                                return; // receiver gone: nothing left to do
                            }
                        }
                        None => return,
                    }
                }
            });
        }
    });
    drop(tx);
    // Write-once slots: each index is produced exactly once, so every slot
    // transitions None -> Some exactly once, lock-free on this side.
    let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
    for (i, out) in rx {
        debug_assert!(slots[i].is_none(), "index {i} produced twice");
        slots[i] = Some(out);
    }
    slots.into_iter().map(|s| s.expect("every slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let out = parallel_map((0..100).collect(), |i, x: i32| (i as i32) + x);
        assert_eq!(out, (0..100).map(|x| 2 * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = parallel_map(vec![41], |_, x: i32| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn handles_non_clone_items() {
        struct NoClone(u32);
        let items = vec![NoClone(1), NoClone(2)];
        let out = parallel_map(items, |_, x| x.0 * 10);
        assert_eq!(out, vec![10, 20]);
    }

    #[test]
    fn actually_uses_multiple_threads_for_many_items() {
        use std::collections::HashSet;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let _ = parallel_map((0..64).collect::<Vec<i32>>(), |_, x| {
            seen.lock().unwrap().insert(std::thread::current().id());
            // A little work so threads overlap.
            (0..1000).fold(x, |a, b| a.wrapping_add(b))
        });
        // On a multi-core host more than one thread should have participated.
        if host_parallelism() > 1 {
            assert!(seen.lock().unwrap().len() > 1);
        }
    }

    #[test]
    fn skewed_items_still_complete() {
        // One heavy item and many light ones: dynamic distribution finishes
        // them all.
        let out = parallel_map((0..32u64).collect(), |_, x| {
            if x == 0 {
                (0..200_000u64).sum::<u64>() % 97
            } else {
                x
            }
        });
        assert_eq!(out.len(), 32);
        assert_eq!(out[1], 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            parallel_map((0..16u32).collect(), |_, x| {
                if x == 7 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(r.is_err(), "a panicking worker must fail the whole map");
    }
}
