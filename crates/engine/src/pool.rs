//! Real (wall-clock) parallel execution of partition work.
//!
//! The engine evaluates each operator's partitions in parallel on the host
//! machine using scoped threads over a lock-free work queue. This is
//! orthogonal to the *simulated* cluster model: the pool makes test and
//! benchmark runs fast; the simulator decides what the program would cost
//! on the modeled cluster.

// Every unsafe operation must sit in its own `unsafe` block with a
// `// SAFETY:` justification, even inside `unsafe fn` bodies.
#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use for real execution.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// A vector of slots that worker threads access disjointly by index.
///
/// Each index is touched by exactly one worker (ownership of an index is
/// claimed through an atomic cursor before any access), so the unsynchronized
/// interior mutability is race-free by construction.
struct SlotVec<T>(Vec<UnsafeCell<MaybeUninit<T>>>);

// SAFETY: slots are only accessed by the unique worker that claimed their
// index off the atomic cursor; distinct indices are distinct memory locations.
unsafe impl<T: Send> Sync for SlotVec<T> {}

impl<T> SlotVec<T> {
    fn filled(items: Vec<T>) -> SlotVec<T> {
        SlotVec(items.into_iter().map(|x| UnsafeCell::new(MaybeUninit::new(x))).collect())
    }

    fn uninit(n: usize) -> SlotVec<T> {
        SlotVec((0..n).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect())
    }

    /// Move the value out of slot `i`.
    ///
    /// # Safety
    /// The caller must hold the unique claim on index `i`, the slot must be
    /// initialized, and it must never be read again.
    unsafe fn take(&self, i: usize) -> T {
        unsafe { (*self.0[i].get()).assume_init_read() }
    }

    /// Write `value` into slot `i`.
    ///
    /// # Safety
    /// The caller must hold the unique claim on index `i` and the slot must
    /// not be written more than once.
    unsafe fn put(&self, i: usize, value: T) {
        unsafe { (*self.0[i].get()).write(value) };
    }
}

/// Apply `f` to every item of `items` in parallel, preserving order.
///
/// # Ordering guarantee
///
/// The output is index-aligned with the input: `result[i] == f(i, items[i])`
/// for every `i`, regardless of which worker ran which item or in what
/// order items finished.
///
/// # Scheduling
///
/// Workers claim small index ranges off a shared `AtomicUsize` cursor (no
/// mutex, no channel): claiming is one `fetch_add`, each input is *taken*
/// from its slot exactly once, and each output is written to a
/// pre-allocated write-once slot. Skewed items therefore never serialize
/// behind a static chunking, and the fast path allocates exactly one output
/// buffer.
///
/// Panics in `f` propagate to the caller when the thread scope joins. (A
/// panicking run leaks not-yet-processed items and already-produced outputs
/// — safe, and irrelevant since the process is unwinding the whole job.)
pub fn parallel_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(usize, I) -> O + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = host_parallelism().min(n);
    if threads <= 1 {
        return items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    // Small claim granules keep skewed items from hiding behind light ones
    // while still amortizing the cursor traffic for very long inputs.
    let chunk = (n / (threads * 8)).max(1);
    let inputs = SlotVec::filled(items);
    let outputs: SlotVec<O> = SlotVec::uninit(n);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    return;
                }
                for i in start..(start + chunk).min(n) {
                    // SAFETY: `i` was claimed exactly once (the cursor only
                    // grows and hands out disjoint ranges), the input slot
                    // was initialized from `items`, and nothing reads it
                    // again after this take.
                    let item = unsafe { inputs.take(i) };
                    let out = f(i, item);
                    // SAFETY: same unique claim; the slot is written once
                    // and read only after the scope joins.
                    unsafe { outputs.put(i, out) };
                }
            });
        }
    });
    // The scope joined without panicking: every input was consumed and every
    // output slot initialized. (`MaybeUninit` never drops its payload, so
    // dropping `inputs` cannot double-drop the moved-out items.)
    outputs
        .0
        .into_iter()
        .map(|slot| {
            // SAFETY: all slots are initialized once the scope has joined.
            unsafe { slot.into_inner().assume_init() }
        })
        .collect()
}

/// Apply `f` to every index in `0..n` in parallel, preserving order.
///
/// The index-driven twin of [`parallel_map`] for work that is *generated*
/// per index rather than moved out of an input vector (the fused
/// narrow-chain executor drives one partition per index): same cursor-based
/// dynamic scheduling and write-once output slots, but no input `SlotVec`
/// to fill, take from, or drop.
pub fn parallel_map_range<O, F>(n: usize, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(usize) -> O + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = host_parallelism().min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = (n / (threads * 8)).max(1);
    let outputs: SlotVec<O> = SlotVec::uninit(n);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    return;
                }
                for i in start..(start + chunk).min(n) {
                    let out = f(i);
                    // SAFETY: `i` was claimed exactly once (the cursor only
                    // grows and hands out disjoint ranges), so the slot is
                    // written once and read only after the scope joins.
                    unsafe { outputs.put(i, out) };
                }
            });
        }
    });
    outputs
        .0
        .into_iter()
        .map(|slot| {
            // SAFETY: all slots are initialized once the scope has joined.
            unsafe { slot.into_inner().assume_init() }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn range_maps_in_order() {
        let out = parallel_map_range(10_000, |i| i * 3);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn range_empty_and_single() {
        assert!(parallel_map_range(0, |i| i).is_empty());
        assert_eq!(parallel_map_range(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn maps_in_order() {
        let out = parallel_map((0..100).collect(), |i, x: i32| (i as i32) + x);
        assert_eq!(out, (0..100).map(|x| 2 * x).collect::<Vec<_>>());
    }

    #[test]
    fn maps_in_order_for_large_inputs() {
        // Many more items than threads: every chunk boundary is exercised.
        let out = parallel_map((0..10_000u64).collect(), |i, x| (i as u64) * 1_000_000 + x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 1_000_000 + i as u64);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = parallel_map(vec![41], |_, x: i32| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn handles_non_clone_items() {
        struct NoClone(u32);
        let items = vec![NoClone(1), NoClone(2)];
        let out = parallel_map(items, |_, x| x.0 * 10);
        assert_eq!(out, vec![10, 20]);
    }

    #[test]
    fn drops_every_input_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Tracked;
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        DROPS.store(0, Ordering::Relaxed);
        let items: Vec<Tracked> = (0..256).map(|_| Tracked).collect();
        let out = parallel_map(items, |i, t| {
            drop(t);
            i
        });
        assert_eq!(out.len(), 256);
        assert_eq!(DROPS.load(Ordering::Relaxed), 256, "each item dropped exactly once");
    }

    #[test]
    fn actually_uses_multiple_threads_for_many_items() {
        use std::collections::HashSet;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let _ = parallel_map((0..64).collect::<Vec<i32>>(), |_, x| {
            seen.lock().unwrap().insert(std::thread::current().id());
            // A little work so threads overlap.
            (0..1000).fold(x, |a, b| a.wrapping_add(b))
        });
        // On a multi-core host more than one thread should have participated.
        if host_parallelism() > 1 {
            assert!(seen.lock().unwrap().len() > 1);
        }
    }

    #[test]
    fn skewed_items_still_complete() {
        // One heavy item and many light ones: dynamic distribution finishes
        // them all.
        let out = parallel_map((0..32u64).collect(), |_, x| {
            if x == 0 {
                (0..200_000u64).sum::<u64>() % 97
            } else {
                x
            }
        });
        assert_eq!(out.len(), 32);
        assert_eq!(out[1], 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            parallel_map((0..16u32).collect(), |_, x| {
                if x == 7 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(r.is_err(), "a panicking worker must fail the whole map");
    }
}
