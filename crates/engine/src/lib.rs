//! # matryoshka-engine
//!
//! A flat-parallel dataflow engine with a simulated-cluster cost model: the
//! substrate the Matryoshka flattening layer (crate `matryoshka-core`) runs
//! on, standing in for Apache Spark in the SIGMOD 2021 paper *"The Power of
//! Nested Parallelism in Big Data Processing"*.
//!
//! Programs execute **for real**, in-process and multi-threaded, so results
//! are exact and testable. Simultaneously, a **simulated clock** accounts for
//! what the identical program would cost on a configured cluster
//! ([`ClusterConfig`]): job-launch overhead per action, per-task scheduling
//! and launch overheads, LPT task scheduling onto simulated cores, shuffle
//! network transfer, disk spilling and per-worker memory limits (with
//! simulated `OutOfMemory` failures). Experiments read [`Engine::sim_time`].
//!
//! Maximal runs of narrow operators (`map`, `filter`, `flat_map`, ...) are
//! **fused** into a single pass per partition, eliding the intermediate
//! materializations, while the simulated cost model still charges each
//! operator exactly as if it ran unfused (sim-transparency; see
//! `DESIGN.md` § "Narrow-stage fusion"). Disable with
//! [`ClusterConfig::fuse_narrow`] `= false`.
//!
//! Execution is observable: always-on counters ([`StatsSnapshot`]), opt-in
//! structured events ([`EngineEvent`], via [`Engine::enable_tracing`] or
//! [`ClusterConfig::trace_events`]), the lowering-[`Decision`] log filled in
//! by `matryoshka-core`, and JSON / Chrome-trace exporters in the [`trace`]
//! module ([`Engine::trace_json`], [`Engine::chrome_trace`]). See
//! `docs/OBSERVABILITY.md`.
//!
//! ```
//! use matryoshka_engine::{ClusterConfig, Engine};
//!
//! let engine = Engine::new(ClusterConfig::local_test());
//! let words = engine.parallelize(vec!["a", "b", "a", "c", "b", "a"], 4);
//! let counts = words.map(|w| (w.to_string(), 1u64)).reduce_by_key(|a, b| a + b);
//! let mut out = counts.collect().unwrap();
//! out.sort();
//! assert_eq!(out, vec![("a".into(), 3), ("b".into(), 2), ("c".into(), 1)]);
//! assert!(engine.sim_time().as_secs_f64() > 0.0);
//! ```

#![warn(missing_docs)]

mod bag;
pub mod config;
mod error;
mod exec;
pub mod fx;
pub mod map_output;
pub mod partitioner;
pub mod pool;
pub mod sim;
pub mod trace;
mod types;

pub use bag::{Bag, JoinAlgorithm, Partitioning, WorkEstimate};
pub use config::FaultConfig;
pub use config::{ClusterConfig, CostModel, GB, KB, MB};
pub use error::{EngineError, Result};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet};
pub use map_output::{MapOutputStats, MapOutputSummary};
pub use sim::{SimTime, StatsSnapshot};
pub use trace::{Decision, EngineEvent, TraceSummary};
pub use types::{Data, Key};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use std::sync::Mutex;

use sim::{SimClock, Stats};
use trace::TraceCollector;

/// One entry of the execution trace: an operator that was evaluated, in
/// evaluation (topological) order.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Operator name (`map`, `reduce_by_key`, ...).
    pub op: &'static str,
    /// Output partition count.
    pub partitions: usize,
    /// Modeled bytes per output record.
    pub record_bytes: f64,
    /// Records produced (0 for failed operators).
    pub records: u64,
    /// Simulated clock at completion.
    pub completed_at: SimTime,
    /// Whether evaluation succeeded.
    pub ok: bool,
}

pub(crate) struct EngineCore {
    cfg: ClusterConfig,
    clock: SimClock,
    stats: Stats,
    trace: Mutex<Vec<TraceEvent>>,
    collector: TraceCollector,
    decisions: Mutex<Vec<Decision>>,
    current_op: Mutex<Vec<&'static str>>,
    job_counter: AtomicU64,
    map_outputs: Mutex<Vec<MapOutputSummary>>,
    recovery: Mutex<RecoveryLedger>,
    cancelled: AtomicBool,
    deadline_nanos: AtomicU64,
}

/// Per-machine lineage-replay bookkeeping for the machine-loss fault model
/// (see `docs/FAULTS.md`). Each executed stage records, per machine, the
/// aggregate compute cost and count of the partitions placed there since the
/// last checkpoint; losing a machine replays that cost on the survivors.
/// `Bag::checkpoint` clears the ledger — that is what "truncating lineage"
/// means in the simulation.
#[derive(Debug, Default)]
pub(crate) struct RecoveryLedger {
    /// Aggregate recompute cost of partitions resident on each machine.
    pub cost: Vec<SimTime>,
    /// Number of materialized partitions resident on each machine.
    pub partitions: Vec<u64>,
}

impl RecoveryLedger {
    pub(crate) fn ensure_machines(&mut self, machines: usize) {
        if self.cost.len() < machines {
            self.cost.resize(machines, SimTime::ZERO);
            self.partitions.resize(machines, 0);
        }
    }

    pub(crate) fn clear(&mut self) {
        self.cost.iter_mut().for_each(|c| *c = SimTime::ZERO);
        self.partitions.iter_mut().for_each(|p| *p = 0);
    }
}

/// Entries kept in the engine's map-output history: enough for re-optimizers
/// spanning a lifted loop iteration, bounded so long runs stay O(1).
const MAP_OUTPUT_HISTORY: usize = 64;

/// Handle to a simulated cluster. Cheap to clone; all clones share the same
/// simulated clock and statistics.
#[derive(Clone)]
pub struct Engine {
    pub(crate) core: Arc<EngineCore>,
}

impl Engine {
    /// Create an engine over the given simulated cluster.
    pub fn new(cfg: ClusterConfig) -> Engine {
        let collector = TraceCollector::new(cfg.trace_events);
        Engine {
            core: Arc::new(EngineCore {
                cfg,
                clock: SimClock::default(),
                stats: Stats::default(),
                trace: Mutex::new(Vec::new()),
                collector,
                decisions: Mutex::new(Vec::new()),
                current_op: Mutex::new(Vec::new()),
                job_counter: AtomicU64::new(0),
                map_outputs: Mutex::new(Vec::new()),
                recovery: Mutex::new(RecoveryLedger::default()),
                cancelled: AtomicBool::new(false),
                deadline_nanos: AtomicU64::new(0),
            }),
        }
    }

    /// Convenience: an engine over [`ClusterConfig::local_test`].
    pub fn local() -> Engine {
        Engine::new(ClusterConfig::local_test())
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.core.cfg
    }

    /// Total simulated core count.
    pub fn total_cores(&self) -> usize {
        self.core.cfg.total_cores()
    }

    /// Current simulated time (monotonic; take before/after deltas to time a
    /// program).
    pub fn sim_time(&self) -> SimTime {
        self.core.clock.now()
    }

    /// Snapshot of the execution statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.core.stats.snapshot()
    }

    /// Request cooperative cancellation: the next charge site (any clone of
    /// this engine, from any thread) aborts with
    /// [`EngineError::Cancelled`]. Used by the multi-tenant job service to
    /// cancel running jobs between simulated stages; idempotent.
    pub fn request_cancel(&self) {
        self.core.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether [`Engine::request_cancel`] has been called.
    pub fn cancel_requested(&self) -> bool {
        self.core.cancelled.load(Ordering::Relaxed)
    }

    /// Install a simulated-time deadline: the first charge site at which
    /// [`Engine::sim_time`] is at or past `deadline` aborts with
    /// [`EngineError::DeadlineExceeded`]. Deterministic (the simulated clock
    /// does not depend on host scheduling). `SimTime::ZERO` clears the
    /// deadline.
    pub fn set_deadline(&self, deadline: SimTime) {
        self.core.deadline_nanos.store(deadline.as_nanos(), Ordering::Relaxed);
    }

    /// Abort the current program if cancellation was requested or the
    /// simulated deadline has passed. Checked at every stage charge.
    pub(crate) fn check_interrupt(&self) -> Result<()> {
        if self.core.cancelled.load(Ordering::Relaxed) {
            return Err(EngineError::Cancelled);
        }
        let deadline = self.core.deadline_nanos.load(Ordering::Relaxed);
        if deadline > 0 {
            let now = self.core.clock.now().as_nanos();
            if now >= deadline {
                return Err(EngineError::DeadlineExceeded {
                    deadline_nanos: deadline,
                    at_nanos: now,
                });
            }
        }
        Ok(())
    }

    /// The execution trace: every operator evaluated so far, in evaluation
    /// (topological) order, with output cardinalities and the simulated
    /// clock at completion — the moral equivalent of an engine UI's
    /// completed-stages view. Memoized operators appear exactly once.
    pub fn trace(&self) -> Vec<TraceEvent> {
        self.core.trace.lock().expect("trace lock poisoned").clone()
    }

    /// Render the trace as an indented text report.
    pub fn trace_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for ev in self.trace() {
            let status = if ev.ok { "" } else { "  [FAILED]" };
            let _ = writeln!(
                out,
                "{:>10}  {:<22} {:>8} records  {:>5} partitions  {:>10.0} B/rec{}",
                ev.completed_at.to_string(),
                ev.op,
                ev.records,
                ev.partitions,
                ev.record_bytes,
                status
            );
        }
        out
    }

    pub(crate) fn record_trace(&self, ev: TraceEvent) {
        self.core.trace.lock().expect("trace lock poisoned").push(ev);
    }

    /// Turn structured event collection on for this engine (see
    /// [`trace`]). Equivalent to constructing the engine with
    /// [`ClusterConfig::trace_events`] set.
    pub fn enable_tracing(&self) {
        self.core.collector.set_enabled(true);
    }

    /// Turn structured event collection off. Already-collected events are
    /// kept and remain readable via [`Engine::events`].
    pub fn disable_tracing(&self) {
        self.core.collector.set_enabled(false);
    }

    /// Whether structured event collection is currently on.
    pub fn tracing_enabled(&self) -> bool {
        self.core.collector.enabled()
    }

    /// The structured events collected so far, in recording order. Empty
    /// unless tracing was enabled ([`Engine::enable_tracing`] or
    /// [`ClusterConfig::trace_events`]).
    pub fn events(&self) -> Vec<EngineEvent> {
        self.core.collector.events()
    }

    /// The lowering-decision log: every cardinality-driven physical choice
    /// recorded via [`Engine::record_decision`], in decision order. Always
    /// collected (its size is bounded by plan size, not data size).
    pub fn decisions(&self) -> Vec<Decision> {
        self.core.decisions.lock().expect("decision lock poisoned").clone()
    }

    /// Append an entry to the lowering-decision log, stamping the current
    /// simulated time. Called by the lowering layer (crate
    /// `matryoshka-core`) at each cardinality-driven physical choice.
    pub fn record_decision(
        &self,
        site: &'static str,
        choice: impl Into<String>,
        cardinality: u64,
        bytes: u64,
        detail: impl Into<String>,
    ) {
        let d = Decision {
            site,
            choice: choice.into(),
            cardinality,
            bytes,
            detail: detail.into(),
            at: self.sim_time(),
        };
        self.core.decisions.lock().expect("decision lock poisoned").push(d);
    }

    /// The most recent map-output summaries (newest last, bounded history):
    /// one entry per shuffle executed, recorded by the wide operators as
    /// they scatter. Re-optimizers read these at stage boundaries when the
    /// next stage's inputs have not materialized yet.
    pub fn map_output_history(&self) -> Vec<MapOutputSummary> {
        self.core.map_outputs.lock().expect("map-output lock poisoned").clone()
    }

    /// The most recent map-output summary, if any shuffle ran yet.
    pub fn last_map_output(&self) -> Option<MapOutputSummary> {
        self.core.map_outputs.lock().expect("map-output lock poisoned").last().copied()
    }

    pub(crate) fn push_map_output_summary(&self, summary: MapOutputSummary) {
        let mut h = self.core.map_outputs.lock().expect("map-output lock poisoned");
        if h.len() >= MAP_OUTPUT_HISTORY {
            h.remove(0);
        }
        h.push(summary);
    }

    /// Aggregate the collected events into a [`TraceSummary`]; its fields
    /// reconcile with [`Engine::stats`] for the same run when tracing was on
    /// the whole time.
    pub fn trace_summary(&self) -> TraceSummary {
        TraceSummary::from_events(&self.events())
    }

    /// Export collected events and decisions as a self-contained JSON
    /// document (see `docs/OBSERVABILITY.md`).
    pub fn trace_json(&self) -> String {
        trace::export_json(&self.events(), &self.decisions())
    }

    /// Export collected events and decisions in the Chrome Trace Event
    /// Format, loadable in Perfetto or `chrome://tracing`.
    pub fn chrome_trace(&self) -> String {
        trace::export_chrome_trace(&self.events(), &self.decisions())
    }

    /// Record a structured event; `make` runs only when tracing is enabled.
    pub(crate) fn record_event(&self, make: impl FnOnce() -> EngineEvent) {
        self.core.collector.record(make);
    }

    /// Push the operator currently being evaluated (used to attribute
    /// charge-site events to the operator that incurred them).
    pub(crate) fn push_current_op(&self, op: &'static str) {
        self.core.current_op.lock().expect("current-op lock poisoned").push(op);
    }

    pub(crate) fn pop_current_op(&self) {
        self.core.current_op.lock().expect("current-op lock poisoned").pop();
    }

    /// The operator currently being evaluated, or `"driver"` outside any
    /// operator (e.g. a direct `Engine::broadcast`).
    pub(crate) fn current_operator(&self) -> &'static str {
        self.core
            .current_op
            .lock()
            .expect("current-op lock poisoned")
            .last()
            .copied()
            .unwrap_or("driver")
    }

    pub(crate) fn next_job_id(&self) -> u64 {
        self.core.job_counter.fetch_add(1, Ordering::Relaxed)
    }

    /// True if `other` is the same engine instance (bags from different
    /// engines must not be combined).
    pub fn same_as(&self, other: &Engine) -> bool {
        Arc::ptr_eq(&self.core, &other.core)
    }

    /// Distribute a driver-side collection across `partitions` partitions.
    pub fn parallelize<T: Data>(&self, data: Vec<T>, partitions: usize) -> Bag<T> {
        self.parallelize_with_bytes(data, partitions, Bag::<T>::default_record_bytes())
    }

    /// [`Engine::parallelize`] with an explicit modeled record size.
    pub fn parallelize_with_bytes<T: Data>(
        &self,
        data: Vec<T>,
        partitions: usize,
        record_bytes: f64,
    ) -> Bag<T> {
        let engine = self.clone();
        let partitions = partitions.max(1);
        let data = Arc::new(data);
        Bag::new(self.clone(), "parallelize", record_bytes, partitions, move || {
            let n = data.len();
            let chunk = n.div_ceil(partitions);
            let mut parts: Vec<Vec<T>> = Vec::with_capacity(partitions);
            for p in 0..partitions {
                let lo = (p * chunk).min(n);
                let hi = ((p + 1) * chunk).min(n);
                parts.push(data[lo..hi].to_vec());
            }
            let counts: Vec<usize> = parts.iter().map(Vec::len).collect();
            engine.charge_compute(&counts, record_bytes, true)?;
            Ok(bag_parts(parts))
        })
    }

    /// Generate `n` records with `f(i)` spread over `partitions` partitions
    /// (computed on the simulated workers, in parallel for real).
    pub fn generate<T: Data>(
        &self,
        n: u64,
        partitions: usize,
        f: impl Fn(u64) -> T + Send + Sync + 'static,
    ) -> Bag<T> {
        let engine = self.clone();
        let partitions = partitions.max(1);
        let bytes = Bag::<T>::default_record_bytes();
        Bag::new(self.clone(), "generate", bytes, partitions, move || {
            let chunk = n.div_ceil(partitions as u64);
            let ranges: Vec<(u64, u64)> = (0..partitions as u64)
                .map(|p| ((p * chunk).min(n), ((p + 1) * chunk).min(n)))
                .collect();
            let parts: Vec<Vec<T>> =
                pool::parallel_map(ranges, |_, (lo, hi)| (lo..hi).map(&f).collect());
            let counts: Vec<usize> = parts.iter().map(Vec::len).collect();
            engine.charge_compute(&counts, bytes, true)?;
            Ok(bag_parts(parts))
        })
    }

    /// An empty bag with one (empty) partition.
    pub fn empty<T: Data>(&self) -> Bag<T> {
        self.parallelize(Vec::new(), 1)
    }

    /// Ship `value` to every worker as a read-only broadcast variable.
    ///
    /// `bytes` is the modeled serialized size; the simulated memory model
    /// rejects broadcasts that cannot fit on a single machine (the failure
    /// mode of broadcast joins in the paper's Fig. 8).
    pub fn broadcast<T: Data>(&self, value: T, bytes: u64) -> Result<Broadcast<T>> {
        self.charge_broadcast("broadcast", bytes)?;
        Ok(Broadcast { value: Arc::new(value), bytes })
    }
}

/// A read-only value replicated to every simulated worker.
pub struct Broadcast<T> {
    value: Arc<T>,
    bytes: u64,
}

impl<T> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        Broadcast { value: Arc::clone(&self.value), bytes: self.bytes }
    }
}

impl<T> Broadcast<T> {
    /// Access the broadcast value.
    pub fn value(&self) -> &T {
        &self.value
    }
    /// Modeled serialized size.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

pub(crate) use bag::to_parts as bag_parts;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelize_roundtrips() {
        let e = Engine::local();
        let b = e.parallelize((0..97).collect::<Vec<u32>>(), 8);
        assert_eq!(b.num_partitions(), 8);
        assert_eq!(b.collect().unwrap(), (0..97).collect::<Vec<u32>>());
    }

    #[test]
    fn generate_matches_parallelize() {
        let e = Engine::local();
        let g = e.generate(100, 5, |i| i * i);
        assert_eq!(g.collect().unwrap(), (0..100).map(|i| i * i).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_bag_is_empty() {
        let e = Engine::local();
        assert_eq!(e.empty::<u8>().count().unwrap(), 0);
        assert!(e.empty::<u8>().is_empty().unwrap());
    }

    #[test]
    fn broadcast_small_value_ok() {
        let e = Engine::local();
        let b = e.broadcast(vec![1, 2, 3], 24).unwrap();
        assert_eq!(b.value().len(), 3);
        assert_eq!(b.bytes(), 24);
        assert_eq!(e.stats().broadcast_bytes, 24);
    }

    #[test]
    fn engines_are_distinguishable() {
        let a = Engine::local();
        let b = Engine::local();
        assert!(a.same_as(&a));
        assert!(!a.same_as(&b));
    }

    #[test]
    fn zero_partitions_clamped() {
        let e = Engine::local();
        let b = e.parallelize(vec![1], 0);
        assert_eq!(b.num_partitions(), 1);
        assert_eq!(b.collect().unwrap(), vec![1]);
    }
}
