//! Error types for the engine.

use std::fmt;

/// Errors produced by job execution.
///
/// `OutOfMemory` is produced by the *simulated* memory model: the in-process
/// computation itself would have succeeded, but the modeled cluster (with its
/// per-worker memory limit) would have failed. This is how the repository
/// reproduces the paper's OOM data points (outer-parallel on large groups,
/// broadcast joins of large InnerScalars, DIQL's fallback).
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A stage's working set exceeded the simulated per-worker memory.
    OutOfMemory {
        /// The operator that failed (for diagnostics).
        operator: String,
        /// Bytes the heaviest worker would have needed.
        needed_bytes: u64,
        /// Bytes available per worker.
        available_bytes: u64,
    },
    /// The plan is invalid (e.g. joining bags from different engines).
    InvalidPlan(String),
    /// The requested feature is unsupported by this execution strategy
    /// (e.g. the DIQL-like baseline rejecting inner control flow).
    Unsupported(String),
    /// A simulated task exhausted its retry budget (fault injection).
    TaskFailed {
        /// Stage in which the task kept failing.
        stage: u64,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// Lineage recovery exhausted its budget: the same machine was lost
    /// `attempts` consecutive times at one stage boundary
    /// (`FaultConfig::max_recovery_attempts`), so the job fails instead of
    /// replaying lineage forever.
    RecoveryFailed {
        /// Stage boundary at which recovery kept failing.
        stage: u64,
        /// Machine that kept being lost.
        machine: u64,
        /// Consecutive losses before giving up.
        attempts: u32,
    },
    /// The job was cooperatively cancelled (`Engine::request_cancel`): a
    /// charge site observed the cancellation flag and aborted the program
    /// between simulated stages. Used by the multi-tenant job service
    /// (`docs/SERVICE.md`) for client-initiated cancellation.
    Cancelled,
    /// The engine's simulated clock passed the installed deadline
    /// (`Engine::set_deadline`): the program was aborted at the first charge
    /// site past the limit. Deterministic — the simulated clock does not
    /// depend on host scheduling.
    DeadlineExceeded {
        /// The deadline that was exceeded, in simulated nanoseconds.
        deadline_nanos: u64,
        /// Simulated time at the aborting charge site.
        at_nanos: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::OutOfMemory { operator, needed_bytes, available_bytes } => write!(
                f,
                "simulated OutOfMemory in {operator}: needed {needed_bytes} bytes/worker, \
                 available {available_bytes}"
            ),
            EngineError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            EngineError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            EngineError::TaskFailed { stage, attempts } => {
                write!(f, "simulated task failure in stage {stage} after {attempts} attempts")
            }
            EngineError::RecoveryFailed { stage, machine, attempts } => write!(
                f,
                "lineage recovery failed at stage {stage}: machine {machine} lost \
                 {attempts} consecutive times"
            ),
            EngineError::Cancelled => write!(f, "job cancelled"),
            EngineError::DeadlineExceeded { deadline_nanos, at_nanos } => write!(
                f,
                "simulated deadline exceeded: {deadline_nanos} ns deadline, \
                 aborted at {at_nanos} ns"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Convenience alias used across the engine.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EngineError::OutOfMemory {
            operator: "group_by_key".into(),
            needed_bytes: 100,
            available_bytes: 10,
        };
        let s = e.to_string();
        assert!(s.contains("group_by_key"));
        assert!(s.contains("100"));
        let e2 = EngineError::Unsupported("loops".into());
        assert!(e2.to_string().contains("loops"));
    }
}
