//! Cost charging: where operators tell the simulator what they did.
//!
//! The stage model follows Spark: a *stage* starts at a source or a shuffle
//! boundary and pipelines all narrow operators that follow. Sources and wide
//! operators therefore charge per-task overheads (driver-side serial
//! scheduling plus executor-side task launch, scheduled onto simulated cores
//! with LPT); narrow operators charge per-record processing only, since
//! their work rides inside an already-charged stage's tasks.
//!
//! Every charge site here doubles as an observability hook: when tracing is
//! enabled (see [`crate::trace`]), each charge records a structured
//! [`EngineEvent`] carrying the simulated interval it covered and the
//! operator it was charged for.

use crate::error::{EngineError, Result};
use crate::partitioner::{partition_for, stable_hash};
use crate::sim::{check_stage_memory, lpt_makespan, SimTime};
use crate::trace::EngineEvent;
use crate::Engine;

impl Engine {
    /// CPU cost of processing one record of `bytes` payload.
    pub(crate) fn record_cost(&self, bytes: f64) -> SimTime {
        let c = &self.config().costs;
        c.per_record + c.per_byte * bytes
    }

    /// Run an action as one simulated job: charges the job launch and, when
    /// tracing is on, brackets the work with `JobStart`/`JobEnd` events so
    /// every stage/shuffle/broadcast charged inside `f` is attributable to
    /// this job in the exported trace.
    pub(crate) fn run_job<R>(
        &self,
        action: &'static str,
        f: impl FnOnce() -> Result<R>,
    ) -> Result<R> {
        self.check_interrupt()?;
        let job = self.next_job_id();
        let start = self.sim_time();
        self.record_event(|| EngineEvent::JobStart { job, action, at: start });
        self.charge_job();
        let out = f();
        let at = self.sim_time();
        let ok = out.is_ok();
        self.record_event(|| EngineEvent::JobEnd { job, at, ok });
        out
    }

    /// Charge the compute portion of a stage: one simulated task per
    /// partition with `counts[i]` records of `bytes` each.
    ///
    /// `task_overhead` is true for stage-starting operators (sources, shuffle
    /// reads), which pay driver scheduling and task launch per task.
    pub(crate) fn charge_compute(
        &self,
        counts: &[usize],
        bytes: f64,
        task_overhead: bool,
    ) -> Result<()> {
        let per_record = self.record_cost(bytes);
        let costs: Vec<SimTime> = counts
            .iter()
            .map(|&n| {
                let launch =
                    if task_overhead { self.config().costs.task_launch } else { SimTime::ZERO };
                launch + per_record * n as u64
            })
            .collect();
        self.charge_weighted(&costs, task_overhead)?;
        self.core.stats.add_records(counts.iter().map(|&n| n as u64).sum());
        Ok(())
    }

    /// Charge a stage from explicit per-task simulated costs (already
    /// including task launch if `task_overhead`). Applies the fault model:
    /// a failed attempt is re-run (its cost charged again, plus a task
    /// launch); a task that exhausts its attempts fails the job, as Spark's
    /// `spark.task.maxFailures` does.
    pub(crate) fn charge_weighted(
        &self,
        task_costs: &[SimTime],
        task_overhead: bool,
    ) -> Result<()> {
        // Cooperative cancellation / simulated-deadline point: every stage
        // charge passes through here, so a cancelled or over-deadline job
        // aborts at the next stage boundary.
        self.check_interrupt()?;
        let start = self.sim_time();
        let stage_id = self.core.stats.snapshot().stages;
        if task_overhead {
            self.core.stats.add_stage(task_costs.len() as u64);
            // Driver schedules tasks serially; this is what makes very high
            // task counts expensive independent of cluster size.
            self.core.clock.advance(self.config().costs.task_schedule * task_costs.len() as u64);
        }
        let faults = &self.config().faults;
        // Fault-free runs (the common case) charge straight off the caller's
        // slice: the per-stage `to_vec` is only paid when the fault model
        // actually has to rewrite costs for re-run attempts.
        let mut patched: Vec<SimTime>;
        let effective: &[SimTime] = if faults.task_failure_rate > 0.0 {
            let threshold = (faults.task_failure_rate.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
            let launch = self.config().costs.task_launch;
            patched = task_costs.to_vec();
            for (i, cost) in patched.iter_mut().enumerate() {
                let mut attempt = 0u32;
                while stable_hash(&(faults.seed, stage_id, i as u64, attempt)) <= threshold {
                    attempt += 1;
                    if attempt >= faults.max_attempts {
                        return Err(EngineError::TaskFailed { stage: stage_id, attempts: attempt });
                    }
                    self.core.stats.add_task_retry();
                    self.record_event(|| EngineEvent::TaskRetry {
                        stage: stage_id,
                        task: i as u64,
                        attempt,
                        at: start,
                    });
                    // Re-run: the attempt's work is wasted and re-done.
                    *cost = *cost + *cost + launch;
                }
            }
            &patched
        } else {
            task_costs
        };
        self.core.clock.advance(lpt_makespan(effective, self.config().total_cores()));
        self.record_event(|| EngineEvent::Stage {
            stage: stage_id,
            operator: self.current_operator(),
            tasks: effective.len() as u64,
            scheduled: task_overhead,
            start,
            end: self.sim_time(),
            busy: effective.iter().copied().sum(),
        });
        // Machine-loss model (docs/FAULTS.md): only stage-starting charges
        // reach this, and only when enabled — default runs take no lock and
        // stay bit-identical.
        if task_overhead && faults.machine_loss_rate > 0.0 {
            self.machine_loss_boundary(stage_id, effective)?;
        }
        Ok(())
    }

    /// Simulate whole-machine losses at a stage boundary. The just-executed
    /// stage's output partitions are placed on machines with the same stable
    /// placement the partitioner uses; each machine is then lost with
    /// probability `machine_loss_rate`, deterministically per
    /// (seed, stage, machine, attempt). A loss invalidates every materialized
    /// partition resident on that machine since the last checkpoint, and the
    /// engine charges replaying their lineage on the surviving machines.
    /// `max_recovery_attempts` consecutive losses of one machine fail the job
    /// with [`EngineError::RecoveryFailed`].
    fn machine_loss_boundary(&self, stage: u64, task_costs: &[SimTime]) -> Result<()> {
        let machines = self.config().machines.max(1);
        let faults = &self.config().faults;
        let threshold = (faults.machine_loss_rate.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
        let c = &self.config().costs;
        let surviving_cores =
            (self.config().total_cores() - self.config().cores_per_machine).max(1) as u64;
        let mut ledger = self.core.recovery.lock().expect("recovery lock poisoned");
        ledger.ensure_machines(machines);
        // Record this stage's outputs into the lineage ledger: partition i of
        // the stage lives on the machine the stable placement assigns it.
        for (i, cost) in task_costs.iter().enumerate() {
            let m = partition_for(&(i as u64), machines);
            ledger.cost[m] += *cost;
            ledger.partitions[m] += 1;
        }
        for m in 0..machines {
            let mut attempt = 0u32;
            while stable_hash(&("machine_loss", faults.seed, stage, m as u64, attempt)) <= threshold
            {
                attempt += 1;
                let lost_parts = ledger.partitions[m];
                let lost_cost = ledger.cost[m];
                self.core.stats.add_partitions_lost(lost_parts);
                let at = self.sim_time();
                self.record_event(|| EngineEvent::MachineLost {
                    machine: m as u64,
                    stage,
                    partitions_lost: lost_parts,
                    at,
                });
                if attempt >= faults.max_recovery_attempts {
                    return Err(EngineError::RecoveryFailed {
                        stage,
                        machine: m as u64,
                        attempts: attempt,
                    });
                }
                if lost_parts > 0 {
                    // Replay lineage for the lost partitions on the survivors:
                    // the recorded compute spread over the remaining cores,
                    // plus rescheduling/relaunching one task per partition.
                    let replay = SimTime::from_nanos(lost_cost.as_nanos() / surviving_cores)
                        + (c.task_schedule + c.task_launch) * lost_parts;
                    let start = self.sim_time();
                    self.core.clock.advance(replay);
                    self.core.stats.add_recompute_nanos(replay.as_nanos());
                    self.record_event(|| EngineEvent::PartitionRecomputed {
                        machine: m as u64,
                        stage,
                        partitions: lost_parts,
                        start,
                        end: self.sim_time(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Charge writing `bytes` of checkpoint data to replicated storage (one
    /// local disk write across the cluster plus one remote replica over the
    /// network), then truncate lineage: the recovery ledger is cleared, so
    /// later machine losses replay only work done after this point.
    pub(crate) fn charge_checkpoint(&self, operator: &'static str, bytes: u64) {
        let c = &self.config().costs;
        let start = self.sim_time();
        let disk = SimTime::from_secs_f64(
            bytes as f64 / (c.disk_bandwidth * self.config().machines.max(1) as u64) as f64,
        );
        let net = SimTime::from_secs_f64(bytes as f64 / self.config().aggregate_bandwidth() as f64);
        self.core.clock.advance(disk + net);
        self.core.stats.add_checkpoint_bytes(bytes);
        self.record_event(|| EngineEvent::Checkpoint {
            operator,
            bytes,
            start,
            end: self.sim_time(),
        });
        let mut ledger = self.core.recovery.lock().expect("recovery lock poisoned");
        ledger.clear();
    }

    /// Record one shuffle's map-output statistics: pure bookkeeping (no
    /// simulated time, no simulated memory). Updates the partition-size
    /// high-water marks, appends a summary to the engine's bounded
    /// map-output history, and emits a `PartitionStats` trace event.
    ///
    /// Wide operators call this on every shuffle; it is public so layers
    /// above the engine (re-optimizers, tests) can inject observations for
    /// shuffles they simulate themselves.
    pub fn record_map_output(&self, stats: &crate::MapOutputStats) {
        let summary = crate::MapOutputSummary::of(stats);
        self.core.stats.add_partition_peaks(summary.max_bytes, summary.skew_ratio_milli);
        self.push_map_output_summary(summary);
        self.record_event(|| EngineEvent::PartitionStats {
            operator: summary.operator,
            partitions: summary.partitions,
            records: summary.total_records,
            bytes: summary.total_bytes,
            p50_bytes: summary.p50_bytes,
            p99_bytes: summary.p99_bytes,
            max_bytes: summary.max_bytes,
            skew_ratio_milli: summary.skew_ratio_milli,
            at: self.sim_time(),
        });
    }

    /// Charge a shuffle of `records` records of `bytes` each: map-side
    /// serialization (parallel across cores) plus network transfer at the
    /// aggregate cluster bandwidth.
    pub(crate) fn charge_shuffle(&self, operator: &'static str, records: u64, bytes: f64) {
        let c = &self.config().costs;
        let total_bytes = (records as f64 * bytes) as u64;
        self.core.stats.add_shuffle_bytes(total_bytes);
        let start = self.sim_time();
        let ser = SimTime::from_nanos(
            c.per_shuffle_record.as_nanos().saturating_mul(records)
                / self.config().total_cores().max(1) as u64,
        );
        let net =
            SimTime::from_secs_f64(total_bytes as f64 / self.config().aggregate_bandwidth() as f64);
        self.core.clock.advance(ser + net);
        self.record_event(|| EngineEvent::Shuffle {
            operator,
            records,
            bytes: total_bytes,
            start,
            end: self.sim_time(),
        });
    }

    /// Memory-check a stage given per-task working sets (bytes, already
    /// including any materialization factor). Spilling advances the clock;
    /// overflow returns a simulated OutOfMemory.
    pub(crate) fn charge_memory(&self, operator: &'static str, working_sets: &[u64]) -> Result<()> {
        let outcome = check_stage_memory(self.config(), operator, working_sets)?;
        if outcome.peak_bytes > 0 {
            self.core.stats.add_peak_memory(outcome.peak_bytes);
            self.record_event(|| EngineEvent::MemoryPeak {
                operator,
                peak_bytes: outcome.peak_bytes,
                at: self.sim_time(),
            });
        }
        if outcome.spilled_bytes > 0 {
            self.core.stats.add_spill_bytes(outcome.spilled_bytes);
            let start = self.sim_time();
            self.core.clock.advance(outcome.spill_time);
            self.record_event(|| EngineEvent::Spill {
                operator,
                bytes: outcome.spilled_bytes,
                start,
                end: self.sim_time(),
            });
        }
        Ok(())
    }

    /// Charge one job launch (per action).
    pub(crate) fn charge_job(&self) {
        self.core.stats.add_job();
        self.core.clock.advance(self.config().costs.job_launch);
    }

    /// Charge moving `records` records of `bytes` each to the driver over a
    /// single machine's link, processed serially by the driver.
    pub(crate) fn charge_driver_collect(&self, records: u64, bytes: f64) {
        let total_bytes = records as f64 * bytes;
        let start = self.sim_time();
        let cpu = self.record_cost(bytes) * records;
        let net = SimTime::from_secs_f64(total_bytes / self.config().network_bandwidth as f64);
        self.core.clock.advance(cpu + net);
        self.record_event(|| EngineEvent::Collect {
            records,
            bytes: total_bytes as u64,
            start,
            end: self.sim_time(),
        });
    }

    /// Charge distributing a broadcast variable of `bytes` to every worker,
    /// failing if the deserialized value cannot fit in worker memory.
    pub(crate) fn charge_broadcast(&self, operator: &'static str, bytes: u64) -> Result<()> {
        let expanded = (bytes as f64 * self.config().costs.materialize_factor) as u64;
        // A broadcast must fit on *every single* machine (paper Sec. 9.6).
        check_stage_memory(self.config(), operator, &[expanded])?;
        self.core.stats.add_broadcast_bytes(bytes);
        let start = self.sim_time();
        // Torrent-style distribution: pipeline bound by one machine's link.
        let net = SimTime::from_secs_f64(bytes as f64 / self.config().network_bandwidth as f64);
        self.core.clock.advance(net);
        self.record_event(|| EngineEvent::Broadcast {
            operator,
            bytes,
            start,
            end: self.sim_time(),
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{ClusterConfig, GB};
    use crate::sim::SimTime;
    use crate::Engine;

    #[test]
    fn shuffle_time_scales_with_bytes() {
        let e = Engine::new(ClusterConfig::local_test());
        let t0 = e.sim_time();
        e.charge_shuffle("t", 1000, 100.0);
        let t1 = e.sim_time();
        e.charge_shuffle("t", 1000, 10_000.0);
        let t2 = e.sim_time();
        assert!((t2 - t1) > (t1 - t0));
        assert!(e.stats().shuffle_bytes >= 1000 * 100);
    }

    #[test]
    fn job_launch_advances_clock_by_configured_amount() {
        let e = Engine::new(ClusterConfig::local_test());
        let before = e.sim_time();
        e.charge_job();
        assert_eq!(e.sim_time() - before, e.config().costs.job_launch);
        assert_eq!(e.stats().jobs, 1);
    }

    #[test]
    fn broadcast_too_large_for_one_machine_ooms() {
        let e = Engine::new(ClusterConfig::local_test()); // 4 GB per machine
        let err = e.charge_broadcast("broadcast", 2 * GB).unwrap_err();
        assert!(matches!(err, crate::EngineError::OutOfMemory { .. }));
    }

    #[test]
    fn fault_injection_slows_jobs_deterministically() {
        let mut cfg = ClusterConfig::local_test();
        cfg.faults.task_failure_rate = 0.3;
        let run = || {
            let e = Engine::new(cfg.clone());
            let b = e.generate(10_000, 8, |i| (i % 97, 1u64));
            b.reduce_by_key(|a, b| a + b).count().unwrap();
            e.sim_time()
        };
        let with_faults = run();
        let baseline = {
            let e = Engine::new(ClusterConfig::local_test());
            let b = e.generate(10_000, 8, |i| (i % 97, 1u64));
            b.reduce_by_key(|a, b| a + b).count().unwrap();
            e.sim_time()
        };
        assert!(with_faults > baseline, "retries must cost simulated time");
        assert_eq!(with_faults, run(), "fault injection is deterministic");
    }

    #[test]
    fn retries_are_counted_and_traced() {
        let mut cfg = ClusterConfig::local_test();
        cfg.faults.task_failure_rate = 0.3;
        cfg.trace_events = true;
        let e = Engine::new(cfg);
        let b = e.generate(10_000, 8, |i| (i % 97, 1u64));
        b.reduce_by_key(|a, b| a + b).count().unwrap();
        let retried = e.stats().tasks_retried;
        assert!(retried > 0, "a 30% failure rate must produce retries");
        let events = e.events();
        let retry_events =
            events.iter().filter(|ev| matches!(ev, crate::EngineEvent::TaskRetry { .. })).count()
                as u64;
        assert_eq!(retry_events, retried, "every counted retry must be traced");
        assert_eq!(e.trace_summary().tasks_retried, retried);
    }

    #[test]
    fn pathological_failure_rate_fails_the_job() {
        let mut cfg = ClusterConfig::local_test();
        cfg.faults.task_failure_rate = 0.999999;
        cfg.faults.max_attempts = 2;
        let e = Engine::new(cfg);
        let b = e.parallelize((0..100u64).collect::<Vec<_>>(), 4);
        match b.count() {
            Err(crate::EngineError::TaskFailed { attempts, .. }) => assert_eq!(attempts, 2),
            other => panic!("expected TaskFailed, got {other:?}"),
        }
    }

    #[test]
    fn results_are_unaffected_by_fault_injection() {
        let mut cfg = ClusterConfig::local_test();
        cfg.faults.task_failure_rate = 0.2;
        let e = Engine::new(cfg);
        let b = e.parallelize((0..1000u64).collect::<Vec<_>>(), 8);
        assert_eq!(b.map(|x| x * 2).fold(0u64, |a, x| a + x).unwrap(), 999_000);
    }

    #[test]
    fn task_overhead_charged_only_for_stage_starts() {
        let e = Engine::new(ClusterConfig::local_test());
        let t0 = e.sim_time();
        e.charge_compute(&[0, 0, 0, 0], 8.0, false).unwrap();
        let narrow = e.sim_time() - t0;
        assert_eq!(narrow, SimTime::ZERO, "narrow op over empty partitions is free");
        let t1 = e.sim_time();
        e.charge_compute(&[0, 0, 0, 0], 8.0, true).unwrap();
        let wide = e.sim_time() - t1;
        assert!(wide > SimTime::ZERO, "stage start pays scheduling/launch even when empty");
        assert_eq!(e.stats().tasks, 4);
    }

    #[test]
    fn run_job_records_job_events_with_outcome() {
        let e = Engine::new(ClusterConfig::local_test());
        e.enable_tracing();
        let ok: crate::Result<u32> = e.run_job("count", || Ok(7));
        assert_eq!(ok.unwrap(), 7);
        let err: crate::Result<u32> =
            e.run_job("collect", || Err(crate::EngineError::Unsupported("x".into())));
        assert!(err.is_err());
        let events = e.events();
        let jobs: Vec<_> = events
            .iter()
            .filter_map(|ev| match ev {
                crate::EngineEvent::JobStart { job, action, .. } => Some((*job, *action, None)),
                crate::EngineEvent::JobEnd { job, ok, .. } => Some((*job, "", Some(*ok))),
                _ => None,
            })
            .collect();
        assert_eq!(jobs.len(), 4);
        assert_eq!(jobs[0].1, "count");
        assert_eq!(jobs[1].2, Some(true));
        assert_eq!(jobs[2].1, "collect");
        assert_eq!(jobs[3].2, Some(false));
        assert_eq!(e.trace_summary().jobs, 2);
        assert_eq!(e.trace_summary().jobs_failed, 1);
    }
}
