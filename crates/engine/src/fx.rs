//! Deterministic FxHash-style hashing for *host-side* hash tables.
//!
//! The engine's hot loops (grouping, map-side combining, join builds, dedup)
//! spend a large share of their wall-clock time hashing. The std default
//! (`RandomState`, SipHash-1-3 with per-instance random keys) is built for
//! HashDoS resistance the engine does not need: all keys come from the
//! program under test, not an adversary. [`FxBuildHasher`] swaps in the
//! multiply-xor hash used by rustc (std-only reimplementation, no external
//! crate), which is several times faster on small keys and — having no
//! random state — makes host-side table iteration order reproducible across
//! runs.
//!
//! **This is a wall-clock optimization only.** Partition *placement* goes
//! through [`crate::partitioner::stable_hash`] (SipHash with fixed keys) and
//! is deliberately untouched: simulated schedules, shuffle sizes and the
//! golden figures depend on where records land, never on how a worker's
//! private hash table arranges them. See `DESIGN.md` ("Wall-clock fast path
//! vs. simulated cost model").

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// Multiplier from FxHash (the golden-ratio-derived constant rustc uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic hasher (FxHash).
///
/// Not HashDoS-resistant — use only for host-side tables over trusted keys,
/// never for partition placement (that is [`crate::partitioner::stable_hash`]).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// [`BuildHasher`] producing [`FxHasher`]s. Stateless, so every table built
/// from it hashes identically — across instances, threads and runs.
#[derive(Default, Clone, Copy)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A [`HashMap`] keyed by [`FxBuildHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A [`HashSet`] keyed by [`FxBuildHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// An empty [`FxHashMap`] (convenience for the `Default`-less hasher param).
pub fn fx_map<K, V>() -> FxHashMap<K, V> {
    HashMap::with_hasher(FxBuildHasher)
}

/// An [`FxHashMap`] pre-sized for `capacity` entries (use when an upper
/// bound — a partition's record count — is known, avoiding rehash growth).
pub fn fx_map_with_capacity<K, V>(capacity: usize) -> FxHashMap<K, V> {
    HashMap::with_capacity_and_hasher(capacity, FxBuildHasher)
}

/// An empty [`FxHashSet`].
pub fn fx_set<T>() -> FxHashSet<T> {
    HashSet::with_hasher(FxBuildHasher)
}

/// An [`FxHashSet`] pre-sized for `capacity` entries.
pub fn fx_set_with_capacity<T>(capacity: usize) -> FxHashSet<T> {
    HashSet::with_capacity_and_hasher(capacity, FxBuildHasher)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(x: &T) -> u64 {
        FxBuildHasher.hash_one(x)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
        assert_eq!(hash_of(&(1u32, "x".to_string())), hash_of(&(1u32, "x".to_string())));
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        let hashes: FxHashSet<u64> = (0..10_000u64).map(|i| hash_of(&i)).collect();
        assert!(hashes.len() > 9_990, "near-perfect distribution on sequential keys");
    }

    #[test]
    fn string_tails_are_distinguished() {
        // The partial-word path must not ignore trailing bytes.
        assert_ne!(hash_of(&"abcdefghi"), hash_of(&"abcdefghj"));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
    }

    #[test]
    fn map_and_set_work_as_usual() {
        let mut m = fx_map_with_capacity(4);
        m.insert("k", 1);
        *m.entry("k").or_insert(0) += 1;
        assert_eq!(m["k"], 2);
        let mut s = fx_set();
        assert!(s.insert(7u8));
        assert!(!s.insert(7u8));
    }

    #[test]
    fn iteration_order_is_reproducible() {
        let build = || {
            let mut m = fx_map();
            for i in 0..100u64 {
                m.insert(i, ());
            }
            m.into_keys().collect::<Vec<_>>()
        };
        assert_eq!(build(), build(), "no random state: same insertions, same order");
    }
}
