//! Cluster and cost-model configuration for the simulated dataflow engine.
//!
//! The engine executes programs for real (in-process, multi-threaded) while a
//! *simulated clock* accounts for what the same program would cost on a
//! Spark-like cluster: job-launch overhead, per-task scheduling and launch
//! overheads, per-record processing cost, shuffle network transfer, disk
//! spilling, and per-worker memory limits. The defaults below model the
//! cluster used in the paper's evaluation (Sec. 9.1): 25 machines, two 8-core
//! CPUs each, 22 GB of Spark memory per machine, and a 1 Gb network.

use crate::sim::SimTime;

/// Size units, for readability of configs.
pub const KB: u64 = 1 << 10;
/// One mebibyte.
pub const MB: u64 = 1 << 20;
/// One gibibyte.
pub const GB: u64 = 1 << 30;

/// Cost-model constants. All durations are simulated time.
///
/// The defaults are calibrated so that the *relative* effects reported by the
/// paper (job-launch overhead dominating inner-parallel, task scheduling
/// overhead growing with cluster size, spilling, OOM cliffs) reproduce at the
/// scaled-down data sizes used in this repository. Absolute values are in the
/// right ballpark for Spark 3.0 but are not calibrated against real hardware.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Driver-side overhead of launching one job (DAG scheduling, RPC
    /// round-trips). Charged once per action.
    pub job_launch: SimTime,
    /// Executor-side overhead of launching one task (deserialize closure,
    /// fetch task binary). Charged per task inside the simulated LPT schedule.
    pub task_launch: SimTime,
    /// Driver-side *serial* scheduling cost per task. This is the component
    /// that makes very high task counts expensive regardless of cluster size
    /// (Ousterhout et al., "The case for tiny tasks"; paper Sec. 9.3).
    pub task_schedule: SimTime,
    /// CPU cost per record, fixed component.
    pub per_record: SimTime,
    /// CPU cost per byte of record payload (covers (de)serialization and
    /// per-byte processing of large records).
    pub per_byte: SimTime,
    /// Extra CPU cost per record crossing a shuffle boundary (hash, serialize,
    /// write shuffle file).
    pub per_shuffle_record: SimTime,
    /// Expansion factor from on-disk record bytes to in-memory working-set
    /// bytes for materializing operators (group_by_key, hash-join build,
    /// distinct sets). Models deserialized JVM object overhead plus the
    /// intermediate structures a UDF builds over a materialized group.
    pub materialize_factor: f64,
    /// Fraction of a worker's memory usable by a stage's concurrently
    /// resident tasks before it starts spilling to disk.
    pub spill_fraction: f64,
    /// Fraction of a worker's memory beyond which a stage fails with a
    /// simulated OutOfMemory instead of spilling.
    pub oom_fraction: f64,
    /// Aggregate disk bandwidth per machine, bytes/sec (for spill I/O).
    pub disk_bandwidth: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            job_launch: SimTime::from_millis(300),
            task_launch: SimTime::from_millis(5),
            task_schedule: SimTime::from_micros(200),
            per_record: SimTime::from_nanos(60),
            per_byte: SimTime::from_nanos(2),
            per_shuffle_record: SimTime::from_nanos(150),
            materialize_factor: 3.0,
            spill_fraction: 0.35,
            oom_fraction: 1.0,
            disk_bandwidth: 400 * MB,
        }
    }
}

/// Fault-injection model: simulated task failures with retries (Spark
/// retries a failed task up to `spark.task.maxFailures` times before failing
/// the job) and simulated whole-machine losses recovered by lineage replay
/// (see `docs/FAULTS.md`). Failures are deterministic per
/// (seed, stage, task, attempt) — and machine losses per
/// (seed, stage, machine, attempt) — so experiments are reproducible.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Probability that any given task attempt fails.
    pub task_failure_rate: f64,
    /// Attempts per task before the job fails (first run + retries).
    pub max_attempts: u32,
    /// Determinism seed.
    pub seed: u64,
    /// Probability that any given machine is lost at any given stage
    /// boundary. A lost machine invalidates the materialized partitions
    /// placed on it; the engine replays their lineage on the surviving
    /// cluster, charging the recomputation to the simulated clock.
    pub machine_loss_rate: f64,
    /// Consecutive losses of the same machine tolerated at one stage
    /// boundary before the job fails with
    /// [`EngineError::RecoveryFailed`](crate::EngineError::RecoveryFailed).
    pub max_recovery_attempts: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            task_failure_rate: 0.0,
            max_attempts: 4,
            seed: 0,
            machine_loss_rate: 0.0,
            max_recovery_attempts: 3,
        }
    }
}

/// Simulated cluster shape plus the cost model.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of worker machines.
    pub machines: usize,
    /// Cores (task slots) per machine.
    pub cores_per_machine: usize,
    /// Memory dedicated to the engine per machine, in bytes.
    pub memory_per_machine: u64,
    /// Network bandwidth per machine, bytes/sec. Aggregate shuffle bandwidth
    /// is `machines * network_bandwidth`.
    pub network_bandwidth: u64,
    /// Default number of partitions for sources and shuffles. The paper's
    /// setup uses 3x the total core count (Sec. 9.1).
    pub default_parallelism: usize,
    /// Cost-model constants.
    pub costs: CostModel,
    /// Fault injection (no failures by default).
    pub faults: FaultConfig,
    /// Collect structured [`EngineEvent`](crate::EngineEvent)s (job, stage,
    /// shuffle, broadcast, spill, collect, memory peaks) during execution.
    /// Off by default: when off, each would-be event costs a single relaxed
    /// atomic load, keeping untraced runs within measurement noise. Can also
    /// be toggled later via [`Engine::enable_tracing`](crate::Engine::enable_tracing).
    pub trace_events: bool,
    /// Collapse maximal runs of narrow (shuffle-free) operators into a
    /// single per-partition pass at evaluation time (on by default). Fusion
    /// is *sim-transparent* — simulated time and [`StatsSnapshot`] counters
    /// are bit-identical either way (see `DESIGN.md`, "Narrow-stage
    /// fusion") — so this switch exists purely as a wall-clock A/B
    /// escape hatch for benchmarks and tests.
    ///
    /// [`StatsSnapshot`]: crate::StatsSnapshot
    pub fuse_narrow: bool,
}

impl ClusterConfig {
    /// The 25-machine cluster from the paper's main evaluation (Sec. 9.1):
    /// two 8-core AMD Opteron 6128 per machine, 22 GB Spark memory, 1 Gb
    /// network, parallelism 3x total cores.
    pub fn paper_small_cluster() -> Self {
        Self::with_machines(25)
    }

    /// The 36-machine cluster from the larger-dataset experiment (Sec. 9.7):
    /// two Xeon E5-2630V4 per machine (40 threads), 100 GB per worker.
    pub fn paper_large_cluster() -> Self {
        ClusterConfig {
            machines: 36,
            cores_per_machine: 40,
            memory_per_machine: 100 * GB,
            network_bandwidth: 10 * 125 * MB,
            default_parallelism: 3 * 36 * 40,
            costs: CostModel::default(),
            faults: FaultConfig::default(),
            trace_events: false,
            fuse_narrow: true,
        }
    }

    /// A paper-style cluster with a configurable machine count (for the
    /// scale-out experiment, Sec. 9.3).
    pub fn with_machines(machines: usize) -> Self {
        let cores = 16;
        ClusterConfig {
            machines,
            cores_per_machine: cores,
            memory_per_machine: 22 * GB,
            network_bandwidth: 125 * MB, // 1 Gb/s
            default_parallelism: 3 * machines * cores,
            costs: CostModel::default(),
            faults: FaultConfig::default(),
            trace_events: false,
            fuse_narrow: true,
        }
    }

    /// A tiny configuration for unit tests: fast to execute for real, few
    /// partitions, permissive memory.
    pub fn local_test() -> Self {
        ClusterConfig {
            machines: 2,
            cores_per_machine: 4,
            memory_per_machine: 4 * GB,
            network_bandwidth: GB,
            default_parallelism: 8,
            costs: CostModel::default(),
            faults: FaultConfig::default(),
            trace_events: false,
            fuse_narrow: true,
        }
    }

    /// Total core (task-slot) count across the cluster.
    pub fn total_cores(&self) -> usize {
        self.machines * self.cores_per_machine
    }

    /// Aggregate network bandwidth across the cluster, bytes/sec.
    pub fn aggregate_bandwidth(&self) -> u64 {
        self.network_bandwidth * self.machines as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_core_count_matches_setup() {
        let c = ClusterConfig::paper_small_cluster();
        assert_eq!(c.total_cores(), 25 * 16);
        assert_eq!(c.default_parallelism, 3 * 400);
    }

    #[test]
    fn large_cluster_has_more_threads() {
        let c = ClusterConfig::paper_large_cluster();
        assert_eq!(c.total_cores(), 36 * 40);
        assert!(c.memory_per_machine > ClusterConfig::paper_small_cluster().memory_per_machine);
    }

    #[test]
    fn aggregate_bandwidth_scales_with_machines() {
        let a = ClusterConfig::with_machines(5);
        let b = ClusterConfig::with_machines(10);
        assert_eq!(b.aggregate_bandwidth(), 2 * a.aggregate_bandwidth());
    }
}
