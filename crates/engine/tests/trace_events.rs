//! End-to-end checks of the structured tracing surface: a job with a known
//! plan must produce the expected event sequence, and the aggregate of the
//! event stream must reconcile with the engine's own [`StatsSnapshot`]
//! counters (`docs/OBSERVABILITY.md` documents this contract).

use matryoshka_engine::{ClusterConfig, Engine, EngineEvent};

fn traced_engine() -> Engine {
    let engine = Engine::new(ClusterConfig::local_test());
    engine.enable_tracing();
    engine
}

/// One shuffle plan: parallelize -> map -> reduce_by_key -> count.
#[test]
fn shuffle_job_produces_expected_event_sequence() {
    let engine = traced_engine();
    let total = engine
        .parallelize((0..1000u64).collect::<Vec<_>>(), 4)
        .map(|i| (i % 7, 1u64))
        .reduce_by_key(|a, b| a + b)
        .count()
        .unwrap();
    assert_eq!(total, 7);

    let events = engine.events();
    assert!(!events.is_empty());

    // The job brackets everything: first event is the JobStart of the
    // `count` action, last is its successful JobEnd.
    match &events[0] {
        EngineEvent::JobStart { job, action, .. } => {
            assert_eq!(*job, 0);
            assert_eq!(*action, "count");
        }
        other => panic!("first event should be JobStart, got {other:?}"),
    }
    match events.last().unwrap() {
        EngineEvent::JobEnd { job, ok, .. } => {
            assert_eq!(*job, 0);
            assert!(*ok);
        }
        other => panic!("last event should be JobEnd, got {other:?}"),
    }

    // Exactly one shuffle, attributed to reduce_by_key, with positive volume.
    let shuffles: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            EngineEvent::Shuffle { operator, records, bytes, .. } => {
                Some((*operator, *records, *bytes))
            }
            _ => None,
        })
        .collect();
    assert_eq!(shuffles.len(), 1, "one shuffle expected, got {shuffles:?}");
    assert_eq!(shuffles[0].0, "reduce_by_key");
    assert!(shuffles[0].1 > 0 && shuffles[0].2 > 0);

    // Narrow map compute is attributed to the operator being evaluated, as
    // an unscheduled (pipelined) stage charge.
    assert!(events
        .iter()
        .any(|e| matches!(e, EngineEvent::Stage { operator: "map", scheduled: false, .. })));
    // The shuffle read side is a real scheduled stage.
    assert!(events.iter().any(|e| matches!(e, EngineEvent::Stage { scheduled: true, .. })));

    // No broadcast in this plan.
    assert!(!events.iter().any(|e| matches!(e, EngineEvent::Broadcast { .. })));

    // Event times are monotone within each interval.
    for e in &events {
        match e {
            EngineEvent::Stage { start, end, .. }
            | EngineEvent::Shuffle { start, end, .. }
            | EngineEvent::Broadcast { start, end, .. }
            | EngineEvent::Spill { start, end, .. }
            | EngineEvent::Collect { start, end, .. } => {
                assert!(start <= end, "interval runs backwards: {e:?}")
            }
            _ => {}
        }
    }
}

/// Broadcast-join plan: the small side is collected + broadcast, never
/// shuffled.
#[test]
fn broadcast_join_job_traces_broadcast_not_shuffle() {
    let engine = traced_engine();
    let big = engine.parallelize((0..512u64).map(|i| (i % 16, i)).collect::<Vec<_>>(), 4);
    let small = engine.parallelize((0..16u64).map(|i| (i, i * 100)).collect::<Vec<_>>(), 1);
    let joined = big.broadcast_join(&small).count().unwrap();
    assert_eq!(joined, 512);

    let events = engine.events();
    let broadcasts: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            EngineEvent::Broadcast { operator, bytes, .. } => Some((*operator, *bytes)),
            _ => None,
        })
        .collect();
    assert_eq!(broadcasts.len(), 1, "one broadcast expected, got {broadcasts:?}");
    assert_eq!(broadcasts[0].0, "broadcast_join");
    assert!(broadcasts[0].1 > 0);

    // Collecting the small side to the driver is traced too.
    assert!(events.iter().any(|e| matches!(e, EngineEvent::Collect { records: 16, .. })));
    // The probe side is never shuffled.
    assert!(!events.iter().any(|e| matches!(e, EngineEvent::Shuffle { .. })));
}

/// A fused narrow chain emits one StageFused event carrying the composite
/// op list, and the per-op Stage charges still appear under each original
/// operator name (the sim-transparency contract).
#[test]
fn fused_chain_traces_a_stage_fused_event() {
    let engine = traced_engine();
    // Bind the tail before the action so the chain is exclusively owned at
    // eval time (see DESIGN.md "Narrow-stage fusion").
    let tail = engine
        .parallelize((0..1000u64).collect::<Vec<_>>(), 4)
        .map(|i| i * 2)
        .filter(|i| i % 3 != 0);
    assert_eq!(tail.count().unwrap(), 666);

    let events = engine.events();
    let fused: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            EngineEvent::StageFused {
                ops, ops_fused, intermediates_elided, partitions, ..
            } => Some((*ops, *ops_fused, *intermediates_elided, *partitions)),
            _ => None,
        })
        .collect();
    assert_eq!(fused, [("fused(map|filter)", 2, 1, 4)], "events: {events:?}");
    // The replayed per-op charges keep their original attribution.
    assert!(events
        .iter()
        .any(|e| matches!(e, EngineEvent::Stage { operator: "map", scheduled: false, .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, EngineEvent::Stage { operator: "filter", scheduled: false, .. })));
    // And the summary aggregates the fusion counters.
    let summary = engine.trace_summary();
    let stats = engine.stats();
    assert_eq!(summary.stages_fused, stats.stages_fused);
    assert_eq!(summary.intermediates_elided, stats.intermediates_elided);
    assert_eq!(stats.stages_fused, 1);
    assert_eq!(stats.intermediates_elided, 1);
}

/// The aggregate of the event stream must match the engine's counters.
#[test]
fn trace_summary_reconciles_with_stats_snapshot() {
    let engine = traced_engine();
    engine
        .parallelize((0..2000u64).collect::<Vec<_>>(), 8)
        .map(|i| (i % 13, *i))
        .reduce_by_key(|a, b| a + b)
        .count()
        .unwrap();
    let small = engine.parallelize((0..13u64).map(|i| (i, ())).collect::<Vec<_>>(), 1);
    engine
        .parallelize((0..100u64).map(|i| (i % 13, i)).collect::<Vec<_>>(), 4)
        .broadcast_join(&small)
        .count()
        .unwrap();

    let stats = engine.stats();
    let summary = engine.trace_summary();
    assert_eq!(summary.jobs, stats.jobs);
    assert_eq!(summary.jobs_failed, 0);
    assert_eq!(summary.stages, stats.stages);
    assert_eq!(summary.tasks, stats.tasks);
    assert_eq!(summary.shuffle_bytes, stats.shuffle_bytes);
    assert_eq!(summary.spill_bytes, stats.spill_bytes);
    assert_eq!(summary.broadcast_bytes, stats.broadcast_bytes);
    assert_eq!(summary.peak_memory_bytes, stats.peak_memory_bytes);
}

/// With tracing off (the default) no events are recorded, but the engine's
/// statistics still accumulate.
#[test]
fn tracing_off_records_no_events_but_stats_still_accumulate() {
    let engine = Engine::new(ClusterConfig::local_test());
    assert!(!engine.tracing_enabled());
    engine
        .parallelize((0..100u64).map(|i| (i % 5, i)).collect::<Vec<_>>(), 4)
        .reduce_by_key(|a, b| a + b)
        .count()
        .unwrap();
    assert!(engine.events().is_empty());
    let stats = engine.stats();
    assert_eq!(stats.jobs, 1);
    assert!(stats.shuffle_bytes > 0);
}

/// The exporters produce well-formed output for a real run.
#[test]
fn exports_cover_a_real_run() {
    let engine = traced_engine();
    engine
        .parallelize((0..200u64).map(|i| (i % 3, i)).collect::<Vec<_>>(), 4)
        .reduce_by_key(|a, b| a + b)
        .collect()
        .unwrap();

    let json = engine.trace_json();
    assert!(json.contains("\"events\""));
    assert!(json.contains("\"decisions\""));
    assert!(json.contains("\"summary\""));
    assert!(json.contains("\"shuffle\""));
    assert_eq!(json.matches('{').count(), json.matches('}').count());

    // The chrome trace is the JSON-array flavor of the Trace Event Format.
    let chrome = engine.chrome_trace();
    assert!(chrome.trim_start().starts_with('['));
    assert!(chrome.trim_end().ends_with(']'));
    assert!(chrome.contains("\"ph\":\"X\""));
    assert!(chrome.contains("job 0: collect"));
}
