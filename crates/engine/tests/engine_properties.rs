//! Property-based tests of the engine's operators against driver-side
//! oracles: for arbitrary inputs, every distributed operator must compute
//! exactly what the obvious sequential code computes, and the simulator's
//! accounting must satisfy its structural invariants (monotonic clock,
//! memoized single-charging, trace/topology consistency).

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use matryoshka_engine::{ClusterConfig, Engine};

fn engine() -> Engine {
    Engine::new(ClusterConfig::local_test())
}

fn pairs() -> impl Strategy<Value = Vec<(u8, i64)>> {
    proptest::collection::vec(((0u8..12), (-50i64..50)), 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn map_filter_flat_map_match_iterators(data in proptest::collection::vec(-100i64..100, 0..300), parts in 1usize..9) {
        let e = engine();
        let b = e.parallelize(data.clone(), parts);
        let got = b.map(|x| x * 2).filter(|x| *x >= 0).flat_map(|x| [*x, *x + 1]).collect().unwrap();
        let expect: Vec<i64> = data
            .iter()
            .map(|x| x * 2)
            .filter(|x| *x >= 0)
            .flat_map(|x| [x, x + 1])
            .collect();
        // Order within partitions is preserved; across partitions it is the
        // concatenation order, which parallelize also preserves.
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn reduce_by_key_matches_hashmap(data in pairs(), parts in 1usize..9) {
        let e = engine();
        let expect: HashMap<u8, i64> = data.iter().fold(HashMap::new(), |mut m, (k, v)| {
            *m.entry(*k).or_insert(0) += v;
            m
        });
        let got = e.parallelize(data, parts).reduce_by_key(|a, b| a + b).collect().unwrap();
        prop_assert_eq!(got.len(), expect.len());
        for (k, v) in got {
            prop_assert_eq!(expect.get(&k), Some(&v));
        }
    }

    #[test]
    fn group_by_key_partitions_nothing_away(data in pairs()) {
        let e = engine();
        let groups = e.parallelize(data.clone(), 5).group_by_key().collect().unwrap();
        let total: usize = groups.iter().map(|(_, vs)| vs.len()).sum();
        prop_assert_eq!(total, data.len());
        let keys: HashSet<u8> = data.iter().map(|(k, _)| *k).collect();
        prop_assert_eq!(groups.len(), keys.len());
    }

    #[test]
    fn join_matches_nested_loops(l in pairs(), r in pairs()) {
        let e = engine();
        let mut expect: Vec<(u8, (i64, i64))> = Vec::new();
        for (k, v) in &l {
            for (k2, w) in &r {
                if k == k2 {
                    expect.push((*k, (*v, *w)));
                }
            }
        }
        expect.sort();
        let mut got = e
            .parallelize(l.clone(), 4)
            .join(&e.parallelize(r.clone(), 3))
            .collect()
            .unwrap();
        got.sort();
        prop_assert_eq!(&got, &expect);

        // Broadcast join agrees with repartition join.
        let e2 = engine();
        let mut got2 = e2
            .parallelize(l, 4)
            .broadcast_join(&e2.parallelize(r, 3))
            .collect()
            .unwrap();
        got2.sort();
        prop_assert_eq!(got2, expect);
    }

    #[test]
    fn distinct_matches_hashset(data in proptest::collection::vec(0u16..64, 0..300)) {
        let e = engine();
        let got: HashSet<u16> = e.parallelize(data.clone(), 6).distinct().collect().unwrap().into_iter().collect();
        let expect: HashSet<u16> = data.into_iter().collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn subtract_and_intersection_match_sets(
        a in proptest::collection::vec(0u16..40, 0..120),
        b in proptest::collection::vec(0u16..40, 0..120),
    ) {
        let e = engine();
        let ba = e.parallelize(a.clone(), 4);
        let bb = e.parallelize(b.clone(), 3);
        let bset: HashSet<u16> = b.iter().copied().collect();

        let mut sub = ba.subtract(&bb).collect().unwrap();
        sub.sort_unstable();
        let mut expect_sub: Vec<u16> = a.iter().copied().filter(|x| !bset.contains(x)).collect();
        expect_sub.sort_unstable();
        prop_assert_eq!(sub, expect_sub);

        let inter: HashSet<u16> = ba.intersection(&bb).collect().unwrap().into_iter().collect();
        let aset: HashSet<u16> = a.into_iter().collect();
        let expect_inter: HashSet<u16> = aset.intersection(&bset).copied().collect();
        prop_assert_eq!(inter, expect_inter);
    }

    #[test]
    fn sort_by_is_a_permutation_in_order(data in proptest::collection::vec(-1000i64..1000, 0..300), parts in 1usize..7) {
        let e = engine();
        let got = e.parallelize(data.clone(), 5).sort_by(parts, |x| *x).collect().unwrap();
        let mut expect = data;
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn actions_agree_with_iterators(data in proptest::collection::vec(0u64..1000, 0..200)) {
        let e = engine();
        let b = e.parallelize(data.clone(), 4);
        prop_assert_eq!(b.count().unwrap(), data.len() as u64);
        prop_assert_eq!(b.fold(0u64, |a, x| a + x).unwrap(), data.iter().sum::<u64>());
        prop_assert_eq!(b.reduce(|a, x| *a.max(x)).unwrap(), data.iter().copied().max());
        prop_assert_eq!(b.is_empty().unwrap(), data.is_empty());
    }

    #[test]
    fn union_is_multiset_concatenation(a in pairs(), b in pairs()) {
        let e = engine();
        let mut got = e.parallelize(a.clone(), 3).union(&e.parallelize(b.clone(), 2)).collect().unwrap();
        got.sort();
        let mut expect = a;
        expect.extend(b);
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn simulated_clock_is_monotone_and_trace_is_topological(data in pairs()) {
        let e = engine();
        let t0 = e.sim_time();
        let b = e.parallelize(data, 4);
        let grouped = b.map(|(k, v)| (*k, v * 2)).reduce_by_key(|a, b| a + b);
        grouped.count().unwrap();
        let t1 = e.sim_time();
        prop_assert!(t1 >= t0);
        // Trace: parents complete before children; timestamps non-decreasing.
        let trace = e.trace();
        prop_assert!(!trace.is_empty());
        for w in trace.windows(2) {
            prop_assert!(w[0].completed_at <= w[1].completed_at);
        }
        let names: Vec<&str> = trace.iter().map(|ev| ev.op).collect();
        let src = names.iter().position(|n| *n == "parallelize").unwrap();
        let red = names.iter().position(|n| *n == "reduce_by_key").unwrap();
        prop_assert!(src < red, "source must evaluate before the shuffle: {names:?}");
    }

    #[test]
    fn memoization_never_recharges(data in pairs()) {
        let e = engine();
        let b = e.parallelize(data, 4).map(|(k, v)| (*k, v + 1)).reduce_by_key(|a, b| a + b);
        b.count().unwrap();
        let t1 = e.sim_time();
        let s1 = e.stats();
        b.count().unwrap();
        let d_time = e.sim_time() - t1;
        let d = e.stats().since(&s1);
        prop_assert_eq!(d.stages, 0, "no stage re-runs on a memoized bag");
        prop_assert_eq!(d_time, e.config().costs.job_launch, "second action costs one job launch");
    }

    #[test]
    fn aggregate_by_key_matches_manual(data in pairs()) {
        let e = engine();
        let got = e
            .parallelize(data.clone(), 4)
            .aggregate_by_key((0i64, 0u64), |z, v| (z.0 + v, z.1 + 1), |a, b| (a.0 + b.0, a.1 + b.1))
            .collect()
            .unwrap();
        let mut expect: HashMap<u8, (i64, u64)> = HashMap::new();
        for (k, v) in &data {
            let ent = expect.entry(*k).or_insert((0, 0));
            ent.0 += v;
            ent.1 += 1;
        }
        prop_assert_eq!(got.len(), expect.len());
        for (k, acc) in got {
            prop_assert_eq!(expect.get(&k), Some(&acc));
        }
    }
}
