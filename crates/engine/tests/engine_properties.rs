//! Property-style tests of the engine's operators against driver-side
//! oracles: for pseudo-randomly generated inputs, every distributed operator
//! must compute exactly what the obvious sequential code computes, and the
//! simulator's accounting must satisfy its structural invariants (monotonic
//! clock, memoized single-charging, trace/topology consistency).
//!
//! Inputs are drawn from a seeded SplitMix64 stream (many seeds per
//! property), so runs are deterministic and reproducible while still
//! covering varied shapes: empty inputs, single elements, colliding keys,
//! and different partition counts.

use std::collections::{HashMap, HashSet};

use matryoshka_engine::{ClusterConfig, Engine};

fn engine() -> Engine {
    Engine::new(ClusterConfig::local_test())
}

/// Deterministic 64-bit generator (SplitMix64).
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
    /// A length in `0..max` that is often small (empty and tiny inputs are
    /// the classic edge cases).
    fn len(&mut self, max: u64) -> usize {
        match self.below(8) {
            0 => 0,
            1 => 1,
            _ => self.below(max) as usize,
        }
    }
    fn pairs(&mut self, max_len: u64) -> Vec<(u8, i64)> {
        let n = self.len(max_len);
        (0..n).map(|_| ((self.below(12)) as u8, self.below(100) as i64 - 50)).collect()
    }
}

const SEEDS: u64 = 24;

#[test]
fn map_filter_flat_map_match_iterators() {
    for seed in 0..SEEDS {
        let mut g = Gen::new(seed);
        let data: Vec<i64> = (0..g.len(300)).map(|_| g.below(200) as i64 - 100).collect();
        let parts = 1 + g.below(8) as usize;
        let e = engine();
        let b = e.parallelize(data.clone(), parts);
        let got =
            b.map(|x| x * 2).filter(|x| *x >= 0).flat_map(|x| [*x, *x + 1]).collect().unwrap();
        let expect: Vec<i64> =
            data.iter().map(|x| x * 2).filter(|x| *x >= 0).flat_map(|x| [x, x + 1]).collect();
        // Order within partitions is preserved; across partitions it is the
        // concatenation order, which parallelize also preserves.
        assert_eq!(got, expect, "seed {seed}");
    }
}

#[test]
fn reduce_by_key_matches_hashmap() {
    for seed in 0..SEEDS {
        let mut g = Gen::new(seed ^ 0xA1);
        let data = g.pairs(200);
        let parts = 1 + g.below(8) as usize;
        let e = engine();
        let expect: HashMap<u8, i64> = data.iter().fold(HashMap::new(), |mut m, (k, v)| {
            *m.entry(*k).or_insert(0) += v;
            m
        });
        let got = e.parallelize(data, parts).reduce_by_key(|a, b| a + b).collect().unwrap();
        assert_eq!(got.len(), expect.len(), "seed {seed}");
        for (k, v) in got {
            assert_eq!(expect.get(&k), Some(&v), "seed {seed}");
        }
    }
}

#[test]
fn group_by_key_partitions_nothing_away() {
    for seed in 0..SEEDS {
        let mut g = Gen::new(seed ^ 0xB2);
        let data = g.pairs(200);
        let e = engine();
        let groups = e.parallelize(data.clone(), 5).group_by_key().collect().unwrap();
        let total: usize = groups.iter().map(|(_, vs)| vs.len()).sum();
        assert_eq!(total, data.len(), "seed {seed}");
        let keys: HashSet<u8> = data.iter().map(|(k, _)| *k).collect();
        assert_eq!(groups.len(), keys.len(), "seed {seed}");
    }
}

#[test]
fn join_matches_nested_loops() {
    for seed in 0..SEEDS {
        let mut g = Gen::new(seed ^ 0xC3);
        let l = g.pairs(200);
        let r = g.pairs(200);
        let e = engine();
        let mut expect: Vec<(u8, (i64, i64))> = Vec::new();
        for (k, v) in &l {
            for (k2, w) in &r {
                if k == k2 {
                    expect.push((*k, (*v, *w)));
                }
            }
        }
        expect.sort();
        let mut got =
            e.parallelize(l.clone(), 4).join(&e.parallelize(r.clone(), 3)).collect().unwrap();
        got.sort();
        assert_eq!(&got, &expect, "seed {seed}");

        // Broadcast join agrees with repartition join.
        let e2 = engine();
        let mut got2 =
            e2.parallelize(l, 4).broadcast_join(&e2.parallelize(r, 3)).collect().unwrap();
        got2.sort();
        assert_eq!(got2, expect, "seed {seed}");
    }
}

#[test]
fn distinct_matches_hashset() {
    for seed in 0..SEEDS {
        let mut g = Gen::new(seed ^ 0xD4);
        let data: Vec<u16> = (0..g.len(300)).map(|_| g.below(64) as u16).collect();
        let e = engine();
        let got: HashSet<u16> =
            e.parallelize(data.clone(), 6).distinct().collect().unwrap().into_iter().collect();
        let expect: HashSet<u16> = data.into_iter().collect();
        assert_eq!(got, expect, "seed {seed}");
    }
}

#[test]
fn subtract_and_intersection_match_sets() {
    for seed in 0..SEEDS {
        let mut g = Gen::new(seed ^ 0xE5);
        let a: Vec<u16> = (0..g.len(120)).map(|_| g.below(40) as u16).collect();
        let b: Vec<u16> = (0..g.len(120)).map(|_| g.below(40) as u16).collect();
        let e = engine();
        let ba = e.parallelize(a.clone(), 4);
        let bb = e.parallelize(b.clone(), 3);
        let bset: HashSet<u16> = b.iter().copied().collect();

        let mut sub = ba.subtract(&bb).collect().unwrap();
        sub.sort_unstable();
        let mut expect_sub: Vec<u16> = a.iter().copied().filter(|x| !bset.contains(x)).collect();
        expect_sub.sort_unstable();
        assert_eq!(sub, expect_sub, "seed {seed}");

        let inter: HashSet<u16> = ba.intersection(&bb).collect().unwrap().into_iter().collect();
        let aset: HashSet<u16> = a.into_iter().collect();
        let expect_inter: HashSet<u16> = aset.intersection(&bset).copied().collect();
        assert_eq!(inter, expect_inter, "seed {seed}");
    }
}

#[test]
fn sort_by_is_a_permutation_in_order() {
    for seed in 0..SEEDS {
        let mut g = Gen::new(seed ^ 0xF6);
        let data: Vec<i64> = (0..g.len(300)).map(|_| g.below(2000) as i64 - 1000).collect();
        let parts = 1 + g.below(6) as usize;
        let e = engine();
        let got = e.parallelize(data.clone(), 5).sort_by(parts, |x| *x).collect().unwrap();
        let mut expect = data;
        expect.sort();
        assert_eq!(got, expect, "seed {seed}");
    }
}

#[test]
fn actions_agree_with_iterators() {
    for seed in 0..SEEDS {
        let mut g = Gen::new(seed ^ 0x17);
        let data: Vec<u64> = (0..g.len(200)).map(|_| g.below(1000)).collect();
        let e = engine();
        let b = e.parallelize(data.clone(), 4);
        assert_eq!(b.count().unwrap(), data.len() as u64, "seed {seed}");
        assert_eq!(b.fold(0u64, |a, x| a + x).unwrap(), data.iter().sum::<u64>(), "seed {seed}");
        assert_eq!(b.reduce(|a, x| *a.max(x)).unwrap(), data.iter().copied().max(), "seed {seed}");
        assert_eq!(b.is_empty().unwrap(), data.is_empty(), "seed {seed}");
    }
}

#[test]
fn union_is_multiset_concatenation() {
    for seed in 0..SEEDS {
        let mut g = Gen::new(seed ^ 0x28);
        let a = g.pairs(200);
        let b = g.pairs(200);
        let e = engine();
        let mut got =
            e.parallelize(a.clone(), 3).union(&e.parallelize(b.clone(), 2)).collect().unwrap();
        got.sort();
        let mut expect = a;
        expect.extend(b);
        expect.sort();
        assert_eq!(got, expect, "seed {seed}");
    }
}

#[test]
fn simulated_clock_is_monotone_and_trace_is_topological() {
    for seed in 0..SEEDS {
        let mut g = Gen::new(seed ^ 0x39);
        let data = g.pairs(200);
        let e = engine();
        let t0 = e.sim_time();
        let b = e.parallelize(data, 4);
        let grouped = b.map(|(k, v)| (*k, v * 2)).reduce_by_key(|a, b| a + b);
        grouped.count().unwrap();
        let t1 = e.sim_time();
        assert!(t1 >= t0, "seed {seed}");
        // Trace: parents complete before children; timestamps non-decreasing.
        let trace = e.trace();
        assert!(!trace.is_empty(), "seed {seed}");
        for w in trace.windows(2) {
            assert!(w[0].completed_at <= w[1].completed_at, "seed {seed}");
        }
        let names: Vec<&str> = trace.iter().map(|ev| ev.op).collect();
        let src = names.iter().position(|n| *n == "parallelize").unwrap();
        let red = names.iter().position(|n| *n == "reduce_by_key").unwrap();
        assert!(src < red, "source must evaluate before the shuffle: {names:?}");
    }
}

#[test]
fn memoization_never_recharges() {
    for seed in 0..SEEDS {
        let mut g = Gen::new(seed ^ 0x4A);
        let data = g.pairs(200);
        let e = engine();
        let b = e.parallelize(data, 4).map(|(k, v)| (*k, v + 1)).reduce_by_key(|a, b| a + b);
        b.count().unwrap();
        let t1 = e.sim_time();
        let s1 = e.stats();
        b.count().unwrap();
        let d_time = e.sim_time() - t1;
        let d = e.stats().since(&s1);
        assert_eq!(d.stages, 0, "no stage re-runs on a memoized bag (seed {seed})");
        assert_eq!(
            d_time,
            e.config().costs.job_launch,
            "second action costs one job launch (seed {seed})"
        );
    }
}

#[test]
fn aggregate_by_key_matches_manual() {
    for seed in 0..SEEDS {
        let mut g = Gen::new(seed ^ 0x5B);
        let data = g.pairs(200);
        let e = engine();
        let got = e
            .parallelize(data.clone(), 4)
            .aggregate_by_key(
                (0i64, 0u64),
                |z, v| (z.0 + v, z.1 + 1),
                |a, b| (a.0 + b.0, a.1 + b.1),
            )
            .collect()
            .unwrap();
        let mut expect: HashMap<u8, (i64, u64)> = HashMap::new();
        for (k, v) in &data {
            let ent = expect.entry(*k).or_insert((0, 0));
            ent.0 += v;
            ent.1 += 1;
        }
        assert_eq!(got.len(), expect.len(), "seed {seed}");
        for (k, acc) in got {
            assert_eq!(expect.get(&k), Some(&acc), "seed {seed}");
        }
    }
}
