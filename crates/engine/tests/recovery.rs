//! Lineage-based recovery tests (see `docs/FAULTS.md`).
//!
//! The machine-loss fault model must be (a) deterministic per seed, (b)
//! invisible in results — programs execute for real, a loss only costs
//! simulated time — and (c) bounded by checkpoints: truncating lineage caps
//! how much recomputation one loss can cause. The golden fixture pins the
//! exact event sequence and simulated time of one seeded run; regenerate
//! with
//!
//! ```text
//! cargo test -p matryoshka-engine --test recovery -- --ignored --nocapture
//! ```

use matryoshka_engine::{Bag, ClusterConfig, Engine, EngineError, EngineEvent};

fn lossy_config(rate: f64, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::local_test();
    cfg.faults.machine_loss_rate = rate;
    cfg.faults.seed = seed;
    cfg
}

fn sorted<T: Ord>(mut v: Vec<T>) -> Vec<T> {
    v.sort();
    v
}

// The four golden workloads (mirroring tests/golden_sim.rs), returning
// their results so fault-free and faulty runs can be compared for value
// identity.

fn kmeans_step(e: &Engine) -> Vec<(u32, (u64, u64, u64))> {
    let points = e.generate(2_000, 8, |i| ((i % 100) as f64, ((i * 7) % 100) as f64));
    let centroids = [(10.0f64, 10.0f64), (50.0, 50.0), (90.0, 10.0), (25.0, 75.0)];
    let assigned = points.map(move |&(x, y)| {
        let mut best = 0u32;
        let mut best_d = f64::INFINITY;
        for (ci, &(cx, cy)) in centroids.iter().enumerate() {
            let d = (x - cx) * (x - cx) + (y - cy) * (y - cy);
            if d < best_d {
                best_d = d;
                best = ci as u32;
            }
        }
        (best, (x, y, 1u64))
    });
    let sums = assigned.reduce_by_key(|a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2));
    // Compare on integer centimils to keep the comparison Ord-friendly.
    sorted(
        sums.collect()
            .unwrap()
            .into_iter()
            .map(|(k, (x, y, n))| (k, ((x * 100.0) as u64, (y * 100.0) as u64, n)))
            .collect(),
    )
}

fn copartitioned_join_loop(e: &Engine) -> Vec<(u64, u64)> {
    let base = e.generate(2_000, 8, |i| (i, i)).partition_by_key(8);
    base.count().unwrap();
    let mut cur = base;
    for _ in 0..4 {
        let stepped = cur.map_values(|v| v + 1);
        cur = cur.join_into(8, &stepped).map_values(|&(a, b)| a + b);
        cur.count().unwrap();
    }
    sorted(cur.collect().unwrap())
}

fn distinct_program(e: &Engine) -> Vec<u64> {
    let b = e.generate(10_000, 8, |i| (i.wrapping_mul(2_654_435_761)) % 4_096);
    sorted(b.distinct_into(6).collect().unwrap())
}

fn shuffle_heavy(e: &Engine) -> Vec<(u64, (u64, u64))> {
    let l = e.generate(5_000, 8, |i| (i % 97, i));
    let agg = l.reduce_by_key(|a, b| a + b);
    let r = e.generate(500, 4, |i| (i % 97, i * 3));
    let joined = sorted(agg.join(&r).collect().unwrap());
    l.group_by_key().count().unwrap();
    joined
}

/// An iterative wide chain of configurable depth, optionally checkpointed
/// every iteration. Each `reduce_by_key` into a fresh partition count forces
/// a real shuffle (a stage-starting charge), growing lineage one stage per
/// iteration.
fn deep_chain(e: &Engine, depth: usize, checkpoint_each: bool) -> Vec<(u64, u64)> {
    let mut b: Bag<(u64, u64)> = e.generate(2_000, 8, |i| (i % 128, 1));
    for i in 0..depth {
        let parts = if i % 2 == 0 { 8 } else { 6 };
        b = b.reduce_by_key_into(parts, |a, c| a + c);
        if checkpoint_each {
            b = b.checkpoint();
        }
    }
    sorted(b.collect().unwrap())
}

#[test]
fn machine_loss_is_deterministic_and_costly() {
    let run = || {
        let e = Engine::new(lossy_config(0.2, 7));
        copartitioned_join_loop(&e);
        (e.sim_time(), e.stats())
    };
    let (t1, s1) = run();
    let (t2, s2) = run();
    assert_eq!(t1, t2, "machine loss must be deterministic per seed");
    assert_eq!(s1, s2);
    assert!(s1.partitions_lost > 0, "rate 0.2 over this chain must lose partitions");
    assert!(s1.recompute_nanos > 0, "losses must charge lineage replay time");

    let baseline = {
        let e = Engine::new(ClusterConfig::local_test());
        copartitioned_join_loop(&e);
        e.sim_time()
    };
    assert!(t1 > baseline, "recovery must cost simulated time over a fault-free run");
}

#[test]
fn results_are_value_identical_under_machine_loss() {
    // Machine loss invalidates simulated placement, never real data: every
    // workload's output must match its fault-free run bit for bit while the
    // fault counters prove losses actually happened.
    let lost_total: u64 = [
        {
            let a = kmeans_step(&Engine::new(ClusterConfig::local_test()));
            let e = Engine::new(lossy_config(0.3, 11));
            assert_eq!(a, kmeans_step(&e), "kmeans results changed under loss");
            e.stats().partitions_lost
        },
        {
            let a = copartitioned_join_loop(&Engine::new(ClusterConfig::local_test()));
            let e = Engine::new(lossy_config(0.3, 11));
            assert_eq!(a, copartitioned_join_loop(&e), "join-loop results changed under loss");
            e.stats().partitions_lost
        },
        {
            let a = distinct_program(&Engine::new(ClusterConfig::local_test()));
            let e = Engine::new(lossy_config(0.3, 11));
            assert_eq!(a, distinct_program(&e), "distinct results changed under loss");
            e.stats().partitions_lost
        },
        {
            let a = shuffle_heavy(&Engine::new(ClusterConfig::local_test()));
            let e = Engine::new(lossy_config(0.3, 11));
            assert_eq!(a, shuffle_heavy(&e), "shuffle-heavy results changed under loss");
            e.stats().partitions_lost
        },
    ]
    .iter()
    .sum();
    assert!(lost_total > 0, "rate 0.3 must lose partitions across the four workloads");
}

#[test]
fn recovery_exhaustion_fails_the_job_gracefully() {
    let mut cfg = lossy_config(0.999_999, 3);
    cfg.faults.max_recovery_attempts = 2;
    let e = Engine::new(cfg);
    let b = e.parallelize((0..100u64).collect::<Vec<_>>(), 4);
    match b.count() {
        Err(EngineError::RecoveryFailed { attempts, .. }) => assert_eq!(attempts, 2),
        other => panic!("expected RecoveryFailed, got {other:?}"),
    }
}

#[test]
fn checkpointing_bounds_recomputation() {
    let run = |depth: usize, checkpoint_each: bool| {
        let e = Engine::new(lossy_config(0.25, 0));
        let out = deep_chain(&e, depth, checkpoint_each);
        (out, e.stats())
    };
    // Deeper lineage means each loss replays more accumulated work.
    let (out3, plain3) = run(3, false);
    let (out9, plain9) = run(9, false);
    assert!(plain9.partitions_lost > 0, "rate 0.25 over 9 stages must lose partitions");
    assert!(
        plain9.recompute_nanos > plain3.recompute_nanos,
        "deeper lineage must recompute more: {} vs {}",
        plain9.recompute_nanos,
        plain3.recompute_nanos
    );
    // Checkpointing every iteration truncates lineage, so the per-loss
    // replay stays flat no matter how deep the chain gets.
    let (cout9, ckpt9) = run(9, true);
    assert_eq!(out9, cout9, "checkpointing must not change results");
    assert_eq!(out3.len(), 128, "chain reduces to the 128 keys");
    assert!(ckpt9.checkpoint_bytes > 0, "checkpoints must write modeled bytes");
    assert!(
        ckpt9.recompute_nanos < plain9.recompute_nanos,
        "truncated lineage must recompute less: {} vs {}",
        ckpt9.recompute_nanos,
        plain9.recompute_nanos
    );
}

/// The golden fixture: exact fault-event sequence and simulated time of one
/// seeded machine-loss run, so the recovery model itself is frozen the same
/// way `golden_sim.rs` freezes the fault-free cost model.
fn seeded_fixture_run() -> (u64, Vec<String>) {
    let mut cfg = lossy_config(0.2, 7);
    cfg.trace_events = true;
    let e = Engine::new(cfg);
    deep_chain(&e, 4, false);
    let events = e
        .events()
        .iter()
        .filter_map(|ev| match ev {
            EngineEvent::MachineLost { machine, stage, partitions_lost, .. } => {
                Some(format!("lost machine={machine} stage={stage} partitions={partitions_lost}"))
            }
            EngineEvent::PartitionRecomputed { machine, stage, partitions, .. } => {
                Some(format!("replay machine={machine} stage={stage} partitions={partitions}"))
            }
            EngineEvent::Checkpoint { bytes, .. } => Some(format!("checkpoint bytes={bytes}")),
            _ => None,
        })
        .collect();
    (e.sim_time().as_nanos(), events)
}

#[test]
fn golden_recovery_fixture_is_frozen() {
    let (sim_nanos, events) = seeded_fixture_run();
    assert_eq!(sim_nanos, GOLDEN_SIM_NANOS);
    assert_eq!(events, GOLDEN_EVENTS.iter().map(|s| s.to_string()).collect::<Vec<_>>());
}

const GOLDEN_SIM_NANOS: u64 = 480_747_955;

const GOLDEN_EVENTS: &[&str] = &[
    "lost machine=0 stage=1 partitions=8",
    "replay machine=0 stage=1 partitions=8",
    "lost machine=0 stage=3 partitions=15",
    "replay machine=0 stage=3 partitions=15",
];

/// Regeneration helper (see module docs): prints the pinned values.
#[test]
#[ignore = "regeneration helper, not a check"]
fn print_fixture_values() {
    let (sim_nanos, events) = seeded_fixture_run();
    println!("const GOLDEN_SIM_NANOS: u64 = {sim_nanos};");
    println!("const GOLDEN_EVENTS: &[&str] = &[");
    for ev in events {
        println!("    \"{ev}\",");
    }
    println!("];");
}
