//! Golden determinism tests: the simulated cost model is frozen.
//!
//! Host-side (wall-clock) optimizations — lock-free pools, zero-copy
//! partition flow, faster hash tables — must never change what a program
//! *costs* on the simulated cluster. These tests pin the exact simulated
//! time (in nanoseconds) and the full [`StatsSnapshot`] of representative
//! programs to values recorded before the host-executor fast path landed
//! (PR 2). If an engine change moves any of these numbers, it changed the
//! model, not just the host execution, and the figures are no longer
//! comparable across versions.
//!
//! To regenerate after an *intentional* model change, run:
//!
//! ```text
//! cargo test -p matryoshka-engine --test golden_sim -- --ignored --nocapture
//! ```
//!
//! and paste the printed values into the `golden_*` constants below.

use matryoshka_engine::{ClusterConfig, Engine, Partitioning, StatsSnapshot};

/// One program's pinned simulated outcome.
#[derive(Debug, PartialEq)]
struct Golden {
    sim_nanos: u64,
    stats: StatsSnapshot,
}

fn run<R>(program: impl FnOnce(&Engine) -> R) -> Golden {
    let e = Engine::new(ClusterConfig::local_test());
    program(&e);
    Golden { sim_nanos: e.sim_time().as_nanos(), stats: e.stats() }
}

/// One K-means assignment + re-aggregation step (the inner loop of the
/// paper's Fig. 1 motivation workload), written directly against the engine.
fn kmeans_step(e: &Engine) {
    let points = e.generate(2_000, 8, |i| ((i % 100) as f64, ((i * 7) % 100) as f64));
    let centroids = [(10.0f64, 10.0f64), (50.0, 50.0), (90.0, 10.0), (25.0, 75.0)];
    let assigned = points.map(move |&(x, y)| {
        let mut best = 0u32;
        let mut best_d = f64::INFINITY;
        for (ci, &(cx, cy)) in centroids.iter().enumerate() {
            let d = (x - cx) * (x - cx) + (y - cy) * (y - cy);
            if d < best_d {
                best_d = d;
                best = ci as u32;
            }
        }
        (best, (x, y, 1u64))
    });
    let sums = assigned.reduce_by_key(|a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2));
    let out = sums.collect().unwrap();
    assert_eq!(out.len(), 4, "every centroid attracts some points");
}

/// Iterative co-partitioned join/reduce loop: after one `partition_by_key`,
/// every iteration's join and by-key aggregation ride the narrow
/// (shuffle-free) path — the workload whose wall-clock cost the fast path
/// targets.
fn copartitioned_join_loop(e: &Engine) {
    let base = e.generate(2_000, 8, |i| (i, i)).partition_by_key(8);
    base.count().unwrap();
    let mut cur = base;
    for _ in 0..4 {
        let stepped = cur.map_values(|v| v + 1);
        assert_eq!(stepped.partitioning(), Partitioning::HashByKey { partitions: 8 });
        cur = cur.join_into(8, &stepped).map_values(|&(a, b)| a + b);
        cur.count().unwrap();
    }
}

/// Distinct over a skewed value set (exercises the map-side dedup + shuffle
/// scatter path rewritten by the fast path).
fn distinct_program(e: &Engine) {
    let b = e.generate(10_000, 8, |i| (i.wrapping_mul(2_654_435_761)) % 4_096);
    let d = b.distinct_into(6);
    d.count().unwrap();
}

/// A shuffle-heavy mix covering the non-co-partitioned scatter paths:
/// `reduce_by_key`, repartition `join`, and `group_by_key`.
fn shuffle_heavy(e: &Engine) {
    let l = e.generate(5_000, 8, |i| (i % 97, i));
    let agg = l.reduce_by_key(|a, b| a + b);
    let r = e.generate(500, 4, |i| (i % 97, i * 3));
    agg.join(&r).count().unwrap();
    l.group_by_key().count().unwrap();
}

fn golden_kmeans() -> Golden {
    Golden {
        sim_nanos: 313_271_737,
        stats: StatsSnapshot {
            jobs: 1,
            stages: 2,
            tasks: 16,
            records: 6_032,
            shuffle_bytes: 512,
            spill_bytes: 0,
            broadcast_bytes: 0,
            peak_memory_bytes: 1_152,
            tasks_retried: 0,
            peak_partition_bytes: 256,
            peak_partition_skew_milli: 4_000,
            partitions_lost: 0,
            recompute_nanos: 0,
            checkpoint_bytes: 0,
            stages_fused: 0,
            intermediates_elided: 0,
            jobs_completed: 0,
            jobs_cancelled: 0,
            jobs_rejected: 0,
            queue_wait_nanos: 0,
        },
    }
}

fn golden_copartitioned_join_loop() -> Golden {
    Golden {
        sim_nanos: 1_540_552_277,
        stats: StatsSnapshot {
            jobs: 5,
            stages: 6,
            tasks: 48,
            records: 28_000,
            shuffle_bytes: 32_000,
            spill_bytes: 0,
            broadcast_bytes: 0,
            peak_memory_bytes: 395_136,
            tasks_retried: 0,
            peak_partition_bytes: 4_368,
            peak_partition_skew_milli: 1_092,
            partitions_lost: 0,
            recompute_nanos: 0,
            checkpoint_bytes: 0,
            stages_fused: 0,
            intermediates_elided: 0,
            jobs_completed: 0,
            jobs_cancelled: 0,
            jobs_rejected: 0,
            queue_wait_nanos: 0,
        },
    }
}

fn golden_distinct() -> Golden {
    Golden {
        sim_nanos: 313_346_764,
        stats: StatsSnapshot {
            jobs: 1,
            stages: 2,
            tasks: 14,
            records: 30_000,
            shuffle_bytes: 80_000,
            spill_bytes: 0,
            broadcast_bytes: 0,
            peak_memory_bytes: 122_832,
            tasks_retried: 0,
            peak_partition_bytes: 13_896,
            peak_partition_skew_milli: 1_042,
            partitions_lost: 0,
            recompute_nanos: 0,
            checkpoint_bytes: 0,
            stages_fused: 0,
            intermediates_elided: 0,
            jobs_completed: 0,
            jobs_cancelled: 0,
            jobs_rejected: 0,
            queue_wait_nanos: 0,
        },
    }
}

fn golden_shuffle_heavy() -> Golden {
    Golden {
        sim_nanos: 632_582_513,
        stats: StatsSnapshot {
            jobs: 2,
            stages: 5,
            tasks: 36,
            records: 16_776,
            shuffle_bytes: 100_416,
            spill_bytes: 0,
            broadcast_bytes: 0,
            peak_memory_bytes: 138_384,
            tasks_retried: 0,
            peak_partition_bytes: 12_368,
            peak_partition_skew_milli: 1_237,
            partitions_lost: 0,
            recompute_nanos: 0,
            checkpoint_bytes: 0,
            stages_fused: 0,
            intermediates_elided: 0,
            jobs_completed: 0,
            jobs_cancelled: 0,
            jobs_rejected: 0,
            queue_wait_nanos: 0,
        },
    }
}

#[test]
fn kmeans_step_simulation_is_frozen() {
    assert_eq!(run(kmeans_step), golden_kmeans());
}

#[test]
fn copartitioned_join_loop_simulation_is_frozen() {
    assert_eq!(run(copartitioned_join_loop), golden_copartitioned_join_loop());
}

#[test]
fn distinct_simulation_is_frozen() {
    assert_eq!(run(distinct_program), golden_distinct());
}

#[test]
fn shuffle_heavy_simulation_is_frozen() {
    assert_eq!(run(shuffle_heavy), golden_shuffle_heavy());
}

/// Regeneration helper (see module docs): prints the current values in the
/// shape of the `golden_*` constants above.
#[test]
#[ignore = "regeneration helper, not a check"]
fn print_actual_values() {
    for (name, g) in [
        ("kmeans", run(kmeans_step)),
        ("copartitioned_join_loop", run(copartitioned_join_loop)),
        ("distinct", run(distinct_program)),
        ("shuffle_heavy", run(shuffle_heavy)),
    ] {
        println!("{name}: {g:#?}");
    }
}
