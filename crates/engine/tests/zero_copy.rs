//! Clone-accounting tests for the zero-copy partition flow.
//!
//! The engine memoizes evaluated partitions as shared `Arc<Vec<T>>`s; the
//! fast path (PR 2) guarantees operators read straight out of those shared
//! partitions instead of deep-copying them first. These tests pin that
//! guarantee with an instrumented `Clone` type: they assert the *exact*
//! number of value clones an operator performs, so any reintroduced
//! `p.to_vec()`-style input copy (one extra clone per record) fails loudly.
//!
//! Each test uses its own counter type because the test harness runs tests
//! concurrently in one process.

use std::sync::atomic::{AtomicUsize, Ordering};

use matryoshka_engine::{ClusterConfig, Engine, Partitioning};

/// Declare a value type whose clones are counted in a dedicated static.
macro_rules! tracked {
    ($ty:ident, $counter:ident) => {
        static $counter: AtomicUsize = AtomicUsize::new(0);

        #[derive(Debug, PartialEq, Eq, Hash)]
        struct $ty(u64);

        impl Clone for $ty {
            fn clone(&self) -> Self {
                $counter.fetch_add(1, Ordering::Relaxed);
                $ty(self.0)
            }
        }
    };
}

fn engine() -> Engine {
    Engine::new(ClusterConfig::local_test())
}

tracked!(JoinVal, JOIN_CLONES);

/// A co-partitioned `join_into` clones each value exactly once — for the
/// output tuple it lands in — and never to copy the input partitions.
#[test]
fn copartitioned_join_clones_only_the_output() {
    const N: u64 = 1_000;
    let e = engine();
    // Unique keys on both sides: exactly one match per left record.
    let left =
        e.parallelize((0..N).map(|i| (i, JoinVal(i))).collect::<Vec<_>>(), 8).partition_by_key(8);
    let right =
        e.parallelize((0..N).map(|i| (i, i * 2)).collect::<Vec<_>>(), 8).partition_by_key(8);
    // Force both parents (their own scatters may clone); then measure the
    // join alone.
    left.count().unwrap();
    right.count().unwrap();
    assert_eq!(left.partitioning(), Partitioning::HashByKey { partitions: 8 });
    JOIN_CLONES.store(0, Ordering::Relaxed);
    let joined = left.join_into(8, &right);
    assert_eq!(joined.count().unwrap(), N);
    assert_eq!(
        JOIN_CLONES.load(Ordering::Relaxed),
        N as usize,
        "co-partitioned join must clone each left value exactly once (into its output \
         tuple); any more means an input partition was deep-copied"
    );
}

tracked!(ReduceVal, REDUCE_CLONES);

/// A co-partitioned `reduce_by_key_into` clones one value per *distinct key*
/// (seeding the combine accumulator) — never one per record.
#[test]
fn copartitioned_reduce_clones_per_key_not_per_record() {
    const N: u64 = 2_000;
    const KEYS: u64 = 7;
    let e = engine();
    let base = e
        .parallelize((0..N).map(|i| (i % KEYS, ReduceVal(1))).collect::<Vec<_>>(), 8)
        .partition_by_key(4);
    base.count().unwrap();
    REDUCE_CLONES.store(0, Ordering::Relaxed);
    let reduced = base.reduce_by_key_into(4, |a, b| ReduceVal(a.0 + b.0));
    assert_eq!(reduced.count().unwrap(), KEYS);
    // Co-partitioning puts all records of a key in one partition, so the
    // map-side combine seeds exactly one accumulator per key; the reduce
    // side then owns its records and moves them.
    assert_eq!(
        REDUCE_CLONES.load(Ordering::Relaxed),
        KEYS as usize,
        "reduce over {KEYS} keys must clone exactly {KEYS} values regardless of the \
         {N}-record input"
    );
}

tracked!(NarrowVal, NARROW_CLONES);

/// `map_values` on the narrow path performs zero per-record deep clones of
/// the input values: it reads them through the shared partition.
#[test]
fn map_values_is_zero_clone_on_values() {
    const N: u64 = 1_000;
    let e = engine();
    let base =
        e.parallelize((0..N).map(|i| (i, NarrowVal(i))).collect::<Vec<_>>(), 8).partition_by_key(8);
    base.count().unwrap();
    NARROW_CLONES.store(0, Ordering::Relaxed);
    let mapped = base.map_values(|v| v.0 + 1);
    assert_eq!(mapped.count().unwrap(), N);
    assert_eq!(
        NARROW_CLONES.load(Ordering::Relaxed),
        0,
        "map_values reads values by reference; zero deep clones"
    );
}

tracked!(FusedVal, FUSED_CLONES);

/// A fused narrow chain clones each record at most once — when the *head* op
/// lifts it out of the shared base partition — and never again in the elided
/// middle stages. Unfused, the same three-filter chain clones every survivor
/// at every stage (500 + 167 + 34 here); fused, only the head's 500.
#[test]
fn fused_filter_chain_clones_only_at_the_head() {
    const N: u64 = 1_000;
    let run = |fuse: bool| {
        let e = Engine::new(ClusterConfig { fuse_narrow: fuse, ..ClusterConfig::local_test() });
        let base = e.parallelize((0..N).map(FusedVal).collect::<Vec<_>>(), 8);
        base.count().unwrap();
        let s0 = e.stats();
        FUSED_CLONES.store(0, Ordering::Relaxed);
        // Bind the tail in its own statement: the middles' temporaries die
        // here, so at eval time the chain is exclusively owned and fuses.
        let tail = base.filter(|v| v.0 % 2 == 0).filter(|v| v.0 % 3 == 0).filter(|v| v.0 % 5 == 0);
        assert_eq!(tail.count().unwrap(), 34, "multiples of 30 in 0..1000");
        (FUSED_CLONES.load(Ordering::Relaxed), e.stats().since(&s0))
    };
    let (unfused_clones, unfused_stats) = run(false);
    let (fused_clones, fused_stats) = run(true);
    assert_eq!(
        unfused_clones,
        500 + 167 + 34,
        "unfused: every filter stage clones its survivors into a fresh partition"
    );
    assert_eq!(
        fused_clones, 500,
        "fused: only the head filter clones records out of the shared base partition; \
         the two elided middles pass ownership through"
    );
    assert_eq!(unfused_stats.stages_fused, 0);
    assert_eq!(unfused_stats.intermediates_elided, 0);
    assert_eq!(fused_stats.stages_fused, 1, "three filters collapse into one fused pass");
    assert_eq!(fused_stats.intermediates_elided, 2);
}

tracked!(ScatterVal, SCATTER_CLONES);

/// A shuffle out of shared partitions (`partition_by_key`) clones each
/// record exactly once — straight into its destination bucket.
#[test]
fn shuffle_scatter_clones_each_record_exactly_once() {
    const N: u64 = 10_000; // above the parallel-scatter threshold
    let e = engine();
    let base = e.parallelize((0..N).map(|i| (i, ScatterVal(i))).collect::<Vec<_>>(), 8);
    base.count().unwrap();
    SCATTER_CLONES.store(0, Ordering::Relaxed);
    let shuffled = base.partition_by_key(6);
    assert_eq!(shuffled.count().unwrap(), N);
    assert_eq!(
        SCATTER_CLONES.load(Ordering::Relaxed),
        N as usize,
        "scatter must clone once per record (no pre-shuffle deep copy of the input)"
    );
}
