//! Randomized fusion-equivalence tests: collapsing a narrow chain into one
//! fused pass must be *observationally identical* to the unfused run — same
//! results, same simulated time, same [`StatsSnapshot`] (up to the fusion
//! counters themselves). Chains of length 1–8 mix every fusible operator,
//! and a third of the cases hang a second consumer off a mid-chain node to
//! exercise the multi-consumer barrier.

use matryoshka_engine::{Bag, ClusterConfig, Engine, StatsSnapshot};

/// splitmix64: a tiny, seedable generator so every case is reproducible
/// from its seed alone.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Build and run one randomized chain; everything about the chain's shape is
/// derived from `seed`, so the `fuse` on/off runs see the identical program.
fn run_case(seed: u64, fuse: bool) -> (Vec<u64>, Option<u64>, u64, StatsSnapshot) {
    let mut rng = seed;
    let e = Engine::new(ClusterConfig { fuse_narrow: fuse, ..ClusterConfig::local_test() });
    let n = 64 + splitmix64(&mut rng) % 200;
    let parts = 1 + (splitmix64(&mut rng) % 8) as usize;
    let mul = splitmix64(&mut rng) | 1;
    let mut bag = e.generate(n, parts, move |i| i.wrapping_mul(mul));
    let len = 1 + (splitmix64(&mut rng) % 8) as usize;
    let fork_at = if splitmix64(&mut rng).is_multiple_of(3) {
        Some((splitmix64(&mut rng) % len as u64) as usize)
    } else {
        None
    };
    let fork_before_collect = splitmix64(&mut rng).is_multiple_of(2);
    let mut side: Option<Bag<u64>> = None;
    for k in 0..len {
        if fork_at == Some(k) {
            // Second consumer: this node now has an external handle, so the
            // ops on either side of it must not fuse across it.
            side = Some(bag.clone());
        }
        bag = match splitmix64(&mut rng) % 8 {
            0 => {
                let c = splitmix64(&mut rng);
                bag.map(move |&x| x.wrapping_add(c))
            }
            1 => {
                let m = 2 + splitmix64(&mut rng) % 5;
                bag.filter(move |&x| x % m != 0)
            }
            2 => {
                let c = splitmix64(&mut rng);
                bag.flat_map(move |&x| {
                    if x % 3 == 0 {
                        vec![x, x ^ c]
                    } else if x % 7 == 0 {
                        vec![]
                    } else {
                        vec![x]
                    }
                })
            }
            3 => bag.key_by(|&x| x % 13).map(|&(k, v)| v.rotate_left(1) ^ k),
            4 => bag.map_indexed(|pi, i, &x| x ^ ((pi as u64) << 32) ^ (i as u64)),
            5 => bag.zip_with_unique_id().map(|&(x, id)| x.wrapping_add(id)),
            6 => {
                let s = splitmix64(&mut rng);
                bag.sample(0.6, s)
            }
            _ => bag.key_by(|&x| x % 11).map_values(|&v| v.wrapping_add(7)).map(|&(k, v)| k ^ v),
        };
    }
    let mut side_count = None;
    if fork_before_collect {
        if let Some(s) = &side {
            side_count = Some(s.count().unwrap());
        }
    }
    let out = bag.collect().unwrap();
    if !fork_before_collect {
        if let Some(s) = &side {
            side_count = Some(s.count().unwrap());
        }
    }
    (out, side_count, e.sim_time().as_nanos(), e.stats())
}

#[test]
fn fused_and_unfused_runs_are_observationally_identical() {
    for seed in 0..220u64 {
        let (r_u, s_u, nanos_u, stats_u) = run_case(seed, false);
        let (r_f, s_f, nanos_f, mut stats_f) = run_case(seed, true);
        assert_eq!(r_u, r_f, "seed {seed}: results diverge");
        assert_eq!(s_u, s_f, "seed {seed}: side-consumer counts diverge");
        assert_eq!(nanos_u, nanos_f, "seed {seed}: simulated time diverges");
        assert_eq!(
            stats_u.stages_fused, 0,
            "seed {seed}: fusion must be fully disabled when fuse_narrow is off"
        );
        assert_eq!(stats_u.intermediates_elided, 0, "seed {seed}");
        stats_f.stages_fused = 0;
        stats_f.intermediates_elided = 0;
        assert_eq!(stats_u, stats_f, "seed {seed}: stats diverge beyond the fusion counters");
    }
}

/// The fused tail advertises its composite provenance after evaluation, and
/// the decision log records what was fused and why.
#[test]
fn fused_tail_reports_composite_name_and_logs_a_decision() {
    let e = Engine::new(ClusterConfig::local_test());
    let base = e.generate(100, 4, |i| i);
    // Bind the tail before the action: the map's temporary dies at the end
    // of this statement, leaving the chain exclusively owned at eval time.
    let tail = base.map(|&x| x + 1).filter(|&x| x % 2 == 0);
    assert_eq!(tail.op_name(), "filter", "pre-eval: a bag reports its own op");
    tail.count().unwrap();
    assert_eq!(tail.op_name(), "fused(map|filter)", "post-eval: composite provenance");
    let decisions = e.decisions();
    assert!(
        decisions.iter().any(|d| d.site == "narrow_fusion" && d.choice == "fused(map|filter)"),
        "expected a narrow_fusion decision, got: {decisions:?}"
    );
}

/// With fusion disabled, op names and decisions stay exactly as before.
#[test]
fn disabled_fusion_leaves_names_and_decisions_untouched() {
    let e = Engine::new(ClusterConfig { fuse_narrow: false, ..ClusterConfig::local_test() });
    let base = e.generate(100, 4, |i| i);
    let tail = base.map(|&x| x + 1).filter(|&x| x % 2 == 0);
    tail.count().unwrap();
    assert_eq!(tail.op_name(), "filter");
    assert!(e.decisions().iter().all(|d| d.site != "narrow_fusion"));
}
