//! Regression test for the process-wide shared worker pool: concurrent
//! callers (e.g. two jobs of the multi-tenant service) must share one set of
//! workers instead of each spawning its own `host_parallelism()` threads.
//!
//! Before the shared pool, every `parallel_map` call spawned its own scoped
//! threads, so two interleaved jobs ran up to `2 x host_parallelism()`
//! compute threads — oversubscribing the host. Now at most
//! `shared_pool_workers()` persistent workers exist, plus each blocked
//! caller draining its own batch.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use matryoshka_engine::pool::{host_parallelism, parallel_map, shared_pool_workers};

/// Track the high-water mark of threads concurrently inside closures.
struct Gauge {
    active: AtomicUsize,
    peak: AtomicUsize,
}

impl Gauge {
    fn new() -> Gauge {
        Gauge { active: AtomicUsize::new(0), peak: AtomicUsize::new(0) }
    }

    fn enter(&self) {
        let now = self.active.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak.fetch_max(now, Ordering::SeqCst);
    }

    fn exit(&self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
    }
}

#[test]
fn interleaved_jobs_do_not_oversubscribe_cores() {
    let callers = 4;
    let gauge = Arc::new(Gauge::new());
    let barrier = Arc::new(Barrier::new(callers));
    let handles: Vec<_> = (0..callers)
        .map(|_| {
            let gauge = Arc::clone(&gauge);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                // Line all callers up so their batches overlap in the pool.
                barrier.wait();
                for _ in 0..20 {
                    let out = parallel_map((0..512u64).collect(), |i, x| {
                        gauge.enter();
                        // Enough work that claims from distinct batches
                        // genuinely overlap in time.
                        let v = (0..500u64).fold(x, |a, b| a.wrapping_add(b ^ i as u64));
                        gauge.exit();
                        v
                    });
                    assert_eq!(out.len(), 512);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("caller thread panicked");
    }

    // The only threads that ever run closures are the shared workers plus
    // the callers themselves (each drains its own batch while it waits).
    let bound = shared_pool_workers() + callers;
    let peak = gauge.peak.load(Ordering::SeqCst);
    assert!(
        peak <= bound,
        "peak concurrent compute threads {peak} exceeded shared-pool bound {bound} \
         (host_parallelism = {})",
        host_parallelism()
    );
    assert!(peak >= 1, "work must have run");
}

#[test]
fn two_jobs_share_the_same_worker_threads() {
    use std::collections::HashSet;
    use std::sync::Mutex;

    // Worker-thread identities seen by two sequential "jobs": with one
    // process-wide pool, the persistent workers overlap across calls.
    let seen_a: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
    let seen_b: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
    let me = std::thread::current().id();
    let _ = parallel_map((0..4096u64).collect(), |_, x| {
        seen_a.lock().unwrap().insert(std::thread::current().id());
        x
    });
    let _ = parallel_map((0..4096u64).collect(), |_, x| {
        seen_b.lock().unwrap().insert(std::thread::current().id());
        x
    });
    let a = seen_a.into_inner().unwrap();
    let b = seen_b.into_inner().unwrap();
    if shared_pool_workers() >= 1 {
        let shared: Vec<_> = a.intersection(&b).filter(|id| **id != me).collect();
        assert!(
            !shared.is_empty() || a.len() == 1,
            "persistent pool workers should serve both calls (a={}, b={})",
            a.len(),
            b.len()
        );
    }
}
