//! [`InnerBag`]: the lifted representation of a bag inside a UDF
//! (paper Sec. 4.4).
//!
//! A bag variable inside a lifted UDF stands for many bags — one per
//! original UDF invocation. Its flat representation is a `Bag<(Tag, E)>`
//! holding all elements of all inner bags, tagged by invocation. The
//! operations below are the *lifted* versions of the classic bag operations:
//! stateless ones forward the tags; stateful ones (aggregations, grouping,
//! joins) re-key by `(tag, key)` composites.

use std::sync::Arc;

use matryoshka_engine::{Bag, Data, Key, Result};

use crate::adaptive::AdaptivePlanner;
use crate::context::LiftingContext;
use crate::scalar::InnerScalar;

/// The lifted form of a bag: all inner-bag elements, each tagged with the
/// original UDF invocation it belongs to.
pub struct InnerBag<T: Key, E: Data> {
    repr: Bag<(T, E)>,
    ctx: LiftingContext<T>,
}

impl<T: Key, E: Data> Clone for InnerBag<T, E> {
    fn clone(&self) -> Self {
        InnerBag { repr: self.repr.clone(), ctx: self.ctx.clone() }
    }
}

impl<T: Key, E: Data> InnerBag<T, E> {
    /// Wrap an existing flat representation.
    pub fn from_repr(repr: Bag<(T, E)>, ctx: LiftingContext<T>) -> Self {
        InnerBag { repr, ctx }
    }

    /// The flat `Bag<(Tag, E)>` representation.
    pub fn repr(&self) -> &Bag<(T, E)> {
        &self.repr
    }

    /// The lifting context.
    pub fn ctx(&self) -> &LiftingContext<T> {
        &self.ctx
    }

    /// Lifted `map`: apply to the element, forward the tag (Sec. 4.4).
    pub fn map<U: Data>(&self, f: impl Fn(&E) -> U + Send + Sync + 'static) -> InnerBag<T, U> {
        InnerBag { repr: self.repr.map(move |(t, e)| (t.clone(), f(e))), ctx: self.ctx.clone() }
    }

    /// Lifted `filter`: predicate on the element, tag forwarded.
    pub fn filter(&self, f: impl Fn(&E) -> bool + Send + Sync + 'static) -> InnerBag<T, E> {
        InnerBag { repr: self.repr.filter(move |(_, e)| f(e)), ctx: self.ctx.clone() }
    }

    /// Lifted `flatMap`: each output element inherits the input's tag.
    pub fn flat_map<U: Data, I>(
        &self,
        f: impl Fn(&E) -> I + Send + Sync + 'static,
    ) -> InnerBag<T, U>
    where
        I: IntoIterator<Item = U>,
    {
        InnerBag {
            repr: self.repr.flat_map(move |(t, e)| {
                f(e).into_iter().map(|u| (t.clone(), u)).collect::<Vec<_>>()
            }),
            ctx: self.ctx.clone(),
        }
    }

    /// Lifted `union`: identical to flat union (Sec. 4.4: "some other
    /// operations' lifted versions are simply identical to the original").
    pub fn union(&self, other: &InnerBag<T, E>) -> InnerBag<T, E> {
        InnerBag { repr: self.repr.union(other.repr()), ctx: self.ctx.clone() }
    }

    /// Natural modeled size of one `(tag, X)` scalar record. Aggregation
    /// outputs have *structural* cardinality (one record per tag), so they
    /// must not inherit the data-scaled record weight of the bag they
    /// aggregate — a per-day counter is a few bytes even when the day's
    /// visits are gigabytes.
    fn scalar_record_bytes<X>(&self) -> f64 {
        (std::mem::size_of::<(T, X)>() as f64).max(16.0)
    }

    /// Lifted `count`: per-tag element count, **including zero for tags
    /// whose inner bag is empty** (Sec. 4.4: operations that produce output
    /// for empty inputs need the stored bag of tags).
    pub fn count(&self) -> InnerScalar<T, u64> {
        let p = self.ctx.scalar_partitions();
        let bytes = self.scalar_record_bytes::<u64>();
        let counts = self.repr.map(|(t, _)| (t.clone(), 1u64)).with_record_bytes(bytes);
        let zeros = self.ctx.tags().map(|t| (t.clone(), 0u64)).with_record_bytes(bytes);
        let all = counts.union(&zeros).reduce_by_key_into(p, |a, b| a + b);
        InnerScalar::from_repr(all, self.ctx.clone())
    }

    /// Lifted `reduce`: per-tag reduction. Tags with empty inner bags are
    /// absent from the result (a `reduce` of an empty bag has no value);
    /// use [`InnerBag::fold`] for a zero-filled variant.
    pub fn reduce(&self, f: impl Fn(&E, &E) -> E + Send + Sync + 'static) -> InnerScalar<T, E> {
        let p = self.ctx.scalar_partitions();
        let bytes = self.scalar_record_bytes::<E>();
        let reduced = self
            .repr
            .map(|(t, e)| (t.clone(), e.clone()))
            .with_record_bytes(bytes)
            .reduce_by_key_into(p, f);
        InnerScalar::from_repr(reduced, self.ctx.clone())
    }

    /// Lifted `fold`: per-tag fold seeded with `zero` for **every** tag, so
    /// empty inner bags yield `zero` (via the stored tags bag, Sec. 4.4).
    pub fn fold<A: Data>(
        &self,
        zero: A,
        f: impl Fn(&A, &E) -> A + Send + Sync + 'static,
        combine: impl Fn(&A, &A) -> A + Send + Sync + 'static,
    ) -> InnerScalar<T, A> {
        let p = self.ctx.scalar_partitions();
        let bytes = self.scalar_record_bytes::<A>();
        let z = zero.clone();
        let mapped: Bag<(T, A)> =
            self.repr.map(move |(t, e)| (t.clone(), f(&z, e))).with_record_bytes(bytes);
        let zeros =
            self.ctx.tags().map(move |t| (t.clone(), zero.clone())).with_record_bytes(bytes);
        let folded = mapped.union(&zeros).reduce_by_key_into(p, combine);
        InnerScalar::from_repr(folded, self.ctx.clone())
    }

    /// Lifted `isEmpty` as a per-tag boolean (zero-filled like `count`).
    pub fn is_empty_scalar(&self) -> InnerScalar<T, bool> {
        self.count().map(|n| *n == 0)
    }

    /// Remove the nesting structure: drop the tags, yielding one flat bag of
    /// all elements. This is `flatten`, the lowered form of `flatMap`'s
    /// nesting removal (Sec. 4.6: "Flatten's implementation simply removes
    /// the tags from an InnerBag").
    pub fn flatten(&self) -> Bag<E> {
        self.repr.map(|(_, e)| e.clone())
    }

    /// Gather each tag's inner bag into a driver-visible `Vec` scalar
    /// (useful for small per-tag state such as K-means centroids). The
    /// engine's memory model sees the real per-tag sizes.
    pub fn collect_per_tag(&self) -> InnerScalar<T, Vec<E>> {
        let p = self.ctx.scalar_partitions();
        let grouped = self
            .repr
            .map(|(t, e)| (t.clone(), e.clone()))
            .group_by_key_into(p)
            .map(|(t, es)| (t.clone(), es.clone()));
        // Zero-fill: tags with no elements get an empty Vec. (Structural
        // cardinality: weigh these as small records, whatever the tags bag's
        // own record weight is.)
        let zeros = self
            .ctx
            .tags()
            .map(|t| (t.clone(), Vec::<E>::new()))
            .with_record_bytes(self.scalar_record_bytes::<Vec<E>>());
        let all = grouped.union(&zeros).reduce_by_key_into(p, |a, b| {
            let mut merged = a.clone();
            merged.extend(b.iter().cloned());
            merged
        });
        InnerScalar::from_repr(all, self.ctx.clone())
    }

    /// Lifted `distinct`: identical to flat distinct on the tagged pairs
    /// (Sec. 4.4) — requires hashable elements.
    pub fn distinct(&self) -> InnerBag<T, E>
    where
        E: Key,
    {
        InnerBag { repr: self.repr.distinct(), ctx: self.ctx.clone() }
    }

    /// `mapWithClosure` (Sec. 5.1): a map whose UDF reads a scalar defined
    /// outside the (unlifted) UDF. Lifted, this is a tag join between the
    /// InnerBag and the InnerScalar, with the join algorithm chosen by the
    /// runtime optimizer (Sec. 8.2).
    pub fn map_with_scalar<C: Data, U: Data>(
        &self,
        closure: &InnerScalar<T, C>,
        f: impl Fn(&E, &C) -> U + Send + Sync + 'static,
    ) -> InnerBag<T, U> {
        let joined = self.ctx.tag_join(&self.repr, closure.repr());
        // Consulting the scalar does not fatten the elements: keep the bag
        // side's modeled record size.
        let bytes = self.repr.record_bytes();
        InnerBag {
            repr: joined.map(move |(t, (e, c))| (t.clone(), f(e, c))).with_record_bytes(bytes),
            ctx: self.ctx.clone(),
        }
    }

    /// `flatMapWithClosure`: like [`InnerBag::map_with_scalar`] but
    /// element-to-many.
    pub fn flat_map_with_scalar<C: Data, U: Data, I>(
        &self,
        closure: &InnerScalar<T, C>,
        f: impl Fn(&E, &C) -> I + Send + Sync + 'static,
    ) -> InnerBag<T, U>
    where
        I: IntoIterator<Item = U>,
    {
        let joined = self.ctx.tag_join(&self.repr, closure.repr());
        let bytes = self.repr.record_bytes();
        InnerBag {
            repr: joined
                .flat_map(move |(t, (e, c))| {
                    f(e, c).into_iter().map(|u| (t.clone(), u)).collect::<Vec<_>>()
                })
                .with_record_bytes(bytes),
            ctx: self.ctx.clone(),
        }
    }

    /// Filter with access to a per-tag scalar (used by lifted control flow).
    pub fn filter_with_scalar<C: Data>(
        &self,
        closure: &InnerScalar<T, C>,
        f: impl Fn(&E, &C) -> bool + Send + Sync + 'static,
    ) -> InnerBag<T, E> {
        let joined = self.ctx.tag_join(&self.repr, closure.repr());
        let bytes = self.repr.record_bytes();
        InnerBag {
            repr: joined
                .filter(move |(_, (e, c))| f(e, c))
                .map(|(t, (e, _))| (t.clone(), e.clone()))
                .with_record_bytes(bytes),
            ctx: self.ctx.clone(),
        }
    }

    /// Replace the context (used by lifted control flow when tags retire).
    pub fn with_ctx(&self, ctx: LiftingContext<T>) -> InnerBag<T, E> {
        InnerBag { repr: self.repr.clone(), ctx }
    }

    /// Override the modeled bytes per element (see
    /// [`Bag::with_record_bytes`]). Pin this on loop-carried state whose
    /// shape is constant across iterations, so static size estimates cannot
    /// compound through the loop's joins.
    pub fn with_record_bytes(&self, bytes: f64) -> InnerBag<T, E> {
        InnerBag { repr: self.repr.with_record_bytes(bytes), ctx: self.ctx.clone() }
    }

    /// Materialize all `(tag, element)` pairs on the driver (an action).
    pub fn collect(&self) -> Result<Vec<(T, E)>> {
        self.repr.collect()
    }
}

/// Lifted key-value operations: the re-keying of Sec. 4.4 ("we lift
/// operations that already have a per-key state by creating a composite key
/// from the original key plus the tag").
impl<T: Key, K: Key, V: Data> InnerBag<T, (K, V)> {
    /// Lifted `reduceByKey`: `b'.map{(t,(k,v)) => ((t,k),v)}.reduceByKey(f)
    /// .map{((t,k),v) => (t,(k,v))}` — exactly the paper's rewrite.
    ///
    /// Under adaptive execution, the shuffle's partition count is coalesced
    /// from observed bytes, and — when a recent `reduce_by_key` shuffle was
    /// observed skewed — the composite key is salted into a two-stage
    /// aggregation: partials per `((tag, key), salt)` first, then the salt
    /// is stripped in a narrow map and a final combine merges the at-most-
    /// `salt_factor` partials per key. Requires `f` associative, which
    /// lifted `reduceByKey` already assumes.
    pub fn reduce_by_key(
        &self,
        f: impl Fn(&V, &V) -> V + Send + Sync + 'static,
    ) -> InnerBag<T, (K, V)> {
        let rekeyed = self.repr.map(|(t, (k, v))| ((t.clone(), k.clone()), v.clone()));
        let engine = self.ctx.engine().clone();
        let acfg = &self.ctx.config().adaptive;
        let static_p = rekeyed.num_partitions().min(engine.config().default_parallelism);
        let planner = AdaptivePlanner::new(&engine, acfg);
        let p = planner.coalesced_partitions(
            "lifted reduce_by_key",
            static_p,
            self.repr.size_estimate(),
        );
        let reduced = match planner.salt_factor_for("reduce_by_key") {
            Some(salt) => {
                let f = Arc::new(f);
                let f1 = Arc::clone(&f);
                let salted = rekeyed.map_indexed(move |pi, i, (tk, v)| {
                    ((tk.clone(), (pi + i) as u32 % salt), v.clone())
                });
                let partials = salted.reduce_by_key_into(p, move |a, b| f1(a, b));
                let unsalted = partials.map(|((tk, _), v)| (tk.clone(), v.clone()));
                unsalted.reduce_by_key_into(p, move |a, b| f(a, b))
            }
            None => rekeyed.reduce_by_key_into(p, f),
        };
        InnerBag {
            repr: reduced.map(|((t, k), v)| (t.clone(), (k.clone(), v.clone()))),
            ctx: self.ctx.clone(),
        }
    }

    /// [`InnerBag::reduce_by_key`] with an explicit modeled size for the
    /// post-combine partial records (see
    /// [`Bag::reduce_by_key_partials`]): use when the per-`(tag, key)`
    /// partial is a small structural record regardless of how much data it
    /// aggregates.
    pub fn reduce_by_key_partials(
        &self,
        partial_bytes: f64,
        f: impl Fn(&V, &V) -> V + Send + Sync + 'static,
    ) -> InnerBag<T, (K, V)> {
        let rekeyed = self.repr.map(|(t, (k, v))| ((t.clone(), k.clone()), v.clone()));
        let static_p = rekeyed.num_partitions().min(self.ctx.engine().config().default_parallelism);
        let p = AdaptivePlanner::new(self.ctx.engine(), &self.ctx.config().adaptive)
            .coalesced_partitions(
                "lifted reduce_by_key_partials",
                static_p,
                self.repr.size_estimate(),
            );
        let reduced = rekeyed.reduce_by_key_partials(p, partial_bytes, f);
        InnerBag {
            repr: reduced.map(|((t, k), v)| (t.clone(), (k.clone(), v.clone()))),
            ctx: self.ctx.clone(),
        }
    }

    /// Lifted `groupByKey` with the same composite-key re-keying.
    pub fn group_by_key(&self) -> InnerBag<T, (K, Vec<V>)> {
        let rekeyed = self.repr.map(|(t, (k, v))| ((t.clone(), k.clone()), v.clone()));
        let grouped = rekeyed.group_by_key();
        InnerBag {
            repr: grouped.map(|((t, k), vs)| (t.clone(), (k.clone(), vs.clone()))),
            ctx: self.ctx.clone(),
        }
    }

    /// Lifted equi-join: join on the `(tag, key)` composite so that only
    /// pairs from the *same original UDF invocation* match (Sec. 4.4: "we
    /// also lift joins with a similar rekeying").
    pub fn join<W: Data>(&self, other: &InnerBag<T, (K, W)>) -> InnerBag<T, (K, (V, W))> {
        let l = self.repr.map(|(t, (k, v))| ((t.clone(), k.clone()), v.clone()));
        let r = other.repr.map(|(t, (k, w))| ((t.clone(), k.clone()), w.clone()));
        let joined = l.join(&r);
        InnerBag {
            repr: joined.map(|((t, k), (v, w))| (t.clone(), (k.clone(), (v.clone(), w.clone())))),
            ctx: self.ctx.clone(),
        }
    }

    /// Half-lifted equi-join (Sec. 5.2): the left side is an InnerBag, the
    /// right side is a plain bag from outside the lifted UDF (a closure).
    /// Implemented exactly as the paper's three-liner: re-key the InnerBag
    /// by the join key, join against the outer bag, then restore the tag.
    pub fn half_lifted_join<W: Data>(&self, right: &Bag<(K, W)>) -> InnerBag<T, (K, (V, W))> {
        let rekeyed = self.repr.map(|(t, (k, v))| (k.clone(), (t.clone(), v.clone())));
        let joined = rekeyed.join(right);
        InnerBag {
            repr: joined.map(|(k, ((t, v), w))| (t.clone(), (k.clone(), (v.clone(), w.clone())))),
            ctx: self.ctx.clone(),
        }
    }

    /// Pre-shuffle this InnerBag by its `(tag, key)` composite once, so that
    /// repeated lifted joins against it (e.g. the static edge relation inside
    /// a lifted PageRank loop) become co-partitioned narrow dependencies —
    /// the lifted equivalent of Spark's `partitionBy` + cache idiom.
    pub fn co_partition(&self) -> CoPartitioned<T, K, V> {
        let static_p = self.ctx.engine().config().default_parallelism;
        let p = AdaptivePlanner::new(self.ctx.engine(), &self.ctx.config().adaptive)
            .coalesced_partitions("co_partition", static_p, self.repr.size_estimate());
        self.ctx.engine().record_decision(
            "co_partition",
            p.to_string(),
            self.ctx.size(),
            0,
            "pre-shuffle by (tag, key) at default parallelism for reuse across iterations",
        );
        let repr =
            self.repr.map(|(t, (k, v))| ((t.clone(), k.clone()), v.clone())).partition_by_key(p);
        CoPartitioned { repr, ctx: self.ctx.clone() }
    }

    /// Lifted equi-join against a [`CoPartitioned`] right side: only the
    /// left side shuffles; the right side's placement is computed once and
    /// reused by every call (every loop iteration).
    pub fn join_co_partitioned<W: Data>(
        &self,
        right: &CoPartitioned<T, K, W>,
    ) -> InnerBag<T, (K, (V, W))> {
        let p = right.repr.num_partitions();
        let l =
            self.repr.map(|(t, (k, v))| ((t.clone(), k.clone()), v.clone())).partition_by_key(p);
        let joined = l.join_into(p, &right.repr);
        InnerBag {
            repr: joined.map(|((t, k), (v, w))| (t.clone(), (k.clone(), (v.clone(), w.clone())))),
            ctx: self.ctx.clone(),
        }
    }
}

/// An [`InnerBag`] whose flat representation has been hash-partitioned by
/// its `(tag, key)` composite (see [`InnerBag::co_partition`]).
pub struct CoPartitioned<T: Key, K: Key, V: Data> {
    repr: Bag<((T, K), V)>,
    ctx: LiftingContext<T>,
}

impl<T: Key, K: Key, V: Data> Clone for CoPartitioned<T, K, V> {
    fn clone(&self) -> Self {
        CoPartitioned { repr: self.repr.clone(), ctx: self.ctx.clone() }
    }
}

impl<T: Key, K: Key, V: Data> CoPartitioned<T, K, V> {
    /// View as a plain InnerBag again (records unchanged, placement kept).
    pub fn to_inner_bag(&self) -> InnerBag<T, (K, V)> {
        InnerBag {
            repr: self.repr.map(|((t, k), v)| (t.clone(), (k.clone(), v.clone()))),
            ctx: self.ctx.clone(),
        }
    }
}

impl<T: Key, E: Data> std::fmt::Debug for InnerBag<T, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InnerBag").field("ctx", self.ctx()).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::MatryoshkaConfig;
    use matryoshka_engine::Engine;

    fn ctx(e: &Engine, tags: Vec<u64>) -> LiftingContext<u64> {
        let n = tags.len() as u64;
        LiftingContext::new(e.clone(), e.parallelize(tags, 2), n, MatryoshkaConfig::optimized())
    }

    fn bag(e: &Engine, c: &LiftingContext<u64>, data: Vec<(u64, i64)>) -> InnerBag<u64, i64> {
        InnerBag::from_repr(e.parallelize(data, 3), c.clone())
    }

    fn sorted<X: Ord>(mut v: Vec<X>) -> Vec<X> {
        v.sort();
        v
    }

    #[test]
    fn map_filter_preserve_tags() {
        let e = Engine::local();
        let c = ctx(&e, vec![0, 1]);
        let b = bag(&e, &c, vec![(0, 1), (0, 2), (1, 3)]);
        let out = sorted(b.map(|x| x * 10).filter(|x| *x >= 20).collect().unwrap());
        assert_eq!(out, vec![(0, 20), (1, 30)]);
    }

    #[test]
    fn count_zero_fills_empty_tags() {
        let e = Engine::local();
        let c = ctx(&e, vec![0, 1, 2]); // tag 2 has no elements
        let b = bag(&e, &c, vec![(0, 1), (0, 2), (1, 3)]);
        let out = sorted(b.count().collect().unwrap());
        assert_eq!(out, vec![(0, 2), (1, 1), (2, 0)]);
    }

    #[test]
    fn reduce_omits_empty_tags_fold_fills_them() {
        let e = Engine::local();
        let c = ctx(&e, vec![0, 1, 2]);
        let b = bag(&e, &c, vec![(0, 5), (0, 7), (1, 1)]);
        assert_eq!(sorted(b.reduce(|a, x| a + x).collect().unwrap()), vec![(0, 12), (1, 1)]);
        let folded = b.fold(0i64, |z, x| z + x, |a, b| a + b);
        assert_eq!(sorted(folded.collect().unwrap()), vec![(0, 12), (1, 1), (2, 0)]);
    }

    #[test]
    fn reduce_by_key_keys_within_tag_only() {
        let e = Engine::local();
        let c = ctx(&e, vec![0, 1]);
        // Same inner key 9 in both tags: must NOT merge across tags.
        let b = InnerBag::from_repr(
            e.parallelize(vec![(0u64, (9u32, 1i64)), (0, (9, 2)), (1, (9, 100))], 2),
            c.clone(),
        );
        let out = sorted(b.reduce_by_key(|a, x| a + x).collect().unwrap());
        assert_eq!(out, vec![(0, (9, 3)), (1, (9, 100))]);
    }

    #[test]
    fn join_matches_within_tag_only() {
        let e = Engine::local();
        let c = ctx(&e, vec![0, 1]);
        let l = InnerBag::from_repr(
            e.parallelize(vec![(0u64, (1u32, 'a')), (1, (1, 'b'))], 2),
            c.clone(),
        );
        let r = InnerBag::from_repr(
            e.parallelize(vec![(0u64, (1u32, 10)), (1, (1, 20))], 2),
            c.clone(),
        );
        let out = sorted(l.join(&r).collect().unwrap());
        assert_eq!(out, vec![(0, (1, ('a', 10))), (1, (1, ('b', 20)))]);
    }

    #[test]
    fn half_lifted_join_replicates_outer_per_tag() {
        let e = Engine::local();
        let c = ctx(&e, vec![0, 1]);
        let l = InnerBag::from_repr(
            e.parallelize(vec![(0u64, (1u32, 'a')), (1, (1, 'b')), (1, (2, 'c'))], 2),
            c.clone(),
        );
        let outer = e.parallelize(vec![(1u32, 100), (2, 200)], 2);
        let out = sorted(l.half_lifted_join(&outer).collect().unwrap());
        assert_eq!(out, vec![(0, (1, ('a', 100))), (1, (1, ('b', 100))), (1, (2, ('c', 200)))]);
    }

    #[test]
    fn map_with_scalar_matches_tags() {
        let e = Engine::local();
        let c = ctx(&e, vec![0, 1]);
        let b = bag(&e, &c, vec![(0, 1), (0, 2), (1, 3)]);
        let s = InnerScalar::from_repr(e.parallelize(vec![(0u64, 10i64), (1, 100)], 1), c.clone());
        let out = sorted(b.map_with_scalar(&s, |e, c| e * c).collect().unwrap());
        assert_eq!(out, vec![(0, 10), (0, 20), (1, 300)]);
    }

    #[test]
    fn distinct_dedups_within_tag() {
        let e = Engine::local();
        let c = ctx(&e, vec![0, 1]);
        let b = bag(&e, &c, vec![(0, 1), (0, 1), (1, 1)]);
        let out = sorted(b.distinct().collect().unwrap());
        assert_eq!(out, vec![(0, 1), (1, 1)]);
    }

    #[test]
    fn flatten_drops_tags() {
        let e = Engine::local();
        let c = ctx(&e, vec![0, 1]);
        let b = bag(&e, &c, vec![(0, 1), (1, 2)]);
        assert_eq!(sorted(b.flatten().collect().unwrap()), vec![1, 2]);
    }

    #[test]
    fn collect_per_tag_gathers_and_zero_fills() {
        let e = Engine::local();
        let c = ctx(&e, vec![0, 1, 2]);
        let b = bag(&e, &c, vec![(0, 3), (0, 1), (1, 9)]);
        let mut out = b.collect_per_tag().collect().unwrap();
        out.sort_by_key(|(t, _)| *t);
        assert_eq!(out.len(), 3);
        assert_eq!(sorted(out[0].1.clone()), vec![1, 3]);
        assert_eq!(out[1].1, vec![9]);
        assert!(out[2].1.is_empty());
    }

    #[test]
    fn group_by_key_composite() {
        let e = Engine::local();
        let c = ctx(&e, vec![0, 1]);
        let b = InnerBag::from_repr(
            e.parallelize(vec![(0u64, (5u32, 'x')), (0, (5, 'y')), (1, (5, 'z'))], 2),
            c.clone(),
        );
        let mut out = b.group_by_key().collect().unwrap();
        out.sort_by_key(|(t, _)| *t);
        assert_eq!(out[0].0, 0);
        assert_eq!(sorted(out[0].1 .1.clone()), vec!['x', 'y']);
        assert_eq!(out[1], (1, (5, vec!['z'])));
    }

    #[test]
    fn is_empty_scalar_true_only_for_missing_tags() {
        let e = Engine::local();
        let c = ctx(&e, vec![0, 1]);
        let b = bag(&e, &c, vec![(0, 1)]);
        let out = sorted(b.is_empty_scalar().collect().unwrap());
        assert_eq!(out, vec![(0, false), (1, true)]);
    }
}
