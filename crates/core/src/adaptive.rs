//! Adaptive execution: a feedback-driven re-optimizer at stage boundaries.
//!
//! The static optimizer ([`crate::optimizer`]) picks physical plans from
//! *estimates*: InnerScalar sizes known structurally at lowering time
//! (Sec. 8.1) and modeled record weights. This module closes the loop with
//! what the engine actually *observed*: every shuffle records exact
//! per-reduce-partition record/byte counts
//! ([`matryoshka_engine::MapOutputStats`]), and the [`AdaptivePlanner`]
//! consumes those at the next stage boundary to re-decide three things:
//!
//! 1. **Partition coalescing** — merge small post-shuffle partitions until
//!    each holds roughly [`AdaptiveConfig::target_partition_bytes`], instead
//!    of scheduling the static partition count's worth of near-empty tasks.
//! 2. **Join switching** — re-decide the tag-join algorithm (broadcast vs.
//!    repartition) from observed scalar sizes rather than the
//!    [`crate::LiftingContext`] estimate; inside `lifted_while` this runs
//!    once per iteration, so the decision tracks the shrinking live-tag set.
//! 3. **Skew mitigation** — when a recent shuffle's largest partition
//!    exceeds [`AdaptiveConfig::skew_threshold_milli`] times the mean, salt
//!    the hot side's key with a small deterministic suffix and replicate the
//!    light side, then strip the salt in a cheap narrow op.
//!
//! Every re-decision is appended to the engine's lowering-decision log under
//! the sites `adaptive_coalesce`, `adaptive_tag_join`, and
//! `adaptive_skew_salt`. With [`AdaptiveConfig::enabled`] false (the
//! default) nothing here runs: plans, decision logs, and simulated times are
//! bit-identical to the static optimizer's.

use matryoshka_engine::{Engine, MapOutputSummary};

/// How far back in the engine's bounded map-output history the planner
/// looks when scanning for a skewed shuffle of a given operator. Old
/// shuffles (earlier loop iterations, other subplans) age out so a one-off
/// skewed stage does not salt every later one.
const SKEW_LOOKBACK: usize = 8;

/// Knobs of the adaptive re-optimizer. Carried inside
/// [`crate::MatryoshkaConfig::adaptive`]; everything is inert unless
/// [`AdaptiveConfig::enabled`] is set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveConfig {
    /// Master switch. Off by default: the static plans, decision log, and
    /// simulated times are unchanged.
    pub enabled: bool,
    /// Re-derive post-shuffle partition counts from observed bytes.
    pub coalesce: bool,
    /// Re-decide tag-join algorithms from observed scalar sizes.
    pub switch_joins: bool,
    /// Salt skewed shuffles (tag joins and lifted `reduceByKey`).
    pub salt_skew: bool,
    /// Coalescing target: observed bytes each post-shuffle partition should
    /// hold.
    pub target_partition_bytes: u64,
    /// Shuffles whose max/mean partition ratio (in thousandths; `1000` =
    /// perfectly balanced) reaches this are treated as skewed.
    pub skew_threshold_milli: u64,
    /// How many ways a skewed key is split. Values below 2 cannot split
    /// anything.
    pub salt_factor: u32,
    /// Floor for coalesced partition counts; `0` means "one per core"
    /// (derived from the engine's cluster at decision time).
    pub min_partitions: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            enabled: false,
            coalesce: true,
            switch_joins: true,
            salt_skew: true,
            target_partition_bytes: 64 << 20,
            skew_threshold_milli: 4_000,
            salt_factor: 8,
            min_partitions: 0,
        }
    }
}

impl AdaptiveConfig {
    /// The default thresholds with the master switch on.
    pub fn enabled() -> Self {
        AdaptiveConfig { enabled: true, ..AdaptiveConfig::default() }
    }

    /// Sanity-check the thresholds. Returns one human-readable warning per
    /// nonsensical setting (the `matryoshka-check` CLI surfaces these as
    /// MAT092 warnings); an empty result means the config is coherent.
    /// Warnings are only produced when the master switch is on — a disabled
    /// config is inert no matter what its thresholds say.
    pub fn validate(&self) -> Vec<String> {
        let mut warnings = Vec::new();
        if !self.enabled {
            return warnings;
        }
        if !self.coalesce && !self.switch_joins && !self.salt_skew {
            warnings.push(
                "adaptive execution is enabled but every re-optimization \
                 (coalesce, switch_joins, salt_skew) is disabled: it will observe \
                 statistics and change nothing"
                    .to_string(),
            );
        }
        if self.coalesce && self.target_partition_bytes == 0 {
            warnings.push(
                "target_partition_bytes is 0: coalescing would demand infinitely \
                 many partitions and never merge anything"
                    .to_string(),
            );
        }
        if self.salt_skew && self.salt_factor < 2 {
            warnings.push(format!(
                "salt_factor {} cannot split a hot key: salting needs at least 2 salts",
                self.salt_factor
            ));
        }
        if self.salt_skew && self.skew_threshold_milli <= 1_000 {
            warnings.push(format!(
                "skew_threshold_milli {} flags perfectly balanced shuffles as skewed \
                 (1000 = max equals mean): every shuffle would be salted",
                self.skew_threshold_milli
            ));
        }
        warnings
    }
}

/// The stage-boundary re-optimizer: a thin, cheap view over one engine's
/// observed map-output history and one [`AdaptiveConfig`]. Construct it at
/// each decision site (it holds no state of its own).
pub struct AdaptivePlanner<'a> {
    engine: &'a Engine,
    cfg: &'a AdaptiveConfig,
}

impl<'a> AdaptivePlanner<'a> {
    /// A planner reading `engine`'s observed statistics under `cfg`.
    pub fn new(engine: &'a Engine, cfg: &'a AdaptiveConfig) -> Self {
        AdaptivePlanner { engine, cfg }
    }

    /// The configuration this planner decides under.
    pub fn config(&self) -> &AdaptiveConfig {
        self.cfg
    }

    /// Adaptive partition coalescing: given the static plan's partition
    /// count and the bytes observed for the data about to shuffle (from the
    /// producing bag if materialized, else the engine's most recent map
    /// output), return a count that targets
    /// [`AdaptiveConfig::target_partition_bytes`] per partition — never
    /// *more* partitions than the static plan, never fewer than the floor.
    /// Logs to the decision log (site `adaptive_coalesce`) when it changes
    /// the plan.
    pub fn coalesced_partitions(
        &self,
        site: &str,
        static_partitions: usize,
        observed_bytes: Option<u64>,
    ) -> usize {
        if !self.cfg.enabled || !self.cfg.coalesce {
            return static_partitions;
        }
        let observed = observed_bytes.or_else(|| self.last_output().map(|s| s.total_bytes));
        let Some(bytes) = observed else {
            return static_partitions;
        };
        let floor = if self.cfg.min_partitions == 0 {
            self.engine.total_cores()
        } else {
            self.cfg.min_partitions
        };
        let by_bytes = bytes.div_ceil(self.cfg.target_partition_bytes.max(1)) as usize;
        let p = by_bytes.max(floor).clamp(1, static_partitions);
        if p < static_partitions {
            self.engine.record_decision(
                "adaptive_coalesce",
                p.to_string(),
                static_partitions as u64,
                bytes,
                format!(
                    "{site}: observed {bytes} bytes / {} per partition, floor {floor} \
                     (static plan: {static_partitions})",
                    self.cfg.target_partition_bytes
                ),
            );
        }
        p
    }

    /// The most recent shuffle the engine observed, if any.
    pub fn last_output(&self) -> Option<MapOutputSummary> {
        self.engine.last_map_output()
    }

    /// The most skewed among the last `SKEW_LOOKBACK` observed shuffles of
    /// `operator`, if any reached the configured threshold **and** its hot
    /// partition is material (at least [`AdaptiveConfig::target_partition_bytes`]).
    /// The byte floor matters: a shuffle of a handful of records over many
    /// partitions shows a huge max/mean ratio out of pure placement noise,
    /// but splitting a kilobyte-sized partition buys nothing and the salt's
    /// replication is pure overhead.
    pub fn skewed_output(&self, operator: &str) -> Option<MapOutputSummary> {
        let history = self.engine.map_output_history();
        history
            .iter()
            .rev()
            .take(SKEW_LOOKBACK)
            .filter(|s| s.operator == operator)
            .filter(|s| s.skew_ratio_milli >= self.cfg.skew_threshold_milli)
            .filter(|s| s.max_bytes >= self.cfg.target_partition_bytes)
            .max_by_key(|s| s.skew_ratio_milli)
            .copied()
    }

    /// Skew mitigation decision for the next shuffle of `operator`: the salt
    /// factor to split hot keys with, or `None` when salting is off, the
    /// factor cannot split (< 2), or no recent shuffle of that operator was
    /// skewed. Logs the decision (site `adaptive_skew_salt`) when it fires.
    pub fn salt_factor_for(&self, operator: &'static str) -> Option<u32> {
        self.salt_factor_gated(operator, None)
    }

    /// [`Self::salt_factor_for`] with a cost gate for salted *joins*: salting
    /// a join replicates the light side once per salt value, so pass that
    /// side's total bytes and the salt is skipped (with a `keep` decision in
    /// the log) when the replication would shuffle more than the hot
    /// partition it splits. Salted aggregations replicate nothing — they pass
    /// `None`.
    pub fn salt_factor_gated(
        &self,
        operator: &'static str,
        replicated_side_bytes: Option<u64>,
    ) -> Option<u32> {
        if !self.cfg.enabled || !self.cfg.salt_skew || self.cfg.salt_factor < 2 {
            return None;
        }
        let skewed = self.skewed_output(operator)?;
        if let Some(rb) = replicated_side_bytes {
            let replication = rb.saturating_mul(self.cfg.salt_factor as u64);
            if replication > skewed.max_bytes {
                self.engine.record_decision(
                    "adaptive_skew_salt",
                    "keep",
                    skewed.total_records,
                    skewed.max_bytes,
                    format!(
                        "{operator}: skew {}.{:03}x observed, but replicating the light side \
                         x{} ({replication} bytes) would outweigh the {} -byte hot partition",
                        skewed.skew_ratio_milli / 1000,
                        skewed.skew_ratio_milli % 1000,
                        self.cfg.salt_factor,
                        skewed.max_bytes,
                    ),
                );
                return None;
            }
        }
        self.engine.record_decision(
            "adaptive_skew_salt",
            format!("salt x{}", self.cfg.salt_factor),
            skewed.total_records,
            skewed.max_bytes,
            format!(
                "{operator}: observed skew {}.{:03}x >= threshold {}.{:03}x \
                 (max partition {} bytes of {} total)",
                skewed.skew_ratio_milli / 1000,
                skewed.skew_ratio_milli % 1000,
                self.cfg.skew_threshold_milli / 1000,
                self.cfg.skew_threshold_milli % 1000,
                skewed.max_bytes,
                skewed.total_bytes,
            ),
        );
        Some(self.cfg.salt_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matryoshka_engine::{ClusterConfig, MapOutputStats};

    fn engine() -> Engine {
        Engine::new(ClusterConfig::local_test()) // 2 machines x 4 cores
    }

    /// Feed the engine an observed shuffle without running one.
    fn observe(e: &Engine, operator: &'static str, records: &[u64], record_bytes: f64) {
        let b = e.parallelize(vec![0u8], 1);
        // A real (tiny) shuffle first so history plumbing is the real path…
        b.map(|x| (*x, 1u64)).reduce_by_key(|a, b| a + b).count().unwrap();
        // …then the synthetic observation under test.
        e.record_map_output(&MapOutputStats::from_partition_records(
            operator,
            records.to_vec(),
            record_bytes,
        ));
    }

    #[test]
    fn disabled_config_never_changes_the_plan() {
        let e = engine();
        observe(&e, "join", &[1_000, 1, 1, 1], 1000.0);
        let cfg = AdaptiveConfig::default();
        let planner = AdaptivePlanner::new(&e, &cfg);
        assert_eq!(planner.coalesced_partitions("x", 1200, Some(1)), 1200);
        assert_eq!(planner.salt_factor_for("join"), None);
        assert!(e.decisions().is_empty(), "disabled adaptivity must not log decisions");
    }

    #[test]
    fn coalescing_targets_bytes_with_core_floor() {
        let e = engine(); // 8 cores
        let cfg =
            AdaptiveConfig { enabled: true, target_partition_bytes: 100, ..Default::default() };
        let planner = AdaptivePlanner::new(&e, &cfg);
        // 950 bytes / 100 per partition = 10 partitions.
        assert_eq!(planner.coalesced_partitions("site", 1200, Some(950)), 10);
        // Tiny data still gets one partition per core.
        assert_eq!(planner.coalesced_partitions("site", 1200, Some(1)), 8);
        // Never more partitions than the static plan.
        assert_eq!(planner.coalesced_partitions("site", 4, Some(u64::MAX / 2)), 4);
        let log = e.decisions();
        assert!(!log.is_empty());
        assert_eq!(log[0].site, "adaptive_coalesce");
        assert_eq!(log[0].choice, "10");
    }

    #[test]
    fn coalescing_falls_back_to_engine_history() {
        let e = engine();
        observe(&e, "reduce_by_key", &[10, 10, 10, 10], 10.0); // 400 bytes total
        let cfg = AdaptiveConfig {
            enabled: true,
            target_partition_bytes: 100,
            min_partitions: 2,
            ..Default::default()
        };
        let planner = AdaptivePlanner::new(&e, &cfg);
        assert_eq!(planner.coalesced_partitions("site", 1200, None), 4);
    }

    #[test]
    fn salting_fires_only_on_observed_skew_of_the_same_operator() {
        let e = engine();
        observe(&e, "join", &[1_000, 1, 1, 1, 1, 1, 1, 1], 8.0); // ~8x skew
        let cfg = AdaptiveConfig { target_partition_bytes: 4_000, ..AdaptiveConfig::enabled() };
        let planner = AdaptivePlanner::new(&e, &cfg);
        assert_eq!(planner.salt_factor_for("join"), Some(8));
        assert_eq!(planner.salt_factor_for("co_group"), None, "different operator");
        let log = e.decisions();
        let salt = log.iter().find(|d| d.site == "adaptive_skew_salt").unwrap();
        assert!(salt.detail.contains("join"));
        assert!(salt.detail.contains("threshold"));
    }

    #[test]
    fn balanced_shuffles_are_not_salted() {
        let e = engine();
        observe(&e, "join", &[10, 10, 10, 10], 8.0);
        let cfg = AdaptiveConfig { target_partition_bytes: 1, ..AdaptiveConfig::enabled() };
        let planner = AdaptivePlanner::new(&e, &cfg);
        assert_eq!(planner.salt_factor_for("join"), None);
    }

    #[test]
    fn join_salting_skips_when_replication_outweighs_the_hot_partition() {
        let e = engine();
        observe(&e, "join", &[1_000, 1, 1, 1, 1, 1, 1, 1], 8.0); // hot partition 8000 bytes
        let cfg = AdaptiveConfig { target_partition_bytes: 4_000, ..AdaptiveConfig::enabled() };
        let planner = AdaptivePlanner::new(&e, &cfg);
        // Light side of 500 bytes: x8 replication (4000) fits under the hot
        // partition -> salt. A 2000-byte side replicates to 16000 -> keep.
        assert_eq!(planner.salt_factor_gated("join", Some(500)), Some(8));
        assert_eq!(planner.salt_factor_gated("join", Some(2_000)), None);
        let log = e.decisions();
        assert!(log.iter().any(|d| d.site == "adaptive_skew_salt" && d.choice == "keep"));
    }

    #[test]
    fn immaterial_hot_partitions_are_not_salted() {
        // A handful of records over many partitions: the max/mean ratio is
        // huge from placement noise alone, but the hot partition is tiny in
        // bytes, so salting must not fire under the default 64 MiB target.
        let e = engine();
        observe(&e, "join", &[10, 0, 0, 0, 0, 0, 0, 0], 8.0); // 8x skew, 80 bytes hot
        let cfg = AdaptiveConfig::enabled();
        let planner = AdaptivePlanner::new(&e, &cfg);
        assert_eq!(planner.salt_factor_for("join"), None);
        assert!(e.decisions().iter().all(|d| d.site != "adaptive_skew_salt"));
    }

    #[test]
    fn validate_catches_nonsensical_thresholds() {
        assert!(AdaptiveConfig::default().validate().is_empty(), "default (disabled) is fine");
        assert!(AdaptiveConfig::enabled().validate().is_empty(), "enabled defaults are fine");
        let silly = AdaptiveConfig {
            enabled: true,
            target_partition_bytes: 0,
            salt_factor: 1,
            skew_threshold_milli: 500,
            ..Default::default()
        };
        let warnings = silly.validate();
        assert_eq!(warnings.len(), 3);
        assert!(warnings.iter().any(|w| w.contains("target_partition_bytes")));
        assert!(warnings.iter().any(|w| w.contains("salt_factor")));
        assert!(warnings.iter().any(|w| w.contains("skew_threshold_milli")));
        let inert = AdaptiveConfig {
            enabled: true,
            coalesce: false,
            switch_joins: false,
            salt_skew: false,
            ..Default::default()
        };
        assert_eq!(inert.validate().len(), 1);
        // Disabled configs never warn, whatever the thresholds.
        let off = AdaptiveConfig { enabled: false, salt_factor: 0, ..Default::default() };
        assert!(off.validate().is_empty());
    }
}
