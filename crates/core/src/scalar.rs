//! [`InnerScalar`]: the lifted representation of a scalar inside a UDF
//! (paper Sec. 4.3).
//!
//! A scalar variable inside a lifted UDF stands for *many* scalar values —
//! one per original UDF invocation. Its flat representation is a
//! `Bag<(Tag, S)>` where the tag identifies the invocation. Unary scalar
//! operations lift to a `map`; binary scalar operations lift to an equi-join
//! on the tag followed by a `map`, with the join algorithm picked by the
//! runtime optimizer (Sec. 8.2).

use matryoshka_engine::{Bag, Data, Key, Result};

use crate::context::LiftingContext;
use crate::inner_bag::InnerBag;

/// The lifted form of a scalar: one `(tag, value)` record per original UDF
/// invocation. The tag is a unique key within the bag.
pub struct InnerScalar<T: Key, S: Data> {
    repr: Bag<(T, S)>,
    ctx: LiftingContext<T>,
}

impl<T: Key, S: Data> Clone for InnerScalar<T, S> {
    fn clone(&self) -> Self {
        InnerScalar { repr: self.repr.clone(), ctx: self.ctx.clone() }
    }
}

impl<T: Key, S: Data> InnerScalar<T, S> {
    /// Wrap an existing flat representation.
    pub fn from_repr(repr: Bag<(T, S)>, ctx: LiftingContext<T>) -> Self {
        InnerScalar { repr, ctx }
    }

    /// The flat `Bag<(Tag, S)>` representation.
    pub fn repr(&self) -> &Bag<(T, S)> {
        &self.repr
    }

    /// The lifting context (tags, size, optimizer config).
    pub fn ctx(&self) -> &LiftingContext<T> {
        &self.ctx
    }

    /// Lifted unary scalar operation (`unaryScalarOp`, Sec. 4.3):
    /// `s.map(f)` resolves to `s'.map((t, x) => (t, f(x)))`.
    pub fn map<S2: Data>(
        &self,
        f: impl Fn(&S) -> S2 + Send + Sync + 'static,
    ) -> InnerScalar<T, S2> {
        InnerScalar { repr: self.repr.map(move |(t, x)| (t.clone(), f(x))), ctx: self.ctx.clone() }
    }

    /// Lifted binary scalar operation (`binaryScalarOp`, Sec. 4.3):
    /// `binaryScalarOp(a, b)(f)` resolves to
    /// `a'.join(b').map((t, (x, y)) => (t, f(x, y)))`, joining on the tag.
    /// The join algorithm (broadcast vs. repartition) is the optimizer's
    /// runtime choice from the known InnerScalar size (Sec. 8.2).
    pub fn zip_with<S2: Data, S3: Data>(
        &self,
        other: &InnerScalar<T, S2>,
        f: impl Fn(&S, &S2) -> S3 + Send + Sync + 'static,
    ) -> InnerScalar<T, S3> {
        let joined = self.ctx.tag_join(&self.repr, other.repr());
        // The result is one scalar per tag, comparable in size to the
        // inputs — not the concatenation the join's static estimate assumes
        // (which would compound across loop iterations).
        let bytes = self.repr.record_bytes().max(other.repr().record_bytes());
        InnerScalar {
            repr: joined.map(move |(t, (x, y))| (t.clone(), f(x, y))).with_record_bytes(bytes),
            ctx: self.ctx.clone(),
        }
    }

    /// Reinterpret each scalar as a one-element inner bag (used when a
    /// scalar value flows into bag position, e.g. a BFS frontier seeded from
    /// one vertex).
    pub fn to_inner_bag(&self) -> InnerBag<T, S> {
        InnerBag::from_repr(self.repr.clone(), self.ctx.clone())
    }

    /// Materialize all `(tag, value)` pairs on the driver (an action).
    pub fn collect(&self) -> Result<Vec<(T, S)>> {
        self.repr.collect()
    }

    /// Override the modeled bytes per `(tag, value)` record (see
    /// [`Bag::with_record_bytes`]). Used when the per-tag scalar stands for
    /// a larger payload than its in-memory size (e.g. per-topic auxiliary
    /// state in Topic-Sensitive PageRank).
    pub fn with_record_bytes(&self, bytes: f64) -> Self {
        InnerScalar { repr: self.repr.with_record_bytes(bytes), ctx: self.ctx.clone() }
    }
}

impl<T: Key> LiftingContext<T> {
    /// The identity InnerScalar: each tag paired with itself. This is what
    /// the outer component of a `groupByKeyIntoNestedBag` starts from
    /// (Sec. 4.5).
    pub fn tags_scalar(&self) -> InnerScalar<T, T> {
        InnerScalar::from_repr(self.tags().map(|t| (t.clone(), t.clone())), self.clone())
    }

    /// Lift a driver-side constant into an InnerScalar: the value replicated
    /// for every tag. This is the lifted-UDF closure case of Sec. 5.2 (a
    /// plain scalar referenced inside a lifted UDF must be replicated per
    /// tag).
    pub fn constant<S: Data>(&self, value: S) -> InnerScalar<T, S> {
        let bytes = (std::mem::size_of::<(T, S)>() as f64).max(16.0);
        InnerScalar::from_repr(
            self.tags().map(move |t| (t.clone(), value.clone())).with_record_bytes(bytes),
            self.clone(),
        )
    }
}

impl<T: Key, S: Data> std::fmt::Debug for InnerScalar<T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InnerScalar").field("ctx", self.ctx()).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::MatryoshkaConfig;
    use matryoshka_engine::Engine;

    fn ctx_with_tags(e: &Engine, tags: Vec<u64>) -> LiftingContext<u64> {
        let n = tags.len() as u64;
        let bag = e.parallelize(tags, 2);
        LiftingContext::new(e.clone(), bag, n, MatryoshkaConfig::optimized())
    }

    fn sorted<T: Ord>(mut v: Vec<T>) -> Vec<T> {
        v.sort();
        v
    }

    #[test]
    fn unary_op_applies_per_tag() {
        let e = Engine::local();
        let ctx = ctx_with_tags(&e, vec![0, 1, 2]);
        let s = InnerScalar::from_repr(e.parallelize(vec![(0u64, 10), (1, 20), (2, 30)], 2), ctx);
        let out = sorted(s.map(|x| x + 1).collect().unwrap());
        assert_eq!(out, vec![(0, 11), (1, 21), (2, 31)]);
    }

    #[test]
    fn binary_op_joins_on_tags() {
        let e = Engine::local();
        let ctx = ctx_with_tags(&e, vec![0, 1]);
        let a = InnerScalar::from_repr(e.parallelize(vec![(0u64, 6), (1, 10)], 2), ctx.clone());
        let b = InnerScalar::from_repr(e.parallelize(vec![(1u64, 5), (0, 2)], 1), ctx);
        // Division: order matters, so this also checks tags matched right.
        let out = sorted(a.zip_with(&b, |x, y| x / y).collect().unwrap());
        assert_eq!(out, vec![(0, 3), (1, 2)]);
    }

    #[test]
    fn constant_replicates_per_tag() {
        let e = Engine::local();
        let ctx = ctx_with_tags(&e, vec![7, 8, 9]);
        let c = ctx.constant(1.5f64);
        let out =
            sorted(c.collect().unwrap().into_iter().map(|(t, v)| (t, (v * 2.0) as i64)).collect());
        assert_eq!(out, vec![(7, 3), (8, 3), (9, 3)]);
    }

    #[test]
    fn tags_scalar_is_identity() {
        let e = Engine::local();
        let ctx = ctx_with_tags(&e, vec![3, 4]);
        assert_eq!(sorted(ctx.tags_scalar().collect().unwrap()), vec![(3, 3), (4, 4)]);
    }

    #[test]
    fn binary_op_with_forced_repartition_agrees_with_broadcast() {
        let e = Engine::local();
        let tags: Vec<u64> = (0..100).collect();
        let pairs: Vec<(u64, u64)> = tags.iter().map(|&t| (t, t * 2)).collect();
        for choice in [
            crate::optimizer::JoinChoice::ForceBroadcast,
            crate::optimizer::JoinChoice::ForceRepartition,
        ] {
            let cfg = MatryoshkaConfig { tag_join: choice, ..MatryoshkaConfig::optimized() };
            let ctx = LiftingContext::new(e.clone(), e.parallelize(tags.clone(), 4), 100, cfg);
            let a = InnerScalar::from_repr(e.parallelize(pairs.clone(), 4), ctx.clone());
            let b = ctx.constant(1u64);
            let out = sorted(a.zip_with(&b, |x, y| x + y).collect().unwrap());
            let expect: Vec<(u64, u64)> = tags.iter().map(|&t| (t, t * 2 + 1)).collect();
            assert_eq!(out, expect);
        }
    }
}
