//! The runtime optimizer of the lowering phase (paper Sec. 8).
//!
//! Because the two-phase flattening defers physical operator selection to
//! runtime, the lowering phase can use *actual* intermediate cardinalities —
//! most importantly the InnerScalar size, which is known structurally at the
//! beginning of every lifted UDF (Sec. 8.1) — to pick partition counts
//! (Sec. 8.1), tag-join algorithms (Sec. 8.2), and the broadcast side of
//! half-lifted cross products (Sec. 8.3).

use matryoshka_engine::{Engine, JoinAlgorithm};

use crate::adaptive::AdaptiveConfig;

/// Strategy for joins between InnerBags and InnerScalars on tags (Sec. 8.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinChoice {
    /// Runtime choice from the tracked InnerScalar size (the paper's
    /// optimizer): repartition when the InnerScalar has enough elements to
    /// give work to all cores, broadcast otherwise.
    #[default]
    Auto,
    /// Always broadcast the InnerScalar side (ablation; fails with OOM for
    /// very large InnerScalars, Fig. 8 left).
    ForceBroadcast,
    /// Always repartition-join (ablation; up to an order of magnitude slower
    /// for small InnerScalars, Fig. 8 left).
    ForceRepartition,
}

/// Strategy for half-lifted `mapWithClosure` cross products (Sec. 8.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrossChoice {
    /// Runtime choice: broadcast the InnerScalar if it is small (single
    /// partition after Sec. 8.1 tuning), otherwise broadcast whichever input
    /// the size estimator says is smaller.
    #[default]
    Auto,
    /// Always broadcast the InnerScalar side (ablation, Fig. 8 right).
    ForceBroadcastScalar,
    /// Always broadcast the flat-bag side (ablation, Fig. 8 right).
    ForceBroadcastBag,
}

/// Knobs of the static plan-rewrite pass (`matryoshka-ir::analyze::plan`):
/// loop-invariant hoisting, CSE with auto-caching, and dead-operator
/// elimination. **Off by default** — default plans, decision logs, and the
/// golden simulated times are bit-identical with the pass disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanRewriteConfig {
    /// Master switch: when false the program is lowered verbatim.
    pub enabled: bool,
    /// Hoist loop-invariant subplans above loops and materialize them once.
    pub hoist: bool,
    /// Merge structurally identical subplans and cache multi-consumer ones.
    pub cse: bool,
    /// Drop pure operators whose outputs are never consumed.
    pub dce: bool,
}

impl PlanRewriteConfig {
    /// All three rewrites on.
    pub fn enabled() -> Self {
        PlanRewriteConfig { enabled: true, hoist: true, cse: true, dce: true }
    }
}

/// Knobs of the lowering phase. The defaults are the full optimizer; the
/// forced variants exist for the ablation experiments.
#[derive(Debug, Clone, Default)]
pub struct MatryoshkaConfig {
    /// InnerBag-InnerScalar join strategy (Sec. 8.2).
    pub tag_join: JoinChoice,
    /// Half-lifted cross-product strategy (Sec. 8.3).
    pub cross: CrossChoice,
    /// Derive partition counts from InnerScalar sizes (Sec. 8.1). When
    /// false, every lifted operator uses the engine's default parallelism.
    pub partition_tuning: bool,
    /// Feedback-driven re-optimization from observed map-output statistics
    /// (see [`crate::adaptive`]). Off by default: static plans, decision
    /// logs, and simulated times are unchanged.
    pub adaptive: AdaptiveConfig,
    /// Checkpoint the loop state of [`lifted_while`](crate::lifted_while)
    /// every this many iterations, truncating lineage for the engine's
    /// machine-loss fault model (see `docs/FAULTS.md`). `0` (the default)
    /// disables periodic checkpointing: plans, decision logs, and simulated
    /// times are unchanged.
    pub checkpoint_interval: usize,
    /// Static plan rewrites (hoist/CSE/DCE) applied by the IR lowering
    /// before execution. Off by default.
    pub plan: PlanRewriteConfig,
    /// Multi-tenant job-service scheduler and admission control (see
    /// [`crate::scheduler`] and `docs/SERVICE.md`). Only read by the
    /// service; a directly-driven lowering ignores it.
    pub scheduler: crate::scheduler::SchedulerConfig,
    /// Force the IR lowering's per-record scalar UDFs through the
    /// tree-walking `eval_pure` interpreter instead of the slot-resolved
    /// `CompiledUdf` evaluator (see `docs/ANALYSIS.md`, "UDF compilation").
    /// `false` (the default, including under [`MatryoshkaConfig::default`]
    /// and [`MatryoshkaConfig::optimized`]) compiles UDFs; `true` exists for
    /// the `udf_eval` ablation and for differential debugging. Compilation
    /// is value- and sim-transparent, so this knob never changes results,
    /// charge sequences, or simulated times.
    pub interpret_udfs: bool,
}

impl MatryoshkaConfig {
    /// The full optimizer (what the paper evaluates as "Matryoshka").
    pub fn optimized() -> Self {
        MatryoshkaConfig {
            tag_join: JoinChoice::Auto,
            cross: CrossChoice::Auto,
            partition_tuning: true,
            adaptive: AdaptiveConfig::default(),
            checkpoint_interval: 0,
            plan: PlanRewriteConfig::default(),
            scheduler: crate::scheduler::SchedulerConfig::default(),
            interpret_udfs: false,
        }
    }

    /// The full optimizer plus the adaptive re-optimizer (default adaptive
    /// thresholds).
    pub fn adaptive() -> Self {
        MatryoshkaConfig { adaptive: AdaptiveConfig::enabled(), ..MatryoshkaConfig::optimized() }
    }
}

/// Target number of InnerScalar records per partition when deriving
/// partition counts from sizes (Sec. 8.1). Small bags collapse to a single
/// partition, which also makes the common case of Sec. 8.3 ("InnerScalar has
/// only 1 partition => broadcast it") cheap to detect.
const SCALAR_RECORDS_PER_PARTITION: u64 = 4096;

/// Partition count for a bag of `size` InnerScalar records (Sec. 8.1).
///
/// Every call appends to the engine's lowering-decision log
/// ([`Engine::decisions`]) with the driving cardinality, so traces show why
/// each physical partition count was picked.
pub fn scalar_partitions(cfg: &MatryoshkaConfig, engine: &Engine, size: u64) -> usize {
    if !cfg.partition_tuning {
        let p = engine.config().default_parallelism;
        engine.record_decision(
            "partition_tuning",
            p.to_string(),
            size,
            0,
            "tuning disabled: default parallelism",
        );
        return p;
    }
    let by_size = size.div_ceil(SCALAR_RECORDS_PER_PARTITION) as usize;
    let p = by_size.clamp(1, engine.config().default_parallelism);
    engine.record_decision(
        "partition_tuning",
        p.to_string(),
        size,
        0,
        format!("{size} records / {SCALAR_RECORDS_PER_PARTITION} per partition"),
    );
    p
}

/// Target partition size (bytes) when deriving partition counts from data
/// volume (one partition per ~128 MB, like a filesystem block).
const TARGET_PARTITION_BYTES: u64 = 128 << 20;

/// Partition count for a bag of `size` records totalling `total_bytes`
/// (Sec. 8.1, extended to weigh bytes as well as cardinality).
pub fn partitions_for(
    cfg: &MatryoshkaConfig,
    engine: &Engine,
    size: u64,
    total_bytes: u64,
) -> usize {
    if !cfg.partition_tuning {
        let p = engine.config().default_parallelism;
        engine.record_decision(
            "partition_tuning",
            p.to_string(),
            size,
            total_bytes,
            "tuning disabled: default parallelism",
        );
        return p;
    }
    let by_size = size.div_ceil(SCALAR_RECORDS_PER_PARTITION) as usize;
    let by_bytes = total_bytes.div_ceil(TARGET_PARTITION_BYTES) as usize;
    let p = by_size.max(by_bytes).clamp(1, engine.config().default_parallelism);
    engine.record_decision(
        "partition_tuning",
        p.to_string(),
        size,
        total_bytes,
        format!("max(by records: {by_size}, by bytes: {by_bytes})"),
    );
    p
}

/// Fraction of a worker's memory beyond which an InnerScalar is too big to
/// broadcast profitably (shipping it to every machine, and holding the
/// deserialized hash table on each, stops paying off well before it OOMs).
pub const BROADCAST_CAP_FRACTION: f64 = 0.02;

/// Join algorithm for an InnerBag-InnerScalar tag join, given the
/// InnerScalar's size and total bytes (Sec. 8.2): broadcast while the
/// InnerScalar is too small to give work to all CPU cores; beyond that,
/// repartition once its payload is big enough that replicating it to every
/// machine costs more than shuffling it once.
pub fn tag_join_algorithm(
    cfg: &MatryoshkaConfig,
    engine: &Engine,
    scalar_size: u64,
    scalar_bytes: u64,
) -> JoinAlgorithm {
    let record = |algorithm: JoinAlgorithm, detail: String| {
        let choice = match algorithm {
            JoinAlgorithm::BroadcastRight => "broadcast",
            JoinAlgorithm::Repartition => "repartition",
        };
        engine.record_decision("tag_join", choice, scalar_size, scalar_bytes, detail);
        algorithm
    };
    match cfg.tag_join {
        JoinChoice::ForceBroadcast => {
            record(JoinAlgorithm::BroadcastRight, "forced by config".into())
        }
        JoinChoice::ForceRepartition => {
            record(JoinAlgorithm::Repartition, "forced by config".into())
        }
        JoinChoice::Auto => {
            let work_threshold = 2 * engine.total_cores() as u64;
            if scalar_size < work_threshold {
                return record(
                    JoinAlgorithm::BroadcastRight,
                    format!("{scalar_size} records < 2 x {} cores", engine.total_cores()),
                );
            }
            let cap = (engine.config().memory_per_machine as f64 * BROADCAST_CAP_FRACTION) as u64;
            if scalar_bytes > cap {
                record(
                    JoinAlgorithm::Repartition,
                    format!("{scalar_bytes} bytes > broadcast cap {cap}"),
                )
            } else {
                record(
                    JoinAlgorithm::BroadcastRight,
                    format!("{scalar_bytes} bytes <= broadcast cap {cap}"),
                )
            }
        }
    }
}

/// Which side of a half-lifted cross product to broadcast (Sec. 8.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossSide {
    /// Broadcast the InnerScalar; the flat bag stays partitioned.
    Scalar,
    /// Broadcast the flat bag; the InnerScalar stays partitioned.
    Bag,
}

/// Decide the broadcast side for a half-lifted cross product: a small,
/// single-partition InnerScalar (the common case after Sec. 8.1 tuning) is
/// broadcast outright; otherwise the estimated sizes are compared and the
/// smaller input is shipped (the paper's use of Spark's SizeEstimator).
pub fn cross_side(
    cfg: &MatryoshkaConfig,
    engine: &Engine,
    scalar_partitions: usize,
    scalar_bytes: u64,
    bag_bytes: Option<u64>,
) -> CrossSide {
    let record = |side: CrossSide, detail: String| {
        let choice = match side {
            CrossSide::Scalar => "broadcast_scalar",
            CrossSide::Bag => "broadcast_bag",
        };
        engine.record_decision(
            "cross_product",
            choice,
            scalar_partitions as u64,
            scalar_bytes,
            detail,
        );
        side
    };
    match cfg.cross {
        CrossChoice::ForceBroadcastScalar => record(CrossSide::Scalar, "forced by config".into()),
        CrossChoice::ForceBroadcastBag => record(CrossSide::Bag, "forced by config".into()),
        CrossChoice::Auto => {
            let cap = (engine.config().memory_per_machine as f64 * BROADCAST_CAP_FRACTION) as u64;
            if scalar_partitions <= 1 && scalar_bytes <= cap {
                return record(
                    CrossSide::Scalar,
                    format!("single-partition scalar of {scalar_bytes} bytes under cap {cap}"),
                );
            }
            match bag_bytes {
                Some(bb) if bb < scalar_bytes => record(
                    CrossSide::Bag,
                    format!("bag estimate {bb} bytes < scalar {scalar_bytes} bytes"),
                ),
                // Unknown bag size or bigger bag: ship the scalar.
                Some(bb) => record(
                    CrossSide::Scalar,
                    format!("scalar {scalar_bytes} bytes <= bag estimate {bb} bytes"),
                ),
                None => record(CrossSide::Scalar, "bag size unknown: ship the scalar".into()),
            }
        }
    }
}

// --- logical reordering (read/write sets) ------------------------------
//
// Besides the physical choices above, the lowering phase can reorder
// logical operators when UDF read/write sets prove it safe (in the style
// of Hueske et al., "Opening the Black Boxes in Data Flow Optimization").
// The *extraction* of these sets from UDF bodies lives with the IR's
// static analyzer (`matryoshka-ir::analyze::rw`); this module owns the
// engine-agnostic data model and the safety predicate so that any
// front-end can feed it.

use std::collections::{BTreeMap, BTreeSet};

/// Which fields of its input tuple a UDF reads (its *read set*).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UdfFieldUse {
    /// The UDF consumes its whole input (passes it on, compares it,
    /// tuples it, ...), so no per-field reasoning applies.
    pub reads_whole: bool,
    /// Indices of the tuple fields the UDF projects out of its input.
    pub reads: BTreeSet<usize>,
}

impl UdfFieldUse {
    /// A read set for a UDF that consumes its whole input.
    pub fn whole() -> UdfFieldUse {
        UdfFieldUse { reads_whole: true, reads: BTreeSet::new() }
    }
}

/// How a map UDF *forwards* input fields into its output tuple (the
/// write-set complement: output positions that are verbatim copies of
/// input fields).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MapForwards {
    /// The UDF is the identity: its output *is* its input.
    pub identity: bool,
    /// `forwards[j] = i`: output field `j` is a verbatim copy of input
    /// field `i`.
    pub forwards: BTreeMap<usize, usize>,
}

/// Is `filter(map(xs, m), p)` equivalent to `map(filter(xs, p'), m)`?
///
/// Safe exactly when every field the predicate reads from the *map output*
/// is a verbatim forward of some *map input* field — then `p'` is `p` with
/// each output-field projection rewritten through [`MapForwards::forwards`].
/// An identity map is trivially safe. A predicate that consumes its whole
/// input is only safe under an identity map.
pub fn filter_before_map_safe(pred_reads: &UdfFieldUse, map_fwd: &MapForwards) -> bool {
    if map_fwd.identity {
        return true;
    }
    if pred_reads.reads_whole {
        return false;
    }
    pred_reads.reads.iter().all(|f| map_fwd.forwards.contains_key(f))
}

#[cfg(test)]
pub(crate) fn tests_gb() -> u64 {
    1 << 30
}

#[cfg(test)]
mod tests {
    use super::*;
    use matryoshka_engine::ClusterConfig;

    fn engine() -> Engine {
        Engine::new(ClusterConfig::local_test()) // 8 cores
    }

    #[test]
    fn partition_tuning_collapses_small_scalars() {
        let cfg = MatryoshkaConfig::optimized();
        let e = engine();
        assert_eq!(scalar_partitions(&cfg, &e, 10), 1);
        assert_eq!(scalar_partitions(&cfg, &e, 4096), 1);
        assert!(scalar_partitions(&cfg, &e, 100_000) > 1);
    }

    #[test]
    fn without_tuning_uses_default_parallelism() {
        let cfg = MatryoshkaConfig { partition_tuning: false, ..Default::default() };
        let e = engine();
        assert_eq!(scalar_partitions(&cfg, &e, 10), e.config().default_parallelism);
    }

    #[test]
    fn partition_count_never_exceeds_default_parallelism() {
        let cfg = MatryoshkaConfig::optimized();
        let e = engine();
        assert_eq!(scalar_partitions(&cfg, &e, u64::MAX / 2), e.config().default_parallelism);
    }

    #[test]
    fn auto_join_small_scalars_broadcast() {
        let cfg = MatryoshkaConfig::optimized();
        let e = engine(); // 8 cores -> size threshold 16
        assert_eq!(tag_join_algorithm(&cfg, &e, 4, 1 << 40), JoinAlgorithm::BroadcastRight);
        assert_eq!(tag_join_algorithm(&cfg, &e, 15, 100), JoinAlgorithm::BroadcastRight);
    }

    #[test]
    fn auto_join_large_scalars_repartition_only_when_payload_is_big() {
        let cfg = MatryoshkaConfig::optimized();
        let e = engine(); // 4 GB/machine -> cap ~200 MB
                          // Many tags but tiny payload: still broadcast.
        assert_eq!(tag_join_algorithm(&cfg, &e, 10_000, 170_000), JoinAlgorithm::BroadcastRight);
        // Many tags, fat payload: repartition.
        assert_eq!(
            tag_join_algorithm(&cfg, &e, 10_000, 4 * crate::optimizer::tests_gb()),
            JoinAlgorithm::Repartition
        );
    }

    #[test]
    fn forced_join_choices_override_auto() {
        let e = engine();
        let b = MatryoshkaConfig { tag_join: JoinChoice::ForceBroadcast, ..Default::default() };
        let r = MatryoshkaConfig { tag_join: JoinChoice::ForceRepartition, ..Default::default() };
        assert_eq!(tag_join_algorithm(&b, &e, 1 << 40, 1 << 40), JoinAlgorithm::BroadcastRight);
        assert_eq!(tag_join_algorithm(&r, &e, 1, 1), JoinAlgorithm::Repartition);
    }

    #[test]
    fn cross_side_prefers_small_single_partition_scalar() {
        let cfg = MatryoshkaConfig::optimized();
        let e = engine();
        assert_eq!(cross_side(&cfg, &e, 1, 100, Some(1 << 40)), CrossSide::Scalar);
        // A single-partition but over-cap scalar falls back to comparison.
        assert_eq!(cross_side(&cfg, &e, 1, 1 << 40, Some(100)), CrossSide::Bag);
    }

    #[test]
    fn cross_side_uses_size_estimates_when_scalar_is_large() {
        let cfg = MatryoshkaConfig::optimized();
        let e = engine();
        assert_eq!(cross_side(&cfg, &e, 8, 1000, Some(10)), CrossSide::Bag);
        assert_eq!(cross_side(&cfg, &e, 8, 10, Some(1000)), CrossSide::Scalar);
        assert_eq!(cross_side(&cfg, &e, 8, 10, None), CrossSide::Scalar);
    }

    #[test]
    fn every_choice_lands_in_the_decision_log() {
        let cfg = MatryoshkaConfig::optimized();
        let e = engine();
        scalar_partitions(&cfg, &e, 10);
        partitions_for(&cfg, &e, 10_000, 1 << 30);
        tag_join_algorithm(&cfg, &e, 4, 100);
        tag_join_algorithm(&cfg, &e, 10_000, 4 * tests_gb());
        cross_side(&cfg, &e, 1, 100, Some(1 << 40));
        let log = e.decisions();
        assert_eq!(log.len(), 5);
        assert_eq!(log[0].site, "partition_tuning");
        assert_eq!(log[0].choice, "1");
        assert_eq!(log[0].cardinality, 10);
        assert_eq!(log[2].site, "tag_join");
        assert_eq!(log[2].choice, "broadcast");
        assert_eq!(log[3].choice, "repartition");
        assert_eq!(log[3].bytes, 4 * tests_gb());
        assert!(log[3].detail.contains("broadcast cap"));
        assert_eq!(log[4].site, "cross_product");
        assert_eq!(log[4].choice, "broadcast_scalar");
    }

    #[test]
    fn forced_choices_are_logged_as_forced() {
        let e = engine();
        let b = MatryoshkaConfig { tag_join: JoinChoice::ForceBroadcast, ..Default::default() };
        tag_join_algorithm(&b, &e, 1 << 40, 1 << 40);
        let log = e.decisions();
        assert_eq!(log.last().unwrap().detail, "forced by config");
    }

    #[test]
    fn filter_pushdown_safety_predicate() {
        // Identity map: always safe, even for whole-input predicates.
        let id = MapForwards { identity: true, ..Default::default() };
        assert!(filter_before_map_safe(&UdfFieldUse::whole(), &id));

        // Projecting map forwarding output 0 <- input 1.
        let fwd = MapForwards { identity: false, forwards: [(0, 1)].into_iter().collect() };
        let reads0 = UdfFieldUse { reads_whole: false, reads: [0].into_iter().collect() };
        let reads1 = UdfFieldUse { reads_whole: false, reads: [1].into_iter().collect() };
        assert!(filter_before_map_safe(&reads0, &fwd));
        assert!(!filter_before_map_safe(&reads1, &fwd), "field 1 is computed, not forwarded");
        assert!(!filter_before_map_safe(&UdfFieldUse::whole(), &fwd));

        // Predicate reading no fields at all (constant predicate): safe.
        assert!(filter_before_map_safe(&UdfFieldUse::default(), &fwd));
    }

    #[test]
    fn forced_cross_choices_override_auto() {
        let e = engine();
        let s = MatryoshkaConfig { cross: CrossChoice::ForceBroadcastScalar, ..Default::default() };
        let b = MatryoshkaConfig { cross: CrossChoice::ForceBroadcastBag, ..Default::default() };
        assert_eq!(cross_side(&s, &e, 100, u64::MAX, Some(0)), CrossSide::Scalar);
        assert_eq!(cross_side(&b, &e, 1, 0, None), CrossSide::Bag);
    }
}
