//! Lifted control flow (paper Sec. 6): `while` loops and `if` statements
//! inside lifted UDFs.
//!
//! A lifted loop runs the work of many original loops at once: its i-th
//! iteration executes the i-th iteration of every original loop that is
//! still running. Because the original loops may exit at different
//! iterations, every iteration must (P1) discard the tags whose loop has
//! finished, (P2) save the discarded parts as results, and (P3) exit when
//! nothing is left — exactly Listing 4 of the paper.

use matryoshka_engine::{Data, Key, Result};

use crate::context::LiftingContext;
use crate::inner_bag::InnerBag;
use crate::scalar::InnerScalar;

/// Data that can flow around a lifted loop: InnerScalars, InnerBags, and
/// tuples of them (the "loop variables" of Sec. 6.1, turned into lifted
/// state).
pub trait LiftedData<T: Key>: Clone {
    /// The lifting context of this state.
    fn ctx(&self) -> &LiftingContext<T>;
    /// Keep only the tags whose condition equals `keep` (the tag join +
    /// filter of Listing 4 lines 5-7), adopting `new_ctx` (the narrowed
    /// context over the surviving tags).
    fn filter_by_cond(
        &self,
        cond: &InnerScalar<T, bool>,
        keep: bool,
        new_ctx: &LiftingContext<T>,
    ) -> Self;
    /// Tag-disjoint union (Listing 4 line 8: accumulating results).
    fn union_with(&self, other: &Self) -> Self;
    /// The same data under a different context (used to restore the full
    /// context on loop exit).
    fn with_ctx(&self, ctx: &LiftingContext<T>) -> Self;
    /// Checkpoint the underlying flat representation to simulated replicated
    /// storage ([`Bag::checkpoint`](matryoshka_engine::Bag::checkpoint)),
    /// truncating lineage for the machine-loss fault model. Records and
    /// partitioning are unchanged.
    fn checkpoint(&self) -> Self;
}

impl<T: Key, S: Data> LiftedData<T> for InnerScalar<T, S> {
    fn ctx(&self) -> &LiftingContext<T> {
        InnerScalar::ctx(self)
    }

    fn filter_by_cond(
        &self,
        cond: &InnerScalar<T, bool>,
        keep: bool,
        new_ctx: &LiftingContext<T>,
    ) -> Self {
        let joined = self.ctx().tag_join(self.repr(), cond.repr());
        let repr = joined
            .filter(move |(_, (_, c))| *c == keep)
            .map(|(t, (s, _))| (t.clone(), s.clone()))
            .with_record_bytes(self.repr().record_bytes());
        InnerScalar::from_repr(repr, new_ctx.clone())
    }

    fn union_with(&self, other: &Self) -> Self {
        InnerScalar::from_repr(self.repr().union(other.repr()), self.ctx().clone())
    }

    fn with_ctx(&self, ctx: &LiftingContext<T>) -> Self {
        InnerScalar::from_repr(self.repr().clone(), ctx.clone())
    }

    fn checkpoint(&self) -> Self {
        InnerScalar::from_repr(self.repr().checkpoint(), self.ctx().clone())
    }
}

impl<T: Key, E: Data> LiftedData<T> for InnerBag<T, E> {
    fn ctx(&self) -> &LiftingContext<T> {
        InnerBag::ctx(self)
    }

    fn filter_by_cond(
        &self,
        cond: &InnerScalar<T, bool>,
        keep: bool,
        new_ctx: &LiftingContext<T>,
    ) -> Self {
        let joined = self.ctx().tag_join(self.repr(), cond.repr());
        let repr = joined
            .filter(move |(_, (_, c))| *c == keep)
            .map(|(t, (e, _))| (t.clone(), e.clone()))
            .with_record_bytes(self.repr().record_bytes());
        InnerBag::from_repr(repr, new_ctx.clone())
    }

    fn union_with(&self, other: &Self) -> Self {
        InnerBag::from_repr(self.repr().union(other.repr()), self.ctx().clone())
    }

    fn with_ctx(&self, ctx: &LiftingContext<T>) -> Self {
        self.with_ctx(ctx.clone())
    }

    fn checkpoint(&self) -> Self {
        InnerBag::from_repr(self.repr().checkpoint(), InnerBag::ctx(self).clone())
    }
}

impl<T: Key, A: LiftedData<T>, B: LiftedData<T>> LiftedData<T> for (A, B) {
    fn ctx(&self) -> &LiftingContext<T> {
        self.0.ctx()
    }
    fn filter_by_cond(
        &self,
        cond: &InnerScalar<T, bool>,
        keep: bool,
        new_ctx: &LiftingContext<T>,
    ) -> Self {
        (self.0.filter_by_cond(cond, keep, new_ctx), self.1.filter_by_cond(cond, keep, new_ctx))
    }
    fn union_with(&self, other: &Self) -> Self {
        (self.0.union_with(&other.0), self.1.union_with(&other.1))
    }
    fn with_ctx(&self, ctx: &LiftingContext<T>) -> Self {
        (self.0.with_ctx(ctx), self.1.with_ctx(ctx))
    }
    fn checkpoint(&self) -> Self {
        (self.0.checkpoint(), self.1.checkpoint())
    }
}

impl<T: Key, A: LiftedData<T>, B: LiftedData<T>, C: LiftedData<T>> LiftedData<T> for (A, B, C) {
    fn ctx(&self) -> &LiftingContext<T> {
        self.0.ctx()
    }
    fn filter_by_cond(
        &self,
        cond: &InnerScalar<T, bool>,
        keep: bool,
        new_ctx: &LiftingContext<T>,
    ) -> Self {
        (
            self.0.filter_by_cond(cond, keep, new_ctx),
            self.1.filter_by_cond(cond, keep, new_ctx),
            self.2.filter_by_cond(cond, keep, new_ctx),
        )
    }
    fn union_with(&self, other: &Self) -> Self {
        (self.0.union_with(&other.0), self.1.union_with(&other.1), self.2.union_with(&other.2))
    }
    fn with_ctx(&self, ctx: &LiftingContext<T>) -> Self {
        (self.0.with_ctx(ctx), self.1.with_ctx(ctx), self.2.with_ctx(ctx))
    }
    fn checkpoint(&self) -> Self {
        (self.0.checkpoint(), self.1.checkpoint(), self.2.checkpoint())
    }
}

/// A lifted do-while loop (paper Listing 4).
///
/// `body` maps the loop state to `(next_state, continue_condition)`; the
/// per-tag boolean condition is `true` while that tag's original loop keeps
/// running. Each lifted iteration:
///
/// 1. runs the (already lifted) body once for all live tags,
/// 2. splits the output on the condition (P1),
/// 3. accumulates the finished tags' state into the result (P2),
/// 4. exits when no tag wants to continue (P3) — checked with one engine
///    job per iteration, the `bodyIn.repr.notEmpty` of Listing 4 line 9.
///
/// `max_iterations`, when given, force-finishes all remaining tags after
/// that many iterations (a safety net the paper's programs express as part
/// of their exit conditions).
///
/// When [`MatryoshkaConfig::checkpoint_interval`](crate::MatryoshkaConfig)
/// is non-zero, the surviving loop state is checkpointed every that many
/// iterations ([`Bag::checkpoint`](matryoshka_engine::Bag::checkpoint)),
/// bounding how much lineage a simulated machine loss has to replay at the
/// price of a modeled checkpoint write (see `docs/FAULTS.md`).
///
/// Loop-invariant subplans hoisted above a lowered loop by the IR's
/// plan-rewrite pass (`matryoshka_ir::analyze::plan`, see
/// `docs/ANALYSIS.md`) persist naturally across iterations here: the
/// hoisted binding is an engine [`Bag`](matryoshka_engine::Bag) whose
/// partitions memoize on first evaluation (behind a `cache` node, a fusion
/// barrier), so every iteration of the body closure reuses the same
/// materialized `Arc` partitions instead of replaying the subplan's
/// lineage.
pub fn lifted_while<T: Key, S: LiftedData<T>>(
    init: &S,
    body: impl Fn(&S) -> Result<(S, InnerScalar<T, bool>)>,
    max_iterations: Option<usize>,
) -> Result<S> {
    let full_ctx = init.ctx().clone();
    let mut body_in = init.clone();
    let mut result: Option<S> = None;
    let mut iterations = 0usize;
    loop {
        let (body_out, cond) = body(&body_in)?;
        iterations += 1;
        let cont_tags = cond.repr().filter(|(_, c)| *c).map(|(t, _)| t.clone());
        // P3 exit check, one job per lifted iteration (not per inner loop!).
        let n_cont = cont_tags.count()?;
        let prev = body_in.ctx().size();
        body_in.ctx().engine().record_decision(
            "lifted_while",
            if n_cont == 0 { "exit" } else { "continue" },
            n_cont,
            0,
            format!("iteration {iterations}: {n_cont} of {prev} tags continue"),
        );
        let done_tags = cond.repr().filter(|(_, c)| !*c).map(|(t, _)| t.clone());
        let done_ctx = body_in.ctx().narrowed(done_tags, prev.saturating_sub(n_cont));
        // P1 + P2: retire finished tags into the result.
        let finished = body_out.filter_by_cond(&cond, false, &done_ctx);
        result = Some(match result {
            None => finished,
            Some(r) => r.union_with(&finished),
        });
        if n_cont == 0 {
            break;
        }
        let cont_ctx = body_in.ctx().narrowed(cont_tags, n_cont);
        if let Some(max) = max_iterations {
            if iterations >= max {
                let rest = body_out.filter_by_cond(&cond, true, &cont_ctx);
                result = Some(result.expect("set above").union_with(&rest));
                break;
            }
        }
        body_in = body_out.filter_by_cond(&cond, true, &cont_ctx);
        let interval = full_ctx.config().checkpoint_interval;
        if interval > 0 && iterations.is_multiple_of(interval) {
            full_ctx.engine().record_decision(
                "checkpoint",
                "lifted_while",
                n_cont,
                0,
                format!("iteration {iterations}: checkpoint loop state, {n_cont} live tags"),
            );
            body_in = body_in.checkpoint();
        }
    }
    Ok(result.expect("do-while body runs at least once").with_ctx(&full_ctx))
}

/// A lifted `if` statement (paper Sec. 6.2): both branches execute, each
/// over only the tags whose condition selects it, and the outputs are
/// unioned. Uses the same tag join + filter machinery as the lifted loop.
pub fn lifted_if<T: Key, In: LiftedData<T>, Out: LiftedData<T>>(
    cond: &InnerScalar<T, bool>,
    input: &In,
    then_branch: impl FnOnce(In) -> Result<Out>,
    else_branch: impl FnOnce(In) -> Result<Out>,
) -> Result<Out> {
    let then_tags = cond.repr().filter(|(_, c)| *c).map(|(t, _)| t.clone());
    let n_then = then_tags.count()?;
    let total = input.ctx().size();
    let else_tags = cond.repr().filter(|(_, c)| !*c).map(|(t, _)| t.clone());
    let then_ctx = input.ctx().narrowed(then_tags, n_then);
    let else_ctx = input.ctx().narrowed(else_tags, total.saturating_sub(n_then));
    let t_out = then_branch(input.filter_by_cond(cond, true, &then_ctx))?;
    let e_out = else_branch(input.filter_by_cond(cond, false, &else_ctx))?;
    Ok(t_out.union_with(&e_out).with_ctx(input.ctx()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::MatryoshkaConfig;
    use matryoshka_engine::Engine;

    fn sorted<X: Ord>(mut v: Vec<X>) -> Vec<X> {
        v.sort();
        v
    }

    fn ctx(e: &Engine, tags: Vec<u64>) -> LiftingContext<u64> {
        let n = tags.len() as u64;
        LiftingContext::new(e.clone(), e.parallelize(tags, 2), n, MatryoshkaConfig::optimized())
    }

    /// Each tag t counts down from its initial value; loops exit at
    /// different iterations (tag 0 immediately, tag 3 after 3 decrements).
    #[test]
    fn loops_exit_at_different_iterations() {
        let e = Engine::local();
        let c = ctx(&e, vec![0, 1, 2, 3]);
        let init =
            InnerScalar::from_repr(e.parallelize(vec![(0u64, 0i64), (1, 1), (2, 2), (3, 3)], 2), c);
        let out = lifted_while(
            &init,
            |s: &InnerScalar<u64, i64>| {
                let next = s.map(|x| x - 1);
                let cond = next.map(|x| *x > 0);
                Ok((next, cond))
            },
            None,
        )
        .unwrap();
        // Every counter ends exactly at 0 or below after its own number of
        // iterations: tag 0 ran once (-1), others count down to 0.
        assert_eq!(sorted(out.collect().unwrap()), vec![(0, -1), (1, 0), (2, 0), (3, 0)]);
    }

    #[test]
    fn loop_jobs_are_bounded_by_iterations_not_tags() {
        let e = Engine::local();
        // Many tags, all finishing after 3 iterations.
        let tags: Vec<u64> = (0..500).collect();
        let c = ctx(&e, tags.clone());
        let init =
            InnerScalar::from_repr(e.parallelize(tags.iter().map(|&t| (t, 3i64)).collect(), 4), c);
        let s0 = e.stats();
        let _ = lifted_while(
            &init,
            |s: &InnerScalar<u64, i64>| {
                let next = s.map(|x| x - 1);
                let cond = next.map(|x| *x > 0);
                Ok((next, cond))
            },
            None,
        )
        .unwrap();
        let d = e.stats().since(&s0);
        // One exit-check job per lifted iteration (3 iterations), maybe a
        // couple more for broadcasts — but nowhere near 500.
        assert!(d.jobs < 20, "jobs must not scale with tag count, got {}", d.jobs);
    }

    #[test]
    fn max_iterations_force_finishes() {
        let e = Engine::local();
        let c = ctx(&e, vec![0, 1]);
        let init = InnerScalar::from_repr(e.parallelize(vec![(0u64, 0i64), (1, 0)], 1), c);
        let out = lifted_while(
            &init,
            |s: &InnerScalar<u64, i64>| {
                let next = s.map(|x| x + 1);
                let cond = next.map(|_| true); // would never exit
                Ok((next, cond))
            },
            Some(5),
        )
        .unwrap();
        assert_eq!(sorted(out.collect().unwrap()), vec![(0, 5), (1, 5)]);
    }

    #[test]
    fn loop_over_tuple_state() {
        let e = Engine::local();
        let c = ctx(&e, vec![0, 1]);
        let counter =
            InnerScalar::from_repr(e.parallelize(vec![(0u64, 2i64), (1, 1)], 1), c.clone());
        let acc = InnerScalar::from_repr(e.parallelize(vec![(0u64, 0i64), (1, 0)], 1), c);
        let out = lifted_while(
            &(counter, acc),
            |(cnt, acc): &(InnerScalar<u64, i64>, InnerScalar<u64, i64>)| {
                let next_cnt = cnt.map(|x| x - 1);
                let next_acc = acc.map(|x| x + 10);
                let cond = next_cnt.map(|x| *x > 0);
                Ok(((next_cnt, next_acc), cond))
            },
            None,
        )
        .unwrap();
        // Tag 0 iterates twice (acc 20), tag 1 once (acc 10).
        assert_eq!(sorted(out.1.collect().unwrap()), vec![(0, 20), (1, 10)]);
    }

    #[test]
    fn periodic_checkpointing_preserves_results_and_writes_bytes() {
        let run = |interval: usize| {
            let e = Engine::local();
            let mut cfg = MatryoshkaConfig::optimized();
            cfg.checkpoint_interval = interval;
            let tags: Vec<u64> = (0..4).collect();
            let n = tags.len() as u64;
            let c = LiftingContext::new(e.clone(), e.parallelize(tags, 2), n, cfg);
            let init = InnerScalar::from_repr(
                e.parallelize(vec![(0u64, 6i64), (1, 5), (2, 4), (3, 1)], 2),
                c,
            );
            let out = lifted_while(
                &init,
                |s: &InnerScalar<u64, i64>| {
                    let next = s.map(|x| x - 1);
                    let cond = next.map(|x| *x > 0);
                    Ok((next, cond))
                },
                None,
            )
            .unwrap();
            (sorted(out.collect().unwrap()), e.stats(), e.decisions())
        };
        let (plain, plain_stats, _) = run(0);
        let (ckpt, ckpt_stats, decisions) = run(2);
        assert_eq!(plain, ckpt, "checkpointing must not change loop results");
        assert_eq!(plain_stats.checkpoint_bytes, 0);
        assert!(ckpt_stats.checkpoint_bytes > 0, "interval=2 must write checkpoints");
        assert!(
            decisions.iter().any(|d| d.site == "checkpoint"),
            "checkpoints must be visible in the decision log"
        );
    }

    #[test]
    fn lifted_if_routes_tags_to_branches() {
        let e = Engine::local();
        let c = ctx(&e, vec![0, 1, 2, 3]);
        let vals = InnerScalar::from_repr(
            e.parallelize(vec![(0u64, 1i64), (1, -2), (2, 3), (3, -4)], 2),
            c,
        );
        let cond = vals.map(|x| *x >= 0);
        let out = lifted_if(
            &cond,
            &vals,
            |pos: InnerScalar<u64, i64>| Ok(pos.map(|x| x * 10)),
            |neg: InnerScalar<u64, i64>| Ok(neg.map(|x| -x)),
        )
        .unwrap();
        assert_eq!(sorted(out.collect().unwrap()), vec![(0, 10), (1, 2), (2, 30), (3, 4)]);
    }

    #[test]
    fn lifted_if_over_inner_bags() {
        let e = Engine::local();
        let c = ctx(&e, vec![0, 1]);
        let b =
            InnerBag::from_repr(e.parallelize(vec![(0u64, 1i64), (0, 2), (1, 5)], 2), c.clone());
        // tags whose bag sums > 4 double their elements; others zero them.
        let sums = b.reduce(|a, x| a + x);
        let cond = sums.map(|s| *s > 4);
        let out = lifted_if(
            &cond,
            &b,
            |big: InnerBag<u64, i64>| Ok(big.map(|x| x * 2)),
            |small: InnerBag<u64, i64>| Ok(small.map(|_| 0)),
        )
        .unwrap();
        assert_eq!(sorted(out.collect().unwrap()), vec![(0, 0), (0, 0), (1, 10)]);
    }
}
