//! Configuration of the multi-tenant job service's scheduler and admission
//! control (crate `matryoshka-service`; see `docs/SERVICE.md`).
//!
//! Lives here rather than in the service crate so that programs, tools, and
//! benches can describe a service deployment with the same config type they
//! already use for the optimizer ([`crate::MatryoshkaConfig`]'s `scheduler`
//! field), and so the IR front-end can surface scheduler
//! validation errors without depending on the service.
//!
//! All quantities here are *simulated*: pool weights divide virtual core
//! time on the modeled cluster, and `total_slots` counts simulated cores,
//! not host threads. Host execution always goes through the process-wide
//! shared worker pool of `matryoshka-engine`.

/// How the service orders runnable jobs across pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulingPolicy {
    /// Strict submission order across all pools (a single global queue;
    /// pool `max_concurrent` caps still apply).
    #[default]
    Fifo,
    /// Weighted fair share: whenever core slots free up, the runnable pool
    /// with the smallest weight-normalized consumed virtual core time runs
    /// next (ties break by pool order, then submission order), so pools
    /// converge to core-time shares proportional to their weights.
    FairShare,
}

/// One scheduler pool: a named share of the service's simulated cores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolConfig {
    /// Pool name, unique within a [`SchedulerConfig`]. Submissions address
    /// pools by name; an unknown name is rejected at admission.
    pub name: String,
    /// Relative fair-share weight (must be `>= 1`): a weight-2 pool is
    /// entitled to twice the virtual core time of a weight-1 pool while
    /// both have queued work. Ignored under [`SchedulingPolicy::Fifo`].
    pub weight: u64,
    /// Maximum jobs of this pool running concurrently; `0` means no
    /// per-pool cap (the global `total_slots` still limits concurrency).
    pub max_concurrent: usize,
}

impl PoolConfig {
    /// A pool with the given name and weight and no concurrency cap.
    pub fn new(name: impl Into<String>, weight: u64) -> PoolConfig {
        PoolConfig { name: name.into(), weight, max_concurrent: 0 }
    }

    /// Cap the number of concurrently running jobs of this pool.
    pub fn with_max_concurrent(mut self, max: usize) -> PoolConfig {
        self.max_concurrent = max;
        self
    }
}

/// Scheduler and admission-control knobs of the job service.
///
/// The default is a single unweighted `default` pool, FIFO order, 8
/// simulated cores, and a 64-entry admission queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Job ordering policy.
    pub policy: SchedulingPolicy,
    /// The scheduler pools. Must be non-empty with unique names.
    pub pools: Vec<PoolConfig>,
    /// Admission bound: jobs queued (admitted but not yet running). A
    /// submission arriving with the queue full is rejected with a reason
    /// rather than blocking the submitter (backpressure).
    pub queue_capacity: usize,
    /// Simulated cores the service multiplexes between jobs. A job occupies
    /// its requested slots (clamped to this) for its whole virtual runtime.
    pub total_slots: usize,
    /// Core slots charged to a job that does not request a count.
    pub default_slots: usize,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            policy: SchedulingPolicy::default(),
            pools: vec![PoolConfig::new("default", 1)],
            queue_capacity: 64,
            total_slots: 8,
            default_slots: 1,
        }
    }
}

impl SchedulerConfig {
    /// A weighted fair-share config with the given `(name, weight)` pools.
    pub fn fair_share<S: Into<String>>(pools: impl IntoIterator<Item = (S, u64)>) -> Self {
        SchedulerConfig {
            policy: SchedulingPolicy::FairShare,
            pools: pools.into_iter().map(|(n, w)| PoolConfig::new(n, w)).collect(),
            ..SchedulerConfig::default()
        }
    }

    /// Index of the pool named `name`, if any.
    pub fn pool_index(&self, name: &str) -> Option<usize> {
        self.pools.iter().position(|p| p.name == name)
    }

    /// Check the config for internal consistency. The service refuses to
    /// start on an invalid config; the message names the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.pools.is_empty() {
            return Err("scheduler config has no pools".to_string());
        }
        for (i, p) in self.pools.iter().enumerate() {
            if p.name.is_empty() {
                return Err(format!("pool {i} has an empty name"));
            }
            if p.weight == 0 {
                return Err(format!("pool `{}` has weight 0 (must be >= 1)", p.name));
            }
            if self.pools[..i].iter().any(|q| q.name == p.name) {
                return Err(format!("duplicate pool name `{}`", p.name));
            }
        }
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be >= 1".to_string());
        }
        if self.total_slots == 0 {
            return Err("total_slots must be >= 1".to_string());
        }
        if self.default_slots == 0 || self.default_slots > self.total_slots {
            return Err(format!(
                "default_slots must be in 1..={} (got {})",
                self.total_slots, self.default_slots
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let cfg = SchedulerConfig::default();
        assert_eq!(cfg.validate(), Ok(()));
        assert_eq!(cfg.pool_index("default"), Some(0));
        assert_eq!(cfg.pool_index("nope"), None);
    }

    #[test]
    fn fair_share_builder_sets_policy_and_pools() {
        let cfg = SchedulerConfig::fair_share([("batch", 1), ("interactive", 3)]);
        assert_eq!(cfg.policy, SchedulingPolicy::FairShare);
        assert_eq!(cfg.pools.len(), 2);
        assert_eq!(cfg.pools[1].weight, 3);
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = SchedulerConfig::default();
        cfg.pools.clear();
        assert!(cfg.validate().unwrap_err().contains("no pools"));

        let mut cfg = SchedulerConfig::default();
        cfg.pools[0].weight = 0;
        assert!(cfg.validate().unwrap_err().contains("weight 0"));

        let mut cfg = SchedulerConfig::default();
        cfg.pools.push(PoolConfig::new("default", 2));
        assert!(cfg.validate().unwrap_err().contains("duplicate"));

        let cfg = SchedulerConfig { queue_capacity: 0, ..SchedulerConfig::default() };
        assert!(cfg.validate().unwrap_err().contains("queue_capacity"));

        let cfg = SchedulerConfig { default_slots: 9, ..SchedulerConfig::default() };
        assert!(cfg.validate().unwrap_err().contains("default_slots"));
    }

    #[test]
    fn pool_builder_caps_concurrency() {
        let p = PoolConfig::new("batch", 2).with_max_concurrent(1);
        assert_eq!(p.max_concurrent, 1);
    }
}
