//! Lifting non-map UDFs by splitting (paper Sec. 4.6): "we basically split
//! a complex operation into a map with a UDF plus the UDF-less version of
//! the original operation."
//!
//! These are the lifted forms of `groupBy(keyFunc)`, `join` with key UDFs,
//! and `flatMap` — each reduced to a `map` (whose UDF lifting Sec. 4.2
//! handles) followed by the UDF-less primitive, exactly the paper's
//! transformation:
//!
//! - `xs.groupBy(keyFunc)`  becomes `xs.map(x => (keyFunc(x), x)).groupByKey()`
//! - `xs.flatMap(f)`        becomes `xs.map(f).flatten()`
//! - `xs.joinBy(kf, ys, kg)` becomes key-by maps plus the plain equi-join.

use matryoshka_engine::{Data, Key, Result};

use crate::inner_bag::InnerBag;
use crate::nested::NestedBag;
use crate::scalar::InnerScalar;

impl<T: Key, E: Data> InnerBag<T, E> {
    /// Lifted `groupBy(keyFunc)` (Sec. 4.6): key-by map + UDF-less
    /// `group_by_key`, yielding per-tag groups keyed by the UDF's key.
    pub fn group_by<K: Key>(
        &self,
        key_fn: impl Fn(&E) -> K + Send + Sync + 'static,
    ) -> InnerBag<T, (K, Vec<E>)> {
        self.map(move |e| (key_fn(e), e.clone())).group_by_key()
    }

    /// Lifted join with key-extraction UDFs (Sec. 4.6): both sides are
    /// keyed by a map, then the plain lifted equi-join runs on the
    /// composite `(tag, key)`.
    pub fn join_by<K: Key, F: Data>(
        &self,
        other: &InnerBag<T, F>,
        left_key: impl Fn(&E) -> K + Send + Sync + 'static,
        right_key: impl Fn(&F) -> K + Send + Sync + 'static,
    ) -> InnerBag<T, (E, F)> {
        let keyed_l = self.map(move |e| (left_key(e), e.clone()));
        let keyed_r = other.map(move |f| (right_key(f), f.clone()));
        keyed_l.join(&keyed_r).map(|(_, (e, f))| (e.clone(), f.clone()))
    }

    /// Lifted `flatMap(f)` as `map(f).flatten()` (Sec. 4.6) — provided as an
    /// explicit two-step form for parity with the paper; the fused
    /// [`InnerBag::flat_map`] is equivalent and cheaper.
    pub fn flat_map_via_split<U: Data>(
        &self,
        f: impl Fn(&E) -> Vec<U> + Send + Sync + 'static,
    ) -> InnerBag<T, U> {
        // map to per-element vectors, then remove one nesting level while
        // keeping the tags (the "flatten" that preserves the lifting tag).
        self.map(f).flat_map(|v| v.clone())
    }

    // --- per-tag aggregate conveniences over fold (Sec. 4.4) ------------

    /// Per-tag sum of a numeric projection (zero-filled).
    pub fn sum_by(&self, f: impl Fn(&E) -> f64 + Send + Sync + 'static) -> InnerScalar<T, f64> {
        self.fold(0.0, move |a, e| a + f(e), |a, b| a + b)
    }

    /// Per-tag minimum by natural order (absent for empty tags, like
    /// `reduce`).
    pub fn min(&self) -> InnerScalar<T, E>
    where
        E: Ord,
    {
        self.reduce(|a, b| if a <= b { a.clone() } else { b.clone() })
    }

    /// Per-tag maximum by natural order (absent for empty tags).
    pub fn max(&self) -> InnerScalar<T, E>
    where
        E: Ord,
    {
        self.reduce(|a, b| if a >= b { a.clone() } else { b.clone() })
    }

    /// Per-tag mean of a numeric projection; `None` for empty tags.
    pub fn mean_by(
        &self,
        f: impl Fn(&E) -> f64 + Send + Sync + 'static,
    ) -> InnerScalar<T, Option<f64>> {
        self.fold(
            (0.0, 0u64),
            move |acc, e| (acc.0 + f(e), acc.1 + 1),
            |a, b| (a.0 + b.0, a.1 + b.1),
        )
        .map(|(s, n)| if *n == 0 { None } else { Some(s / *n as f64) })
    }
}

impl<T: Key, K: Key, V: Data> InnerBag<T, (K, V)> {
    /// Lifted left outer equi-join on `(tag, key)` composites: unmatched
    /// left records keep `None`.
    pub fn left_outer_join<W: Data>(
        &self,
        other: &InnerBag<T, (K, W)>,
    ) -> InnerBag<T, (K, (V, Option<W>))> {
        let l = self.repr().map(|(t, (k, v))| ((t.clone(), k.clone()), v.clone()));
        let r = other.repr().map(|(t, (k, w))| ((t.clone(), k.clone()), w.clone()));
        let joined = l.left_outer_join(&r);
        InnerBag::from_repr(
            joined.map(|((t, k), (v, w))| (t.clone(), (k.clone(), (v.clone(), w.clone())))),
            self.ctx().clone(),
        )
    }

    /// Lifted `coGroup` on `(tag, key)` composites.
    pub fn co_group<W: Data>(
        &self,
        other: &InnerBag<T, (K, W)>,
    ) -> InnerBag<T, (K, (Vec<V>, Vec<W>))> {
        let l = self.repr().map(|(t, (k, v))| ((t.clone(), k.clone()), v.clone()));
        let r = other.repr().map(|(t, (k, w))| ((t.clone(), k.clone()), w.clone()));
        let grouped = l.co_group(&r);
        InnerBag::from_repr(
            grouped.map(|((t, k), (vs, ws))| (t.clone(), (k.clone(), (vs.clone(), ws.clone())))),
            self.ctx().clone(),
        )
    }
}

/// Flatten a NestedBag back into its `Bag[(O, I)]` pairing: the UDF-less
/// consumer the parsing phase's case 3 mentions ("the top-level operation
/// can only be a UDF-less bag operation, which all have their flattened
/// versions on NestedBag").
impl<T: Key, O: Data, I: Data> NestedBag<T, O, I> {
    /// Pair every inner element with its outer component (one flat bag).
    pub fn flatten_pairs(&self) -> Result<matryoshka_engine::Bag<(O, I)>> {
        let joined = self.inner().map_with_scalar(self.outer(), |i, o| (o.clone(), i.clone()));
        Ok(joined.repr().map(|(_, p)| p.clone()))
    }

    /// Per-tag inner-bag sizes as an InnerScalar (zero-filled).
    pub fn group_sizes(&self) -> InnerScalar<T, u64> {
        self.inner().count()
    }
}

#[cfg(test)]
mod tests {
    use crate::context::LiftingContext;
    use crate::inner_bag::InnerBag;
    use crate::optimizer::MatryoshkaConfig;
    use matryoshka_engine::Engine;

    fn ctx(e: &Engine, tags: Vec<u64>) -> LiftingContext<u64> {
        let n = tags.len() as u64;
        LiftingContext::new(e.clone(), e.parallelize(tags, 2), n, MatryoshkaConfig::optimized())
    }

    fn sorted<X: Ord>(mut v: Vec<X>) -> Vec<X> {
        v.sort();
        v
    }

    #[test]
    fn group_by_splits_into_keyby_plus_groupbykey() {
        let e = Engine::local();
        let c = ctx(&e, vec![0, 1]);
        let b =
            InnerBag::from_repr(e.parallelize(vec![(0u64, 3i64), (0, 4), (0, 6), (1, 5)], 2), c);
        // Group by parity within each tag.
        let mut out = b.group_by(|x| x % 2).collect().unwrap();
        out.iter_mut().for_each(|(_, (_, vs))| vs.sort());
        out.sort_by_key(|(t, (k, _))| (*t, *k));
        assert_eq!(out, vec![(0, (0, vec![4, 6])), (0, (1, vec![3])), (1, (1, vec![5]))]);
    }

    #[test]
    fn join_by_keys_with_udfs_within_tags() {
        let e = Engine::local();
        let c = ctx(&e, vec![0, 1]);
        let l = InnerBag::from_repr(e.parallelize(vec![(0u64, 10i64), (1, 20)], 2), c.clone());
        let r = InnerBag::from_repr(e.parallelize(vec![(0u64, 100i64), (1, 200), (1, 210)], 2), c);
        // Key both sides by value % 10 == 0 (constant key): joins within tag.
        let out = sorted(l.join_by(&r, |x| *x % 2, |y| *y % 2).collect().unwrap());
        assert_eq!(out, vec![(0, (10, 100)), (1, (20, 200)), (1, (20, 210))]);
    }

    #[test]
    fn flat_map_via_split_equals_flat_map() {
        let e = Engine::local();
        let c = ctx(&e, vec![0, 1]);
        let b = InnerBag::from_repr(e.parallelize(vec![(0u64, 2i64), (1, 3)], 2), c);
        let a = sorted(b.flat_map(|x| vec![*x, -*x]).collect().unwrap());
        let s = sorted(b.flat_map_via_split(|x| vec![*x, -*x]).collect().unwrap());
        assert_eq!(a, s);
    }

    #[test]
    fn per_tag_aggregates() {
        let e = Engine::local();
        let c = ctx(&e, vec![0, 1, 2]); // tag 2 empty
        let b = InnerBag::from_repr(e.parallelize(vec![(0u64, 1i64), (0, 3), (1, 10)], 2), c);
        let mut sums = b.sum_by(|x| *x as f64).collect().unwrap();
        sums.sort_by_key(|(t, _)| *t);
        assert_eq!(sums, vec![(0, 4.0), (1, 10.0), (2, 0.0)]);
        assert_eq!(sorted(b.min().collect().unwrap()), vec![(0, 1), (1, 10)]);
        assert_eq!(sorted(b.max().collect().unwrap()), vec![(0, 3), (1, 10)]);
        let mut means = b.mean_by(|x| *x as f64).collect().unwrap();
        means.sort_by_key(|(t, _)| *t);
        assert_eq!(means, vec![(0, Some(2.0)), (1, Some(10.0)), (2, None)]);
    }

    #[test]
    fn lifted_left_outer_join_keeps_unmatched() {
        let e = Engine::local();
        let c = ctx(&e, vec![0, 1]);
        let l = InnerBag::from_repr(
            e.parallelize(vec![(0u64, (1u32, 'a')), (1, (1, 'b'))], 2),
            c.clone(),
        );
        // Right side only has key 1 in tag 0: tag 1's 'b' is unmatched.
        let r = InnerBag::from_repr(e.parallelize(vec![(0u64, (1u32, 9))], 1), c);
        let out = sorted(l.left_outer_join(&r).collect().unwrap());
        assert_eq!(out, vec![(0, (1, ('a', Some(9)))), (1, (1, ('b', None)))]);
    }

    #[test]
    fn lifted_co_group_collects_both_sides_per_tag() {
        let e = Engine::local();
        let c = ctx(&e, vec![0]);
        let l = InnerBag::from_repr(
            e.parallelize(vec![(0u64, (7u32, 'x')), (0, (7, 'y'))], 2),
            c.clone(),
        );
        let r = InnerBag::from_repr(e.parallelize(vec![(0u64, (7u32, 1))], 1), c);
        let mut out = l.co_group(&r).collect().unwrap();
        assert_eq!(out.len(), 1);
        let (t, (k, (mut vs, ws))) = out.remove(0);
        vs.sort();
        assert_eq!((t, k), (0, 7));
        assert_eq!(vs, vec!['x', 'y']);
        assert_eq!(ws, vec![1]);
    }

    #[test]
    fn nested_bag_flatten_pairs_and_sizes() {
        let e = Engine::local();
        let bag = e.parallelize(vec![(1u32, 'a'), (1, 'b'), (2, 'c')], 2);
        let nested =
            crate::nested::group_by_key_into_nested_bag(&e, &bag, MatryoshkaConfig::optimized())
                .unwrap();
        let pairs = sorted(nested.flatten_pairs().unwrap().collect().unwrap());
        assert_eq!(pairs, vec![(1, 'a'), (1, 'b'), (2, 'c')]);
        let sizes = sorted(nested.group_sizes().collect().unwrap());
        assert_eq!(sizes, vec![(1, 2), (2, 1)]);
    }
}
