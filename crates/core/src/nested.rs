//! [`NestedBag`]: the lifted representation of a nested bag outside a UDF
//! (paper Sec. 4.5), plus entry points into lifted execution and the
//! multi-level (≥ 2 nesting levels) tag helpers of Sec. 7.

use matryoshka_engine::{Bag, Data, Engine, Key, Result};

use crate::context::LiftingContext;
use crate::inner_bag::InnerBag;
use crate::optimizer::MatryoshkaConfig;
use crate::scalar::InnerScalar;

/// The flattened form of `Bag[(O, Bag[I])]`: an `InnerScalar<T, O>` for the
/// outer components plus an `InnerBag<T, I>` for the inner elements, sharing
/// one set of tags (Sec. 4.5).
pub struct NestedBag<T: Key, O: Data, I: Data> {
    outer: InnerScalar<T, O>,
    inner: InnerBag<T, I>,
}

impl<T: Key, O: Data, I: Data> Clone for NestedBag<T, O, I> {
    fn clone(&self) -> Self {
        NestedBag { outer: self.outer.clone(), inner: self.inner.clone() }
    }
}

impl<T: Key, O: Data, I: Data> NestedBag<T, O, I> {
    /// Assemble from parts (the parts must share the same tag set).
    pub fn from_parts(outer: InnerScalar<T, O>, inner: InnerBag<T, I>) -> Self {
        NestedBag { outer, inner }
    }

    /// The outer components, one per tag.
    pub fn outer(&self) -> &InnerScalar<T, O> {
        &self.outer
    }

    /// The inner elements, tagged.
    pub fn inner(&self) -> &InnerBag<T, I> {
        &self.inner
    }

    /// The shared lifting context.
    pub fn ctx(&self) -> &LiftingContext<T> {
        self.inner.ctx()
    }

    /// `mapWithLiftedUDF` (Sec. 4.2): the UDF is invoked **once**, in the
    /// driver, over the lifted primitives; every operation inside it is a
    /// lifted operation that processes all inner bags at the same time.
    pub fn map_with_lifted_udf<R>(
        &self,
        udf: impl FnOnce(&InnerScalar<T, O>, &InnerBag<T, I>) -> R,
    ) -> R {
        udf(&self.outer, &self.inner)
    }

    /// Reconstruct the nested collection on the driver: `Vec<(O, Vec<I>)>`
    /// (an output operation in the sense of the correctness proof, Sec. 7:
    /// it applies the inverse isomorphism `m^-1` at the last moment).
    pub fn collect_nested(&self) -> Result<Vec<(O, Vec<I>)>>
    where
        T: Ord,
    {
        let outers = self.outer.collect()?;
        let inners = self.inner.collect()?;
        let mut by_tag: matryoshka_engine::FxHashMap<T, Vec<I>> =
            matryoshka_engine::FxHashMap::with_capacity_and_hasher(
                outers.len(),
                matryoshka_engine::FxBuildHasher,
            );
        for (t, i) in inners {
            by_tag.entry(t).or_default().push(i);
        }
        let mut pairs: Vec<(T, O)> = outers;
        pairs.sort_by(|(a, _), (b, _)| a.cmp(b));
        Ok(pairs
            .into_iter()
            .map(|(t, o)| {
                let is = by_tag.remove(&t).unwrap_or_default();
                (o, is)
            })
            .collect())
    }
}

/// `groupByKeyIntoNestedBag` (Sec. 4.5, Listing 2 line 3): group a flat
/// key-value bag into a NestedBag whose tags are the grouping keys.
///
/// Note what this does *not* do: unlike a real `groupByKey`, no shuffle and
/// no in-memory group materialization happens — the inner representation
/// **is** the input bag. The only cost is one counting job to learn the
/// number of groups (the InnerScalar size of Sec. 8.1). This is the heart of
/// why flattening beats the outer-parallel workaround.
pub fn group_by_key_into_nested_bag<K: Key, V: Data>(
    engine: &Engine,
    bag: &Bag<(K, V)>,
    config: MatryoshkaConfig,
) -> Result<NestedBag<K, K, V>> {
    // Projecting to the key drops the record payload: weigh the key bag by
    // the key's own size, not the full record's.
    let key_bytes = (std::mem::size_of::<K>() as f64).max(8.0);
    let keys = bag.map(|(k, _)| k.clone()).with_record_bytes(key_bytes);
    let tags = keys.distinct_into(keys.num_partitions().min(engine.config().default_parallelism));
    let ctx = LiftingContext::counted(engine.clone(), tags, config)?;
    let outer = ctx.tags_scalar();
    let inner = InnerBag::from_repr(bag.clone(), ctx);
    Ok(NestedBag::from_parts(outer, inner))
}

/// Lift a flat bag for a `mapWithLiftedUDF` over a **non-nested** input
/// (Sec. 4.3: "if mapWithLiftedUDF runs on a non-nested Bag, we create the
/// tags using the standard zipWithUniqueId operation"). Each element becomes
/// the per-tag scalar the lifted UDF starts from.
pub fn lift_flat_bag<S: Data>(
    engine: &Engine,
    bag: &Bag<S>,
    config: MatryoshkaConfig,
) -> Result<InnerScalar<u64, S>> {
    let tagged = bag.zip_with_unique_id().map(|(s, id)| (*id, s.clone()));
    let tags = tagged.map(|(id, _)| *id);
    let ctx = LiftingContext::counted(engine.clone(), tags, config)?;
    Ok(InnerScalar::from_repr(tagged, ctx))
}

// ---------------------------------------------------------------------------
// Multi-level nesting (Sec. 7): "Lifting tags for three or more levels are
// composed of one lifting tag for each outer level. These tags are combined
// into a composite key."
// ---------------------------------------------------------------------------

impl<T: Key, K: Key, V: Data> InnerBag<T, (K, V)> {
    /// A second-level `groupByKeyIntoNestedBag` *inside* a lifted UDF: the
    /// new tags are `(outer_tag, key)` composites.
    pub fn group_by_key_into_nested_bag(&self) -> Result<NestedBag<(T, K), (T, K), V>> {
        let engine = self.ctx().engine().clone();
        let repr = self.repr().map(|(t, (k, v))| ((t.clone(), k.clone()), v.clone()));
        let tags = repr.map(|(tk, _)| tk.clone()).distinct();
        let ctx = LiftingContext::counted(engine, tags, self.ctx().config().clone())?;
        let outer = ctx.tags_scalar();
        let inner = InnerBag::from_repr(repr, ctx);
        Ok(NestedBag::from_parts(outer, inner))
    }
}

impl<T: Key, E: Key> InnerBag<T, E> {
    /// Lift each *element* of each inner bag to its own tag at the next
    /// nesting level: the result is an `InnerScalar` over `(outer_tag,
    /// element)` composite tags, holding the element as the per-tag scalar.
    ///
    /// This is how a lifted UDF maps over an inner bag with a second-level
    /// lifted UDF (e.g. Average Distances: for every component, for every
    /// source vertex, run a BFS — the `(component, source)` pair becomes the
    /// level-2 tag).
    pub fn lift_elements(&self) -> Result<InnerScalar<(T, E), E>> {
        let engine = self.ctx().engine().clone();
        let repr = self.repr().map(|(t, e)| ((t.clone(), e.clone()), e.clone()));
        let tags = repr.map(|(te, _)| te.clone());
        let ctx = LiftingContext::counted(engine, tags, self.ctx().config().clone())?;
        Ok(InnerScalar::from_repr(repr, ctx))
    }
}

impl<T: Key, L: Key, S: Data> InnerScalar<(T, L), S> {
    /// Demote one nesting level: an `InnerScalar` over composite `(T, L)`
    /// tags becomes an `InnerBag` over `T` tags whose elements carry the
    /// inner tag (`(L, S)` pairs). This is how per-`(component, source)`
    /// results flow back into per-`component` computations.
    pub fn demote(&self, level1_ctx: &LiftingContext<T>) -> InnerBag<T, (L, S)> {
        let repr = self.repr().map(|((t, l), s)| (t.clone(), (l.clone(), s.clone())));
        InnerBag::from_repr(repr, level1_ctx.clone())
    }
}

impl<T: Key, L: Key, E: Data> InnerBag<(T, L), E> {
    /// Demote one nesting level for inner bags (see
    /// [`InnerScalar::demote`]).
    pub fn demote(&self, level1_ctx: &LiftingContext<T>) -> InnerBag<T, (L, E)> {
        let repr = self.repr().map(|((t, l), e)| (t.clone(), (l.clone(), e.clone())));
        InnerBag::from_repr(repr, level1_ctx.clone())
    }
}

impl<T: Key, L: Key, I: Data> InnerBag<T, (L, I)> {
    /// Promote elements carrying an inner tag into an `InnerBag` over
    /// composite `(T, L)` tags, sharing an existing level-2 context.
    pub fn promote(&self, level2_ctx: &LiftingContext<(T, L)>) -> InnerBag<(T, L), I> {
        let repr = self.repr().map(|(t, (l, i))| ((t.clone(), l.clone()), i.clone()));
        InnerBag::from_repr(repr, level2_ctx.clone())
    }
}

impl<T: Key, O: Data, I: Data> std::fmt::Debug for NestedBag<T, O, I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NestedBag").field("ctx", self.ctx()).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matryoshka_engine::Engine;

    fn sorted<X: Ord>(mut v: Vec<X>) -> Vec<X> {
        v.sort();
        v
    }

    #[test]
    fn group_by_key_into_nested_bag_builds_both_parts() {
        let e = Engine::local();
        let visits = e.parallelize(vec![(1u32, 'a'), (1, 'b'), (2, 'c')], 2);
        let nested =
            group_by_key_into_nested_bag(&e, &visits, MatryoshkaConfig::optimized()).unwrap();
        assert_eq!(nested.ctx().size(), 2);
        assert_eq!(sorted(nested.outer().collect().unwrap()), vec![(1, 1), (2, 2)]);
        let mut n = nested.collect_nested().unwrap();
        n.iter_mut().for_each(|(_, v)| v.sort());
        assert_eq!(n, vec![(1, vec!['a', 'b']), (2, vec!['c'])]);
    }

    #[test]
    fn grouping_into_nested_bag_does_not_shuffle() {
        let e = Engine::local();
        let visits = e.parallelize((0..1000u32).map(|i| (i % 10, i)).collect::<Vec<_>>(), 4);
        // Force the input to be computed first so the delta below only
        // covers the grouping itself.
        visits.count().unwrap();
        let s0 = e.stats();
        let _nested =
            group_by_key_into_nested_bag(&e, &visits, MatryoshkaConfig::optimized()).unwrap();
        let d = e.stats().since(&s0);
        // Only the tag-distinct + count job; the inner repr is the input
        // bag itself. The distinct shuffles the keys only, never the data
        // records (1000 keys at the pair record size of 8 bytes).
        assert!(
            d.shuffle_bytes <= 1000 * 8,
            "must not shuffle the data records: {}",
            d.shuffle_bytes
        );
        assert_eq!(d.spill_bytes, 0);
    }

    #[test]
    fn lift_flat_bag_gives_unique_tags() {
        let e = Engine::local();
        let b = e.parallelize(vec!['x', 'y', 'z'], 2);
        let s = lift_flat_bag(&e, &b, MatryoshkaConfig::optimized()).unwrap();
        assert_eq!(s.ctx().size(), 3);
        let tags: Vec<u64> = s.collect().unwrap().into_iter().map(|(t, _)| t).collect();
        let mut d = tags.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn second_level_grouping_uses_composite_tags() {
        let e = Engine::local();
        let ctx = LiftingContext::new(
            e.clone(),
            e.parallelize(vec![0u64, 1], 1),
            2,
            MatryoshkaConfig::optimized(),
        );
        // Tag 0 has keys {a}, tag 1 has keys {a, b}: 3 composite groups.
        let b = InnerBag::from_repr(
            e.parallelize(vec![(0u64, ('a', 1)), (0, ('a', 2)), (1, ('a', 3)), (1, ('b', 4))], 2),
            ctx,
        );
        let nested = b.group_by_key_into_nested_bag().unwrap();
        assert_eq!(nested.ctx().size(), 3);
        let mut n = nested.collect_nested().unwrap();
        n.iter_mut().for_each(|(_, v)| v.sort());
        assert_eq!(n, vec![((0, 'a'), vec![1, 2]), ((1, 'a'), vec![3]), ((1, 'b'), vec![4])]);
    }

    #[test]
    fn lift_demote_roundtrip() {
        let e = Engine::local();
        let ctx = LiftingContext::new(
            e.clone(),
            e.parallelize(vec![0u64, 1], 1),
            2,
            MatryoshkaConfig::optimized(),
        );
        let b = InnerBag::from_repr(
            e.parallelize(vec![(0u64, 10u32), (1, 20), (1, 30)], 2),
            ctx.clone(),
        );
        let lifted = b.lift_elements().unwrap();
        assert_eq!(lifted.ctx().size(), 3);
        // Square each element at level 2, then demote back to level 1.
        let squared = lifted.map(|x| x * x);
        let back = squared.demote(&ctx);
        let out = sorted(back.collect().unwrap());
        assert_eq!(out, vec![(0, (10, 100)), (1, (20, 400)), (1, (30, 900))]);
    }
}
