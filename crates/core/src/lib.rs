//! # matryoshka-core
//!
//! The runtime ("lowering phase") of **Matryoshka**, the nested-parallelism
//! system of *"The Power of Nested Parallelism in Big Data Processing —
//! Hitting Three Flies with One Slap"* (SIGMOD 2021): nesting primitives,
//! lifted operations, lifted control flow, and the runtime optimizer, all
//! executing on the flat-parallel engine of `matryoshka-engine`.
//!
//! ## The two-phase flattening, in this repository
//!
//! - The **parsing phase** (compile-time in the paper, via Scala macros)
//!   lives in the sibling crate `matryoshka-ir`: it rewrites a
//!   nested-parallel program into one that uses the primitives below.
//! - The **lowering phase** (runtime) is this crate: the primitives'
//!   operations resolve to flat engine operations, choosing physical
//!   implementations from actual data characteristics (Sec. 8).
//!
//! Typed Rust programs can also use the primitives directly (the examples
//! and the `matryoshka-tasks` workloads do), which corresponds to writing
//! the parsing phase's output by hand — Listing 2 of the paper.
//!
//! ## The primitives
//!
//! | Paper | Here | Flat representation |
//! |---|---|---|
//! | `InnerScalar[T,S]` (Sec. 4.3) | [`InnerScalar`] | `Bag<(T, S)>` |
//! | `InnerBag[T,E]` (Sec. 4.4) | [`InnerBag`] | `Bag<(T, E)>` |
//! | `NestedBag[O,I]` (Sec. 4.5) | [`NestedBag`] | `InnerScalar` + `InnerBag` |
//!
//! ```
//! use matryoshka_core::{group_by_key_into_nested_bag, MatryoshkaConfig};
//! use matryoshka_engine::Engine;
//!
//! // Bounce rate per day (paper Listing 1/2): nested-parallel, flattened.
//! let engine = Engine::local();
//! let visits = engine.parallelize(
//!     vec![(1u32, 10u64), (1, 10), (1, 11), (2, 12)], // (day, ip)
//!     4,
//! );
//! let per_day = group_by_key_into_nested_bag(&engine, &visits, MatryoshkaConfig::optimized()).unwrap();
//! let rates = per_day.map_with_lifted_udf(|_day, group| {
//!     let counts_per_ip = group.map(|ip| (*ip, 1u64)).reduce_by_key(|a, b| a + b);
//!     let num_bounces = counts_per_ip.filter(|(_, c)| *c == 1).count();
//!     let num_visitors = group.distinct().count();
//!     num_bounces.zip_with(&num_visitors, |b, v| *b as f64 / *v as f64)
//! });
//! let mut out = rates.collect().unwrap();
//! out.sort_by_key(|(day, _)| *day);
//! assert_eq!(out, vec![(1, 0.5), (2, 1.0)]); // day 1: ip 11 bounced of 2 ips
//! ```

#![warn(missing_docs)]

pub mod adaptive;
mod closures;
mod context;
mod control_flow;
mod inner_bag;
mod nested;
pub mod optimizer;
mod scalar;
pub mod scheduler;
mod splitting;

pub use adaptive::{AdaptiveConfig, AdaptivePlanner};
pub use context::LiftingContext;
pub use control_flow::{lifted_if, lifted_while, LiftedData};
pub use inner_bag::{CoPartitioned, InnerBag};
pub use nested::{group_by_key_into_nested_bag, lift_flat_bag, NestedBag};
pub use optimizer::{CrossChoice, JoinChoice, MatryoshkaConfig, PlanRewriteConfig};
pub use scalar::InnerScalar;
pub use scheduler::{PoolConfig, SchedulerConfig, SchedulingPolicy};
