//! Half-lifted `mapWithClosure` (paper Sec. 5.2, optimized per Sec. 8.3):
//! the cross product between an InnerScalar from *inside* a lifted UDF and a
//! flat bag from *outside* it (a closure of the enclosing UDF).
//!
//! The canonical example is K-means (Sec. 8.3): the current means are an
//! InnerScalar (one centroid set per hyperparameter configuration), the
//! points are a plain bag defined at the outermost level. Re-assigning
//! points to centroids is a cross product: every point must meet every
//! configuration's means.

use matryoshka_engine::{Bag, Data, Key, Result};

use crate::inner_bag::InnerBag;
use crate::optimizer::{cross_side, CrossSide};
use crate::scalar::InnerScalar;

impl<T: Key, C: Data> InnerScalar<T, C> {
    /// Half-lifted `mapWithClosure` as a cross product (Sec. 8.3): for every
    /// `(tag, scalar)` and every element of `bag`, emit `f(tag, scalar,
    /// element)`'s outputs tagged with the scalar's tag.
    ///
    /// The optimizer decides which side to broadcast: the InnerScalar when
    /// it fits in one partition (the common case after Sec. 8.1 partition
    /// tuning), otherwise whichever side the size estimator says is smaller.
    /// A forced strategy (ablation) that broadcasts an over-large side fails
    /// with a simulated OutOfMemory — the crash the paper's Fig. 8 (right)
    /// shows for the non-optimized strategies.
    pub fn cross_with_bag<P: Data, U: Data, I>(
        &self,
        bag: &Bag<P>,
        f: impl Fn(&T, &C, &P) -> I + Send + Sync + 'static,
    ) -> Result<InnerBag<T, U>>
    where
        I: IntoIterator<Item = U>,
    {
        let engine = self.ctx().engine().clone();
        let scalar_bytes = (self.ctx().size() as f64 * self.repr().record_bytes()) as u64;
        let side = cross_side(
            self.ctx().config(),
            &engine,
            self.repr().num_partitions(),
            scalar_bytes,
            bag.size_estimate(),
        );
        // The cross's outputs are per-(tag, element) tuples of roughly the
        // bag element's size (e.g. a point's cluster assignment).
        let out_bytes = bag.record_bytes();
        let repr = match side {
            CrossSide::Scalar => {
                // Ship the (tag, scalar) pairs to every worker; the big bag
                // stays partitioned in place.
                let pairs = self.repr().collect()?;
                let bc = engine.broadcast(pairs, scalar_bytes)?;
                bag.flat_map(move |p| {
                    let mut out = Vec::new();
                    for (t, c) in bc.value() {
                        out.extend(f(t, c, p).into_iter().map(|u| (t.clone(), u)));
                    }
                    out
                })
                .with_record_bytes(out_bytes)
            }
            CrossSide::Bag => {
                // Ship the whole bag to every worker; the InnerScalar stays
                // partitioned in place.
                let items = bag.collect()?;
                let bag_bytes = (items.len() as f64 * bag.record_bytes()) as u64;
                let bc = engine.broadcast(items, bag_bytes)?;
                // Give the scalar side enough partitions to parallelize the
                // cross (Sec. 8.1 partition tuning, by data volume).
                let p = ((scalar_bytes / (128 << 20)) as usize)
                    .clamp(1, engine.config().default_parallelism)
                    .max(self.repr().num_partitions());
                let scalars = if self.repr().num_partitions() < p {
                    self.repr().repartition(p)
                } else {
                    self.repr().clone()
                };
                scalars
                    .flat_map(move |(t, c)| {
                        let mut out = Vec::new();
                        for p in bc.value() {
                            out.extend(f(t, c, p).into_iter().map(|u| (t.clone(), u)));
                        }
                        out
                    })
                    .with_record_bytes(out_bytes)
            }
        };
        Ok(InnerBag::from_repr(repr, self.ctx().clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::LiftingContext;
    use crate::optimizer::{CrossChoice, MatryoshkaConfig};
    use matryoshka_engine::Engine;

    fn sorted<X: Ord>(mut v: Vec<X>) -> Vec<X> {
        v.sort();
        v
    }

    fn scalar(e: &Engine, cfg: MatryoshkaConfig) -> InnerScalar<u64, i64> {
        let tags = e.parallelize(vec![0u64, 1], 1);
        let ctx = LiftingContext::new(e.clone(), tags, 2, cfg);
        InnerScalar::from_repr(e.parallelize(vec![(0u64, 10i64), (1, 100)], 1), ctx)
    }

    #[test]
    fn cross_produces_all_pairs() {
        let e = Engine::local();
        let s = scalar(&e, MatryoshkaConfig::optimized());
        let bag = e.parallelize(vec![1i64, 2, 3], 2);
        let out = s.cross_with_bag(&bag, |_, c, p| Some(c * p)).unwrap();
        let got = sorted(out.collect().unwrap());
        assert_eq!(got, vec![(0, 10), (0, 20), (0, 30), (1, 100), (1, 200), (1, 300)]);
    }

    #[test]
    fn both_forced_strategies_agree_with_auto() {
        let e = Engine::local();
        let bag = e.parallelize((1..=5i64).collect::<Vec<_>>(), 3);
        bag.count().unwrap(); // warm the size estimator
        let mut results = Vec::new();
        for cross in
            [CrossChoice::Auto, CrossChoice::ForceBroadcastScalar, CrossChoice::ForceBroadcastBag]
        {
            let cfg = MatryoshkaConfig { cross, ..MatryoshkaConfig::optimized() };
            let s = scalar(&e, cfg);
            let out = s.cross_with_bag(&bag, |t, c, p| Some((*t as i64) + c + p)).unwrap();
            results.push(sorted(out.collect().unwrap()));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn forced_broadcast_of_oversized_bag_ooms() {
        let mut cc = matryoshka_engine::ClusterConfig::local_test();
        cc.memory_per_machine = matryoshka_engine::MB;
        let e = Engine::new(cc);
        let cfg = MatryoshkaConfig {
            cross: CrossChoice::ForceBroadcastBag,
            ..MatryoshkaConfig::optimized()
        };
        let tags = e.parallelize(vec![0u64], 1);
        let ctx = LiftingContext::new(e.clone(), tags, 1, cfg);
        let s = InnerScalar::from_repr(e.parallelize(vec![(0u64, 1i64)], 1), ctx);
        // A bag whose modeled size exceeds one machine's memory.
        let bag = e.parallelize((0..100_000i64).collect::<Vec<_>>(), 4).with_record_bytes(1000.0);
        let err = s.cross_with_bag(&bag, |_, c, p| Some(c + p)).unwrap_err();
        assert!(matches!(err, matryoshka_engine::EngineError::OutOfMemory { .. }));
    }
}
