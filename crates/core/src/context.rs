//! [`LiftingContext`]: per-lifted-UDF metadata (paper Sec. 8.1).
//!
//! Each lifted UDF has an associated context that stores the bag of lifting
//! tags and — crucially — the number of tags, which equals the size of
//! *every* InnerScalar inside the UDF. This size is known when the context
//! is created (before any InnerScalar is computed), which is what enables
//! the runtime optimizations of Sec. 8.

use std::sync::Arc;

use matryoshka_engine::{Bag, Engine, JoinAlgorithm, Key, Result};

use crate::optimizer::{self, MatryoshkaConfig};

struct CtxInner<T: Key> {
    engine: Engine,
    /// All tags of this lifted UDF: one per invocation the original
    /// (unlifted) UDF would have had. Needed to zero-fill aggregations over
    /// empty inner bags (Sec. 4.4: "we store the bag of tags once per lifted
    /// UDF").
    tags: Bag<T>,
    /// Number of tags = size of every InnerScalar in this UDF (Sec. 8.1).
    size: u64,
    config: Arc<MatryoshkaConfig>,
}

/// Metadata shared by all lifted values of one lifted UDF. Cheap to clone.
pub struct LiftingContext<T: Key> {
    inner: Arc<CtxInner<T>>,
}

impl<T: Key> Clone for LiftingContext<T> {
    fn clone(&self) -> Self {
        LiftingContext { inner: Arc::clone(&self.inner) }
    }
}

impl<T: Key> LiftingContext<T> {
    /// Create a context from a bag of tags whose cardinality is already
    /// known (the caller typically just computed it, e.g. while grouping).
    pub fn new(engine: Engine, tags: Bag<T>, size: u64, config: MatryoshkaConfig) -> Self {
        LiftingContext {
            inner: Arc::new(CtxInner { engine, tags, size, config: Arc::new(config) }),
        }
    }

    /// Create a context, counting the tags with one engine job (one of the
    /// "several different ways" of determining the InnerScalar size the
    /// paper mentions in Sec. 8.1).
    pub fn counted(engine: Engine, tags: Bag<T>, config: MatryoshkaConfig) -> Result<Self> {
        let size = tags.count()?;
        Ok(Self::new(engine, tags, size, config))
    }

    /// The engine.
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// The bag of tags of this lifted UDF.
    pub fn tags(&self) -> &Bag<T> {
        &self.inner.tags
    }

    /// Number of tags = InnerScalar size (Sec. 8.1).
    pub fn size(&self) -> u64 {
        self.inner.size
    }

    /// The lowering-phase configuration.
    pub fn config(&self) -> &MatryoshkaConfig {
        &self.inner.config
    }

    /// Partition count the optimizer assigns to InnerScalar-sized bags
    /// (Sec. 8.1).
    pub fn scalar_partitions(&self) -> usize {
        optimizer::scalar_partitions(self.config(), self.engine(), self.size())
    }

    /// Join algorithm the optimizer picks for a tag join against an
    /// InnerScalar of this context's size whose records weigh
    /// `scalar_record_bytes` (Sec. 8.2).
    pub fn tag_join_algorithm(&self, scalar_record_bytes: f64) -> JoinAlgorithm {
        let bytes = (self.size() as f64 * scalar_record_bytes) as u64;
        optimizer::tag_join_algorithm(self.config(), self.engine(), self.size(), bytes)
    }

    /// Execute a tag join of `left` against a scalar-sized `right` with the
    /// optimizer's choices: broadcast vs. repartition by the InnerScalar's
    /// size and bytes (Sec. 8.2), and — for the repartition case — a
    /// partition count that accounts for the scalar's data volume
    /// (Sec. 8.1), so a fat InnerScalar never collapses onto one build task.
    pub fn tag_join<A: matryoshka_engine::Data, B: matryoshka_engine::Data>(
        &self,
        left: &Bag<(T, A)>,
        right: &Bag<(T, B)>,
    ) -> Bag<(T, (A, B))> {
        match self.tag_join_algorithm(right.record_bytes()) {
            JoinAlgorithm::BroadcastRight => left.broadcast_join(right),
            JoinAlgorithm::Repartition => {
                let scalar_bytes = (self.size() as f64 * right.record_bytes()) as u64;
                let p = optimizer::partitions_for(
                    self.config(),
                    self.engine(),
                    self.size(),
                    scalar_bytes,
                )
                .max(left.num_partitions())
                .min(self.engine().config().default_parallelism);
                left.join_into(p, right)
            }
        }
    }

    /// A context over a subset of this context's tags (used by lifted
    /// control flow when loops/branches retire tags, Sec. 6.2).
    pub fn narrowed(&self, tags: Bag<T>, size: u64) -> LiftingContext<T> {
        LiftingContext {
            inner: Arc::new(CtxInner {
                engine: self.inner.engine.clone(),
                tags,
                size,
                config: Arc::clone(&self.inner.config),
            }),
        }
    }
}

impl<T: Key> std::fmt::Debug for LiftingContext<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiftingContext").field("size", &self.size()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matryoshka_engine::ClusterConfig;

    #[test]
    fn counted_context_knows_its_size() {
        let e = Engine::new(ClusterConfig::local_test());
        let tags = e.parallelize((0..37u64).collect(), 4);
        let ctx = LiftingContext::counted(e.clone(), tags, MatryoshkaConfig::optimized()).unwrap();
        assert_eq!(ctx.size(), 37);
        assert_eq!(ctx.scalar_partitions(), 1);
    }

    #[test]
    fn narrowed_context_shares_config() {
        let e = Engine::new(ClusterConfig::local_test());
        let tags = e.parallelize((0..10u64).collect(), 2);
        let ctx = LiftingContext::new(e.clone(), tags, 10, MatryoshkaConfig::optimized());
        let sub = ctx.narrowed(e.parallelize(vec![1u64, 2], 1), 2);
        assert_eq!(sub.size(), 2);
        assert!(sub.config().partition_tuning);
    }
}
