//! [`LiftingContext`]: per-lifted-UDF metadata (paper Sec. 8.1).
//!
//! Each lifted UDF has an associated context that stores the bag of lifting
//! tags and — crucially — the number of tags, which equals the size of
//! *every* InnerScalar inside the UDF. This size is known when the context
//! is created (before any InnerScalar is computed), which is what enables
//! the runtime optimizations of Sec. 8.

use std::sync::Arc;

use matryoshka_engine::{Bag, Engine, JoinAlgorithm, Key, Result};

use crate::adaptive::AdaptivePlanner;
use crate::optimizer::{self, MatryoshkaConfig};

struct CtxInner<T: Key> {
    engine: Engine,
    /// All tags of this lifted UDF: one per invocation the original
    /// (unlifted) UDF would have had. Needed to zero-fill aggregations over
    /// empty inner bags (Sec. 4.4: "we store the bag of tags once per lifted
    /// UDF").
    tags: Bag<T>,
    /// Number of tags = size of every InnerScalar in this UDF (Sec. 8.1).
    size: u64,
    config: Arc<MatryoshkaConfig>,
}

/// Metadata shared by all lifted values of one lifted UDF. Cheap to clone.
pub struct LiftingContext<T: Key> {
    inner: Arc<CtxInner<T>>,
}

impl<T: Key> Clone for LiftingContext<T> {
    fn clone(&self) -> Self {
        LiftingContext { inner: Arc::clone(&self.inner) }
    }
}

impl<T: Key> LiftingContext<T> {
    /// Create a context from a bag of tags whose cardinality is already
    /// known (the caller typically just computed it, e.g. while grouping).
    pub fn new(engine: Engine, tags: Bag<T>, size: u64, config: MatryoshkaConfig) -> Self {
        LiftingContext {
            inner: Arc::new(CtxInner { engine, tags, size, config: Arc::new(config) }),
        }
    }

    /// Create a context, counting the tags with one engine job (one of the
    /// "several different ways" of determining the InnerScalar size the
    /// paper mentions in Sec. 8.1).
    pub fn counted(engine: Engine, tags: Bag<T>, config: MatryoshkaConfig) -> Result<Self> {
        let size = tags.count()?;
        Ok(Self::new(engine, tags, size, config))
    }

    /// The engine.
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// The bag of tags of this lifted UDF.
    pub fn tags(&self) -> &Bag<T> {
        &self.inner.tags
    }

    /// Number of tags = InnerScalar size (Sec. 8.1).
    pub fn size(&self) -> u64 {
        self.inner.size
    }

    /// The lowering-phase configuration.
    pub fn config(&self) -> &MatryoshkaConfig {
        &self.inner.config
    }

    /// Partition count the optimizer assigns to InnerScalar-sized bags
    /// (Sec. 8.1).
    pub fn scalar_partitions(&self) -> usize {
        optimizer::scalar_partitions(self.config(), self.engine(), self.size())
    }

    /// Join algorithm the optimizer picks for a tag join against an
    /// InnerScalar of this context's size whose records weigh
    /// `scalar_record_bytes` (Sec. 8.2).
    pub fn tag_join_algorithm(&self, scalar_record_bytes: f64) -> JoinAlgorithm {
        let bytes = (self.size() as f64 * scalar_record_bytes) as u64;
        optimizer::tag_join_algorithm(self.config(), self.engine(), self.size(), bytes)
    }

    /// Execute a tag join of `left` against a scalar-sized `right` with the
    /// optimizer's choices: broadcast vs. repartition by the InnerScalar's
    /// size and bytes (Sec. 8.2), and — for the repartition case — a
    /// partition count that accounts for the scalar's data volume
    /// (Sec. 8.1), so a fat InnerScalar never collapses onto one build task.
    pub fn tag_join<A: matryoshka_engine::Data, B: matryoshka_engine::Data>(
        &self,
        left: &Bag<(T, A)>,
        right: &Bag<(T, B)>,
    ) -> Bag<(T, (A, B))> {
        let acfg = &self.config().adaptive;
        let algorithm = if acfg.enabled && acfg.switch_joins {
            self.adaptive_tag_join_algorithm(left.size_estimate(), right)
        } else {
            self.tag_join_algorithm(right.record_bytes())
        };
        match algorithm {
            JoinAlgorithm::BroadcastRight => left.broadcast_join(right),
            JoinAlgorithm::Repartition => {
                let scalar_bytes = (self.size() as f64 * right.record_bytes()) as u64;
                let static_p = optimizer::partitions_for(
                    self.config(),
                    self.engine(),
                    self.size(),
                    scalar_bytes,
                )
                .max(left.num_partitions())
                .min(self.engine().config().default_parallelism);
                if !acfg.enabled {
                    return left.join_into(static_p, right);
                }
                let planner = AdaptivePlanner::new(self.engine(), acfg);
                let p = planner.coalesced_partitions("tag_join", static_p, left.size_estimate());
                let right_bytes = right.size_estimate().unwrap_or(scalar_bytes);
                match planner.salt_factor_gated("join", Some(right_bytes)) {
                    Some(salt) => self.salted_tag_join(left, right, p, salt),
                    None => left.join_into(p, right),
                }
            }
        }
    }

    /// Re-decide the tag-join algorithm from *observed* sizes (the adaptive
    /// re-optimizer's join switching): prefer the materialized right side;
    /// fall back to the most recent per-tag aggregation the engine observed
    /// (a scalar-producing `reduce_by_key` has at most one record per live
    /// tag); fall back to the context estimate. Inside `lifted_while` this
    /// runs once per iteration against the narrowed context, so the decision
    /// tracks the shrinking live-tag set.
    ///
    /// Unlike the static rule, which only caps the broadcast side by memory,
    /// this compares actual data movement when the left side's observed
    /// bytes are known: a broadcast ships the scalar to every machine
    /// (`right x machines`), a repartition shuffles both sides once — a
    /// few-but-fat scalar joined against a lean bag repartitions even though
    /// it would fit in memory.
    fn adaptive_tag_join_algorithm<B: matryoshka_engine::Data>(
        &self,
        left_bytes: Option<u64>,
        right: &Bag<(T, B)>,
    ) -> JoinAlgorithm {
        let engine = self.engine();
        // The history gives observed *cardinality*; bytes are always derived
        // from the side being joined now (`right.record_bytes()`), since a
        // history entry's own byte total belongs to whatever aggregation
        // produced it, not to this scalar.
        let (size, source) = if let Some(n) = right.cached_count() {
            (n, "materialized scalar")
        } else if let Some(s) = engine
            .map_output_history()
            .iter()
            .rev()
            .find(|s| s.operator == "reduce_by_key" && s.total_records <= self.size())
        {
            (s.total_records, "map-output history")
        } else {
            (self.size(), "context estimate")
        };
        let bytes = (size as f64 * right.record_bytes()) as u64;
        let work_threshold = 2 * engine.total_cores() as u64;
        let cap =
            (engine.config().memory_per_machine as f64 * optimizer::BROADCAST_CAP_FRACTION) as u64;
        // The byte cap is checked first: a scalar of few-but-fat records
        // must not be broadcast just because its cardinality is small.
        let machines = engine.config().machines as u64;
        let (algorithm, choice, why) = if bytes > cap {
            (
                JoinAlgorithm::Repartition,
                "repartition",
                format!("{bytes} observed bytes > broadcast cap {cap}"),
            )
        } else if let Some(lb) = left_bytes {
            let broadcast_cost = bytes.saturating_mul(machines);
            let repartition_cost = lb.saturating_add(bytes);
            if broadcast_cost <= repartition_cost {
                (
                    JoinAlgorithm::BroadcastRight,
                    "broadcast",
                    format!(
                        "ships {broadcast_cost} bytes ({bytes} x {machines} machines) vs \
                         {repartition_cost} shuffled"
                    ),
                )
            } else {
                (
                    JoinAlgorithm::Repartition,
                    "repartition",
                    format!(
                        "shuffles {repartition_cost} bytes vs {broadcast_cost} broadcast \
                         ({bytes} x {machines} machines)"
                    ),
                )
            }
        } else if size < work_threshold {
            (
                JoinAlgorithm::BroadcastRight,
                "broadcast",
                format!("{size} observed records < 2 x {} cores", engine.total_cores()),
            )
        } else {
            (
                JoinAlgorithm::BroadcastRight,
                "broadcast",
                format!("{bytes} observed bytes <= broadcast cap {cap}"),
            )
        };
        engine.record_decision(
            "adaptive_tag_join",
            choice,
            size,
            bytes,
            format!("{source}: {why}"),
        );
        algorithm
    }

    /// Skew-mitigated repartition tag join: salt the (hot, shuffled) left
    /// side's tag with a deterministic per-record suffix so one hot tag
    /// spreads over `salt` reduce partitions, replicate the (light) scalar
    /// side once per salt value, join on the salted composite, and strip the
    /// salt in a cheap narrow map.
    fn salted_tag_join<A: matryoshka_engine::Data, B: matryoshka_engine::Data>(
        &self,
        left: &Bag<(T, A)>,
        right: &Bag<(T, B)>,
        partitions: usize,
        salt: u32,
    ) -> Bag<(T, (A, B))> {
        let s = salt.max(2);
        let lbytes = left.record_bytes();
        let rbytes = right.record_bytes();
        let salted = left
            .map_indexed(move |pi, i, (t, a)| ((t.clone(), (pi + i) as u32 % s), a.clone()))
            .with_record_bytes(lbytes);
        let replicated = right
            .flat_map(move |(t, b)| (0..s).map(|k| ((t.clone(), k), b.clone())).collect::<Vec<_>>())
            .with_record_bytes(rbytes);
        salted
            .join_into(partitions, &replicated)
            .map(|((t, _), ab)| (t.clone(), ab.clone()))
            .with_record_bytes(lbytes + rbytes)
    }

    /// A context over a subset of this context's tags (used by lifted
    /// control flow when loops/branches retire tags, Sec. 6.2).
    pub fn narrowed(&self, tags: Bag<T>, size: u64) -> LiftingContext<T> {
        LiftingContext {
            inner: Arc::new(CtxInner {
                engine: self.inner.engine.clone(),
                tags,
                size,
                config: Arc::clone(&self.inner.config),
            }),
        }
    }
}

impl<T: Key> std::fmt::Debug for LiftingContext<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiftingContext").field("size", &self.size()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matryoshka_engine::ClusterConfig;

    #[test]
    fn counted_context_knows_its_size() {
        let e = Engine::new(ClusterConfig::local_test());
        let tags = e.parallelize((0..37u64).collect(), 4);
        let ctx = LiftingContext::counted(e.clone(), tags, MatryoshkaConfig::optimized()).unwrap();
        assert_eq!(ctx.size(), 37);
        assert_eq!(ctx.scalar_partitions(), 1);
    }

    #[test]
    fn narrowed_context_shares_config() {
        let e = Engine::new(ClusterConfig::local_test());
        let tags = e.parallelize((0..10u64).collect(), 2);
        let ctx = LiftingContext::new(e.clone(), tags, 10, MatryoshkaConfig::optimized());
        let sub = ctx.narrowed(e.parallelize(vec![1u64, 2], 1), 2);
        assert_eq!(sub.size(), 2);
        assert!(sub.config().partition_tuning);
    }
}
