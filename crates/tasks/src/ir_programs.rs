//! The evaluation workloads expressed in the nested-parallel IR's surface
//! syntax (`matryoshka-ir`), as checkable program texts.
//!
//! The task modules themselves run the typed `matryoshka-core` API; these
//! are the same computations written in the IR dialect, for the static
//! analyzer and the `matryoshka-check` CLI. CI runs `--check` over every
//! program here (plus `examples/programs/`), so an analyzer regression
//! that started rejecting a real workload fails the gate immediately.
//!
//! Kept as plain source text so this crate needs no dependency on
//! `matryoshka-ir`; the root crate's `tests/ir_programs_check.rs` and the
//! CLI (`matryoshka-check --builtin`) do the actual checking.

/// One IR workload: a name, the program text, and its input bag names.
#[derive(Debug, Clone, Copy)]
pub struct IrProgram {
    /// Short identifier (used by the CLI and in test failure messages).
    pub name: &'static str,
    /// The program in the IR surface syntax.
    pub source: &'static str,
    /// Names of the driver-side input bags.
    pub inputs: &'static [&'static str],
}

/// Per-day visit counts — the Listing 1 warm-up from the README quickstart.
pub const VISIT_COUNTS: IrProgram = IrProgram {
    name: "visit_counts",
    source: "map(groupByKey(source(visits)), g => (g.0, count(g.1)))",
    inputs: &["visits"],
};

/// The paper's Listing 1: per-day bounce rate. Two nesting levels; the
/// inner pipeline re-aggregates each day's visits twice (bounces and
/// distinct visitors).
pub const BOUNCE_RATE: IrProgram = IrProgram {
    name: "bounce_rate",
    source: "\
map(groupByKey(source(visits)),
    g => (g.0,
          toDouble(count(filter(reduceByKey(map(g.1, ip => (ip, 1)),
                                            (a, b) => a + b),
                                kv => kv.1 == 1)))
          / toDouble(count(distinct(g.1)))))",
    inputs: &["visits"],
};

/// Per-group iteration (the PageRank-shaped workload): a lifted `while`
/// whose trip count depends on each group's data.
pub const PER_GROUP_LOOP: IrProgram = IrProgram {
    name: "per_group_loop",
    source: "\
map(groupByKey(source(edges)),
    g => (g.0,
          (loop (n = count(g.1)) while n > 10 do (n - 1) yield n)))",
    inputs: &["edges"],
};

/// The K-means-shaped half-lifted closure: a per-group scalar (`n`)
/// captured by a leaf map over the group's own bag (runtime
/// `mapWithClosure`).
pub const HALF_LIFTED_CLOSURE: IrProgram = IrProgram {
    name: "half_lifted_closure",
    source: "\
map(groupByKey(source(points)),
    g => (g.0,
          (let n = count(g.1)
           in count(filter(g.1, v => v < n)))))",
    inputs: &["points"],
};

/// Every IR workload, for exhaustive checking.
pub const ALL: &[IrProgram] = &[VISIT_COUNTS, BOUNCE_RATE, PER_GROUP_LOOP, HALF_LIFTED_CLOSURE];
