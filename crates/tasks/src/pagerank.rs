//! Per-group PageRank (paper Sec. 9.1): the graph's edges are grouped and a
//! separate PageRank runs for each group, "similarly to Topic-Sensitive
//! PageRank and BlockRank". This is the iterative two-level task: a lifted
//! `while` loop whose original loops converge at different iterations.

use matryoshka_engine::{Bag, Engine, Result, WorkEstimate};

use matryoshka_core::{group_by_key_into_nested_bag, lifted_while, InnerBag, MatryoshkaConfig};

use crate::seq::{self, PageRankParams};

/// A rank/contribution message is a ~16-byte `(vertex, f64)` pair while a
/// logical edge record (with its metadata) is several times that: derived
/// message bags weigh this fraction of the edge record.
pub(crate) const MSG_WEIGHT_FRACTION: f64 = 0.2;

/// Flattened output: `(group, (vertex, rank))`, sorted.
pub type GroupRanks = Vec<(u32, (u64, f64))>;

fn sort(mut v: GroupRanks) -> GroupRanks {
    v.sort_by_key(|a| (a.0, a.1 .0));
    v
}

/// Matryoshka: one set of flat jobs computes every group's PageRank, with
/// the lifted loop retiring groups as they converge.
///
/// `per_group_scalar_bytes`, when nonzero, sets the modeled payload of the
/// per-group InnerScalars (vertex count, teleport base, convergence state).
/// The paper's Fig. 8 (left) join ablation uses this to model per-topic
/// auxiliary state of Topic-Sensitive PageRank; the main experiments leave
/// it at 0 (the scalars' natural size).
pub fn matryoshka(
    engine: &Engine,
    edges: &Bag<(u32, (u64, u64))>,
    params: &PageRankParams,
    config: MatryoshkaConfig,
    per_group_scalar_bytes: f64,
) -> Result<GroupRanks> {
    let nested = group_by_key_into_nested_bag(engine, edges, config)?;
    let damping = params.damping;
    let epsilon = params.epsilon;
    let msg_bytes = edges.record_bytes() * MSG_WEIGHT_FRACTION;
    let ranks = nested.map_with_lifted_udf(|_g, edges| -> Result<InnerBag<u32, (u64, f64)>> {
        let vertices = edges.flat_map(|&(s, d)| [s, d]).distinct().with_record_bytes(msg_bytes);
        let mut n = vertices.count();
        if per_group_scalar_bytes > 0.0 {
            n = n.with_record_bytes(per_group_scalar_bytes);
        }
        let out_deg =
            edges.map(|&(s, _)| (s, 1u64)).with_record_bytes(msg_bytes).reduce_by_key(|a, b| a + b);
        // The initWeight closure of Sec. 5: 1/n reaches every vertex via a
        // tag join (mapWithClosure).
        let init = vertices.map_with_scalar(&n, |v, n| (*v, 1.0 / *n as f64));
        let rank_bytes = init.repr().record_bytes();
        // The static relations are co-partitioned once, outside the loop:
        // every iteration's joins then only shuffle the (small) rank side.
        let edges_p = edges.co_partition();
        let degrees_p = out_deg.co_partition();
        let vertices2 = vertices.clone();
        let n2 = n.clone();
        lifted_while(
            &init,
            move |ranks: &InnerBag<u32, (u64, f64)>| {
                let with_deg = ranks.join_co_partitioned(&degrees_p); // (v, (rank, deg))
                let contribs = with_deg
                    .join_co_partitioned(&edges_p)
                    .map(|&(_, ((rank, deg), dst))| (dst, rank / deg as f64))
                    .with_record_bytes(msg_bytes);
                let sums =
                    contribs.union(&vertices2.map(|v| (*v, 0.0f64))).reduce_by_key(|a, b| a + b);
                // Per-group dangling mass: 1 - mass that flowed along edges.
                let flowed =
                    with_deg.map(|(_, (rank, _))| *rank).fold(0.0f64, |a, r| a + r, |a, b| a + b);
                let mut base = flowed.zip_with(&n2, move |f, n| {
                    let dangling = (1.0 - f).max(0.0);
                    (1.0 - damping) / *n as f64 + damping * dangling / *n as f64
                });
                if per_group_scalar_bytes > 0.0 {
                    base = base.with_record_bytes(per_group_scalar_bytes);
                }
                let new_ranks = sums
                    .map_with_scalar(&base, move |(v, s), b| (*v, b + damping * s))
                    .with_record_bytes(rank_bytes);
                let delta = new_ranks.join(ranks).map(|(_, (a, b))| (a - b).abs()).fold(
                    0.0f64,
                    |m, d| m.max(*d),
                    |a, b| a.max(*b),
                );
                let mut cond = delta.map(move |d| *d > epsilon);
                if per_group_scalar_bytes > 0.0 {
                    cond = cond.with_record_bytes(per_group_scalar_bytes);
                }
                Ok((new_ranks, cond))
            },
            Some(params.max_iterations),
        )
    })?;
    Ok(sort(ranks.collect()?))
}

/// Outer-parallel workaround: `groupByKey` the edges (one task per group),
/// sequential PageRank per group. Parallelism is capped at the group count;
/// a big group is one big task (and one big working set).
pub fn outer_parallel(
    engine: &Engine,
    edges: &Bag<(u32, (u64, u64))>,
    params: &PageRankParams,
) -> Result<GroupRanks> {
    let record_bytes = edges.record_bytes();
    let factor = engine.config().costs.materialize_factor;
    let p = *params;
    let grouped = edges.group_by_key();
    let ranks = grouped.map_with_work(move |(g, group_edges)| {
        let r = seq::pagerank(group_edges, &p);
        let mem = (group_edges.len() as f64 * record_bytes * factor) as u64;
        ((*g, r.value), WorkEstimate { cost_units: r.work, mem_bytes: mem })
    });
    let flat = ranks.flat_map(|(g, vs)| vs.iter().map(|vr| (*g, *vr)).collect::<Vec<_>>());
    Ok(sort(flat.collect()?))
}

/// Inner-parallel workaround: the driver loops over groups (pre-split) and
/// runs the flat-parallel PageRank per group — at least one job per group
/// per iteration, the overhead that "just gets amplified with iterative
/// tasks" (Sec. 9.2).
pub fn inner_parallel(
    engine: &Engine,
    groups: &[(u32, Vec<(u64, u64)>)],
    params: &PageRankParams,
    record_bytes: f64,
) -> Result<GroupRanks> {
    let mut out = Vec::new();
    for (g, group_edges) in groups {
        let partitions = crate::hdfs_partitions(engine, group_edges.len() as f64 * record_bytes);
        let bag = engine.parallelize_with_bytes(group_edges.clone(), partitions, record_bytes);
        for (v, r) in crate::flat::pagerank(&bag, params)? {
            out.push((*g, (v, r)));
        }
    }
    Ok(sort(out))
}

/// Sequential oracle.
pub fn reference(edges: &[(u32, (u64, u64))], params: &PageRankParams) -> GroupRanks {
    let mut out = Vec::new();
    for (g, group_edges) in split_by_group(edges) {
        for vr in seq::pagerank(&group_edges, params).value {
            out.push((g, vr));
        }
    }
    sort(out)
}

/// Driver-side split into per-group edge lists (inner-parallel's pre-split
/// input).
pub fn split_by_group(edges: &[(u32, (u64, u64))]) -> Vec<(u32, Vec<(u64, u64)>)> {
    use std::collections::HashMap;
    let mut by_group: HashMap<u32, Vec<(u64, u64)>> = HashMap::new();
    for (g, e) in edges {
        by_group.entry(*g).or_default().push(*e);
    }
    let mut out: Vec<_> = by_group.into_iter().collect();
    out.sort_by_key(|(g, _)| *g);
    out
}

/// Per-group InnerScalar count of the final ranks: a cheap scalar digest for
/// comparing strategies at scale (sum of ranks per group, which must be ~1).
pub fn rank_mass_per_group(ranks: &GroupRanks) -> Vec<(u32, f64)> {
    use std::collections::BTreeMap;
    let mut sums: BTreeMap<u32, f64> = BTreeMap::new();
    for (g, (_, r)) in ranks {
        *sums.entry(*g).or_insert(0.0) += r;
    }
    sums.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use matryoshka_datagen::{grouped_edges, GroupedGraphSpec};

    fn assert_ranks_close(a: &GroupRanks, b: &GroupRanks, tol: f64) {
        assert_eq!(a.len(), b.len(), "different vertex sets");
        for ((g1, (v1, r1)), (g2, (v2, r2))) in a.iter().zip(b) {
            assert_eq!((g1, v1), (g2, v2));
            assert!((r1 - r2).abs() < tol, "group {g1} vertex {v1}: {r1} vs {r2}");
        }
    }

    fn small_input() -> Vec<(u32, (u64, u64))> {
        grouped_edges(&GroupedGraphSpec {
            total_edges: 600,
            vertices_per_group: 20,
            ..GroupedGraphSpec::small(4)
        })
    }

    #[test]
    fn all_strategies_agree_with_reference() {
        let e = Engine::local();
        let edges = small_input();
        let params = PageRankParams::default();
        let oracle = reference(&edges, &params);

        let bag = e.parallelize(edges.clone(), 4);
        let m = matryoshka(&e, &bag, &params, MatryoshkaConfig::optimized(), 0.0).unwrap();
        assert_ranks_close(&m, &oracle, 1e-4);

        let o = outer_parallel(&e, &bag, &params).unwrap();
        assert_ranks_close(&o, &oracle, 1e-12); // same sequential code

        let i = inner_parallel(&e, &split_by_group(&edges), &params, 16.0).unwrap();
        assert_ranks_close(&i, &oracle, 1e-4);
    }

    #[test]
    fn rank_mass_is_one_per_group() {
        let e = Engine::local();
        let edges = small_input();
        let bag = e.parallelize(edges, 4);
        let m =
            matryoshka(&e, &bag, &PageRankParams::default(), MatryoshkaConfig::optimized(), 0.0)
                .unwrap();
        for (g, mass) in rank_mass_per_group(&m) {
            assert!((mass - 1.0).abs() < 1e-6, "group {g} mass {mass}");
        }
    }

    #[test]
    fn matryoshka_jobs_do_not_scale_with_group_count() {
        // Same total edges, 2 vs 16 groups; iteration counts can differ a
        // little, so compare against a generous multiple.
        let count_jobs = |groups: u32| {
            let e = Engine::local();
            let spec = GroupedGraphSpec { total_edges: 800, ..GroupedGraphSpec::small(groups) };
            let bag = e.parallelize(grouped_edges(&spec), 4);
            matryoshka(&e, &bag, &PageRankParams::default(), MatryoshkaConfig::optimized(), 0.0)
                .unwrap();
            e.stats().jobs
        };
        let j2 = count_jobs(2);
        let j16 = count_jobs(16);
        assert!(j16 < j2 * 3, "matryoshka jobs should track iterations, not groups: {j2} vs {j16}");
    }

    #[test]
    fn forced_join_strategies_agree() {
        let e = Engine::local();
        let edges = small_input();
        let params = PageRankParams::default();
        let oracle = reference(&edges, &params);
        for join in [
            matryoshka_core::JoinChoice::ForceBroadcast,
            matryoshka_core::JoinChoice::ForceRepartition,
        ] {
            let cfg = MatryoshkaConfig { tag_join: join, ..MatryoshkaConfig::optimized() };
            let bag = e.parallelize(edges.clone(), 4);
            let m = matryoshka(&e, &bag, &params, cfg, 0.0).unwrap();
            assert_ranks_close(&m, &oracle, 1e-4);
        }
    }
}
