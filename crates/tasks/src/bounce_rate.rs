//! The Bounce Rate task (paper Sec. 2.1, Listings 1-3; evaluated in
//! Sec. 9.4-9.5): per-day bounce rate of a visit log, the nested-parallel
//! task *without* control flow.

use matryoshka_engine::{Bag, Engine, EngineError, Result, WorkEstimate};

use matryoshka_core::{group_by_key_into_nested_bag, MatryoshkaConfig};

use crate::seq;

/// Per-group bounce rates, sorted by group key (the canonical output every
/// strategy must agree on).
pub type BounceRates = Vec<(u32, f64)>;

fn sort(mut v: BounceRates) -> BounceRates {
    v.sort_by_key(|(g, _)| *g);
    v
}

/// Matryoshka: the flattened nested-parallel program of Listing 3, produced
/// by lifting Listing 1's UDF — both parallelism levels in one set of flat
/// jobs.
pub fn matryoshka(
    engine: &Engine,
    visits: &Bag<(u32, u64)>,
    config: MatryoshkaConfig,
) -> Result<BounceRates> {
    let per_day = group_by_key_into_nested_bag(engine, visits, config)?;
    let rates = per_day.map_with_lifted_udf(|_day, group| {
        let counts_per_ip = group.map(|ip| (*ip, 1u64)).reduce_by_key(|a, b| a + b);
        let num_bounces = counts_per_ip.filter(|(_, c)| *c == 1).count();
        let num_visitors = group.distinct().count();
        num_bounces.zip_with(
            &num_visitors,
            |b, v| {
                if *v == 0 {
                    0.0
                } else {
                    *b as f64 / *v as f64
                }
            },
        )
    });
    Ok(sort(rates.collect()?))
}

/// Outer-parallel workaround: `groupByKey` materializes every group in one
/// task, then the sequential bounce-rate function runs per group. Fails with
/// simulated OOM when groups do not fit in a worker (Sec. 9.4: "outer-
/// parallel runs out of memory in all the cases" at 48 GB).
pub fn outer_parallel(_engine: &Engine, visits: &Bag<(u32, u64)>) -> Result<BounceRates> {
    let record_bytes = visits.record_bytes();
    let grouped = visits.group_by_key();
    let rates = grouped.map_with_work(move |(day, ips)| {
        let r = seq::bounce_rate(ips);
        // The UDF's working set: the materialized group plus per-visitor
        // hash maps (countsPerIP, the distinct set) whose boxed entries cost
        // several times the raw record — the memory profile that makes the
        // outer-parallel/DIQL plan fail at the paper's 48 GB input
        // (Sec. 9.4).
        let mem = (ips.len() as f64 * record_bytes * BOUNCE_UDF_MEMORY_FACTOR) as u64;
        ((*day, r.value), WorkEstimate { cost_units: r.work, mem_bytes: mem })
    });
    Ok(sort(rates.collect()?))
}

/// In-memory expansion of one materialized visit group inside the
/// sequential bounce-rate UDF: the group array plus two per-visitor hash
/// structures with deserialized/boxed entries.
const BOUNCE_UDF_MEMORY_FACTOR: f64 = 12.0;

/// Inner-parallel workaround: the driver loops over the groups (pre-split,
/// as if each group were its own input file) and runs the flat-parallel
/// bounce-rate dataflow per group — two jobs per group.
pub fn inner_parallel(
    engine: &Engine,
    groups: &[(u32, Vec<u64>)],
    record_bytes: f64,
) -> Result<BounceRates> {
    let mut out = Vec::with_capacity(groups.len());
    for (day, ips) in groups {
        let partitions = crate::hdfs_partitions(engine, ips.len() as f64 * record_bytes);
        let group = engine.parallelize_with_bytes(ips.clone(), partitions, record_bytes);
        let counts = group.map(|ip| (*ip, 1u64)).reduce_by_key(|a, b| a + b);
        let bounces = counts.filter(|(_, c)| *c == 1).count()?; // job
        let visitors = group.distinct().count()?; // job
        let rate = if visitors == 0 { 0.0 } else { bounces as f64 / visitors as f64 };
        out.push((*day, rate));
    }
    Ok(sort(out))
}

/// DIQL-like baseline (Sec. 9.4): a flattening system without runtime
/// optimization that, on this program, "applied the outer-parallel
/// workaround instead" — so it inherits outer-parallel's OOM behaviour at
/// large inputs.
pub fn diql_like(engine: &Engine, visits: &Bag<(u32, u64)>) -> Result<BounceRates> {
    outer_parallel(engine, visits)
}

/// DIQL-like baselines reject control flow at inner nesting levels
/// (Sec. 9.1: "DIQL does not support control flow statements in the inner
/// levels"). Tasks with loops call this to produce the honest error.
pub fn diql_unsupported(task: &str) -> EngineError {
    EngineError::Unsupported(format!(
        "DIQL-like flattening does not support control flow at inner nesting levels (task: {task})"
    ))
}

/// Sequential oracle over the raw records.
pub fn reference(visits: &[(u32, u64)]) -> BounceRates {
    use std::collections::HashMap;
    let mut by_day: HashMap<u32, Vec<u64>> = HashMap::new();
    for (d, ip) in visits {
        by_day.entry(*d).or_default().push(*ip);
    }
    sort(by_day.into_iter().map(|(d, ips)| (d, seq::bounce_rate(&ips).value)).collect())
}

/// Driver-side split of a visit log into per-group vectors (the pre-split
/// input files the inner-parallel workaround starts from).
pub fn split_by_group(visits: &[(u32, u64)]) -> Vec<(u32, Vec<u64>)> {
    use std::collections::HashMap;
    let mut by_day: HashMap<u32, Vec<u64>> = HashMap::new();
    for (d, ip) in visits {
        by_day.entry(*d).or_default().push(*ip);
    }
    let mut out: Vec<(u32, Vec<u64>)> = by_day.into_iter().collect();
    out.sort_by_key(|(d, _)| *d);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use matryoshka_datagen::{visit_log, VisitSpec};

    fn assert_rates_eq(a: &BounceRates, b: &BounceRates) {
        assert_eq!(a.len(), b.len());
        for ((d1, r1), (d2, r2)) in a.iter().zip(b) {
            assert_eq!(d1, d2);
            assert!((r1 - r2).abs() < 1e-12, "day {d1}: {r1} vs {r2}");
        }
    }

    #[test]
    fn all_strategies_agree_with_reference() {
        let e = Engine::local();
        let log = visit_log(&VisitSpec::small(6));
        let oracle = reference(&log);
        let bag = e.parallelize(log.clone(), 4);

        let m = matryoshka(&e, &bag, MatryoshkaConfig::optimized()).unwrap();
        assert_rates_eq(&m, &oracle);

        let o = outer_parallel(&e, &bag).unwrap();
        assert_rates_eq(&o, &oracle);

        let i = inner_parallel(&e, &split_by_group(&log), 8.0).unwrap();
        assert_rates_eq(&i, &oracle);

        let d = diql_like(&e, &bag).unwrap();
        assert_rates_eq(&d, &oracle);
    }

    #[test]
    fn matryoshka_jobs_constant_in_group_count() {
        let e1 = Engine::local();
        let e2 = Engine::local();
        for (engine, groups) in [(&e1, 4u32), (&e2, 64)] {
            let log = visit_log(&VisitSpec::small(groups));
            let bag = engine.parallelize(log, 4);
            matryoshka(engine, &bag, MatryoshkaConfig::optimized()).unwrap();
        }
        assert_eq!(
            e1.stats().jobs,
            e2.stats().jobs,
            "Matryoshka job count must not depend on #groups"
        );
    }

    #[test]
    fn inner_parallel_jobs_scale_with_group_count() {
        let e = Engine::local();
        let log = visit_log(&VisitSpec::small(10));
        let s0 = e.stats();
        inner_parallel(&e, &split_by_group(&log), 8.0).unwrap();
        let d = e.stats().since(&s0);
        assert!(d.jobs >= 20, "2 jobs per group expected, got {}", d.jobs);
    }

    #[test]
    fn diql_rejects_control_flow_tasks() {
        let err = diql_unsupported("pagerank");
        assert!(matches!(err, EngineError::Unsupported(_)));
        assert!(err.to_string().contains("pagerank"));
    }
}
