//! K-means with many initial centroid configurations (paper Sec. 2.3,
//! Fig. 1): the hyperparameter-optimization task. The configurations are the
//! outer level; each model training is the inner level; the shared point set
//! is a closure of the lifted UDF, reached through the half-lifted
//! `mapWithClosure` cross product (Sec. 8.3).

use std::sync::Arc;

use matryoshka_engine::{Bag, Engine, Result, WorkEstimate};

use matryoshka_core::{lifted_while, InnerScalar, LiftingContext, MatryoshkaConfig};
use matryoshka_datagen::Point;

use crate::seq::{self, nearest_centroid, KmeansParams};

/// One configuration's result: final centroids and clustering cost.
pub type KmeansResult = Vec<(u32, (Vec<Point>, f64))>;

fn sort(mut v: KmeansResult) -> KmeansResult {
    v.sort_by_key(|(id, _)| *id);
    v
}

/// Modeled size of one per-(config, cluster) partial sum record: the
/// cardinality of these partials is structural (configs x K), not
/// data-scaled.
const CENTROID_PARTIAL_BYTES: f64 = 128.0;

fn add_points(a: &Point, b: &Point) -> Point {
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

fn max_shift(new: &[Point], old: &[Point]) -> f64 {
    new.iter()
        .zip(old)
        .map(|(a, b)| a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt())
        .fold(0.0, f64::max)
}

/// Matryoshka: every configuration trains in parallel *and* every training
/// step is parallel over the points — one lifted loop, configurations
/// retiring as they converge.
pub fn matryoshka(
    engine: &Engine,
    configs: &Bag<(u32, Vec<Point>)>,
    points: &Bag<Point>,
    params: &KmeansParams,
    config: MatryoshkaConfig,
) -> Result<KmeansResult> {
    // Tag projection drops the (potentially heavy) centroid payload.
    let tags = configs.map(|(id, _)| *id).with_record_bytes(8.0);
    let ctx = LiftingContext::counted(engine.clone(), tags, config)?;
    let centers0 = InnerScalar::from_repr(configs.clone(), ctx);
    // Materialize the shared points once so the optimizer's size estimator
    // (Spark SizeEstimator stand-in) can weigh the cross-product sides.
    points.count()?;
    let epsilon = params.epsilon;
    let points_for_loop = points.clone();
    let final_centers = lifted_while(
        &centers0,
        move |centers: &InnerScalar<u32, Vec<Point>>| {
            // Half-lifted mapWithClosure (Sec. 8.3): every point meets every
            // configuration's centroids.
            let assigns = centers.cross_with_bag(&points_for_loop, |_t, cs, p| {
                Some((nearest_centroid(cs, p), (p.clone(), 1u64)))
            })?;
            let sums = assigns
                .reduce_by_key_partials(CENTROID_PARTIAL_BYTES, |(pa, ca), (pb, cb)| {
                    (add_points(pa, pb), ca + cb)
                });
            let moved = sums.map(|(c, (sum, count))| {
                (*c, sum.iter().map(|s| s / *count as f64).collect::<Point>())
            });
            let gathered = moved.collect_per_tag(); // per-config centroid updates
            let new_centers = gathered.zip_with(centers, |updates, old| {
                let mut cs = old.clone();
                for (i, p) in updates {
                    cs[*i] = p.clone();
                }
                cs
            });
            let shift = new_centers.zip_with(centers, |a, b| max_shift(a, b));
            let cond = shift.map(move |s| *s > epsilon);
            Ok((new_centers, cond))
        },
        Some(params.max_iterations),
    )?;
    // Clustering cost per configuration (one more half-lifted cross).
    let costs = final_centers
        .cross_with_bag(points, |_t, cs, p| {
            let c = nearest_centroid(cs, p);
            Some(cs[c].iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum::<f64>())
        })?
        .fold(0.0f64, |a, x| a + x, |a, b| a + b);
    let out = final_centers.zip_with(&costs, |cs, cost| (cs.clone(), *cost));
    Ok(sort(out.collect()?))
}

/// Outer-parallel workaround: one task per configuration, each running the
/// *sequential* Lloyd's algorithm over the full point set. Parallelism is
/// capped at the configuration count (the left side of the paper's Fig. 1).
pub fn outer_parallel(
    engine: &Engine,
    configs: &[(u32, Vec<Point>)],
    points: Arc<Vec<Point>>,
    point_bytes: f64,
    params: &KmeansParams,
) -> Result<KmeansResult> {
    let p = *params;
    // One record per configuration; the points are reached as a closure and
    // streamed per iteration (working set stays small, compute does not).
    let bag =
        engine.parallelize(configs.to_vec(), configs.len().max(1)).with_record_bytes(point_bytes);
    let results = bag.map_with_work(move |(id, init)| {
        let r = seq::kmeans(&points, init, &p);
        ((*id, r.value), WorkEstimate { cost_units: r.work, mem_bytes: (init.len() * 64) as u64 })
    });
    Ok(sort(results.collect()?))
}

/// Inner-parallel workaround: the driver loops over configurations and runs
/// the flat-parallel K-means per configuration — one job per iteration per
/// configuration (the right side of the paper's Fig. 1).
pub fn inner_parallel(
    engine: &Engine,
    configs: &[(u32, Vec<Point>)],
    points: &Bag<Point>,
    params: &KmeansParams,
) -> Result<KmeansResult> {
    let mut out = Vec::new();
    for (id, init) in configs {
        let (cs, cost) = crate::flat::kmeans(engine, points, init, params)?;
        out.push((*id, (cs, cost)));
    }
    Ok(sort(out))
}

/// Sequential oracle.
pub fn reference(
    configs: &[(u32, Vec<Point>)],
    points: &[Point],
    params: &KmeansParams,
) -> KmeansResult {
    sort(configs.iter().map(|(id, init)| (*id, seq::kmeans(points, init, params).value)).collect())
}

// ---------------------------------------------------------------------------
// Grouped variant: every configuration trains on its *own sample* (the
// sampling-based hyperparameter tuning of Sec. 2.3: "a large number of small
// samples and a small number of large samples"). This is the shape of the
// weak-scaling experiments (Fig. 1, Fig. 3), where the per-configuration
// input size shrinks as the configuration count grows.
// ---------------------------------------------------------------------------

/// Matryoshka on per-configuration samples: the samples become a NestedBag,
/// the centroids an InnerScalar, and the assignment step a `mapWithClosure`
/// tag join (Sec. 5.1) instead of the shared-points cross product.
pub fn matryoshka_grouped(
    engine: &Engine,
    configs: &Bag<(u32, Vec<Point>)>,
    samples: &Bag<(u32, Point)>,
    params: &KmeansParams,
    config: MatryoshkaConfig,
) -> Result<KmeansResult> {
    let nested = matryoshka_core::group_by_key_into_nested_bag(engine, samples, config)?;
    let epsilon = params.epsilon;
    let out = nested.map_with_lifted_udf(|_id, points| -> Result<_> {
        let centers0 = InnerScalar::from_repr(configs.clone(), points.ctx().clone());
        let points = points.clone();
        let final_centers = lifted_while(
            &centers0,
            move |centers: &InnerScalar<u32, Vec<Point>>| {
                let assigns = points
                    .map_with_scalar(centers, |p, cs| (nearest_centroid(cs, p), (p.clone(), 1u64)));
                let sums = assigns
                    .reduce_by_key_partials(CENTROID_PARTIAL_BYTES, |(pa, ca), (pb, cb)| {
                        (add_points(pa, pb), ca + cb)
                    });
                let moved = sums.map(|(c, (sum, count))| {
                    (*c, sum.iter().map(|s| s / *count as f64).collect::<Point>())
                });
                let gathered = moved.collect_per_tag();
                let new_centers = gathered.zip_with(centers, |updates, old| {
                    let mut cs = old.clone();
                    for (i, p) in updates {
                        cs[*i] = p.clone();
                    }
                    cs
                });
                let shift = new_centers.zip_with(centers, |a, b| max_shift(a, b));
                let cond = shift.map(move |s| *s > epsilon);
                Ok((new_centers, cond))
            },
            Some(params.max_iterations),
        )?;
        let costs = nested
            .inner()
            .map_with_scalar(&final_centers, |p, cs| {
                let c = nearest_centroid(cs, p);
                cs[c].iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum::<f64>()
            })
            .fold(0.0f64, |a, x| a + x, |a, b| a + b);
        Ok(final_centers.zip_with(&costs, |cs, cost| (cs.clone(), *cost)))
    })?;
    Ok(sort(out.collect()?))
}

/// Outer-parallel on per-configuration samples: `groupByKey` the samples,
/// one sequential Lloyd run per configuration.
pub fn outer_parallel_grouped(
    engine: &Engine,
    configs: &[(u32, Vec<Point>)],
    samples: &Bag<(u32, Point)>,
    params: &KmeansParams,
) -> Result<KmeansResult> {
    let record_bytes = samples.record_bytes();
    let factor = engine.config().costs.materialize_factor;
    let p = *params;
    let inits: std::collections::HashMap<u32, Vec<Point>> = configs.iter().cloned().collect();
    let grouped = samples.group_by_key();
    let results = grouped.map_with_work(move |(id, pts)| {
        let r = seq::kmeans(pts, &inits[id], &p);
        let mem = (pts.len() as f64 * record_bytes * factor) as u64;
        ((*id, r.value), WorkEstimate { cost_units: r.work, mem_bytes: mem })
    });
    Ok(sort(results.collect()?))
}

/// Inner-parallel on per-configuration samples: driver loop, one flat
/// K-means per configuration over its own (freshly parallelized) sample.
pub fn inner_parallel_grouped(
    engine: &Engine,
    configs: &[(u32, Vec<Point>)],
    samples: &[(u32, Vec<Point>)],
    params: &KmeansParams,
    record_bytes: f64,
) -> Result<KmeansResult> {
    let inits: std::collections::HashMap<u32, Vec<Point>> = configs.iter().cloned().collect();
    let mut out = Vec::new();
    for (id, pts) in samples {
        let partitions = crate::hdfs_partitions(engine, pts.len() as f64 * record_bytes);
        let bag = engine.parallelize_with_bytes(pts.clone(), partitions, record_bytes);
        let (cs, cost) = crate::flat::kmeans(engine, &bag, &inits[id], params)?;
        out.push((*id, (cs, cost)));
    }
    Ok(sort(out))
}

/// Sequential oracle for the grouped variant.
pub fn reference_grouped(
    configs: &[(u32, Vec<Point>)],
    samples: &[(u32, Vec<Point>)],
    params: &KmeansParams,
) -> KmeansResult {
    let inits: std::collections::HashMap<u32, Vec<Point>> = configs.iter().cloned().collect();
    sort(
        samples.iter().map(|(id, pts)| (*id, seq::kmeans(pts, &inits[id], params).value)).collect(),
    )
}

/// Driver-side split of flat `(config, point)` samples into per-config
/// vectors (inner-parallel's pre-split input).
pub fn split_samples(samples: &[(u32, Point)]) -> Vec<(u32, Vec<Point>)> {
    use std::collections::HashMap;
    let mut by_id: HashMap<u32, Vec<Point>> = HashMap::new();
    for (id, p) in samples {
        by_id.entry(*id).or_default().push(p.clone());
    }
    let mut out: Vec<_> = by_id.into_iter().collect();
    out.sort_by_key(|(id, _)| *id);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use matryoshka_datagen::{initial_centroid_configs, point_cloud, KmeansSpec};

    fn assert_results_close(a: &KmeansResult, b: &KmeansResult, tol: f64) {
        assert_eq!(a.len(), b.len());
        for ((i1, (c1, cost1)), (i2, (c2, cost2))) in a.iter().zip(b) {
            assert_eq!(i1, i2);
            assert!(
                (cost1 - cost2).abs() / cost1.max(1e-9) < tol,
                "config {i1} cost {cost1} vs {cost2}"
            );
            for (x, y) in c1.iter().zip(c2) {
                for (a, b) in x.iter().zip(y) {
                    assert!((a - b).abs() < tol, "config {i1}: centroid {a} vs {b}");
                }
            }
        }
    }

    fn inputs(n_configs: u32) -> (Vec<Point>, Vec<(u32, Vec<Point>)>) {
        let spec = KmeansSpec::small();
        (point_cloud(&spec), initial_centroid_configs(&spec, n_configs))
    }

    #[test]
    fn all_strategies_agree_with_reference() {
        let e = Engine::local();
        let (points, configs) = inputs(3);
        let params = KmeansParams::default();
        let oracle = reference(&configs, &points, &params);

        let config_bag = e.parallelize(configs.clone(), 2);
        let point_bag = e.parallelize(points.clone(), 4);
        let m = matryoshka(&e, &config_bag, &point_bag, &params, MatryoshkaConfig::optimized())
            .unwrap();
        assert_results_close(&m, &oracle, 1e-6);

        let o = outer_parallel(&e, &configs, Arc::new(points.clone()), 16.0, &params).unwrap();
        assert_results_close(&o, &oracle, 1e-12);

        let i = inner_parallel(&e, &configs, &point_bag, &params).unwrap();
        assert_results_close(&i, &oracle, 1e-6);
    }

    #[test]
    fn matryoshka_jobs_do_not_scale_with_config_count() {
        let count_jobs = |n: u32| {
            let e = Engine::local();
            let (points, configs) = inputs(n);
            let config_bag = e.parallelize(configs, 2);
            let point_bag = e.parallelize(points, 4);
            matryoshka(
                &e,
                &config_bag,
                &point_bag,
                &KmeansParams::default(),
                MatryoshkaConfig::optimized(),
            )
            .unwrap();
            e.stats().jobs
        };
        let j1 = count_jobs(1);
        let j8 = count_jobs(8);
        // More configs can add iterations (slowest config dominates), but
        // not a per-config job multiple.
        assert!(j8 < j1 * 4, "jobs: {j1} for 1 config vs {j8} for 8");
    }

    #[test]
    fn inner_parallel_jobs_scale_with_config_count() {
        let e = Engine::local();
        let (points, configs) = inputs(6);
        let point_bag = e.parallelize(points, 4);
        let s0 = e.stats();
        inner_parallel(&e, &configs, &point_bag, &KmeansParams::default()).unwrap();
        let d = e.stats().since(&s0);
        assert!(d.jobs >= 6 * 2, "at least ~2 jobs per config, got {}", d.jobs);
    }

    #[test]
    fn grouped_strategies_agree_with_reference() {
        let e = Engine::local();
        let spec = matryoshka_datagen::KmeansSpec::small();
        let configs = initial_centroid_configs(&spec, 4);
        // Each config gets its own sample slice of the cloud.
        let cloud = point_cloud(&spec);
        let samples_flat: Vec<(u32, Point)> =
            cloud.iter().enumerate().map(|(i, p)| ((i % 4) as u32, p.clone())).collect();
        let params = KmeansParams::default();
        let samples_split = split_samples(&samples_flat);
        let oracle = reference_grouped(&configs, &samples_split, &params);

        let config_bag = e.parallelize(configs.clone(), 2);
        let sample_bag = e.parallelize(samples_flat.clone(), 4);
        let m = matryoshka_grouped(
            &e,
            &config_bag,
            &sample_bag,
            &params,
            MatryoshkaConfig::optimized(),
        )
        .unwrap();
        assert_results_close(&m, &oracle, 1e-6);

        let o = outer_parallel_grouped(&e, &configs, &sample_bag, &params).unwrap();
        assert_results_close(&o, &oracle, 1e-12);

        let i = inner_parallel_grouped(&e, &configs, &samples_split, &params, 16.0).unwrap();
        assert_results_close(&i, &oracle, 1e-6);
    }

    #[test]
    fn forced_cross_strategies_agree() {
        let e = Engine::local();
        let (points, configs) = inputs(2);
        let params = KmeansParams::default();
        let oracle = reference(&configs, &points, &params);
        for cross in [
            matryoshka_core::CrossChoice::ForceBroadcastScalar,
            matryoshka_core::CrossChoice::ForceBroadcastBag,
        ] {
            let cfg = MatryoshkaConfig { cross, ..MatryoshkaConfig::optimized() };
            let config_bag = e.parallelize(configs.clone(), 2);
            let point_bag = e.parallelize(points.clone(), 4);
            let m = matryoshka(&e, &config_bag, &point_bag, &params, cfg).unwrap();
            assert_results_close(&m, &oracle, 1e-6);
        }
    }
}
