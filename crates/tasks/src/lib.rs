//! # matryoshka-tasks
//!
//! The four evaluation workloads of the Matryoshka paper (Sec. 9.1), each
//! implemented in every execution strategy the paper compares:
//!
//! | Task | Levels | Control flow | Strategies |
//! |---|---|---|---|
//! | [`bounce_rate`] (Sec. 2.1) | 2 | none | Matryoshka, outer, inner, DIQL-like |
//! | [`pagerank`] (per group, Sec. 9.1) | 2 | lifted `while` | Matryoshka, outer, inner |
//! | [`kmeans`] (multi-init, Sec. 2.3) | 2 | lifted `while` + half-lifted closure | Matryoshka, outer, inner |
//! | [`avg_distances`] (Sec. 2.2) | **3** | lifted `while` | Matryoshka, outer, inner |
//!
//! Every task module also ships a sequential `reference` oracle; the test
//! suite checks that all strategies compute identical results (the
//! correctness property of Sec. 7).

#![warn(missing_docs)]

pub mod avg_distances;
pub mod bounce_rate;
pub mod flat;
pub mod ir_programs;
pub mod kmeans;
pub mod pagerank;
pub mod seq;

/// Partition count a dataflow engine would give an input of `total_bytes`
/// read from a distributed filesystem (one partition per 128 MB block,
/// capped by the configured parallelism). The inner-parallel workaround's
/// per-group inputs are sized this way: a small group is a small file with
/// few blocks.
pub fn hdfs_partitions(engine: &matryoshka_engine::Engine, total_bytes: f64) -> usize {
    const BLOCK: f64 = 128.0 * 1024.0 * 1024.0;
    ((total_bytes / BLOCK).ceil() as usize).clamp(1, engine.config().default_parallelism)
}

/// The execution strategies compared throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// The paper's system: two-phase flattening with runtime optimization.
    Matryoshka,
    /// Parallelize the outer collection; process inner collections
    /// sequentially.
    OuterParallel,
    /// Loop over the outer collection in the driver; parallelize each inner
    /// computation.
    InnerParallel,
    /// Static flattening without runtime optimization (DIQL/MRQL-like); no
    /// control flow at inner levels; falls back to outer-parallel on the
    /// Bounce Rate program (observed in the paper's Sec. 9.4).
    DiqlLike,
}

impl Strategy {
    /// Display name matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Matryoshka => "matryoshka",
            Strategy::OuterParallel => "outer-parallel",
            Strategy::InnerParallel => "inner-parallel",
            Strategy::DiqlLike => "diql",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(Strategy::Matryoshka.label(), "matryoshka");
        assert_eq!(Strategy::OuterParallel.label(), "outer-parallel");
        assert_eq!(Strategy::InnerParallel.label(), "inner-parallel");
        assert_eq!(Strategy::DiqlLike.label(), "diql");
    }
}
