//! Average Distances (paper Sec. 2.2): for every connected component of a
//! graph, the average shortest-path distance over all vertex pairs. The
//! paper's **three-level** task: components (level 1) × source vertices
//! (level 2) × the BFS's own data-parallel loop (level 3). Matryoshka
//! parallelizes all three levels with composite `(component, source)` tags;
//! outer-parallel can only parallelize level 1, inner-parallel only level 3.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use matryoshka_engine::{Bag, Engine, Result, WorkEstimate};

use matryoshka_core::{group_by_key_into_nested_bag, lifted_while, InnerBag, MatryoshkaConfig};

use crate::seq;

/// Per-component average distances, sorted by component label.
pub type AvgDistances = Vec<(u64, f64)>;

fn sort(mut v: AvgDistances) -> AvgDistances {
    v.sort_by_key(|(c, _)| *c);
    v
}

/// Tag each edge with its component label using a flat connected-components
/// pass (the outermost, non-nested part of the task, shared by every
/// strategy: `connectedComps(g)` in the paper's composition example).
fn tag_edges_by_component(
    engine: &Engine,
    edges: &Bag<(u64, u64)>,
) -> Result<Bag<(u64, (u64, u64))>> {
    let cc = crate::flat::connected_components(edges)?;
    let bytes = (cc.len() * 16) as u64;
    let comp_of: HashMap<u64, u64> = cc.into_iter().collect();
    let bc = engine.broadcast(comp_of, bytes)?;
    Ok(edges.map(move |&(u, v)| (bc.value()[&u], (u, v))))
}

/// Matryoshka: components become level-1 tags, `(component, source)` pairs
/// become level-2 tags (Sec. 7's composite lifting tags), and one lifted BFS
/// loop advances every BFS of every component simultaneously.
pub fn matryoshka(
    engine: &Engine,
    edges: &Bag<(u64, u64)>,
    config: MatryoshkaConfig,
    max_depth: usize,
) -> Result<AvgDistances> {
    let tagged = tag_edges_by_component(engine, edges)?;
    let nested = group_by_key_into_nested_bag(engine, &tagged, config)?;
    let avgs = nested.map_with_lifted_udf(|_c, comp_edges| -> Result<_> {
        let ctx1 = comp_edges.ctx().clone();
        // BFS state records (vertex ids, distances) are small pairs; only
        // the edge records carry the data weight.
        let msg_bytes = 16.0;
        // Undirected adjacency, keyed by the source endpoint.
        let adj = comp_edges.flat_map(|&(u, v)| [(u, v), (v, u)]);
        let vertices =
            comp_edges.flat_map(|&(u, v)| [u, v]).distinct().with_record_bytes(msg_bytes);
        let n = vertices.count();
        // Level 2: every vertex of every component becomes its own tag.
        let sources = vertices.lift_elements()?;
        let ctx2 = sources.ctx().clone();
        let visited0 = sources.map(|v| (*v, 0u64)).to_inner_bag();
        let frontier0 = sources.to_inner_bag();
        let depth = AtomicU64::new(0);
        // Static adjacency co-partitioned once; each BFS level only
        // shuffles the frontier.
        let adj_p = adj.co_partition();
        let ctx1_loop = ctx1.clone();
        let (visited, _frontier) = lifted_while(
            &(visited0, frontier0),
            move |(visited, frontier): &(
                InnerBag<(u64, u64), (u64, u64)>,
                InnerBag<(u64, u64), u64>,
            )| {
                let d = depth.fetch_add(1, Ordering::Relaxed) + 1;
                // Expand the frontier through the level-1 adjacency: a
                // half-lifted join across nesting levels — demote the
                // level-2 frontier to level 1, join on (component, vertex),
                // promote the discovered neighbours back to level 2.
                let keyed = frontier.demote(&ctx1_loop).map(|&(src, cur)| (cur, src));
                let discovered =
                    keyed.join_co_partitioned(&adj_p).map(|&(_, (src, nbr))| (src, nbr));
                let candidates = discovered
                    .promote(&ctx2)
                    .map(move |nbr| (*nbr, d))
                    .with_record_bytes(msg_bytes);
                let new_visited = visited.union(&candidates).reduce_by_key(|a, b| *a.min(b));
                let new_frontier = new_visited.filter(move |&(_, dist)| dist == d).map(|&(v, _)| v);
                let cond = new_frontier.count().map(|c| *c > 0);
                Ok(((new_visited, new_frontier), cond))
            },
            Some(max_depth),
        )?;
        // Sum of distances per (component, source), demoted to per-component.
        let per_source = visited.map(|&(_, dist)| dist).fold(0u64, |a, x| a + x, |a, b| a + b);
        let per_comp =
            per_source.demote(&ctx1).map(|&(_, s)| s).fold(0u64, |a, x| a + x, |a, b| a + b);
        Ok(per_comp.zip_with(&n, |total, n| {
            if *n <= 1 {
                0.0
            } else {
                *total as f64 / (*n * (*n - 1)) as f64
            }
        }))
    })?;
    Ok(sort(avgs.collect()?))
}

/// Outer-parallel workaround: one task per component, sequential all-pairs
/// BFS inside (levels 2 and 3 run on a single simulated core).
pub fn outer_parallel(engine: &Engine, edges: &Bag<(u64, u64)>) -> Result<AvgDistances> {
    let tagged = tag_edges_by_component(engine, edges)?;
    let record_bytes = tagged.record_bytes();
    let factor = engine.config().costs.materialize_factor;
    let grouped = tagged.group_by_key();
    let avgs = grouped.map_with_work(move |(c, comp_edges)| {
        let r = seq::avg_distances(comp_edges);
        let mem = (comp_edges.len() as f64 * record_bytes * factor) as u64;
        ((*c, r.value), WorkEstimate { cost_units: r.work, mem_bytes: mem })
    });
    Ok(sort(avgs.collect()?))
}

/// Inner-parallel workaround: the driver loops over components *and* source
/// vertices, launching a flat-parallel BFS (jobs per BFS level) for each —
/// the job count explodes with both outer levels (Sec. 9.2: "outer-parallel
/// can parallelize only the first level while inner-parallel only the
/// third").
pub fn inner_parallel(
    engine: &Engine,
    components: &[(u64, Vec<(u64, u64)>)],
    record_bytes: f64,
) -> Result<AvgDistances> {
    let mut out = Vec::new();
    for (c, comp_edges) in components {
        let partitions = crate::hdfs_partitions(engine, comp_edges.len() as f64 * record_bytes);
        let bag = engine.parallelize_with_bytes(comp_edges.clone(), partitions, record_bytes);
        // A competent inner-parallel user prepares the adjacency once per
        // component and reuses it across the per-vertex BFS runs.
        let adj = crate::flat::bfs_adjacency(&bag);
        let mut vertices: Vec<u64> = comp_edges.iter().flat_map(|&(u, v)| [u, v]).collect();
        vertices.sort_unstable();
        vertices.dedup();
        let n = vertices.len() as u64;
        let mut total = 0u64;
        for &src in &vertices {
            for (_, dist) in crate::flat::bfs(engine, &adj, src)? {
                total += dist;
            }
        }
        let avg = if n <= 1 { 0.0 } else { total as f64 / (n * (n - 1)) as f64 };
        out.push((*c, avg));
    }
    Ok(sort(out))
}

/// Sequential oracle.
pub fn reference(edges: &[(u64, u64)]) -> AvgDistances {
    sort(
        split_by_component(edges)
            .into_iter()
            .map(|(c, es)| (c, seq::avg_distances(&es).value))
            .collect(),
    )
}

/// Driver-side split into per-component edge lists (inner-parallel's
/// pre-split input).
pub fn split_by_component(edges: &[(u64, u64)]) -> Vec<(u64, Vec<(u64, u64)>)> {
    let comp_of: HashMap<u64, u64> = seq::connected_components(edges).into_iter().collect();
    let mut by_comp: HashMap<u64, Vec<(u64, u64)>> = HashMap::new();
    for &(u, v) in edges {
        by_comp.entry(comp_of[&u]).or_default().push((u, v));
    }
    let mut out: Vec<_> = by_comp.into_iter().collect();
    out.sort_by_key(|(c, _)| *c);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use matryoshka_datagen::{component_graph, ComponentGraphSpec};

    fn assert_close(a: &AvgDistances, b: &AvgDistances) {
        assert_eq!(a.len(), b.len());
        for ((c1, d1), (c2, d2)) in a.iter().zip(b) {
            assert_eq!(c1, c2);
            assert!((d1 - d2).abs() < 1e-9, "component {c1}: {d1} vs {d2}");
        }
    }

    fn small_graph() -> Vec<(u64, u64)> {
        component_graph(&ComponentGraphSpec {
            vertices_per_component: 8,
            ..ComponentGraphSpec::small(3)
        })
    }

    #[test]
    fn all_strategies_agree_with_reference() {
        let e = Engine::local();
        let edges = small_graph();
        let oracle = reference(&edges);
        let bag = e.parallelize(edges.clone(), 4);

        let m = matryoshka(&e, &bag, MatryoshkaConfig::optimized(), 32).unwrap();
        assert_close(&m, &oracle);

        let o = outer_parallel(&e, &bag).unwrap();
        assert_close(&o, &oracle);

        let i = inner_parallel(&e, &split_by_component(&edges), 16.0).unwrap();
        assert_close(&i, &oracle);
    }

    #[test]
    fn handles_a_path_graph_precisely() {
        let e = Engine::local();
        // One component: path 0-1-2. Average = 8/6.
        let bag = e.parallelize(vec![(0u64, 1u64), (1, 2)], 2);
        let m = matryoshka(&e, &bag, MatryoshkaConfig::optimized(), 16).unwrap();
        assert_eq!(m.len(), 1);
        assert!((m[0].1 - 8.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn inner_parallel_job_count_explodes() {
        let e = Engine::local();
        let edges = small_graph(); // 3 components x 8 vertices
        let s0 = e.stats();
        inner_parallel(&e, &split_by_component(&edges), 16.0).unwrap();
        let d = e.stats().since(&s0);
        // One BFS per (component, vertex) = 24 BFS runs, each several jobs.
        assert!(d.jobs >= 24 * 2, "expected a job explosion, got {}", d.jobs);
    }

    #[test]
    fn matryoshka_jobs_track_graph_diameter_not_size() {
        let jobs_for = |components: u32| {
            let e = Engine::local();
            let g = component_graph(&ComponentGraphSpec {
                vertices_per_component: 8,
                ..ComponentGraphSpec::small(components)
            });
            let bag = e.parallelize(g, 4);
            matryoshka(&e, &bag, MatryoshkaConfig::optimized(), 32).unwrap();
            e.stats().jobs
        };
        let j2 = jobs_for(2);
        let j8 = jobs_for(8);
        assert!(j8 < j2 * 2, "jobs should track BFS depth, not component count: {j2} vs {j8}");
    }
}
